"""Orderings on Codd databases: Hoare, Plotkin, and the CWA refinement.

Section 6 recalls the classical powerdomain orderings on Codd databases
(nulls do not repeat, modelling SQL's single ``NULL``):

* ``D ⊑^H D'`` (Hoare):   every tuple of ``D`` is refined by one of ``D'``;
* ``D ⊑^P D'`` (Plotkin): Hoare, and every tuple of ``D'`` refines one
  of ``D``.

[Libkin 2011] (recalled in Section 6) characterises the semantic
orderings restricted to Codd databases: ``≼_OWA`` coincides with
``⊑^H``, while ``≼_CWA`` is ``⊑^P`` **plus** a perfect matching from
``D'`` into ``D`` under tuple refinement.  Theorem 7.1 shows the
powerset ordering ``⋐_CWA`` is exactly ``⊑^P`` on Codd databases — the
motivating fact for the powerset semantics.
"""

from __future__ import annotations

from typing import Sequence

from repro.data.codd import tuple_leq
from repro.data.instance import Instance
from repro.data.values import sort_key

__all__ = ["hoare_leq", "plotkin_leq", "has_refinement_matching", "cwa_codd_leq"]


def _check_codd(*instances: Instance) -> None:
    for inst in instances:
        if not inst.is_codd():
            raise ValueError(f"Codd orderings need Codd databases; nulls repeat in {inst!r}")


def hoare_leq(left: Instance, right: Instance) -> bool:
    """``left ⊑^H right``: each left tuple has a refinement on the right."""
    _check_codd(left, right)
    names = set(left.relations) | set(right.relations)
    for name in names:
        for t in left.tuples(name):
            if not any(tuple_leq(t, s) for s in right.tuples(name)):
                return False
    return True


def plotkin_leq(left: Instance, right: Instance) -> bool:
    """``left ⊑^P right``: Hoare plus every right tuple refines a left one."""
    if not hoare_leq(left, right):
        return False
    names = set(left.relations) | set(right.relations)
    for name in names:
        for s in right.tuples(name):
            if not any(tuple_leq(t, s) for t in left.tuples(name)):
                return False
    return True


def _max_matching(adjacency: Sequence[Sequence[int]], n_right: int) -> int:
    """Maximum bipartite matching size via augmenting paths (Kuhn's algorithm)."""
    match_right = [-1] * n_right

    def try_augment(u: int, seen: list[bool]) -> bool:
        for v in adjacency[u]:
            if seen[v]:
                continue
            seen[v] = True
            if match_right[v] == -1 or try_augment(match_right[v], seen):
                match_right[v] = u
                return True
        return False

    size = 0
    for u in range(len(adjacency)):
        if try_augment(u, [False] * n_right):
            size += 1
    return size


def has_refinement_matching(left: Instance, right: Instance) -> bool:
    """A perfect matching from ``right`` tuples into ``left`` tuples under ``⊒``.

    Each tuple of ``right`` must be matched with a *distinct* tuple of
    ``left`` that it refines, relation by relation (the matching
    condition of [Libkin 2011] for ``≼_CWA`` over Codd databases).
    """
    _check_codd(left, right)
    names = set(left.relations) | set(right.relations)
    for name in names:
        right_rows = right.tuples(name)
        left_rows = left.tuples(name)
        if len(right_rows) > len(left_rows):
            # a perfect matching injects right rows into left rows, so a
            # larger right side fails before any adjacency is built
            return False
        # sort_key, not repr: deterministic across mixed int/str cells
        right_sorted = sorted(right_rows, key=lambda t: tuple(map(sort_key, t)))
        left_sorted = sorted(left_rows, key=lambda t: tuple(map(sort_key, t)))
        adjacency = []
        for s in right_sorted:
            row_adj = [j for j, t in enumerate(left_sorted) if tuple_leq(t, s)]
            if not row_adj:
                # an unmatched right row can never join a perfect matching
                return False
            adjacency.append(row_adj)
        if _max_matching(adjacency, len(left_sorted)) != len(right_sorted):
            return False
    return True


def cwa_codd_leq(left: Instance, right: Instance) -> bool:
    """The [Libkin 2011] characterisation of ``≼_CWA`` over Codd databases.

    ``left ≼_CWA right`` iff ``left ⊑^P right`` and tuple refinement has
    a perfect matching from ``right`` to ``left``.
    """
    return plotkin_leq(left, right) and has_refinement_matching(left, right)
