"""Unit tests for repro.homs.properties: mapping classification."""

from repro.data.instance import Instance
from repro.data.values import Null
from repro.homs.properties import (
    fix_set,
    fixes_constants,
    image,
    is_database_homomorphism,
    is_homomorphism,
    is_onto,
    is_strong_onto,
    is_valuation,
)

X, Y = Null("x"), Null("y")


def test_image_is_apply():
    d = Instance({"R": [(X, 1)]})
    assert image({X: 2}, d) == Instance({"R": [(2, 1)]})


def test_is_homomorphism_basic():
    d = Instance({"R": [(X, 1)]})
    e = Instance({"R": [(2, 1), (3, 3)]})
    assert is_homomorphism({X: 2}, d, e)
    assert not is_homomorphism({X: 9}, d, e)


def test_partial_mapping_extends_by_identity():
    d = Instance({"R": [(X, 1)]})
    e = Instance({"R": [(2, 1)]})
    assert is_homomorphism({X: 2}, d, e)  # constant 1 not in the dict


def test_plain_hom_may_move_constants():
    d = Instance({"R": [(1, 2)]})
    e = Instance({"R": [(3, 4)]})
    assert is_homomorphism({1: 3, 2: 4}, d, e)
    assert not is_database_homomorphism({1: 3, 2: 4}, d, e)


def test_fixes_constants():
    d = Instance({"R": [(1, X)]})
    assert fixes_constants({X: 5}, d)
    assert not fixes_constants({1: 2, X: 5}, d)


def test_is_onto_and_strong_onto():
    d = Instance({"D": [(1, 2)]})
    d2 = Instance({"D": [(3, 4), (4, 3)]})
    h = {1: 3, 2: 4}
    assert is_onto(h, d, d2)
    assert not is_strong_onto(h, d, d2)
    assert is_strong_onto(h, d, Instance({"D": [(3, 4)]}))


def test_is_onto_requires_hom():
    d = Instance({"D": [(1, 2)]})
    e = Instance({"D": [(5, 6)]})
    assert not is_onto({1: 6, 2: 5}, d, e)  # covers adom but (6,5) ∉ E


def test_is_valuation():
    d = Instance({"R": [(1, X), (Y, 2)]})
    assert is_valuation({X: 7, Y: 8}, d)
    assert not is_valuation({X: 7}, d)  # Y left as a null
    assert not is_valuation({X: 7, Y: Null("z")}, d)  # maps null to null
    assert not is_valuation({X: 7, Y: 8, 1: 9}, d)  # moves a constant


def test_fix_set():
    d = Instance({"R": [(1, 2), (3, X)]})
    h = {1: 1, 2: 9, X: 4}  # moves 2, fixes 1 and (implicitly) 3
    assert fix_set(h, d) == frozenset({1, 3})
