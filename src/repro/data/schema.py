"""Relational schemas (vocabularies).

A relational schema is a set of relation names with associated arities
(paper, Section 2.1).  Schemas are optional for most of the library —
instances infer their own signature — but they are useful for
validation, random generation, and for the logic layer to check that
atoms are well-formed.
"""

from __future__ import annotations

from typing import Iterator, Mapping

__all__ = ["Schema", "SchemaError"]


class SchemaError(ValueError):
    """Raised when a schema is malformed or an instance violates it."""


class Schema:
    """An immutable map from relation names to arities.

    >>> s = Schema({"R": 2, "S": 1})
    >>> s.arity("R")
    2
    >>> "S" in s
    True
    """

    __slots__ = ("_arities",)

    def __init__(self, arities: Mapping[str, int]):
        checked: dict[str, int] = {}
        for name, arity in arities.items():
            if not isinstance(name, str) or not name:
                raise SchemaError(f"relation name must be a non-empty string, got {name!r}")
            if not isinstance(arity, int) or arity < 1:
                raise SchemaError(f"arity of {name!r} must be a positive integer, got {arity!r}")
            checked[name] = arity
        self._arities = dict(sorted(checked.items()))

    @property
    def relations(self) -> tuple[str, ...]:
        """Relation names in sorted order."""
        return tuple(self._arities)

    def arity(self, name: str) -> int:
        """Arity of relation ``name``; raises :class:`SchemaError` if absent."""
        try:
            return self._arities[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def __contains__(self, name: object) -> bool:
        return name in self._arities

    def __iter__(self) -> Iterator[str]:
        return iter(self._arities)

    def __len__(self) -> int:
        return len(self._arities)

    def items(self) -> Iterator[tuple[str, int]]:
        return iter(self._arities.items())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and other._arities == self._arities

    def __hash__(self) -> int:
        return hash(tuple(self._arities.items()))

    def __repr__(self) -> str:
        body = ", ".join(f"{name}/{arity}" for name, arity in self._arities.items())
        return f"Schema({body})"

    def union(self, other: "Schema") -> "Schema":
        """Merge two schemas; conflicting arities raise :class:`SchemaError`."""
        merged = dict(self._arities)
        for name, arity in other.items():
            if merged.get(name, arity) != arity:
                raise SchemaError(
                    f"conflicting arities for {name!r}: {merged[name]} vs {arity}"
                )
            merged[name] = arity
        return Schema(merged)

    @classmethod
    def graph(cls, name: str = "E") -> "Schema":
        """The schema of directed graphs: one binary relation."""
        return cls({name: 2})
