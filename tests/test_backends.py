"""Tests for repro.core.backends: the strategy registry and the three backends."""

import pytest

from repro.core import analyze, certain_answers, naive_eval
from repro.core.backends import (
    NAIVE_AUTO_BACKEND,
    Backend,
    ColumnarBackend,
    CTableBackend,
    EnumerationBackend,
    NaiveBackend,
    available_backends,
    get_backend,
    naive_is_certain,
    register_backend,
    unregister_backend,
)
from repro.core.plan import make_plan
from repro.data.instance import Instance
from repro.data.values import Null
from repro.logic.parser import parse
from repro.logic.queries import Query
from repro.semantics import get_semantics

X, Y = Null("x"), Null("y")


class TestRegistry:
    def test_builtins_registered(self):
        assert {"naive", "columnar", "enumeration", "ctable"} <= set(available_backends())

    def test_get_backend_by_name(self):
        assert isinstance(get_backend("naive"), NaiveBackend)
        assert isinstance(get_backend("enumeration"), EnumerationBackend)
        assert isinstance(get_backend("ctable"), CTableBackend)

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("quantum")

    def test_register_and_unregister_custom_backend(self):
        class EmptyBackend(Backend):
            name = "always-empty"
            summary = "returns no answers"

            def exactness(self, semantics, verdict, instance_is_core, extra_facts):
                return False, "subset"

            def execute(self, query, instance, semantics, *, pool=None,
                        extra_facts=None, limit=500_000):
                return frozenset()

        try:
            register_backend(EmptyBackend())
            assert "always-empty" in available_backends()
            assert get_backend("always-empty").execute(None, None, None) == frozenset()
        finally:
            unregister_backend("always-empty")
        assert "always-empty" not in available_backends()

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend(NaiveBackend())

    def test_duplicate_registration_with_replace(self):
        register_backend(NaiveBackend(), replace=True)
        assert isinstance(get_backend("naive"), NaiveBackend)

    def test_unnamed_backend_rejected(self):
        class Anonymous(Backend):
            def exactness(self, semantics, verdict, instance_is_core, extra_facts):
                return True, ""

            def execute(self, query, instance, semantics, *, pool=None,
                        extra_facts=None, limit=500_000):
                return frozenset()

        with pytest.raises(ValueError, match="non-empty name"):
            register_backend(Anonymous())


class TestNaiveBackend:
    def test_matches_naive_eval(self, intro_db, join_query):
        got = get_backend("naive").execute(join_query, intro_db, get_semantics("owa"))
        assert got == naive_eval(join_query, intro_db)

    def test_core_check_needed_only_for_minimal(self):
        q = Query.boolean(parse("exists v . D(v, v)"))
        backend = get_backend("naive")
        assert backend.needs_core_check(analyze(q, "mincwa"))
        assert not backend.needs_core_check(analyze(q, "cwa"))

    def test_exactness_accounting(self):
        backend = get_backend("naive")
        sound = analyze(Query.boolean(parse("exists v . D(v, v)")), "cwa")
        assert backend.exactness(get_semantics("cwa"), sound, None, None) == (True, "")
        unsound = analyze(Query.boolean(parse("forall x . exists y . D(x, y)")), "owa")
        exact, direction = backend.exactness(get_semantics("owa"), unsound, None, None)
        assert not exact and direction == "unknown"

    def test_exactness_off_core_is_subset(self):
        backend = get_backend("naive")
        verdict = analyze(Query.boolean(parse("exists v . D(v, v)")), "mincwa")
        assert backend.exactness(get_semantics("mincwa"), verdict, False, None) == (
            False,
            "subset",
        )
        assert backend.exactness(get_semantics("mincwa"), verdict, True, None) == (
            True,
            "",
        )


class TestEnumerationBackend:
    def test_matches_certain_answers(self, d0):
        q = Query.boolean(parse("forall x . exists y . D(x, y)"))
        sem = get_semantics("cwa")
        got = get_backend("enumeration").execute(q, d0, sem)
        assert got == certain_answers(q, d0, sem)

    def test_owa_flagged_superset(self):
        backend = get_backend("enumeration")
        verdict = analyze(Query.boolean(parse("exists v . D(v, v)")), "owa")
        assert backend.exactness(get_semantics("owa"), verdict, None, 2) == (
            False,
            "superset",
        )
        assert backend.exactness(get_semantics("cwa"), verdict, None, None) == (True, "")


class TestCTableBackend:
    def test_refuses_non_cwa(self):
        backend = get_backend("ctable")
        for key in ("owa", "wcwa", "pcwa", "mincwa", "minpcwa"):
            with pytest.raises(ValueError, match="ctable"):
                backend.validate(get_semantics(key))
        backend.validate(get_semantics("cwa"))  # no raise

    def test_boolean_agreement_with_enumeration(self, d0):
        q = Query.boolean(parse("exists x, y . D(x, y) & D(y, x)"))
        sem = get_semantics("cwa")
        assert get_backend("ctable").execute(q, d0, sem) == get_backend(
            "enumeration"
        ).execute(q, d0, sem)

    def test_kary_agreement_with_enumeration(self, intro_db, join_query):
        sem = get_semantics("cwa")
        assert get_backend("ctable").execute(join_query, intro_db, sem) == get_backend(
            "enumeration"
        ).execute(join_query, intro_db, sem)

    def test_universal_query_agreement(self, d0, forall_exists_query):
        sem = get_semantics("cwa")
        assert get_backend("ctable").execute(forall_exists_query, d0, sem) == get_backend(
            "enumeration"
        ).execute(forall_exists_query, d0, sem)

    def test_always_exact_under_cwa(self):
        backend = get_backend("ctable")
        verdict = analyze(Query.boolean(parse("forall x . exists y . D(x, y)")), "cwa")
        assert backend.exactness(get_semantics("cwa"), verdict, None, None) == (True, "")

    def test_respects_explicit_pool(self):
        d = Instance({"D": [(X, 1)]})
        q = Query(parse("D(x, y)"), ("x", "y"))
        sem = get_semantics("cwa")
        got = get_backend("ctable").execute(q, d, sem, pool=[1, 2])
        assert got == certain_answers(q, d, sem, pool=[1, 2])

    def test_limit_guards_world_explosion(self):
        # regression: the limit knob must bound ctable world enumeration
        # instead of being silently ignored
        from repro.semantics.base import ExpansionLimitError

        d = Instance({"D": [(X, Y), (Y, X)]})
        q = Query.boolean(parse("exists v . D(v, v)"))
        sem = get_semantics("cwa")
        with pytest.raises(ExpansionLimitError, match="ctable"):
            get_backend("ctable").execute(q, d, sem, limit=3)
        # a generous limit still evaluates
        assert get_backend("ctable").execute(q, d, sem, limit=10**6) == frozenset()


class TestColumnarBackend:
    def test_registered_and_typed(self):
        backend = get_backend("columnar")
        assert isinstance(backend, ColumnarBackend)
        assert isinstance(backend, NaiveBackend)  # same exactness contract
        assert backend.engine == "columnar"
        assert NAIVE_AUTO_BACKEND == "columnar"

    def test_matches_naive_eval(self, intro_db, join_query):
        got = get_backend("columnar").execute(join_query, intro_db, get_semantics("owa"))
        assert got == naive_eval(join_query, intro_db)
        assert got == get_backend("naive").execute(join_query, intro_db, get_semantics("owa"))

    def test_exactness_identical_to_naive(self):
        columnar, naive = get_backend("columnar"), get_backend("naive")
        for sem_key, text in [
            ("cwa", "exists v . D(v, v)"),
            ("owa", "forall x . exists y . D(x, y)"),
            ("mincwa", "exists v . D(v, v)"),
        ]:
            verdict = analyze(Query.boolean(parse(text)), sem_key)
            sem = get_semantics(sem_key)
            for core_flag in (True, False, None):
                assert columnar.exactness(sem, verdict, core_flag, None) == naive.exactness(
                    sem, verdict, core_flag, None
                ), (sem_key, text, core_flag)


class TestAutoRoutingEligibility:
    """The eligibility matrix: ``auto`` routes to columnar EXACTLY where
    the compiled engine routed before — i.e. exactly where Figure 1 plus
    the core check prove naive evaluation computes certain answers."""

    # (semantics, query text) — covers sound rows, unsound rows, and the
    # core-conditional minimal-semantics row of Figure 1
    MATRIX = [
        ("owa", "exists x, y . D(x, y) & D(y, x)"),          # UCQ/OWA: sound
        ("owa", "forall x . exists y . D(x, y)"),            # ∀ under OWA: unsound
        ("cwa", "forall x . exists y . D(x, y)"),            # Pos+∀G/CWA: sound
        ("cwa", "!(exists v . D(v, v))"),                    # negation: unsound
        ("wcwa", "exists x, y . D(x, y) & D(y, x)"),
        ("pcwa", "forall x . exists y . D(x, y)"),
        ("mincwa", "exists v . D(v, v)"),                    # sound on cores only
        ("minpcwa", "exists v . D(v, v)"),
    ]

    @pytest.mark.parametrize("sem_key,text", MATRIX)
    def test_auto_routes_columnar_iff_naive_certain(self, sem_key, text, d0):
        q = Query.boolean(parse(text))
        verdict = analyze(q, sem_key)
        plan = make_plan(q, d0, sem_key, "auto")
        core_flag = plan.instance_is_core if verdict.over_cores_only else True
        expected = "columnar" if naive_is_certain(verdict, core_flag) else "enumeration"
        assert plan.backend == expected, (sem_key, text)
        if expected == "columnar":
            assert plan.exact  # the fast path is only taken when provably exact

    @pytest.mark.parametrize("sem_key,text", MATRIX)
    def test_forced_compiled_and_interp_stay_available(self, sem_key, text, d0):
        """compiled and naive-interp remain registered as forced
        differential baselines on every matrix row."""
        q = Query.boolean(parse(text))
        columnar = make_plan(q, d0, sem_key, "columnar")
        compiled = make_plan(q, d0, sem_key, "compiled")
        interp = make_plan(q, d0, sem_key, "naive-interp")
        assert (columnar.backend, compiled.backend, interp.backend) == (
            "columnar", "compiled", "naive-interp"
        )
        sem = get_semantics(sem_key)
        answers = {
            get_backend(name).execute(q, d0, sem)
            for name in ("columnar", "compiled", "naive-interp")
        }
        assert len(answers) == 1  # the three naive engines agree pointwise

    def test_explain_notes_name_kernels_on_auto_route(self, d0):
        q = Query.boolean(parse("forall x . exists y . D(x, y)"))
        plan = make_plan(q, d0, "cwa", "auto")
        assert plan.backend == "columnar"
        note = "\n".join(plan.notes)
        assert "columnar executor" in note and "explain --operators" in note
