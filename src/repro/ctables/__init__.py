"""Conditional tables (Imielinski & Lipski 1984): the general representation system."""

from repro.ctables.algebra import difference, join, project, rename, select_eq, union
from repro.ctables.conditions import (
    CAnd,
    CEq,
    CFalse,
    CNot,
    COr,
    CTrue,
    Condition,
    FALSE_C,
    TRUE_C,
    cand,
    ceq,
    cneq,
    cor,
)
from repro.ctables.table import CFact, CInstance

__all__ = [
    "difference",
    "join",
    "project",
    "rename",
    "select_eq",
    "union",
    "CAnd",
    "CEq",
    "CFalse",
    "CNot",
    "COr",
    "CTrue",
    "Condition",
    "FALSE_C",
    "TRUE_C",
    "cand",
    "ceq",
    "cneq",
    "cor",
    "CFact",
    "CInstance",
]
