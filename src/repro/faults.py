"""Deterministic failpoint injection for the serving stack.

Every layer that touches the outside world — the write-ahead log, the
snapshot publisher, the TCP server, the replication feed and tailer —
asks this module "should I fail *here*, *now*?" at a small set of named
**failpoints** before doing the real work.  In production the registry
is empty and the check is one attribute read; under test (or chaos CI)
failpoints are armed with a trigger and an error payload, so the exact
partial failures a real deployment meets — disk full, failed fsync, a
write torn mid-frame, a dropped or hung socket — happen on demand and
deterministically.

Arming failpoints
-----------------

Via the environment (read once, at first use — the chaos tests set it
before launching ``repro serve`` subprocesses)::

    REPRO_FAILPOINTS="wal.fsync=once:eio;server.send=prob(0.05,42):drop-conn"

or programmatically::

    >>> from repro.faults import FaultRegistry
    >>> reg = FaultRegistry("wal.append=every(3):enospc")
    >>> reg.describe()
    ['wal.append=every(3):enospc']

and per-session: ``Database(faults=...)`` threads a registry into that
session's storage layer only, while the process-global registry (the
env one) drives the transport-level sites.

Spec grammar (entries separated by ``;``)::

    point '=' trigger ':' action
    trigger := 'once' | 'every(N)' | 'prob(P[,SEED])'
    action  := 'enospc' | 'eio' | 'torn-write' | 'drop-conn' | 'hang(MS)'

Triggers are deterministic: ``once`` fires on the first evaluation then
disarms; ``every(n)`` fires on every n-th evaluation; ``prob(p, seed)``
draws from its own seeded RNG, so a chaos run replays bit-identically
from its seed.

The failpoint catalog (what each site does when it fires) is
documented in ``docs/fault-tolerance.md``; :data:`KNOWN_POINTS` is the
authoritative list and unknown names are rejected at parse time so a
typo cannot silently disarm a chaos run.
"""

from __future__ import annotations

import asyncio
import errno as _errno
import os
import random
import re
import threading
import time
from dataclasses import dataclass

__all__ = [
    "ENV_VAR",
    "KNOWN_POINTS",
    "FaultAction",
    "FaultSpecError",
    "FaultRegistry",
    "InjectedDropConnection",
    "async_fire",
    "fire",
    "global_registry",
    "install",
]

#: the environment variable the global registry is parsed from
ENV_VAR = "REPRO_FAILPOINTS"

#: every injection site in the codebase, with the layer that owns it.
#: Parse-time validation checks against this set so a misspelled point
#: fails loudly instead of never firing.
KNOWN_POINTS = frozenset(
    {
        # storage/wal.py
        "wal.append",
        "wal.fsync",
        "wal.truncate",
        # storage/snapshot.py
        "snapshot.write",
        "snapshot.replace",
        "snapshot.dir_fsync",
        # server.py
        "server.accept",
        "server.recv",
        "server.send",
        # replication/feed.py and replication/replica.py
        "feed.yield",
        "replica.apply",
    }
)

_ERRNO_ACTIONS = {"enospc": _errno.ENOSPC, "eio": _errno.EIO}


class FaultSpecError(ValueError):
    """A failpoint spec string does not parse (bad point/trigger/action)."""


class InjectedDropConnection(ConnectionResetError):
    """The ``drop-conn`` payload: sites treat it as a peer going away.

    A subclass of :class:`ConnectionResetError` (hence ``OSError``), so
    every existing socket error path handles it without special cases —
    the type exists only so logs and tests can tell an injected drop
    from a real one.
    """


@dataclass(frozen=True)
class FaultAction:
    """What an armed failpoint does when its trigger fires.

    ``kind`` is one of ``"errno"`` (raise ``OSError(code)``),
    ``"torn-write"`` (the site writes a partial frame, then raises),
    ``"hang"`` (sleep ``ms`` milliseconds, then continue) or
    ``"drop-conn"`` (raise :class:`InjectedDropConnection`).
    """

    kind: str
    code: int = 0
    ms: float = 0.0

    @classmethod
    def parse(cls, text: str) -> "FaultAction":
        word = text.strip().lower()
        if word in _ERRNO_ACTIONS:
            return cls("errno", code=_ERRNO_ACTIONS[word])
        if word == "torn-write":
            return cls("torn-write")
        if word == "drop-conn":
            return cls("drop-conn")
        match = re.fullmatch(r"hang\((\d+(?:\.\d+)?)\)", word)
        if match:
            return cls("hang", ms=float(match.group(1)))
        raise FaultSpecError(
            f"unknown fault action {text!r}; expected one of "
            f"enospc, eio, torn-write, drop-conn, hang(MS)"
        )

    def describe(self) -> str:
        if self.kind == "errno":
            return _errno.errorcode.get(self.code, str(self.code)).lower()
        if self.kind == "hang":
            ms = int(self.ms) if self.ms == int(self.ms) else self.ms
            return f"hang({ms})"
        return self.kind


class _Armed:
    """One armed failpoint: its trigger state plus hit counters."""

    __slots__ = ("trigger", "n", "p", "rng", "action", "evaluations", "fired", "spent")

    def __init__(self, trigger: str, n: int, p: float, seed: int, action: FaultAction):
        self.trigger = trigger  # "once" | "every" | "prob"
        self.n = n
        self.p = p
        self.rng = random.Random(seed)
        self.action = action
        self.evaluations = 0
        self.fired = 0
        self.spent = False  # a spent `once` stays registered for stats

    def evaluate(self) -> FaultAction | None:
        self.evaluations += 1
        if self.trigger == "once":
            if self.spent:
                return None
            self.spent = True
        elif self.trigger == "every":
            if self.evaluations % self.n:
                return None
        elif self.trigger == "prob":
            if self.rng.random() >= self.p:
                return None
        self.fired += 1
        return self.action

    def describe(self) -> str:
        if self.trigger == "once":
            trig = "once"
        elif self.trigger == "every":
            trig = f"every({self.n})"
        else:
            p = int(self.p) if self.p == int(self.p) else self.p
            trig = f"prob({p})"
        return f"{trig}:{self.action.describe()}"


def _parse_trigger(text: str) -> tuple[str, int, float, int]:
    """``trigger`` text → ``(kind, n, p, seed)``."""
    word = text.strip().lower()
    if word == "once":
        return "once", 1, 0.0, 0
    match = re.fullmatch(r"every\((\d+)\)", word)
    if match:
        n = int(match.group(1))
        if n < 1:
            raise FaultSpecError(f"every(n) needs n >= 1, got {text!r}")
        return "every", n, 0.0, 0
    match = re.fullmatch(r"prob\((\d+(?:\.\d+)?|\.\d+)(?:,\s*(\d+))?\)", word)
    if match:
        p = float(match.group(1))
        if not 0.0 <= p <= 1.0:
            raise FaultSpecError(f"prob(p) needs 0 <= p <= 1, got {text!r}")
        seed = int(match.group(2)) if match.group(2) is not None else 0
        return "prob", 1, p, seed
    raise FaultSpecError(
        f"unknown fault trigger {text!r}; expected once, every(N) or prob(P[,SEED])"
    )


class FaultRegistry:
    """Named failpoints, their triggers, and hit accounting (thread-safe).

    The empty registry is the production configuration:
    :meth:`evaluate` returns ``None`` after a single truthiness check,
    so leaving the call sites compiled in costs nothing measurable.

    >>> reg = FaultRegistry()
    >>> reg.arm("wal.fsync", "once", "eio")
    >>> reg.evaluate("wal.fsync")
    FaultAction(kind='errno', code=5, ms=0.0)
    >>> reg.evaluate("wal.fsync") is None  # `once` has disarmed itself
    True
    >>> reg.stats()["wal.fsync"]
    {'armed': 'once:eio', 'evaluations': 2, 'fired': 1}
    """

    def __init__(self, spec: str | None = None):
        self._lock = threading.Lock()
        self._points: dict[str, _Armed] = {}
        if spec:
            self.load(spec)

    def __bool__(self) -> bool:
        return bool(self._points)

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------

    def load(self, spec: str) -> "FaultRegistry":
        """Arm every entry of a spec string (see the module docstring)."""
        for entry in spec.split(";"):
            entry = entry.strip()
            if not entry:
                continue
            point, eq, rest = entry.partition("=")
            trigger, colon, action = rest.partition(":")
            if not eq or not colon:
                raise FaultSpecError(
                    f"bad failpoint entry {entry!r}; expected point=trigger:action"
                )
            self.arm(point.strip(), trigger, action)
        return self

    def arm(self, point: str, trigger: str, action: str | FaultAction) -> None:
        """Arm one failpoint (replacing whatever was armed there)."""
        if point not in KNOWN_POINTS:
            raise FaultSpecError(
                f"unknown failpoint {point!r}; known points: {', '.join(sorted(KNOWN_POINTS))}"
            )
        kind, n, p, seed = _parse_trigger(trigger)
        if not isinstance(action, FaultAction):
            action = FaultAction.parse(action)
        with self._lock:
            self._points[point] = _Armed(kind, n, p, seed, action)

    def disarm(self, point: str | None = None) -> None:
        """Disarm one failpoint, or every one when ``point`` is ``None``."""
        with self._lock:
            if point is None:
                self._points.clear()
            else:
                self._points.pop(point, None)

    clear = disarm

    # ------------------------------------------------------------------
    # firing
    # ------------------------------------------------------------------

    def evaluate(self, point: str) -> FaultAction | None:
        """Tick ``point``'s trigger; the action when it fires, else ``None``.

        Pure decision — no raising, no sleeping.  Sites that need full
        control over the payload (the WAL's torn write) call this and
        interpret the action themselves; everything else uses
        :meth:`fire`.
        """
        if not self._points:
            return None
        with self._lock:
            armed = self._points.get(point)
            if armed is None:
                return None
            return armed.evaluate()

    def fire(self, point: str, *, tearable: bool = False) -> FaultAction | None:
        """Evaluate ``point`` and *deliver* the payload.

        ``errno`` payloads raise ``OSError(code)``; ``drop-conn`` raises
        :class:`InjectedDropConnection`; ``hang`` sleeps its duration
        and then returns the action (the operation proceeds, late).  A
        ``torn-write`` is returned to the caller when ``tearable=True``
        (the site writes a partial frame and raises itself); sites that
        have no frame to tear get a plain ``EIO`` instead, so arming
        ``torn-write`` on them still means "this I/O failed".
        """
        action = self.evaluate(point)
        if action is None:
            return None
        if action.kind == "hang":
            time.sleep(action.ms / 1000.0)
            return action
        if action.kind == "drop-conn":
            raise InjectedDropConnection(
                _errno.ECONNRESET, f"failpoint {point}: injected connection drop"
            )
        if action.kind == "torn-write" and not tearable:
            raise OSError(_errno.EIO, f"failpoint {point}: injected torn write")
        if action.kind == "errno":
            raise OSError(action.code, f"failpoint {point}: injected {action.describe()}")
        return action  # torn-write, to a tearable site

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, dict]:
        """Per-point accounting: what is armed, evaluations, fires."""
        with self._lock:
            return {
                point: {
                    "armed": armed.describe(),
                    "evaluations": armed.evaluations,
                    "fired": armed.fired,
                }
                for point, armed in sorted(self._points.items())
            }

    def describe(self) -> list[str]:
        """The armed entries, re-rendered in spec syntax."""
        with self._lock:
            return [
                f"{point}={armed.describe()}"
                for point, armed in sorted(self._points.items())
            ]

    def __repr__(self) -> str:
        return f"FaultRegistry({';'.join(self.describe())!r})"


# ----------------------------------------------------------------------
# the process-global registry (transport-level sites use this)
# ----------------------------------------------------------------------

_global: FaultRegistry | None = None
_global_lock = threading.Lock()


def global_registry() -> FaultRegistry:
    """The process-wide registry, parsed from ``REPRO_FAILPOINTS`` once.

    Transport-level sites (the TCP server, the replication feed and
    tailer) always consult this one; storage sites consult whatever
    registry their session was built with, which defaults to this one
    too — so setting the env var before ``repro serve`` arms the whole
    process.
    """
    global _global
    if _global is None:
        with _global_lock:
            if _global is None:
                _global = FaultRegistry(os.environ.get(ENV_VAR))
    return _global


def install(spec: str | FaultRegistry | None) -> FaultRegistry:
    """Replace the global registry (tests use this; pass ``None`` to clear)."""
    global _global
    with _global_lock:
        if spec is None:
            _global = FaultRegistry()
        elif isinstance(spec, FaultRegistry):
            _global = spec
        else:
            _global = FaultRegistry(spec)
        return _global


def fire(point: str, *, tearable: bool = False) -> FaultAction | None:
    """:meth:`FaultRegistry.fire` on the global registry."""
    return global_registry().fire(point, tearable=tearable)


async def async_fire(point: str, *, tearable: bool = False) -> FaultAction | None:
    """:func:`fire` for coroutine sites: ``hang`` awaits, never blocks.

    The async server's accept/recv/send sites run *on the event loop*,
    where the synchronous ``time.sleep`` a ``hang(MS)`` payload performs
    would stall every connection at once instead of the one being
    injected.  This variant delivers ``hang`` via ``asyncio.sleep`` and
    every other payload exactly as :meth:`FaultRegistry.fire` does.
    """
    action = global_registry().evaluate(point)
    if action is None:
        return None
    if action.kind == "hang":
        await asyncio.sleep(action.ms / 1000.0)
        return action
    if action.kind == "drop-conn":
        raise InjectedDropConnection(
            _errno.ECONNRESET, f"failpoint {point}: injected connection drop"
        )
    if action.kind == "torn-write" and not tearable:
        raise OSError(_errno.EIO, f"failpoint {point}: injected torn write")
    if action.kind == "errno":
        raise OSError(action.code, f"failpoint {point}: injected {action.describe()}")
    return action  # torn-write, to a tearable site


def coerce(faults: "FaultRegistry | str | None") -> FaultRegistry:
    """Normalise a ``faults=`` argument: registry, spec string, or default.

    ``None`` means the process-global registry, so ``REPRO_FAILPOINTS``
    reaches sessions that never mention faults explicitly.
    """
    if faults is None:
        return global_registry()
    if isinstance(faults, FaultRegistry):
        return faults
    return FaultRegistry(faults)
