"""A self-healing wire client for the JSON-lines serving protocol.

:class:`Client` wraps the raw socket conversation of
``docs/wire-protocol.md`` in the retry/deadline/failover policy a
caller facing real networks needs:

* **per-op deadlines** — every public method is bounded by ``timeout``
  seconds of wall clock, connection attempts included; a blown deadline
  raises :class:`DeadlineExceeded`, never hangs;
* **capped-exponential retry with jitter** for *idempotent* requests
  (reads, ``ping``, admin ops): transport errors and injected drops are
  retried against the next endpoint in rotation, so a primary kill is
  invisible to readers as long as any replica still answers;
* **typed-error passthrough** for mutations: a ``degraded`` frame
  (the durability layer refused the write — see
  :class:`repro.session.DegradedError`) or a ``stale`` frame surfaces
  as a typed exception carrying the server's structured fields, never
  as prose to re-parse; a ``read_only`` frame triggers one redirect to
  the primary the replica announced;
* **bounded-staleness reads** — the client tracks the highest
  generation any of its own acknowledged writes reached and stamps it
  as ``min_generation`` on subsequent reads (read-your-writes), so a
  read failing over to a lagging replica either waits for the write it
  just made or fails ``stale`` and rotates, never silently rewinds;
* **honest write semantics** — a mutation is retried only while the
  client can prove it never reached a server (connection refused before
  anything was sent).  Once request bytes may have left, a transport
  failure raises :class:`IndeterminateWriteError`: the write may or may
  not have applied, and only the caller knows whether re-issuing it is
  idempotent for their data.

>>> from repro.client import Client
>>> from repro.server import serve
>>> from repro.session import Database
>>> with serve(Database({"R": [(1, 2)]})) as server:
...     client = Client(server.address)
...     client.query("R(x, y)")["answers"]
...     client.insert("R", [[3, 4]])["changed"]
...     client.close()
[[1, 2]]
1
"""

from __future__ import annotations

import json
import random
import socket
from time import monotonic, sleep
from typing import Callable, Iterable, Mapping, Sequence

from repro.replication.replica import parse_address

__all__ = [
    "Client",
    "ClientError",
    "DeadlineExceeded",
    "DegradedServerError",
    "IndeterminateWriteError",
    "ReadOnlyServerError",
    "ServerError",
    "StaleReadError",
    "TransportError",
]


class ClientError(Exception):
    """Base class for everything :class:`Client` raises on purpose."""


class TransportError(ClientError):
    """No server could be reached (or kept its connection) in time."""


class DeadlineExceeded(TransportError):
    """The per-op deadline expired before any server answered."""


class IndeterminateWriteError(ClientError):
    """A mutation was sent but its fate is unknown (connection died).

    The server may or may not have applied the write.  The client never
    auto-retries out of this state — re-issuing is the caller's call,
    made safe by checking generation counters (``stats``/``health``) or
    by the mutation's natural idempotence (set semantics: re-inserting
    a present row changes nothing).
    """


class ServerError(ClientError):
    """The server answered with an error frame; ``fields`` carries it.

    ``error_type`` is the structured discriminator (``"degraded"``,
    ``"read_only"``, ``"stale"``, or ``None`` for untyped errors).
    """

    def __init__(self, fields: dict):
        super().__init__(fields.get("error", "server error"))
        self.fields = fields
        self.error_type: str | None = fields.get("error_type")


class DegradedServerError(ServerError):
    """The node is in degraded read-only mode; the write was refused.

    The write was **not** applied.  ``fields["health"]`` carries the
    node's health record; an operator ``checkpoint`` heals the node.
    """


class ReadOnlyServerError(ServerError):
    """The node is a replica; ``primary`` names where writes go."""

    @property
    def primary(self) -> str | None:
        return self.fields.get("primary")


class StaleReadError(ServerError):
    """The node could not reach the requested ``min_generation`` in time."""


def _typed_error(response: dict) -> ServerError:
    kind = response.get("error_type")
    if kind == "degraded":
        return DegradedServerError(response)
    if kind == "read_only":
        return ReadOnlyServerError(response)
    if kind == "stale":
        return StaleReadError(response)
    return ServerError(response)


#: ops safe to re-send after an ambiguous failure (no server-side effects,
#: or effects that are idempotent by definition, like ``checkpoint``)
IDEMPOTENT_OPS = frozenset(
    {"ping", "query", "batch", "explain", "dump", "stats", "health", "checkpoint", "promote"}
)
#: idempotent ops that may be answered by *any* endpoint in the rotation
FAILOVER_OPS = frozenset({"ping", "query", "batch", "explain", "dump"})


class Client:
    """A resilient JSON-lines client over one primary and its replicas.

    Parameters
    ----------
    primary:
        ``"host:port"`` (or an ``(host, port)`` pair) of the node that
        accepts writes;
    replicas:
        additional read endpoints; idempotent reads rotate across
        ``[primary, *replicas]`` on failure;
    timeout:
        per-operation wall-clock deadline in seconds (connects, sends,
        retries and backoff sleeps all count against it);
    retries:
        attempts per idempotent operation beyond the first;
    backoff_base / backoff_cap:
        capped exponential retry schedule: attempt *n* sleeps roughly
        ``min(base * 2**n, cap)`` seconds, jittered to half;
    read_your_writes:
        stamp the client's own highest acknowledged write generation as
        ``min_generation`` on reads that do not set one (default on);
    wait_timeout_s:
        how long a server may block to satisfy a ``min_generation``
        floor before answering ``stale``;
    jitter:
        a ``() -> float in [0, 1)`` hook, injectable for deterministic
        tests.

    One socket per endpoint is kept open and reused across requests;
    any transport error tears that connection down so the next attempt
    reconnects from scratch.  Instances are **not** thread-safe — use
    one per thread (the server multiplexes fine).
    """

    def __init__(
        self,
        primary: str | tuple,
        replicas: Iterable[str | tuple] = (),
        *,
        timeout: float = 5.0,
        connect_timeout: float = 1.0,
        retries: int = 5,
        backoff_base: float = 0.05,
        backoff_cap: float = 1.0,
        read_your_writes: bool = True,
        wait_timeout_s: float = 2.0,
        jitter: Callable[[], float] = random.random,
    ):
        self._primary = parse_address(primary)
        self._endpoints: list[tuple[str, int]] = [self._primary]
        for replica in replicas:
            addr = parse_address(replica)
            if addr not in self._endpoints:
                self._endpoints.append(addr)
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.retries = max(0, retries)
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.read_your_writes = read_your_writes
        self.wait_timeout_s = wait_timeout_s
        self._jitter = jitter
        self._rotation = 0
        #: highest generation an acknowledged write of *this client* reached
        self.last_write_generation = 0
        self._conns: dict[tuple[str, int], tuple[socket.socket, object]] = {}
        self._seq = 0

    # ------------------------------------------------------------------
    # connection plumbing
    # ------------------------------------------------------------------

    @property
    def primary_address(self) -> str:
        host, port = self._primary
        return f"{host}:{port}"

    @property
    def endpoints(self) -> list[str]:
        return [f"{host}:{port}" for host, port in self._endpoints]

    def close(self) -> None:
        """Close every cached connection (idempotent)."""
        for sock, _reader in self._conns.values():
            try:
                sock.close()
            except OSError:
                pass
        self._conns.clear()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _drop(self, endpoint: tuple[str, int]) -> None:
        conn = self._conns.pop(endpoint, None)
        if conn is not None:
            try:
                conn[0].close()
            except OSError:
                pass

    def _connect(self, endpoint: tuple[str, int], deadline: float):
        cached = self._conns.get(endpoint)
        if cached is not None:
            return cached
        budget = min(self.connect_timeout, deadline - monotonic())
        if budget <= 0:
            raise DeadlineExceeded(f"deadline expired connecting to {endpoint}")
        try:
            sock = socket.create_connection(endpoint, timeout=budget)
        except OSError as err:
            raise TransportError(f"cannot connect to {endpoint}: {err}") from err
        reader = sock.makefile("r", encoding="utf-8", newline="\n")
        self._conns[endpoint] = (sock, reader)
        return sock, reader

    def _exchange(self, endpoint: tuple[str, int], payload: dict, deadline: float) -> dict:
        """One request/response on one endpoint; raises on any failure.

        Transport failures *after* the request bytes may have left are
        tagged by re-raising :class:`IndeterminateWriteError` — the
        caller decides whether its op makes that ambiguity safe.
        """
        sock, reader = self._connect(endpoint, deadline)
        remaining = deadline - monotonic()
        if remaining <= 0:
            raise DeadlineExceeded(f"deadline expired before sending to {endpoint}")
        line = json.dumps(payload) + "\n"
        try:
            sock.settimeout(remaining)
            sock.sendall(line.encode("utf-8"))
            response = reader.readline()
        except OSError as err:
            self._drop(endpoint)
            if isinstance(err, socket.timeout):
                raise IndeterminateWriteError(
                    f"no response from {endpoint} within the deadline"
                ) from err
            raise IndeterminateWriteError(
                f"connection to {endpoint} failed mid-request: {err}"
            ) from err
        if not response:
            # clean EOF: the server closed without answering (drained,
            # crashed, or an injected drop) — the request's fate is unknown
            self._drop(endpoint)
            raise IndeterminateWriteError(f"{endpoint} closed the connection mid-request")
        try:
            return json.loads(response)
        except ValueError as err:
            self._drop(endpoint)
            raise TransportError(f"undecodable response from {endpoint}: {err}") from err

    def _sleep(self, attempt: int, deadline: float) -> None:
        delay = min(self.backoff_base * (2**attempt), self.backoff_cap)
        delay *= 0.5 + 0.5 * min(1.0, max(0.0, self._jitter()))
        remaining = deadline - monotonic()
        if remaining <= 0:
            raise DeadlineExceeded("retry budget exhausted")
        sleep(min(delay, remaining))

    # ------------------------------------------------------------------
    # the request core
    # ------------------------------------------------------------------

    def request(self, payload: dict, *, endpoint: str | tuple | None = None) -> dict:
        """Send one raw request object with the full resilience policy.

        The escape hatch the typed helpers build on.  ``endpoint`` pins
        the request to one node (admin ops on a specific replica);
        otherwise idempotent reads rotate over every endpoint and
        mutations go to the primary.  Returns the decoded ``ok: true``
        response; raises a typed :class:`ClientError` otherwise.
        """
        op = payload.get("op")
        self._seq += 1
        payload = {"id": self._seq, **payload}
        deadline = monotonic() + self.timeout
        pinned = parse_address(endpoint) if endpoint is not None else None
        if op in IDEMPOTENT_OPS:
            return self._request_idempotent(payload, deadline, pinned)
        return self._request_mutation(payload, deadline, pinned)

    def _stamp_read_floor(self, payload: dict) -> dict:
        if (
            self.read_your_writes
            and payload.get("op") in ("query", "batch")
            and self.last_write_generation > 0
            and "min_generation" not in payload
        ):
            payload = {
                **payload,
                "min_generation": self.last_write_generation,
                "wait_timeout_s": self.wait_timeout_s,
            }
        return payload

    def _request_idempotent(
        self, payload: dict, deadline: float, pinned: tuple[str, int] | None
    ) -> dict:
        payload = self._stamp_read_floor(payload)
        can_rotate = pinned is None and payload.get("op") in FAILOVER_OPS
        endpoints = [pinned] if pinned is not None else self._endpoints
        last_error: ClientError | None = None
        for attempt in range(self.retries + 1):
            if can_rotate:
                endpoint = endpoints[self._rotation % len(endpoints)]
            else:
                endpoint = endpoints[0] if pinned is not None else self._primary
            try:
                response = self._exchange(endpoint, payload, deadline)
            except DeadlineExceeded:
                raise
            except (TransportError, IndeterminateWriteError) as err:
                # idempotent: ambiguity is free to retry — rotate away
                last_error = (
                    err
                    if isinstance(err, TransportError)
                    else TransportError(str(err))
                )
                if can_rotate:
                    self._rotation += 1
            else:
                if response.get("ok"):
                    return response
                error = _typed_error(response)
                if isinstance(error, StaleReadError) and can_rotate and len(endpoints) > 1:
                    # this node is lagging; another may have caught up
                    last_error = error
                    self._rotation += 1
                else:
                    raise error
            if attempt < self.retries:
                self._sleep(attempt, deadline)
        raise last_error if last_error is not None else TransportError("no endpoints")

    def _request_mutation(
        self, payload: dict, deadline: float, pinned: tuple[str, int] | None
    ) -> dict:
        endpoint = pinned if pinned is not None else self._primary
        redirected = False
        last_error: ClientError | None = None
        for attempt in range(self.retries + 1):
            try:
                response = self._exchange(endpoint, payload, deadline)
            except DeadlineExceeded:
                raise
            except TransportError as err:
                # the connect itself failed: nothing was sent, retry is safe
                last_error = err
            except IndeterminateWriteError:
                # bytes may have left — surface the ambiguity, never re-send
                raise
            else:
                if response.get("ok"):
                    generation = response.get("generation")
                    if isinstance(generation, int):
                        self.last_write_generation = max(
                            self.last_write_generation, generation
                        )
                    return response
                error = _typed_error(response)
                if (
                    isinstance(error, ReadOnlyServerError)
                    and error.primary
                    and not redirected
                    and pinned is None
                ):
                    # the write was refused, not applied: following the
                    # announced primary once is safe
                    endpoint = parse_address(error.primary)
                    self._primary = endpoint
                    if endpoint not in self._endpoints:
                        self._endpoints.insert(0, endpoint)
                    redirected = True
                    continue
                raise error
            if attempt < self.retries:
                self._sleep(attempt, deadline)
        raise last_error if last_error is not None else TransportError("no endpoints")

    # ------------------------------------------------------------------
    # typed helpers
    # ------------------------------------------------------------------

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def query(
        self,
        query: str,
        *,
        vars: Sequence[str] | None = None,
        semantics: str | None = None,
        mode: str = "auto",
        min_generation: int | None = None,
        min_rel_generation: Mapping[str, int] | None = None,
    ) -> dict:
        payload: dict = {"op": "query", "query": query, "mode": mode}
        if vars is not None:
            payload["vars"] = list(vars)
        if semantics is not None:
            payload["semantics"] = semantics
        if min_generation is not None:
            payload["min_generation"] = min_generation
            payload["wait_timeout_s"] = self.wait_timeout_s
        if min_rel_generation:
            payload["min_rel_generation"] = dict(min_rel_generation)
            payload.setdefault("wait_timeout_s", self.wait_timeout_s)
        return self.request(payload)

    def insert(self, relation: str, rows: Iterable[Sequence]) -> dict:
        return self.request({"op": "insert", "relation": relation, "rows": list(rows)})

    def delete(self, relation: str, rows: Iterable[Sequence]) -> dict:
        return self.request({"op": "delete", "relation": relation, "rows": list(rows)})

    def apply_delta(
        self,
        adds: Mapping[str, list] | None = None,
        removes: Mapping[str, list] | None = None,
    ) -> dict:
        payload: dict = {"op": "delta"}
        if adds:
            payload["adds"] = dict(adds)
        if removes:
            payload["removes"] = dict(removes)
        return self.request(payload)

    def checkpoint(self, *, endpoint: str | tuple | None = None) -> dict:
        """Force a snapshot (the degraded-mode healing op)."""
        return self.request({"op": "checkpoint"}, endpoint=endpoint)

    def promote(self, endpoint: str | tuple) -> dict:
        """Flip the replica at ``endpoint`` writable and adopt it as primary."""
        response = self.request({"op": "promote"}, endpoint=endpoint)
        self._primary = parse_address(endpoint)
        if self._primary not in self._endpoints:
            self._endpoints.insert(0, self._primary)
        return response

    def stats(self, *, endpoint: str | tuple | None = None) -> dict:
        return self.request({"op": "stats"}, endpoint=endpoint)

    def health(self, *, endpoint: str | tuple | None = None) -> dict:
        return self.request({"op": "health"}, endpoint=endpoint)
