"""Cores of relational instances (Hell & Nešetřil; paper Section 10.1).

The *core* of ``D`` is a subinstance ``D' ⊆ D`` that is a homomorphic
image of ``D`` but none of whose proper subinstances is.  It is unique
up to isomorphism.  The paper uses cores with the database notion of
homomorphism (identity on constants), for which all the classical facts
remain true [Fagin, Kolaitis & Popa 2005]; the ``fix_constants`` switch
also enables the pure graph-homomorphism variant used in the ``C4+C6``
example.

Cores are the representative set of the minimal-valuation semantics
(Theorem 10.2): naive evaluation results for those semantics hold *over
cores*.
"""

from __future__ import annotations

from repro.data.instance import Instance
from repro.homs.search import find_homomorphism

__all__ = ["retract_step", "core", "is_core"]


def retract_step(instance: Instance, fix_constants: bool = True) -> Instance | None:
    """One retraction: an endomorphic image ``h(D) ⊊ D``, or ``None``.

    ``h(D) ⊊ D`` holds iff ``h(D)`` avoids at least one fact, so it
    suffices to search for homomorphisms into the maximal proper
    subinstances.
    """
    for name, row in instance.facts():
        smaller = instance.remove_fact(name, row)
        hom = find_homomorphism(instance, smaller, fix_constants=fix_constants)
        if hom is not None:
            return instance.apply(hom)
    return None


def core(instance: Instance, fix_constants: bool = True) -> Instance:
    """The core of ``instance`` (a specific representative of the iso class).

    Computed by repeated retraction; each step strictly decreases the
    number of facts, so the loop terminates.
    """
    current = instance
    while True:
        smaller = retract_step(current, fix_constants=fix_constants)
        if smaller is None:
            return current
        current = smaller


def is_core(instance: Instance, fix_constants: bool = True) -> bool:
    """True iff no proper subinstance of ``instance`` is an endomorphic image."""
    return retract_step(instance, fix_constants=fix_constants) is None
