"""Shared fixtures: paper instances, small schemas, query builders."""

from __future__ import annotations

import random

import pytest

from repro.data import Instance, Schema
from repro.data.generate import d0_example, intro_example
from repro.logic import Query, parse


@pytest.fixture
def intro_db() -> Instance:
    return intro_example()


@pytest.fixture
def d0() -> Instance:
    return d0_example()


@pytest.fixture
def graph_schema() -> Schema:
    return Schema({"E": 2})


@pytest.fixture
def rs_schema() -> Schema:
    return Schema({"R": 2, "S": 2})


@pytest.fixture
def rng() -> random.Random:
    return random.Random(20130622)  # PODS 2013 conference dates


@pytest.fixture
def join_query() -> Query:
    """The introduction's query: π_AC(R ⋈ S)."""
    return Query(parse("exists z (R(x, z) & S(z, y))"), ("x", "y"), name="join")


@pytest.fixture
def exists_cycle_query() -> Query:
    """∃x,y (D(x,y) ∧ D(y,x)) — a UCQ, true naively on D0."""
    return Query.boolean(parse("exists x, y . D(x,y) & D(y,x)"), name="cycle2")


@pytest.fixture
def forall_exists_query() -> Query:
    """∀x ∃y D(x,y) — in Pos but not ∃Pos (the D0 separating query)."""
    return Query.boolean(parse("forall x . exists y . D(x,y)"), name="total")
