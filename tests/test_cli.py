"""Tests for the command-line interface."""

import json
import time

import pytest

from repro.cli import instance_from_json, instance_to_json, main
from repro.data.instance import Instance
from repro.data.values import Null


class TestJsonFormat:
    def test_round_trip(self):
        d = Instance({"R": [(1, Null("x"))], "S": [(Null("x"), 4)]})
        assert instance_from_json(instance_to_json(d)) == d

    def test_nulls_marked_with_question(self):
        d = instance_from_json('{"R": [[1, "?x"], ["?x", 2]]}')
        assert len(d.nulls()) == 1  # ?x repeats

    def test_plain_strings_are_constants(self):
        d = instance_from_json('{"R": [["alice", "bob"]]}')
        assert d.is_complete()

    def test_non_object_rejected(self):
        with pytest.raises(ValueError):
            instance_from_json("[1, 2]")

    def test_nested_list_rejected(self):
        with pytest.raises(ValueError):
            instance_from_json('{"R": [[[1]]]}')

    def test_non_list_rows_rejected_naming_relation(self):
        with pytest.raises(ValueError, match="'R'"):
            instance_from_json('{"R": 7}')

    def test_non_list_row_rejected_naming_relation_and_row(self):
        # the regression case: a bare row instead of a list of rows
        with pytest.raises(ValueError, match=r"'R'.*\b1\b") as exc:
            instance_from_json('{"R": [1, 2]}')
        assert "not a list" in str(exc.value)

    def test_object_cell_rejected(self):
        with pytest.raises(ValueError, match="'S'"):
            instance_from_json('{"S": [[{"a": 1}]]}')

    def test_bad_rows_reported_through_cli(self, tmp_path, capsys):
        db = tmp_path / "db.json"
        db.write_text('{"R": [1, 2]}')
        code = main(["evaluate", "exists x, y . R(x, y)", str(db)])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err and "'R'" in err


class TestRoundTrips:
    """instance_from_json → instance_to_json → parse again is the identity."""

    def round_trip(self, instance: Instance) -> Instance:
        return instance_from_json(instance_to_json(instance))

    def test_null_shared_across_relations(self):
        x = Null("x")
        d = Instance({"R": [(1, x)], "S": [(x, 2)], "T": [(x, x)]})
        back = self.round_trip(d)
        assert back == d
        assert len(back.nulls()) == 1

    def test_many_nulls_many_relations(self):
        x, y, z = Null("x"), Null("y"), Null("z")
        d = Instance(
            {
                "R": [(x, y), (y, z), (1, 2)],
                "S": [(z, x), ("alice", y)],
                "U": [(x,), (z,), (3,)],
            }
        )
        assert self.round_trip(d) == d

    def test_mixed_constant_types_survive(self):
        d = Instance({"R": [(1, "1"), ("bob", 2)]})
        back = self.round_trip(d)
        assert back == d
        assert {1, "1", "bob", 2} == set(back.constants())

    def test_textual_round_trip_from_json_side(self):
        text = '{"R": [[1, "?x"]], "S": [["?x", 4], ["?y", "?y"]]}'
        first = instance_from_json(text)
        again = instance_from_json(instance_to_json(first))
        assert again == first

    def test_question_mark_constant_round_trips(self):
        # regression: "?x" the *constant* must not come back as a null
        d = Instance({"R": [("?x", "??y", 1)]})
        back = self.round_trip(d)
        assert back == d
        assert back.is_complete()

    def test_escaped_marker_decodes_to_constant(self):
        d = instance_from_json('{"R": [["??x", "?x"]]}')
        assert d.tuples("R") == frozenset({("?x", Null("x"))})

    def test_non_scalar_constant_rejected_on_encode(self):
        d = Instance({"R": [((1, 2),)]})  # a tuple-valued cell
        with pytest.raises(ValueError, match="'R'"):
            instance_to_json(d)

    def test_question_mark_null_label_rejected_on_encode(self):
        d = Instance({"R": [(Null("?weird"),)]})
        with pytest.raises(ValueError, match="'R'"):
            instance_to_json(d)


class TestExplainCommand:
    def test_explain_owa_routes_enumeration(self, capsys):
        assert main(["explain", "forall x . exists y . D(x,y)", "--semantics", "owa"]) == 0
        out = capsys.readouterr().out
        assert "enumeration" in out and "not sound" in out

    def test_explain_cwa_routes_columnar(self, capsys):
        assert main(["explain", "forall x . exists y . D(x,y)", "--semantics", "cwa"]) == 0
        out = capsys.readouterr().out
        assert "backend     : columnar" in out and "SOUND" in out

    def test_explain_with_instance_reports_cost(self, tmp_path, capsys):
        db = tmp_path / "db.json"
        db.write_text(json.dumps({"D": [["?a", "?b"], ["?b", "?a"]]}))
        assert main(["explain", "exists x . D(x, x)", str(db), "--semantics", "cwa"]) == 0
        out = capsys.readouterr().out
        assert "2 facts, 2 nulls" in out

    def test_explain_json_output(self, tmp_path, capsys):
        db = tmp_path / "db.json"
        db.write_text(json.dumps({"D": [["?a", "?b"]]}))
        code = main(
            ["explain", "forall x . exists y . D(x,y)", str(db), "--semantics", "owa", "--json"]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["backend"] == "enumeration"
        assert data["semantics"] == "owa"
        assert data["verdict"]["sound"] is False
        assert data["cost"]["fact_count"] == 1
        assert data["cost"]["null_count"] == 2

    def test_explain_json_columnar_case(self, capsys):
        code = main(["explain", "exists z (R(x,z) & S(z,y))", "--semantics", "owa", "--json"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["backend"] == "columnar"
        assert data["verdict"]["sound"] is True and data["exact"] is True

    def test_explain_forced_mode(self, capsys):
        code = main(
            ["explain", "exists x . D(x, x)", "--semantics", "cwa", "--mode", "ctable"]
        )
        assert code == 0
        assert "ctable" in capsys.readouterr().out

    def test_explain_ctable_refused_under_owa(self, capsys):
        code = main(
            ["explain", "exists x . D(x, x)", "--semantics", "owa", "--mode", "ctable"]
        )
        assert code == 2
        assert "ctable" in capsys.readouterr().err

    def test_expansion_limit_reported_cleanly(self, tmp_path, capsys):
        # many nulls → world enumeration exceeds the limit; the CLI must
        # report it as error:+exit 2, not a raw traceback
        db = tmp_path / "big.json"
        rows = [[f"?n{i}", f"?n{i+1}"] for i in range(8)]
        db.write_text(json.dumps({"D": rows}))
        code = main(
            ["evaluate", "exists x . D(x, x)", str(db), "--semantics", "cwa",
             "--mode", "ctable"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err and "limit" in err


class TestCommands:
    def test_analyze_all_semantics(self, capsys):
        assert main(["analyze", "exists z (R(x,z) & S(z,y))"]) == 0
        out = capsys.readouterr().out
        assert "owa" in out and "SOUND" in out

    def test_analyze_single_semantics(self, capsys):
        assert main(["analyze", "forall x . exists y . D(x,y)", "--semantics", "owa"]) == 0
        out = capsys.readouterr().out
        assert "not sound" in out

    def test_fragments(self, capsys):
        assert main(["fragments", "forall x . exists y . D(x,y)"]) == 0
        out = capsys.readouterr().out
        assert "Pos" in out and "EPos" not in out.split("fragments:")[1].split(",")[0]

    def test_evaluate_kary(self, tmp_path, capsys):
        db = tmp_path / "db.json"
        db.write_text(json.dumps({"R": [[1, "?1"], ["?2", "?3"]], "S": [["?1", 4], ["?3", 5]]}))
        code = main(["evaluate", "exists z (R(x,z) & S(z,y))", str(db), "--semantics", "owa"])
        assert code == 0
        out = capsys.readouterr().out
        assert "1, 4" in out and "columnar" in out

    def test_evaluate_boolean(self, tmp_path, capsys):
        db = tmp_path / "db.json"
        db.write_text(json.dumps({"D": [["?a", "?b"], ["?b", "?a"]]}))
        code = main(["evaluate", "exists x, y . D(x,y) & D(y,x)", str(db), "--semantics", "cwa"])
        assert code == 0
        assert "certain answer: True" in capsys.readouterr().out

    def test_evaluate_missing_file(self, capsys):
        code = main(["evaluate", "R(x)", "/nonexistent/db.json"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_query_reported(self, capsys):
        code = main(["fragments", "R(x"])
        assert code == 2

    def test_mode_flag(self, tmp_path, capsys):
        db = tmp_path / "db.json"
        db.write_text(json.dumps({"D": [["?a", "?b"]]}))
        code = main(
            ["evaluate", "exists x, y . D(x, y)", str(db), "--mode", "enumeration"]
        )
        assert code == 0
        assert "enumeration" in capsys.readouterr().out

    def test_ctable_mode(self, tmp_path, capsys):
        db = tmp_path / "db.json"
        db.write_text(json.dumps({"D": [["?a", "?b"], ["?b", "?a"]]}))
        code = main(
            ["evaluate", "exists x, y . D(x,y) & D(y,x)", str(db), "--mode", "ctable"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "certain answer: True" in out and "ctable" in out


class TestClusterCommands:
    """`repro cluster` against in-process served nodes (real sockets)."""

    def test_status_lists_primary_and_replicas(self, capsys):
        from repro.server import serve
        from repro.session import Database

        primary_db = Database({"R": [(1, 2)]})
        with serve(primary_db) as primary:
            primary_addr = f"{primary.address[0]}:{primary.address[1]}"
            replica_db = Database()
            with serve(replica_db, replicate_from=primary_addr) as replica:
                replica_addr = f"{replica.address[0]}:{replica.address[1]}"
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    if primary.service.feed.stats["replicas"]:
                        break
                    time.sleep(0.01)
                assert main(["cluster", "status", primary_addr]) == 0
                table = capsys.readouterr().out
                assert primary_addr in table and "primary" in table
                assert replica_addr in table and "replica" in table

                # --json from the replica's point of view finds the primary
                assert main(["cluster", "status", replica_addr, "--json"]) == 0
                report = json.loads(capsys.readouterr().out)
                roles = {row["node"]: row["role"] for row in report["rows"]}
                assert roles[primary_addr] == "primary"
                assert roles[replica_addr] == "replica"
            replica_db.close()
        primary_db.close()

    def test_promote_round_trip(self, capsys):
        from repro.server import serve
        from repro.session import Database

        primary_db = Database({"R": [(1, 2)]})
        with serve(primary_db) as primary:
            primary_addr = f"{primary.address[0]}:{primary.address[1]}"
            replica_db = Database()
            with serve(replica_db, replicate_from=primary_addr) as replica:
                replica_addr = f"{replica.address[0]}:{replica.address[1]}"
                assert main(["cluster", "promote", replica_addr]) == 0
                assert "promoted to primary" in capsys.readouterr().out
                # promoting a primary is a no-op, reported as such
                assert main(["cluster", "promote", replica_addr]) == 0
                assert "already a primary" in capsys.readouterr().out
            replica_db.close()
        primary_db.close()

    def test_status_unreachable_node_fails_cleanly(self, capsys):
        code = main(["cluster", "status", "127.0.0.1:9"])
        assert code == 6  # the typed "unreachable" exit code
        assert "unreachable" in capsys.readouterr().err
