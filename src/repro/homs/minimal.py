"""D-minimal homomorphisms, valuations and mappings (Section 10).

A homomorphism ``h`` defined on ``D`` is *D-minimal* if no proper
subinstance of ``h(D)`` is a homomorphic image of ``D``; equivalently no
other homomorphism ``h'`` has ``h'(D) ⊊ h(D)``.  The minimal-valuation
semantics ``[[·]]^min_CWA`` and ``⦇·⦈^min_CWA`` are built from these.

Section 10.2 extends minimality to arbitrary mappings via fix sets:
``h`` is D-minimal if no mapping ``g`` with ``fix(h,D) ⊆ fix(g,D)``
satisfies ``g(D) ⊊ h(D)``.  Both notions are provided.
"""

from __future__ import annotations

from typing import Hashable, Iterator, Mapping, Sequence

from repro.data.instance import Instance
from repro.homs.properties import fix_set
from repro.homs.search import has_homomorphism, iter_mappings

__all__ = [
    "is_d_minimal",
    "iter_minimal_valuations",
    "minimal_valuation_images",
    "some_minimal_valuation",
]

Assignment = Mapping[Hashable, Hashable]


def _beats(source: Instance, image: Instance, fix_constants: bool, pinned: dict) -> bool:
    """True iff some admissible ``g`` maps ``source`` into a *proper* subinstance.

    Any proper subinstance is contained in ``image`` minus one fact, so
    it suffices to test the maximal proper subinstances.
    """
    for name, row in image.facts():
        smaller = image.remove_fact(name, row)
        if has_homomorphism(source, smaller, fix_constants=fix_constants, pinned=pinned):
            return True
    return False


def is_d_minimal(
    source: Instance,
    mapping: Assignment,
    mode: str = "database",
) -> bool:
    """Is ``mapping`` a D-minimal map on ``source``?

    ``mode="database"``
        competitors are database homomorphisms (identity on all
        constants) — the notion used for D-minimal valuations.
    ``mode="mapping"``
        competitors are arbitrary mappings ``g`` with
        ``fix(mapping, source) ⊆ fix(g, source)`` (Section 10.2).
    """
    image = source.apply(mapping)
    if mode == "database":
        return not _beats(source, image, fix_constants=True, pinned={})
    if mode == "mapping":
        pinned = {c: c for c in fix_set(mapping, source)}
        return not _beats(source, image, fix_constants=False, pinned=pinned)
    raise ValueError(f"unknown minimality mode {mode!r}")


def iter_minimal_valuations(
    source: Instance,
    pool: Sequence[Hashable],
) -> Iterator[dict]:
    """All D-minimal valuations of ``source`` into the constant pool.

    Valuations assign pool constants to the nulls of ``source`` (and
    are the identity on its constants).  Yields only those whose image
    cannot be shrunk by another database homomorphism.

    D-minimality depends on the valuation only through its *image*
    ``v(source)``, and distinct valuations frequently collapse to the
    same image (any two that disagree only on interchangeable nulls),
    so the verdict is memoised per image for the whole sweep.
    """
    verdicts: dict[Instance, bool] = {}
    for valuation in iter_mappings(sorted(source.nulls(), key=lambda n: n.label), pool):
        image = source.apply(valuation)
        verdict = verdicts.get(image)
        if verdict is None:
            verdict = not _beats(source, image, fix_constants=True, pinned={})
            verdicts[image] = verdict
        if verdict:
            yield valuation


def minimal_valuation_images(source: Instance, pool: Sequence[Hashable]) -> set[Instance]:
    """The set ``{v(D) | v a D-minimal valuation into pool}``."""
    return {source.apply(v) for v in iter_minimal_valuations(source, pool)}


def some_minimal_valuation(source: Instance, pool: Sequence[Hashable]) -> dict | None:
    """One D-minimal valuation into ``pool``, or ``None`` if the pool is empty.

    Any valuation can be improved to a minimal one, so this returns a
    valuation whenever one exists at all.
    """
    for valuation in iter_minimal_valuations(source, pool):
        return valuation
    return None
