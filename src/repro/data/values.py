"""Values of incomplete databases: constants and marked nulls.

The paper (Section 2.1) works with two countably infinite, disjoint sets
of values: ``Const`` and ``Null``.  In this library a *null* is an
instance of :class:`Null` and a *constant* is any other hashable Python
value (strings and integers in practice).  Nulls are compared by their
label: two ``Null`` objects with the same label are the same null,
mirroring the "syntactic equality" used by naive evaluation
(``K1 = K1`` but ``K1 != K2`` and ``K1 != c`` for every constant ``c``).
"""

from __future__ import annotations

import itertools
import threading
from typing import Hashable, Iterable, Iterator

__all__ = [
    "Null",
    "NullFactory",
    "is_null",
    "is_const",
    "fresh_nulls",
    "constants_in",
    "nulls_in",
]


class Null:
    """A marked (labelled) null.

    Nulls compare equal iff their labels are equal, so a null can appear
    multiple times in a naive database and all its occurrences are
    linked.  The conventional rendering is ``⊥label``.
    """

    __slots__ = ("label",)

    def __init__(self, label: str = ""):
        if not isinstance(label, str):
            label = str(label)
        self.label = label

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Null) and other.label == self.label

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash(("repro.Null", self.label))

    def __repr__(self) -> str:
        return f"⊥{self.label}"

    def __lt__(self, other: object) -> bool:
        # A deterministic order among values makes instances printable
        # and test output stable.  Nulls sort after all constants.
        if isinstance(other, Null):
            return self.label < other.label
        return False

    def __gt__(self, other: object) -> bool:
        if isinstance(other, Null):
            return self.label > other.label
        return True


class NullFactory:
    """Generates fresh nulls with unique labels.

    A factory is the library's stand-in for the countably infinite set
    ``Null``: calling :meth:`fresh` never returns the same null twice.

    >>> f = NullFactory("x")
    >>> f.fresh()
    ⊥x1
    >>> f.fresh()
    ⊥x2
    """

    def __init__(self, prefix: str = "n"):
        self._prefix = prefix
        self._counter = itertools.count(1)
        self._lock = threading.Lock()

    def fresh(self) -> Null:
        """Return a null that this factory has never returned before."""
        with self._lock:
            index = next(self._counter)
        return Null(f"{self._prefix}{index}")

    def fresh_many(self, count: int) -> list[Null]:
        """Return ``count`` pairwise distinct fresh nulls."""
        return [self.fresh() for _ in range(count)]


def is_null(value: Hashable) -> bool:
    """True iff ``value`` is a marked null."""
    return isinstance(value, Null)


def is_const(value: Hashable) -> bool:
    """True iff ``value`` is a constant (i.e. not a null)."""
    return not isinstance(value, Null)


def fresh_nulls(count: int, prefix: str = "n") -> list[Null]:
    """Convenience: ``count`` distinct nulls labelled ``prefix1..``."""
    return NullFactory(prefix).fresh_many(count)


def constants_in(values: Iterable[Hashable]) -> Iterator[Hashable]:
    """Yield the constants among ``values`` (order preserved)."""
    return (v for v in values if not isinstance(v, Null))


def nulls_in(values: Iterable[Hashable]) -> Iterator[Null]:
    """Yield the nulls among ``values`` (order preserved)."""
    return (v for v in values if isinstance(v, Null))


def sort_key(value: Hashable) -> tuple:
    """A total-order key over mixed constants and nulls.

    Constants sort before nulls; within each group, ordering is by
    ``(type name, repr)`` so heterogeneous constants compare safely.
    """
    if isinstance(value, Null):
        return (1, "Null", value.label)
    return (0, type(value).__name__, repr(value))
