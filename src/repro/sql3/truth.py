"""Kleene three-valued logic: SQL's truth values.

SQL evaluates comparisons involving ``NULL`` to *unknown*, and composes
truth values by Kleene's strong three-valued connectives.  The paper's
introduction singles out the resulting behaviour (the ``NOT IN``
paradox) as the motivating gap between practice and certain-answer
semantics; this module makes SQL's side of the comparison executable.
"""

from __future__ import annotations

from enum import Enum

__all__ = ["Truth", "t_not", "t_and", "t_or", "t_implies"]


class Truth(Enum):
    """A Kleene truth value, ordered ``FALSE < UNKNOWN < TRUE``."""

    FALSE = 0
    UNKNOWN = 1
    TRUE = 2

    def __bool__(self) -> bool:
        # SQL semantics: only TRUE selects a row.
        return self is Truth.TRUE

    def __repr__(self) -> str:
        return self.name.lower()

    @classmethod
    def of(cls, value: bool) -> "Truth":
        """Lift a Python boolean into the two-valued sublattice."""
        return cls.TRUE if value else cls.FALSE


def t_not(value: Truth) -> Truth:
    """Kleene negation: swaps TRUE and FALSE, fixes UNKNOWN."""
    if value is Truth.UNKNOWN:
        return Truth.UNKNOWN
    return Truth.FALSE if value is Truth.TRUE else Truth.TRUE


def t_and(*values: Truth) -> Truth:
    """Kleene conjunction: the minimum in FALSE < UNKNOWN < TRUE."""
    return min(values, key=lambda v: v.value, default=Truth.TRUE)


def t_or(*values: Truth) -> Truth:
    """Kleene disjunction: the maximum in FALSE < UNKNOWN < TRUE."""
    return max(values, key=lambda v: v.value, default=Truth.FALSE)


def t_implies(left: Truth, right: Truth) -> Truth:
    """Kleene implication ``¬left ∨ right``."""
    return t_or(t_not(left), right)
