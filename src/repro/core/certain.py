"""Certain answers by bounded enumeration of ``[[D]]``.

``certain(Q, D) = ⋂ { Q(E) | E ∈ [[D]] }`` (Section 2.4).  ``[[D]]`` is
infinite, so the oracle enumerates its members over a finite constant
pool.  For every CWA-flavoured semantics this is *exact* for generic
queries when the pool contains ``Const(D)``, the query's constants, and
``|Null(D)| + 1`` fresh constants: any valuation factors through a pool
valuation composed with an isomorphism fixing those constants, and
generic queries cannot distinguish the two (the saturation argument of
Sections 3.1/8; the ``+1`` spare fresh constant rules fresh values out
of the intersection).

For OWA the extensions are unbounded; ``extra_facts`` truncates them.
The computed set then *over-approximates* the certain answers (we
intersect over fewer instances), so:

* a naive answer **outside** the computed set genuinely refutes
  soundness of naive evaluation, and
* computed ⊆ naive genuinely establishes ``certain ⊆ naive``.

This is exactly the direction needed to validate Figure 1 empirically.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Hashable, Iterable, Sequence

from repro.data.instance import Instance
from repro.data.schema import Schema
from repro.data.values import sort_key
from repro.logic.ast import RelAtom
from repro.logic.eval import evaluate
from repro.logic.queries import Query
from repro.logic.transform import subformulas
from repro.semantics.base import Semantics

__all__ = ["default_pool", "query_schema", "certain_answers", "certain_holds"]


def default_pool(
    instance: Instance,
    query: Query | None = None,
    n_fresh: int | None = None,
    extra_constants: Iterable[Hashable] = (),
) -> list[Hashable]:
    """The constant pool making bounded enumeration exact (see module doc).

    The pool is ordered deterministically and *type-stably* — constants
    are grouped by type name before value (via
    :func:`repro.data.values.sort_key`), never by raw ``repr``, so
    instances mixing ``int`` and ``str`` cells always enumerate in the
    same order regardless of construction order, and limit truncation
    is reproducible.  ``extra_constants`` widens the pool (e.g. with
    the constants of a whole query batch) without changing the scheme.
    """
    base: set[Hashable] = set(instance.constants())
    if query is not None:
        base |= set(query.constants())
    base.update(extra_constants)
    if n_fresh is None:
        n_fresh = len(instance.nulls()) + 1
    fresh: list[str] = []
    index = 1
    while len(fresh) < n_fresh:
        candidate = f"_f{index}"
        if candidate not in base:
            fresh.append(candidate)
        index += 1
    return sorted(base, key=sort_key) + fresh


@lru_cache(maxsize=1024)
def query_schema(query: Query) -> Schema:
    """The schema mentioned by the query's relational atoms.

    Memoised: queries are immutable values and the oracle consults the
    schema on every call, so repeated evaluation of a prepared query
    walks the formula once, not once per evaluation.
    """
    arities: dict[str, int] = {}
    for sub in subformulas(query.formula):
        if isinstance(sub, RelAtom):
            existing = arities.setdefault(sub.name, len(sub.terms))
            if existing != len(sub.terms):
                raise ValueError(
                    f"relation {sub.name!r} used with arities {existing} and {len(sub.terms)}"
                )
    return Schema(arities)


def certain_answers(
    query: Query,
    instance: Instance,
    semantics: Semantics,
    pool: Sequence[Hashable] | None = None,
    extra_facts: int | None = None,
    limit: int = 500_000,
) -> frozenset[tuple[Hashable, ...]]:
    """``⋂ { Q(E) : E ∈ [[instance]] }`` over the (defaulted) pool.

    Boolean queries yield ``{()}`` for certainly-true and ``frozenset()``
    otherwise, matching :meth:`Query.eval_raw`.
    """
    if pool is None:
        pool = default_pool(instance, query)
    schema = instance.schema().union(query_schema(query))
    result: frozenset[tuple[Hashable, ...]] | None = None
    for complete in semantics.expand(
        instance, list(pool), schema=schema, extra_facts=extra_facts, limit=limit
    ):
        if result is None:
            # First member: compute the full answer set once.
            result = query.eval_raw(complete)
        elif query.is_boolean:
            if not evaluate(query.formula, complete):
                result = frozenset()
        else:
            # Only surviving candidates can stay in the intersection, so
            # re-check them pointwise instead of re-enumerating Q(E).
            adom = complete.adom()
            result = frozenset(
                row
                for row in result
                if all(v in adom for v in row)
                and evaluate(query.formula, complete, dict(zip(query.answer_vars, row)))
            )
        if not result:
            break
    if result is None:
        raise RuntimeError(
            f"[[D]] came out empty over the pool — {semantics!r} violated totality"
        )
    return result


def certain_holds(
    query: Query,
    instance: Instance,
    semantics: Semantics,
    pool: Sequence[Hashable] | None = None,
    extra_facts: int | None = None,
    limit: int = 500_000,
) -> bool:
    """Certain truth of a Boolean query."""
    if not query.is_boolean:
        raise ValueError(f"query {query.name!r} is {query.arity}-ary; use certain_answers()")
    return bool(
        certain_answers(query, instance, semantics, pool, extra_facts, limit)
    )
