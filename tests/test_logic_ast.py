"""Unit tests for repro.logic.ast: formula construction and invariants."""

import pytest

from repro.logic.ast import (
    FALSE,
    TRUE,
    And,
    EqAtom,
    Exists,
    Forall,
    Implies,
    Not,
    Or,
    RelAtom,
    Var,
)


class TestTerms:
    def test_var_identity(self):
        assert Var("x") == Var("x")
        assert Var("x") != Var("y")
        assert len({Var("x"), Var("x")}) == 1

    def test_var_repr(self):
        assert repr(Var("abc")) == "abc"


class TestAtoms:
    def test_rel_atom_terms_coerced_to_tuple(self):
        atom = RelAtom("R", [Var("x"), 1])
        assert atom.terms == (Var("x"), 1)

    def test_rel_atom_needs_terms(self):
        with pytest.raises(ValueError):
            RelAtom("R", ())

    def test_atom_repr(self):
        assert repr(RelAtom("R", (Var("x"), 5))) == "R(x, 5)"
        assert repr(EqAtom(Var("x"), Var("y"))) == "x = y"


class TestConnectives:
    def test_and_or_arity_validation(self):
        with pytest.raises(ValueError):
            And(())
        with pytest.raises(ValueError):
            Or(())

    def test_hashable_and_equal(self):
        a = And((TRUE, FALSE))
        b = And((TRUE, FALSE))
        assert a == b and hash(a) == hash(b)

    def test_operator_sugar(self):
        r = RelAtom("R", (Var("x"),))
        s = RelAtom("S", (Var("x"),))
        assert (r & s) == And((r, s))
        assert (r | s) == Or((r, s))
        assert (~r) == Not(r)
        assert (r >> s) == Implies(r, s)


class TestQuantifiers:
    def test_vars_must_be_var_objects(self):
        with pytest.raises(TypeError):
            Exists(("x",), TRUE)
        with pytest.raises(TypeError):
            Forall(("x",), TRUE)

    def test_need_at_least_one_var(self):
        with pytest.raises(ValueError):
            Exists((), TRUE)

    def test_repr_lists_vars(self):
        phi = Forall((Var("x"), Var("y")), TRUE)
        assert repr(phi).startswith("∀x, y")

    def test_nested_formulas_equal_structurally(self):
        a = Exists((Var("x"),), RelAtom("R", (Var("x"),)))
        b = Exists((Var("x"),), RelAtom("R", (Var("x"),)))
        assert a == b


def test_truth_constants_singletons_compare():
    assert TRUE == TRUE
    assert FALSE == FALSE
    assert TRUE != FALSE
    assert repr(TRUE) == "true"
