"""The JSON wire format for instances, rows and cells.

One codec shared by the CLI (instance files) and the JSON-lines server
(:mod:`repro.server`).  A cell is a JSON scalar; a string starting with
``"?"`` denotes a marked null (``"?x"`` is the null ⊥x, repeatable
across facts); a doubled marker escapes a literal leading question mark
(``"??x"`` is the constant ``"?x"``)::

    {"R": [[1, "?x"], ["?y", "?z"]], "S": [["?x", 4]]}

Decoding and encoding round-trip: ``decode_cell(encode_cell(v)) == v``
for every representable value, and values that are *not* representable
(non-scalar cells, nulls whose label itself starts with ``?``) raise
:class:`ValueError` instead of being silently stringified.
"""

from __future__ import annotations

import json
from typing import Hashable, Iterable

from repro.data.instance import Instance
from repro.data.values import Null

__all__ = [
    "decode_cell",
    "encode_cell",
    "decode_row",
    "encode_row",
    "instance_from_json",
    "instance_to_json",
]


def decode_cell(cell) -> Hashable:
    """One JSON scalar → a constant or a marked null."""
    if isinstance(cell, str) and cell.startswith("?"):
        if cell.startswith("??"):
            return cell[1:]  # escaped literal: "??x" is the constant "?x"
        return Null(cell[1:])
    if isinstance(cell, (list, dict)):
        raise ValueError(f"{cell!r} is not a valid cell (must be a scalar)")
    return cell


def encode_cell(relation: str, value: Hashable):
    """One constant or null → its JSON scalar (see module doc)."""
    if isinstance(value, Null):
        if value.label.startswith("?"):
            raise ValueError(
                f"relation {relation!r}: null label {value.label!r} starts with "
                f"'?' and cannot be represented in the JSON format"
            )
        return "?" + value.label
    if isinstance(value, str):
        return "?" + value if value.startswith("?") else value
    if value is None or isinstance(value, (bool, int, float)):
        return value
    raise ValueError(
        f"relation {relation!r}: cell {value!r} is not representable as a JSON scalar"
    )


def decode_row(relation: str, row) -> tuple[Hashable, ...]:
    """One JSON array → a fact tuple (with context in error messages)."""
    if not isinstance(row, list):
        raise ValueError(
            f"relation {relation!r}: row {row!r} is not a list — each row "
            f"must be a JSON array of cells"
        )
    try:
        return tuple(decode_cell(c) for c in row)
    except ValueError as err:
        raise ValueError(f"relation {relation!r}, row {row!r}: {err}") from None


def encode_row(relation: str, row: Iterable[Hashable]) -> list:
    """One fact tuple → its JSON array."""
    return [encode_cell(relation, v) for v in row]


def instance_from_json(text: str) -> Instance:
    """Parse the JSON instance format (see module docstring)."""
    data = json.loads(text)
    if not isinstance(data, dict):
        raise ValueError("instance JSON must be an object of relation → rows")
    rels: dict[str, list[tuple]] = {}
    for name, rows in data.items():
        if not isinstance(rows, list):
            raise ValueError(
                f"relation {name!r}: expected a list of rows, got {rows!r}"
            )
        rels[name] = [decode_row(name, row) for row in rows]
    return Instance(rels)


def instance_to_json(instance: Instance) -> str:
    """Render an instance back into the JSON format (round-trip safe).

    String constants beginning with ``?`` are escaped by doubling the
    marker (``"?x"`` → ``"??x"``) so decoding cannot mistake them for
    nulls; cells that are not JSON scalars raise :class:`ValueError`
    instead of being silently stringified.
    """
    data = {
        name: [
            encode_row(name, row)
            for row in sorted(instance.tuples(name), key=repr)
        ]
        for name in instance.relations
    }
    return json.dumps(data)
