"""Parallel vs serial certain-answer oracle: differential + unit tests.

The tentpole contract: ``certain_answers(..., workers=k)`` is bit-for-bit
equal to the serial oracle for every semantics and worker count, sharding
only happens when the cost model approves, a shard whose intersection
empties cancels the enumeration, and the execution stats surface all of
it.  The planner-facing pieces (:func:`choose_workers`,
``CostHints.workers``, EXPLAIN notes) are pinned here too.
"""

import random
from importlib import import_module

import pytest

from repro.core import certain_answers, evaluate
from repro.core.certain import _canonical_valuations, default_pool
from repro.core.parallel import shard_prefixes
from repro.data.generate import random_instance
from repro.data.instance import Instance
from repro.data.schema import Schema
from repro.data.values import Null
from repro.logic.parser import parse
from repro.logic.queries import Query
from repro.semantics import get_semantics
from repro.session import Database

_plan = import_module("repro.core.plan")

SCHEMA = Schema({"R": 2, "S": 1})
X, Y = Null("x"), Null("y")
JOIN = Query(parse("exists z (R(x, z) & R(z, y))"), ("x", "y"))

ALL_SEMANTICS = ("owa", "wcwa", "cwa", "pcwa", "mincwa", "minpcwa")


def _kwargs(key):
    if key == "owa":
        return {"extra_facts": 1}
    if key in ("wcwa", "pcwa", "minpcwa"):
        return {"extra_facts": 2}
    return {}


@pytest.fixture
def force_parallel(monkeypatch):
    """Drop the cost-model threshold so small suites exercise sharding."""
    monkeypatch.setattr(_plan, "PARALLEL_MIN_WORLDS", 1)


class TestChooseWorkers:
    def test_serial_for_no_request(self):
        assert _plan.choose_workers(None, 10**9) == 0
        assert _plan.choose_workers(0, 10**9) == 0
        assert _plan.choose_workers(1, 10**9) == 0

    def test_small_pools_auto_route_serial(self):
        assert _plan.choose_workers(4, _plan.PARALLEL_MIN_WORLDS - 1) == 0

    def test_large_pools_keep_request(self):
        assert _plan.choose_workers(4, _plan.PARALLEL_MIN_WORLDS) == 4
        # the capped (-1 = huge) bound counts as large
        assert _plan.choose_workers(4, -1) == 4

    def test_worker_cap(self):
        assert _plan.choose_workers(10**6, -1) == _plan.MAX_WORKERS


class TestShardPrefixes:
    def test_prefixes_partition_the_space(self):
        base, fresh = (1, 2), ("f1", "f2", "f3")
        full = set(_canonical_valuations(3, base, fresh))
        prefixes = shard_prefixes(3, base, fresh, target=4)
        assert len(prefixes) >= 4
        sharded = set()
        for prefix in prefixes:
            part = set(_canonical_valuations(3, base, fresh, prefix=prefix))
            assert sharded.isdisjoint(part)
            sharded |= part
        assert sharded == full

    def test_shallow_space_stops_at_full_depth(self):
        prefixes = shard_prefixes(1, (1,), ("f1",), target=64)
        assert prefixes == [(1,), ("f1",)]


class TestParallelDifferential:
    @pytest.mark.parametrize("key", ALL_SEMANTICS)
    def test_workers_do_not_change_answers(self, key, force_parallel):
        sem = get_semantics(key)
        rng = random.Random(0xABC + hash(key) % 97)
        instance = random_instance(
            SCHEMA, rng, n_facts=4, constants=(1, 2), n_nulls=2,
            null_probability=0.7,
        )
        kw = _kwargs(key)
        serial = certain_answers(JOIN, instance, sem, **kw)
        parallel = certain_answers(JOIN, instance, sem, workers=2, **kw)
        assert serial == parallel

    @pytest.mark.parametrize("workers", (1, 2, 4))
    def test_worker_counts_agree_on_cwa(self, workers, force_parallel):
        sem = get_semantics("cwa")
        rng = random.Random(31 + workers)
        instance = random_instance(
            SCHEMA, rng, n_facts=6, constants=(1, 2, 3), n_nulls=3,
            null_probability=0.7,
        )
        stats = {}
        serial = certain_answers(JOIN, instance, sem)
        sharded = certain_answers(JOIN, instance, sem, workers=workers, stats_out=stats)
        assert serial == sharded
        if workers == 1:
            # one worker is the serial path by the cost model
            assert stats["mode"] in ("serial", "seed")
        elif stats["mode"] == "parallel":
            assert stats["workers"] >= 1
            assert stats["worlds"] > 0

    def test_boolean_queries(self, force_parallel):
        q = Query.boolean(parse("exists v (exists w (R(v, w)))"))
        instance = Instance({"R": [(X, Y)], "S": [(X,)]})
        sem = get_semantics("cwa")
        assert (
            certain_answers(q, instance, sem, workers=2)
            == certain_answers(q, instance, sem)
            == frozenset({()})
        )


class TestCancellation:
    def test_empty_intersection_cancels(self, force_parallel):
        # ¬∃v R(v,v) is certainly false on {R(⊥x,⊥y)}: the collapsing
        # seed world already satisfies ∃v R(v,v), so the oracle must
        # stop after the seeds instead of enumerating every world
        q = Query.boolean(parse("!(exists v (R(v, v)))"))
        instance = Instance({"R": [(X, Y)]})
        sem = get_semantics("cwa")
        stats = {}
        got = certain_answers(q, instance, sem, workers=4, stats_out=stats)
        assert got == frozenset()
        pool = default_pool(instance, q)
        assert stats["worlds"] < len(pool) ** 2
        assert stats["mode"] in ("seed", "parallel")

    def test_shard_level_cancellation_reported(self, force_parallel):
        # certain answers empty, but not detectable from the seed worlds
        # alone for every instance — when sharding runs, a cancelling
        # shard must be flagged
        q = Query(parse("R(x, x)"), ("x",))
        instance = Instance({"R": [(X, Y), (Y, 1)], "S": [(X,)]})
        sem = get_semantics("cwa")
        stats = {}
        got = certain_answers(q, instance, sem, workers=2, stats_out=stats)
        assert got == certain_answers(q, instance, sem)
        if stats["mode"] == "parallel":
            assert any(s["empty"] for s in stats["per_shard"]) == stats["cancelled"]


class TestOracleStats:
    def test_stats_surface_in_eval_result(self, force_parallel):
        instance = Instance({"R": [(X, Y), (1, X)], "S": [(Y,)]})
        result = evaluate(JOIN, instance, "cwa", mode="enumeration", workers=2)
        oracle = result.stats["oracle"]
        assert oracle["worlds"] >= 1
        assert oracle["mode"] in ("seed", "serial", "parallel")
        assert "relevant_nulls" in oracle and "total_nulls" in oracle

    def test_relevance_restriction_reported(self):
        # S-nulls are invisible to a plan that only reads R
        instance = Instance({"R": [(X, 1)], "S": [(Y,), (Null("z"),)]})
        stats = {}
        certain_answers(JOIN, instance, get_semantics("cwa"), stats_out=stats)
        assert stats["total_nulls"] == 3
        assert stats["relevant_nulls"] == 1
        assert stats["restricted"] is True

    def test_relevance_restriction_is_sound(self):
        # reference: enumerate full worlds as Instances and intersect
        from repro.core.certain import query_schema
        from repro.logic.compile import compiled_query

        sem = get_semantics("cwa")
        rng = random.Random(0xDEAD)
        for _ in range(20):
            instance = random_instance(
                SCHEMA, rng, n_facts=4, constants=(1, 2), n_nulls=3,
                null_probability=0.8,
            )
            pool = default_pool(instance, JOIN)
            cq = compiled_query(JOIN)
            schema = instance.schema().union(query_schema(JOIN))
            reference = None
            for world in sem.expand(instance, list(pool), schema=schema):
                rows = cq.answers(world)
                reference = rows if reference is None else reference & rows
            assert certain_answers(JOIN, instance, sem) == reference


class TestWorldSpecPayload:
    def test_spec_round_trips_through_pickle(self):
        import pickle

        from repro.core.certain import _build_spec
        from repro.logic.compile import compiled_query

        instance = Instance({"R": [(X, Y), (1, 2)], "S": [(X,)]})
        pool = default_pool(instance, JOIN)
        sem = get_semantics("cwa")
        fresh = tuple(v for v in pool if v not in instance.constants())
        spec, fresh_set, info = _build_spec(
            compiled_query(JOIN), instance, sem, pool, fresh, 500_000
        )
        clone = pickle.loads(pickle.dumps(spec))
        vals = list(_canonical_valuations(spec.n_slots, spec.base_choices, spec.fresh_tail))
        got, worlds, _ = clone.run(iter(vals))
        want, worlds2, _ = spec.run(iter(vals))
        assert got == want and worlds == worlds2


class TestSessionAndPlanIntegration:
    def test_database_workers_parameter(self, force_parallel):
        instance = Instance({"R": [(X, Y), (Y, 1)], "S": [(X,)]})
        serial_db = Database(instance, semantics="cwa")
        parallel_db = Database(instance, semantics="cwa", workers=2)
        q = "exists z (R(x, z) & R(z, y))"
        assert (
            serial_db.evaluate(q, mode="enumeration").answers
            == parallel_db.evaluate(q, mode="enumeration").answers
        )

    def test_workers_change_invalidates_plans(self):
        db = Database({"R": [(1, X)]}, semantics="cwa")
        gen = db.generation
        db.workers = 8
        assert db.generation == gen + 1
        db.workers = 8  # no-op
        assert db.generation == gen + 1

    def test_plan_records_sharding(self):
        instance = Instance(
            {"R": [(Null(f"n{i}"), Null(f"n{i+1}")) for i in range(8)]}
        )
        db = Database(instance, semantics="cwa", workers=4)
        plan = db.explain(JOIN, mode="enumeration")
        assert plan.cost.workers == 4
        assert plan.to_dict()["cost"]["workers"] == 4

    def test_plan_notes_serial_fallback(self):
        db = Database({"R": [(1, X)]}, semantics="cwa", workers=4)
        plan = db.explain(JOIN, mode="enumeration")
        assert plan.cost.workers == 0
        assert any("serial" in note for note in plan.notes)

    def test_plan_notes_non_substitution_semantics(self):
        db = Database({"R": [(1, X)]}, semantics="owa", workers=4)
        plan = db.explain(JOIN, mode="enumeration")
        assert plan.cost.workers == 0
        assert any("substitution-only" in note for note in plan.notes)
