"""Conjunctive queries and unions of conjunctive queries as first-class data.

UCQs (= the ``∃Pos`` fragment, Fact 1) are the class for which naive
evaluation works under *every* semantics in the paper, so they deserve a
direct representation with:

* join-style evaluation by binding search (no formula interpreter),
* translation to/from the logic layer,
* the canonical ("frozen") database, Chandra–Merlin containment via
  homomorphisms, and minimisation via cores — tying the CQ machinery to
  the same homomorphism engine that powers the semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterator

from repro.data.instance import Instance
from repro.data.values import Null
from repro.homs.core import core as core_of
from repro.homs.search import find_homomorphism
from repro.logic.ast import And, EqAtom, Exists, Formula, Or, RelAtom, Var

__all__ = ["CQ", "UCQ"]

Term = Hashable  # Var for variables, anything else a constant


@dataclass(frozen=True)
class CQ:
    """A conjunctive query ``head(x̄) :- body``.

    ``head`` lists answer terms (usually variables); ``body`` is a tuple
    of ``(relation, terms)`` atoms.  Boolean CQs have an empty head.
    """

    head: tuple[Term, ...]
    body: tuple[tuple[str, tuple[Term, ...]], ...]

    def __post_init__(self):
        body_vars = {t for _, terms in self.body for t in terms if isinstance(t, Var)}
        head_vars = {t for t in self.head if isinstance(t, Var)}
        if not head_vars <= body_vars:
            loose = ", ".join(sorted(v.name for v in head_vars - body_vars))
            raise ValueError(f"head variables must occur in the body (unsafe: {loose})")
        if not self.body:
            raise ValueError("a CQ needs at least one body atom")

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------

    def iter_answers(self, instance: Instance) -> Iterator[tuple[Hashable, ...]]:
        """All head images under bindings satisfying the body (naive equality)."""
        atoms = sorted(self.body, key=lambda a: len(instance.tuples(a[0])))

        def extend(index: int, binding: dict[Var, Hashable]) -> Iterator[dict]:
            if index == len(atoms):
                yield binding
                return
            name, terms = atoms[index]
            for row in instance.tuples(name):
                extension: dict[Var, Hashable] = {}
                ok = True
                for term, value in zip(terms, row):
                    if isinstance(term, Var):
                        bound = binding.get(term, extension.get(term))
                        if bound is None:
                            extension[term] = value
                        elif bound != value:
                            ok = False
                            break
                    elif term != value:
                        ok = False
                        break
                if not ok:
                    continue
                binding.update(extension)
                yield from extend(index + 1, binding)
                for key in extension:
                    del binding[key]

        seen: set[tuple] = set()
        for binding in extend(0, {}):
            row = tuple(binding[t] if isinstance(t, Var) else t for t in self.head)
            if row not in seen:
                seen.add(row)
                yield row

    def answers(self, instance: Instance) -> frozenset[tuple[Hashable, ...]]:
        """The evaluated answer set (stage one of naive evaluation)."""
        return frozenset(self.iter_answers(instance))

    def holds(self, instance: Instance) -> bool:
        """Boolean reading: does some binding satisfy the body?"""
        for _ in self.iter_answers(instance):
            return True
        return False

    # ------------------------------------------------------------------
    # logic translation
    # ------------------------------------------------------------------

    def to_formula(self) -> Formula:
        """The ``∃Pos`` formula: existentially close the non-head variables."""
        conjuncts: tuple[Formula, ...] = tuple(
            RelAtom(name, terms) for name, terms in self.body
        )
        matrix = conjuncts[0] if len(conjuncts) == 1 else And(conjuncts)
        bound = sorted(
            {t for _, terms in self.body for t in terms if isinstance(t, Var)}
            - {t for t in self.head if isinstance(t, Var)},
            key=lambda v: v.name,
        )
        return Exists(tuple(bound), matrix) if bound else matrix

    @classmethod
    def from_formula(cls, formula: Formula, head: tuple[Term, ...]) -> "CQ":
        """Parse a purely conjunctive ``∃Pos`` formula into a CQ.

        Accepts nested ``Exists``/``And`` over relational atoms (no
        disjunction — use :class:`UCQ` for those, no equality atoms).
        """
        atoms: list[tuple[str, tuple[Term, ...]]] = []

        def walk(phi: Formula) -> None:
            if isinstance(phi, Exists):
                walk(phi.sub)
            elif isinstance(phi, And):
                for sub in phi.subs:
                    walk(sub)
            elif isinstance(phi, RelAtom):
                atoms.append((phi.name, phi.terms))
            elif isinstance(phi, EqAtom):
                raise ValueError("equality atoms are not supported in CQ.from_formula")
            else:
                raise ValueError(f"not a conjunctive formula: {phi!r}")

        walk(formula)
        return cls(tuple(head), tuple(atoms))

    # ------------------------------------------------------------------
    # canonical database, containment, minimisation
    # ------------------------------------------------------------------

    def canonical_instance(self) -> tuple[Instance, dict[Var, Null]]:
        """The frozen body: variables become nulls, constants stay.

        Returns the instance and the variable → null mapping, the basis
        of Chandra–Merlin containment and of CQ minimisation.
        """
        freeze = {
            t: Null(f"v_{t.name}")
            for _, terms in self.body
            for t in terms
            if isinstance(t, Var)
        }
        rels: dict[str, set[tuple]] = {}
        for name, terms in self.body:
            row = tuple(freeze[t] if isinstance(t, Var) else t for t in terms)
            rels.setdefault(name, set()).add(row)
        return Instance(rels), freeze

    def contained_in(self, other: "CQ") -> bool:
        """Chandra–Merlin: ``self ⊆ other`` iff a homomorphism maps
        ``other``'s frozen body to ``self``'s, preserving the head."""
        if len(self.head) != len(other.head):
            raise ValueError("containment needs queries of equal arity")
        mine, my_freeze = self.canonical_instance()
        theirs, their_freeze = other.canonical_instance()
        pinned = {}
        for mine_term, their_term in zip(self.head, other.head):
            their_value = their_freeze.get(their_term, their_term)
            my_value = my_freeze.get(mine_term, mine_term)
            if their_value in pinned and pinned[their_value] != my_value:
                return False
            pinned[their_value] = my_value
        hom = find_homomorphism(theirs, mine, fix_constants=True, pinned=pinned)
        return hom is not None

    def equivalent_to(self, other: "CQ") -> bool:
        """Mutual containment."""
        return self.contained_in(other) and other.contained_in(self)

    def minimize(self) -> "CQ":
        """The classical CQ minimisation: the core of the frozen body.

        Head variables are frozen as *distinct fresh constants* (so
        database homomorphisms, which fix constants, cannot collapse or
        move them), non-head variables as nulls; the core of that
        instance read back is the minimal equivalent CQ.
        """
        head_vars = {t for t in self.head if isinstance(t, Var)}
        freeze: dict[Var, Hashable] = {}
        for _, terms in self.body:
            for t in terms:
                if isinstance(t, Var) and t not in freeze:
                    freeze[t] = f"__hv_{t.name}" if t in head_vars else Null(f"v_{t.name}")
        rels: dict[str, set[tuple]] = {}
        for name, terms in self.body:
            row = tuple(freeze[t] if isinstance(t, Var) else t for t in terms)
            rels.setdefault(name, set()).add(row)
        reduced = core_of(Instance(rels), fix_constants=True)
        unfreeze = {value: var for var, value in freeze.items()}
        body = tuple(
            (name, tuple(unfreeze.get(v, v) for v in row))
            for name, row in reduced.facts()
        )
        return CQ(self.head, body)


@dataclass(frozen=True)
class UCQ:
    """A union of conjunctive queries (the ``∃Pos`` class, as data)."""

    disjuncts: tuple[CQ, ...]

    def __post_init__(self):
        if not self.disjuncts:
            raise ValueError("a UCQ needs at least one disjunct")
        arities = {len(cq.head) for cq in self.disjuncts}
        if len(arities) > 1:
            raise ValueError(f"disjuncts have mixed arities {sorted(arities)}")

    def answers(self, instance: Instance) -> frozenset[tuple[Hashable, ...]]:
        out: frozenset[tuple[Hashable, ...]] = frozenset()
        for cq in self.disjuncts:
            out |= cq.answers(instance)
        return out

    def holds(self, instance: Instance) -> bool:
        return any(cq.holds(instance) for cq in self.disjuncts)

    def to_formula(self) -> Formula:
        parts = tuple(cq.to_formula() for cq in self.disjuncts)
        return parts[0] if len(parts) == 1 else Or(parts)

    def contained_in(self, other: "UCQ") -> bool:
        """UCQ containment: every disjunct contained in some disjunct."""
        return all(
            any(mine.contained_in(theirs) for theirs in other.disjuncts)
            for mine in self.disjuncts
        )
