"""Instance generators: random workloads and the paper's worked examples.

The benchmark harness validates the paper's theorems over corpora of
random incomplete instances; this module produces them.  It also builds
the concrete instances used in the paper's examples and counterexamples
so that tests and benches can refer to them by name.
"""

from __future__ import annotations

import random
from typing import Hashable, Sequence

from repro.data.instance import Instance
from repro.data.schema import Schema
from repro.data.values import Null, NullFactory

__all__ = [
    "random_instance",
    "random_codd_instance",
    "random_complete_instance",
    "cycle",
    "path",
    "clique",
    "disjoint_union",
    "intro_example",
    "d0_example",
    "sql_paradox_example",
    "minimal_4ary_example",
    "cores_graph_example",
]


# ----------------------------------------------------------------------
# random generation
# ----------------------------------------------------------------------

def random_instance(
    schema: Schema,
    rng: random.Random,
    n_facts: int = 6,
    constants: Sequence[Hashable] = (1, 2, 3),
    n_nulls: int = 3,
    null_probability: float = 0.4,
) -> Instance:
    """A random naive database over ``schema``.

    Each position of each fact is independently a null (drawn from a
    pool of ``n_nulls`` shared nulls, so nulls may repeat) with
    probability ``null_probability``, and otherwise a constant from
    ``constants``.
    """
    pool = [Null(f"g{i}") for i in range(1, n_nulls + 1)]
    rels: dict[str, set[tuple]] = {}
    names = list(schema.relations)
    for _ in range(n_facts):
        name = rng.choice(names)
        row = tuple(
            rng.choice(pool)
            if (pool and rng.random() < null_probability)
            else rng.choice(list(constants))
            for _ in range(schema.arity(name))
        )
        rels.setdefault(name, set()).add(row)
    return Instance(rels)


def random_codd_instance(
    schema: Schema,
    rng: random.Random,
    n_facts: int = 6,
    constants: Sequence[Hashable] = (1, 2, 3),
    null_probability: float = 0.4,
) -> Instance:
    """A random Codd database: every null occurrence is fresh."""
    factory = NullFactory("c")
    rels: dict[str, set[tuple]] = {}
    names = list(schema.relations)
    for _ in range(n_facts):
        name = rng.choice(names)
        row = tuple(
            factory.fresh() if rng.random() < null_probability else rng.choice(list(constants))
            for _ in range(schema.arity(name))
        )
        rels.setdefault(name, set()).add(row)
    return Instance(rels)


def random_complete_instance(
    schema: Schema,
    rng: random.Random,
    n_facts: int = 6,
    constants: Sequence[Hashable] = (1, 2, 3, 4),
) -> Instance:
    """A random complete instance (no nulls)."""
    return random_instance(
        schema, rng, n_facts=n_facts, constants=constants, n_nulls=0, null_probability=0.0
    )


# ----------------------------------------------------------------------
# graphs (used heavily by Section 10's core examples)
# ----------------------------------------------------------------------

def cycle(n: int, values: Sequence[Hashable] | None = None, relation: str = "E") -> Instance:
    """The directed cycle ``C_n``.

    ``values`` supplies the node names (defaults to distinct nulls, the
    paper's convention for "pure graph" examples).
    """
    if n < 1:
        raise ValueError("a cycle needs at least one node")
    nodes = list(values) if values is not None else [Null(f"v{i}") for i in range(n)]
    if len(nodes) != n:
        raise ValueError(f"expected {n} node values, got {len(nodes)}")
    edges = [(nodes[i], nodes[(i + 1) % n]) for i in range(n)]
    return Instance({relation: edges})


def path(n: int, values: Sequence[Hashable] | None = None, relation: str = "E") -> Instance:
    """The directed path with ``n`` edges (``n + 1`` nodes)."""
    nodes = list(values) if values is not None else [Null(f"p{i}") for i in range(n + 1)]
    if len(nodes) != n + 1:
        raise ValueError(f"expected {n + 1} node values, got {len(nodes)}")
    edges = [(nodes[i], nodes[i + 1]) for i in range(n)]
    return Instance({relation: edges})


def clique(n: int, values: Sequence[Hashable] | None = None, relation: str = "E") -> Instance:
    """The complete loopless digraph ``K_n`` (both directions)."""
    nodes = list(values) if values is not None else [Null(f"k{i}") for i in range(n)]
    if len(nodes) != n:
        raise ValueError(f"expected {n} node values, got {len(nodes)}")
    edges = [(a, b) for a in nodes for b in nodes if a != b]
    return Instance({relation: edges})


def disjoint_union(*instances: Instance) -> Instance:
    """Union of instances whose active domains are already disjoint.

    Raises ``ValueError`` on overlap — the graph-theoretic ``+`` of the
    paper requires genuinely disjoint node sets.
    """
    seen: set = set()
    for inst in instances:
        overlap = seen & set(inst.adom())
        if overlap:
            raise ValueError(f"active domains overlap on {sorted(map(repr, overlap))}")
        seen |= set(inst.adom())
    result = Instance.empty()
    for inst in instances:
        result = result.union(inst)
    return result


# ----------------------------------------------------------------------
# the paper's worked examples
# ----------------------------------------------------------------------

def intro_example() -> Instance:
    """The introduction's integration scenario.

    ``R(A,B) = {(1,⊥1), (⊥2,⊥3)}``, ``S(B,C) = {(⊥1,4), (⊥3,5)}``.
    Naive evaluation of ``π_AC(R ⋈ S)`` yields ``{(1,4), (⊥2,5)}``;
    after dropping null tuples the certain answer is ``{(1,4)}``.
    """
    k1, k2, k3 = Null("1"), Null("2"), Null("3")
    return Instance({"R": [(1, k1), (k2, k3)], "S": [(k1, 4), (k3, 5)]})


def d0_example() -> Instance:
    """``D0 = {D(⊥,⊥'), D(⊥',⊥)}`` from Section 2.3/2.4.

    Under CWA its complete instances are exactly ``{(c,c'),(c',c)}``;
    under OWA any complete superset of one of those.
    """
    k, k1 = Null(""), Null("'")
    return Instance({"D": [(k, k1), (k1, k)]})


def sql_paradox_example() -> tuple[Instance, Instance]:
    """Instances witnessing SQL's ``NOT IN`` paradox (introduction).

    Returns ``(X, Y)`` with ``|X| > |Y|`` yet SQL's three-valued logic
    makes ``X NOT IN Y`` empty because ``Y`` contains a null.
    """
    x = Instance({"X": [(1,), (2,), (3,)]})
    y = Instance({"Y": [(1,), (Null("y"),)]})
    return x, y


def minimal_4ary_example() -> tuple[Instance, dict]:
    """Proposition 10.1's 4-ary counterexample.

    Returns ``(D, h)`` where ``D`` and ``h(D)`` are both cores but ``h``
    is *not* D-minimal (a different map has a strictly smaller image).
    """
    k = {i: Null(str(i)) for i in range(1, 8)}
    d = Instance({"T": [(k[1], k[1], k[2], k[3]), (k[4], k[5], k[2], k[2])]})
    h = {k[1]: k[6], k[2]: k[7], k[3]: k[7], k[4]: k[6], k[5]: k[7]}
    return d, h


def cores_graph_example() -> tuple[Instance, Instance, dict]:
    """Proposition 10.1's graph counterexample: ``G = C4 + C6``, ``H = C3 + C2``.

    Returns ``(G, H, h)`` where ``h`` is a strong onto homomorphism
    sending ``C4 → C2`` and ``C6 → C3``; both are cores, yet ``h`` is
    not G-minimal because ``G`` (being 2-colourable) also maps onto
    ``C2`` alone.
    """
    g4 = [Null(f"a{i}") for i in range(4)]
    g6 = [Null(f"b{i}") for i in range(6)]
    h3 = [Null(f"c{i}") for i in range(3)]
    h2 = [Null(f"d{i}") for i in range(2)]
    g = disjoint_union(cycle(4, g4), cycle(6, g6))
    h_graph = disjoint_union(cycle(3, h3), cycle(2, h2))
    hom = {g4[i]: h2[i % 2] for i in range(4)}
    hom.update({g6[i]: h3[i % 3] for i in range(6)})
    return g, h_graph, hom
