"""Quickstart: incomplete databases, certain answers, the session API.

Reproduces the paper's running examples end-to-end through the public
API.  Run with::

    python examples/quickstart.py
"""

from repro import Database, Instance, Null, Query, analyze, evaluate, parse

# ----------------------------------------------------------------------
# 1. An incomplete database with marked nulls (the paper's introduction)
# ----------------------------------------------------------------------

k1, k2, k3 = Null("1"), Null("2"), Null("3")
db = Database(
    {
        "R": [(1, k1), (k2, k3)],  # R(A, B)
        "S": [(k1, 4), (k3, 5)],  # S(B, C)
    },
    semantics="owa",
)
print("The incomplete database:")
print(db.instance.pretty())

# ----------------------------------------------------------------------
# 2. A conjunctive query: π_AC(R ⋈ S), prepared once
# ----------------------------------------------------------------------

join = db.query("exists z (R(x, z) & S(z, y))", vars=("x", "y"), name="join")
print(f"\nPrepared {join.query!r}")

# The planner routes to naive evaluation because UCQs are sound under OWA:
result = join.evaluate()
print(f"certain answers under OWA: {set(result.answers)}  (method={result.method})")
assert result.answers == frozenset({(1, 4)})

# The plan is a first-class, inspectable value:
print("\n" + db.explain(join).render())

# ----------------------------------------------------------------------
# 3. The analyzer: Figure 1 as a planning decision
# ----------------------------------------------------------------------

total = Query.boolean(parse("forall x . exists y . D(x, y)"), name="total")
for semantics in ("owa", "cwa"):
    verdict = analyze(total, semantics)
    print(f"\n∀x∃y D(x,y) under {semantics.upper()}: sound={verdict.sound}")
    print(f"  because: {verdict.reason}")

# ----------------------------------------------------------------------
# 4. The D0 example: the same query, two different certain answers
# ----------------------------------------------------------------------

bot, bot2 = Null(""), Null("'")
d0 = Instance({"D": [(bot, bot2), (bot2, bot)]})

owa_result = evaluate(total, d0, semantics="owa")  # enumeration fallback
cwa_result = evaluate(total, d0, semantics="cwa")  # naive, provably exact
print(f"\nOn D0 = {d0!r}:")
print(f"  OWA certain answer: {owa_result.holds}  (method={owa_result.method})")
print(f"  CWA certain answer: {cwa_result.holds}  (method={cwa_result.method})")
assert not owa_result.holds and cwa_result.holds

print("\nQuickstart OK.")
