"""The weak closed-world semantics (Reiter 1977; paper Section 4.3).

``[[D]]_WCWA`` consists of the complete instances obtained by applying a
valuation ``h`` and then adding tuples that *only use values already in
the image*: ``h(D) ⊆ E`` with ``adom(E) = adom(h(D))``.  Its
homomorphism class is the *onto* homomorphisms, and naive evaluation is
sound for all positive formulae ``Pos`` (Theorem 5.2).
"""

from __future__ import annotations

import itertools
import math
from typing import Hashable, Iterator, Sequence

from repro.data.instance import Instance
from repro.data.schema import Schema
from repro.homs.search import has_homomorphism
from repro.semantics.base import (
    Semantics,
    guard_limit,
    iter_facts_over,
    iter_valuation_images,
)

__all__ = ["WCWA"]


class WCWA(Semantics):
    """Weak closed-world assumption."""

    key = "wcwa"
    name = "WCWA"
    notation = "[[·]]_WCWA"
    saturated = True
    hom_class = "onto homomorphisms"
    sound_fragment = "Pos"
    default_extra_facts = None  # full extension enumeration by default

    def enumeration_exact(self, extra_facts: int | None) -> bool:
        return extra_facts is None

    def expand(
        self,
        instance: Instance,
        pool: Sequence[Hashable],
        schema: Schema | None = None,
        extra_facts: int | None = None,
        limit: int = 500_000,
    ) -> Iterator[Instance]:
        schema = schema or instance.schema()
        seen: set[Instance] = set()
        n_valuations = len(pool) ** len(instance.nulls())
        for image in iter_valuation_images(instance, pool):
            adom = sorted(image.adom(), key=repr)
            candidates = [
                fact for fact in iter_facts_over(schema, adom)
                if fact[1] not in image.tuples(fact[0])
            ]
            top = len(candidates) if extra_facts is None else min(extra_facts, len(candidates))
            n_subsets = sum(math.comb(len(candidates), k) for k in range(top + 1))
            guard_limit(n_valuations * n_subsets, limit, "WCWA expansion")
            for k in range(top + 1):
                for extra in itertools.combinations(candidates, k):
                    extended = image
                    for name, row in extra:
                        extended = extended.add_fact(name, row)
                    if extended not in seen:
                        seen.add(extended)
                        yield extended

    def contains(self, instance: Instance, complete: Instance) -> bool:
        self._check_complete(complete)
        # E ∈ [[D]]_WCWA iff some valuation h has h(D) ⊆ E and
        # adom(h(D)) = adom(E): exactly an onto valuation (Section 4.3).
        return has_homomorphism(
            instance,
            complete,
            fix_constants=True,
            require_complete_image=True,
            onto=True,
        )
