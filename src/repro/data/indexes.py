"""Per-relation hash indexes and execution contexts.

The compiled evaluator (:mod:`repro.logic.compile`) is set-at-a-time:
scans probe equality buckets, joins probe hash tables on the shared
columns.  A :class:`TableContext` is the runtime substrate those
operators execute over — a bag of relations plus *lazily built* hash
indexes, one per ``(relation, key positions)`` pair actually probed.

Contexts come in two flavours:

* :func:`context_for` wraps an :class:`~repro.data.instance.Instance`
  and caches the context **on the instance itself**.  Instances are
  immutable value objects, so the cache can never go stale: the session
  layer's generation counter swaps the whole instance on mutation, and
  the new instance starts with empty caches.  Repeated evaluations
  against the same instance (prepared queries, datalog fixpoint rounds)
  therefore share every index ever built.
* ``TableContext(relations)`` built directly over a plain mapping — the
  certain-answer oracle uses this for pool-valuation worlds, so a world
  is a dict of substituted rows, never a full ``Instance``.

A context may *layer* over a ``base`` context: relations absent from its
own mapping delegate ``rows``/``index`` lookups to the base.  The oracle
exploits this for incremental world enumeration — the null-free
relations of an incomplete instance are identical in every
pool-valuation world, so their (possibly expensive) hash indexes live in
one shared base context and are built exactly once per enumeration,
while each world carries only its substituted null-carrying relations.
"""

from __future__ import annotations

from typing import Collection, Hashable, Mapping

from repro.data.instance import Instance
from repro.data.values import sort_key

__all__ = ["TableContext", "context_for", "derive_context", "as_context"]

_EMPTY: frozenset[tuple] = frozenset()


class TableContext:
    """Relations plus lazily built per-relation hash indexes.

    ``index(name, positions)`` returns ``{key: [rows]}`` where ``key``
    is the projection of a row to ``positions``; it is built on first
    probe and memoised, so the cost of indexing is only ever paid for
    access paths the compiled plan actually uses.
    """

    __slots__ = ("_relations", "_adom", "_sorted_adom", "_indexes", "_base")

    def __init__(
        self,
        relations: Mapping[str, Collection[tuple]],
        adom: frozenset[Hashable] | None = None,
        sorted_adom: tuple[Hashable, ...] | None = None,
        base: "TableContext | None" = None,
    ):
        self._relations = relations
        self._adom = adom
        self._sorted_adom = sorted_adom
        self._indexes: dict[tuple[str, tuple[int, ...]], dict[tuple, list[tuple]]] = {}
        self._base = base

    # ------------------------------------------------------------------
    # relation access
    # ------------------------------------------------------------------

    def rows(self, name: str) -> Collection[tuple]:
        """All tuples of relation ``name`` (empty when absent)."""
        found = self._relations.get(name)
        if found is not None:
            return found
        if self._base is not None:
            return self._base.rows(name)
        return _EMPTY

    def adom(self) -> frozenset[Hashable]:
        """Active domain of the context's relations (computed lazily).

        Layered contexts include the base's domain — the base holds real
        relations of the same world, not shadowed defaults.
        """
        if self._adom is None:
            values: set[Hashable] = set()
            for rows in self._relations.values():
                for row in rows:
                    values.update(row)
            if self._base is not None:
                values |= self._base.adom()
            self._adom = frozenset(values)
        return self._adom

    def sorted_adom(self) -> tuple[Hashable, ...]:
        """The active domain in deterministic ``sort_key`` order."""
        if self._sorted_adom is None:
            self._sorted_adom = tuple(sorted(self.adom(), key=sort_key))
        return self._sorted_adom

    # ------------------------------------------------------------------
    # hash indexes
    # ------------------------------------------------------------------

    def index(
        self, name: str, positions: tuple[int, ...]
    ) -> dict[tuple, list[tuple]]:
        """The hash index of relation ``name`` keyed on ``positions``.

        Built on first use, memoised for the lifetime of the context.
        ``positions`` must be non-empty — a zero-column key would be one
        bucket holding the whole relation, which is just :meth:`rows`.
        """
        if not positions:
            raise ValueError("index needs at least one key position")
        if name not in self._relations and self._base is not None:
            # shared static relation: one index serves every layered world
            return self._base.index(name, positions)
        cache_key = (name, positions)
        idx = self._indexes.get(cache_key)
        if idx is None:
            idx = {}
            for row in self.rows(name):
                key = tuple(row[i] for i in positions)
                bucket = idx.get(key)
                if bucket is None:
                    idx[key] = [row]
                else:
                    bucket.append(row)
            self._indexes[cache_key] = idx
        return idx

    def index_stats(self) -> dict[str, int]:
        """Counters for introspection and tests."""
        return {
            "indexes_built": len(self._indexes),
            "relations": len(self._relations),
        }

    def __repr__(self) -> str:
        names = ", ".join(sorted(self._relations))
        return f"TableContext({names or '∅'}; {len(self._indexes)} indexes)"


def context_for(instance: Instance) -> TableContext:
    """The execution context of an instance, cached on the instance.

    Sound because instances are immutable: every mutation path
    (``add_fact`` & co., the session layer's generation bump) produces a
    *new* ``Instance`` whose context cache starts empty.
    """
    ctx = instance._ctx
    if ctx is None:
        ctx = TableContext(
            instance._relations,
            adom=instance.adom(),
        )
        instance._ctx = ctx
    return ctx


def _patched_index(
    idx: dict[tuple, list[tuple]],
    positions: tuple[int, ...],
    added: Collection[tuple],
    removed: Collection[tuple],
) -> dict[tuple, list[tuple]]:
    """A copy of hash index ``idx`` with the delta applied.

    Copy-on-write at bucket granularity: the original index (still
    serving the pre-mutation instance) is never touched, untouched
    buckets are shared, and only the delta's buckets are copied —
    so patching costs ``O(buckets + |delta|)`` instead of the
    ``O(rows)`` of a rebuild.
    """
    out = dict(idx)
    copied: set[tuple] = set()

    def own_bucket(key: tuple) -> list[tuple]:
        bucket = out.get(key)
        if bucket is None:
            bucket = []
            out[key] = bucket
            copied.add(key)
        elif key not in copied:
            bucket = list(bucket)
            out[key] = bucket
            copied.add(key)
        return bucket

    for row in removed:
        key = tuple(row[i] for i in positions)
        if key in out:
            bucket = own_bucket(key)
            try:
                bucket.remove(row)
            except ValueError:
                pass
            if not bucket:
                del out[key]
                copied.discard(key)
    for row in added:
        own_bucket(tuple(row[i] for i in positions)).append(row)
    return out


def derive_context(
    old_instance: Instance,
    new_instance: Instance,
    changes: Mapping[str, tuple[Collection[tuple], Collection[tuple]]],
) -> TableContext:
    """Seed ``new_instance``'s context from its pre-mutation ancestor.

    ``changes`` is the effective delta reported by
    :meth:`~repro.data.instance.Instance.with_delta`.  Every hash index
    the old context had built is carried over: indexes of untouched
    relations are shared outright (they are read-only after
    construction), indexes of mutated relations are patched
    copy-on-write via :func:`_patched_index`.  The session layer calls
    this on every mutation so a long-lived :class:`Database` never
    rebuilds an index from scratch for a relation that merely gained or
    lost a few rows.
    """
    ctx = new_instance._ctx
    if ctx is not None:
        return ctx
    ctx = TableContext(new_instance._relations, adom=new_instance._adom)
    old_ctx = old_instance._ctx
    if old_ctx is not None:
        # snapshot: concurrent readers may still be lazily inserting
        # freshly built indexes into the old context while we iterate
        for (name, positions), idx in list(old_ctx._indexes.items()):
            delta = changes.get(name)
            if delta is None:
                if name in new_instance._relations:
                    ctx._indexes[(name, positions)] = idx
                continue
            rows = new_instance._relations.get(name)
            if rows is None:
                continue  # relation emptied: nothing left to index
            added, removed = delta
            if any(len(row) <= max(positions) for row in added):
                continue  # arity shrank under full replacement: rebuild lazily
            ctx._indexes[(name, positions)] = _patched_index(
                idx, positions, added, removed
            )
    new_instance._ctx = ctx
    return ctx


def as_context(source: Instance | TableContext) -> TableContext:
    """Normalise an evaluation source into a :class:`TableContext`."""
    if isinstance(source, TableContext):
        return source
    if isinstance(source, Instance):
        return context_for(source)
    raise TypeError(f"cannot evaluate over {source!r}: expected Instance or TableContext")
