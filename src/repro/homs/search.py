"""Backtracking homomorphism search between relational instances.

Homomorphisms serve two roles in the paper (Section 2.2): they define
the semantics of incompleteness (valuations are homomorphisms whose
image lies in ``Const``) and the preservation conditions under which
naive evaluation is sound.  This module provides one search engine with
switches covering every variant the paper needs:

* *database* homomorphisms — identity on constants (``fix_constants``),
* plain homomorphisms — constants may move (used for the "pure graph"
  examples of Section 10),
* onto homomorphisms — ``h(adom(D)) = adom(D')`` (WCWA, Cor. 4.9),
* strong onto homomorphisms — ``h(D) = D'`` (CWA, Cor. 4.9),
* injective maps and full isomorphisms (the ``≈`` relation).

The search assigns values fact by fact with forward checking; instances
in this library are small (the semantics layer is a brute-force oracle)
so a clean backtracking search is the right tool.
"""

from __future__ import annotations

from typing import Hashable, Iterator, Mapping, Sequence

from repro.data.instance import Instance
from repro.data.values import Null, sort_key

__all__ = [
    "iter_homomorphisms",
    "find_homomorphism",
    "has_homomorphism",
    "find_isomorphism",
    "iter_mappings",
]

Assignment = dict[Hashable, Hashable]


def _ordered_facts(source: Instance, target: Instance) -> list[tuple[str, tuple]]:
    """Source facts ordered most-constrained-first (fewest target tuples)."""
    facts = list(source.facts())
    facts.sort(key=lambda fact: (len(target.tuples(fact[0])), fact[0], tuple(map(sort_key, fact[1]))))
    return facts


def _match_fact(
    row: Sequence[Hashable],
    candidate: Sequence[Hashable],
    assignment: Assignment,
    fix_constants: bool,
) -> Assignment | None:
    """Try to extend ``assignment`` so the fact maps onto ``candidate``."""
    extension: Assignment = {}
    for value, image in zip(row, candidate):
        if fix_constants and not isinstance(value, Null) and value != image:
            return None
        bound = assignment.get(value, extension.get(value))
        if bound is None:
            extension[value] = image
        elif bound != image:
            return None
    return extension


def iter_homomorphisms(
    source: Instance,
    target: Instance,
    fix_constants: bool = True,
    onto: bool = False,
    strong_onto: bool = False,
    injective: bool = False,
    require_complete_image: bool = False,
    pinned: Mapping[Hashable, Hashable] | None = None,
) -> Iterator[Assignment]:
    """Yield every homomorphism ``h : source → target`` (as a dict on adom).

    Parameters mirror the paper's vocabulary:

    ``fix_constants``
        database homomorphisms: ``h(c) = c`` for every constant.
    ``onto``
        ``h(adom(source)) = adom(target)`` (Rsem-homomorphisms of WCWA).
    ``strong_onto``
        ``h(source) = target`` exactly (Rsem-homomorphisms of CWA).
    ``injective``
        ``h`` is injective on ``adom(source)``.
    ``require_complete_image``
        ``h`` maps every value to a constant — combined with
        ``fix_constants`` this makes ``h`` a *valuation*.
    ``pinned``
        pre-assigned images for selected values (e.g. "identity on the
        fix set" in the minimality tests of Section 10.2).
    """
    facts = _ordered_facts(source, target)
    source_adom = source.adom()
    initial: Assignment = {k: v for k, v in (pinned or {}).items() if k in source_adom}

    # Values that occur in no fact cannot exist (adom is fact-defined),
    # so matching all facts assigns every value of the active domain.

    def accept(assignment: Assignment) -> bool:
        if injective and len(set(assignment.values())) != len(assignment):
            return False
        if require_complete_image and any(isinstance(v, Null) for v in assignment.values()):
            return False
        if onto and set(assignment.values()) != set(target.adom()):
            return False
        if strong_onto and source.apply(assignment) != target:
            return False
        return True

    def extend(index: int, assignment: Assignment) -> Iterator[Assignment]:
        if index == len(facts):
            if accept(assignment):
                yield dict(assignment)
            return
        name, row = facts[index]
        for candidate in sorted(target.tuples(name), key=lambda t: tuple(map(sort_key, t))):
            extension = _match_fact(row, candidate, assignment, fix_constants)
            if extension is None:
                continue
            if injective:
                taken = set(assignment.values())
                images = list(extension.values())
                if len(set(images)) != len(images) or taken & set(images):
                    continue
            assignment.update(extension)
            yield from extend(index + 1, assignment)
            for key in extension:
                del assignment[key]

    if not source_adom:
        # The empty instance maps anywhere via the empty map, except
        # when ontoness demands hitting a non-empty active domain.
        empty: Assignment = {}
        if accept(empty):
            yield empty
        return

    yield from extend(0, dict(initial))


def find_homomorphism(
    source: Instance,
    target: Instance,
    **options,
) -> Assignment | None:
    """First homomorphism found, or ``None``.  Options as in :func:`iter_homomorphisms`."""
    for hom in iter_homomorphisms(source, target, **options):
        return hom
    return None


def has_homomorphism(source: Instance, target: Instance, **options) -> bool:
    """True iff some homomorphism ``source → target`` exists."""
    return find_homomorphism(source, target, **options) is not None


def find_isomorphism(
    source: Instance,
    target: Instance,
    fix_constants: bool = True,
) -> Assignment | None:
    """A bijection ``π`` on data values with ``π(source) = target``, or ``None``.

    This is the paper's structural equivalence ``≈`` (Section 3.1);
    with ``fix_constants`` it is the database version used for naive
    databases, without it the purely structural one.
    """
    if source.fact_count() != target.fact_count():
        return None
    if len(source.adom()) != len(target.adom()):
        return None
    return find_homomorphism(
        source,
        target,
        fix_constants=fix_constants,
        injective=True,
        strong_onto=True,
    )


def iter_mappings(
    domain: Sequence[Hashable],
    pool: Sequence[Hashable],
    base: Mapping[Hashable, Hashable] | None = None,
) -> Iterator[Assignment]:
    """All functions from ``domain`` into ``pool``, extended over ``base``.

    The brute-force engine behind valuation enumeration: for an
    instance with nulls ``⊥1..⊥n`` and a finite constant pool, the
    valuations are exactly ``iter_mappings(nulls, pool)``.
    """
    domain = sorted(domain, key=sort_key)
    base = dict(base or {})

    def extend(index: int, assignment: Assignment) -> Iterator[Assignment]:
        if index == len(domain):
            yield dict(assignment)
            return
        value = domain[index]
        for image in pool:
            assignment[value] = image
            yield from extend(index + 1, assignment)
        assignment.pop(value, None)  # pool may be empty: nothing assigned

    yield from extend(0, base)
