"""One data directory = one durable session: snapshot + WAL + recovery.

:class:`Storage` owns a directory with two files::

    <data-dir>/snapshot.repro   latest checkpoint (atomic-replace published)
    <data-dir>/wal.repro        deltas acknowledged since that checkpoint

Recovery (:meth:`Storage.open`) is *load snapshot, replay the WAL
tail*: each replayed record re-applies its effective delta through
:meth:`~repro.data.instance.Instance.with_delta` and restores the exact
generation counters the session had when it acknowledged the write.  A
torn final record (crash mid-append) is ignored and truncated; records
the snapshot already contains (a crash between snapshot publish and log
truncate) are skipped by comparing generations — replay is idempotent.

Compaction (:meth:`checkpoint`) writes a fresh snapshot and truncates
the log; :meth:`should_compact` makes it size- and age-triggered
(``wal_max_bytes`` / ``wal_max_age_s``), checked by the session after
each acknowledged write.  The WAL doubles as a deterministic workload
trace: :meth:`Storage.trace` yields the decoded delta stream in
acknowledgement order, which the benchmark harness replays to measure
recovery cost against log length.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Hashable, Iterator, Mapping

from repro import faults as _faults
from repro.data.instance import Instance
from repro.data.jsonio import decode_row, encode_row
from repro.storage.snapshot import SnapshotState, read_snapshot, write_snapshot
from repro.storage.wal import WriteAheadLog

__all__ = ["RecoveryInfo", "Storage", "encode_delta_record"]

SNAPSHOT_NAME = "snapshot.repro"
WAL_NAME = "wal.repro"


@dataclass(frozen=True)
class RecoveryInfo:
    """What :meth:`Storage.open` found and did (surfaced by ``repro recover``)."""

    #: generation stored in the snapshot (0 when no snapshot existed)
    snapshot_generation: int
    #: complete WAL records replayed on top of the snapshot
    wal_records: int
    #: WAL records skipped because the snapshot already contained them
    wal_skipped: int
    #: trailing bytes of a torn final record, ignored and truncated
    torn_bytes: int
    #: did a snapshot file exist at all?
    had_snapshot: bool


def _decode_side(side: Mapping[str, list] | None) -> dict[str, list[tuple]]:
    if not side:
        return {}
    return {
        name: [decode_row(name, row) for row in rows] for name, rows in side.items()
    }


def _encode_side(changes: Mapping[str, frozenset], index: int) -> dict[str, list]:
    out: dict[str, list] = {}
    for name, sides in changes.items():
        rows = sides[index]
        if rows:
            out[name] = [encode_row(name, row) for row in sorted(rows, key=repr)]
    return out


def encode_delta_record(
    changes: Mapping[str, tuple[frozenset, frozenset]],
    generation: int,
    rel_gens: Mapping[str, int],
) -> dict:
    """One effective delta as the WAL's wire-format record.

    ``changes`` is exactly what :meth:`Instance.with_delta` reported
    (effective adds/removes per touched relation); ``generation`` and
    ``rel_gens`` are the counters *after* the write, so replay restores
    them bit-identically.  The same record is journaled locally and
    shipped to replicas — one encoding, zero drift.
    """
    record: dict = {
        "g": generation,
        "rg": {name: rel_gens[name] for name in sorted(changes)},
    }
    adds = _encode_side(changes, 0)
    removes = _encode_side(changes, 1)
    if adds:
        record["adds"] = adds
    if removes:
        record["removes"] = removes
    return record


class Storage:
    """The persistence engine behind ``Database(path=...)``.

    Not a public entry point on its own — the session layer drives it —
    but usable directly for tooling (``repro recover`` does).  All
    methods that touch the session's counters take them as arguments:
    the session lock, not this class, serialises state transitions.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        fsync: bool = True,
        wal_max_bytes: int = 4 * 1024 * 1024,
        wal_max_age_s: float | None = None,
        faults: "_faults.FaultRegistry | None" = None,
    ):
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.wal_max_bytes = wal_max_bytes
        self.wal_max_age_s = wal_max_age_s
        #: failpoint registry threaded into the WAL and snapshot writer
        #: (``None`` = the process-global one, armed via REPRO_FAILPOINTS)
        self.faults = _faults.coerce(faults)
        self.snapshot_path = self.path / SNAPSHOT_NAME
        self.wal = WriteAheadLog(self.path / WAL_NAME, fsync=fsync, faults=self.faults)
        self.recovery: RecoveryInfo | None = None
        self._snapshot_generation = 0

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    def open(self) -> SnapshotState:
        """Recover the durable state: snapshot + WAL-tail replay.

        Returns the recovered :class:`SnapshotState` (instance +
        generation counters) and leaves the WAL positioned for
        appending with any torn tail truncated.  A fresh or empty data
        directory recovers to the empty instance at generation 0.
        """
        had_snapshot = self.snapshot_path.exists()
        if had_snapshot:
            state = read_snapshot(self.snapshot_path)
        else:
            state = SnapshotState(Instance.empty())
        records, torn = self.wal.replay()
        instance = state.instance
        generation = state.generation
        rel_gens = dict(state.rel_gens)
        replayed = skipped = 0
        for record in records:
            if record["g"] <= state.generation:
                # the snapshot was published after this record but the
                # crash hit before the log was truncated: already applied
                skipped += 1
                continue
            adds = _decode_side(record.get("adds"))
            removes = _decode_side(record.get("removes"))
            instance, _changes = instance.with_delta(adds, removes)
            generation = record["g"]
            for name, gen in record.get("rg", {}).items():
                rel_gens[name] = gen
            replayed += 1
        self.wal.open_for_append()
        self.recovery = RecoveryInfo(
            snapshot_generation=state.generation,
            wal_records=replayed,
            wal_skipped=skipped,
            torn_bytes=torn,
            had_snapshot=had_snapshot,
        )
        self._snapshot_generation = state.generation
        return SnapshotState(instance, generation, rel_gens)

    def trace(self) -> Iterator[dict]:
        """The decoded WAL as a workload trace, in acknowledgement order.

        Yields ``{"generation", "adds", "removes"}`` per record with
        rows decoded to real cells — a deterministic mutation stream the
        benchmark harness replays against fresh sessions.
        """
        records, _torn = self.wal.replay()
        for record in records:
            yield {
                "generation": record["g"],
                "adds": _decode_side(record.get("adds")),
                "removes": _decode_side(record.get("removes")),
            }

    # ------------------------------------------------------------------
    # journaling
    # ------------------------------------------------------------------

    def log_delta(
        self,
        changes: Mapping[str, tuple[frozenset, frozenset]],
        generation: int,
        rel_gens: Mapping[str, int],
    ) -> int:
        """Append one effective delta; returns the offset to :meth:`sync` to.

        ``changes`` is exactly what :meth:`Instance.with_delta` reported
        (effective adds/removes per touched relation); ``generation``
        and ``rel_gens`` are the counters *after* the write, so replay
        restores them bit-identically.  Encoding happens before any
        bytes are written: a non-JSON-representable cell raises before
        the session publishes anything.
        """
        return self.append_record(encode_delta_record(changes, generation, rel_gens))

    def append_record(self, record: dict) -> int:
        """Append an already-encoded record (see :func:`encode_delta_record`)."""
        return self.wal.append(record)

    def raw_records(self) -> list[dict]:
        """The wire-format records currently in the log, oldest first.

        Unlike :meth:`trace` this is safe on a **live** log: it re-reads
        the file without disturbing the append position (the replication
        feed seeds from it under the session lock).
        """
        return self.wal.buffered_records()

    def sync(self, upto: int) -> None:
        """Group-commit fsync up to ``upto`` (the durability point)."""
        self.wal.sync(upto)

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------

    def should_compact(self) -> bool:
        """Has the WAL outgrown its size or age budget?"""
        if self.wal.record_bytes == 0:
            return False
        if self.wal.record_bytes >= self.wal_max_bytes:
            return True
        return self.wal_max_age_s is not None and self.wal.age_seconds() >= self.wal_max_age_s

    def checkpoint(self, state: SnapshotState) -> bool:
        """Write a fresh snapshot of ``state`` and truncate the log.

        The caller must hold the session lock so ``state`` and the log
        cannot drift apart between the two steps.  Publishing is
        crash-ordered: the snapshot lands via atomic replace *before*
        the truncate, and replay skips WAL records the snapshot already
        covers — so a crash between the two steps double-applies
        nothing.  Returns ``False`` when the state is already fully
        snapshotted and the log is empty (nothing to do) — unless a
        failed append left the log's tail dirty, in which case the
        truncation must happen regardless.
        """
        if (
            self.wal.record_count == 0
            and not self.wal.dirty_tail
            and self._snapshot_generation == state.generation
        ):
            if self.snapshot_path.exists():
                return False
        write_snapshot(self.snapshot_path, state, fsync=self.fsync, faults=self.faults)
        self._snapshot_generation = state.generation
        self.wal.truncate()
        return True

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------

    @property
    def stats(self) -> dict[str, Hashable]:
        """Counters for ``stats`` endpoints and tests."""
        return {
            "path": str(self.path),
            "fsync": self.fsync,
            "wal_bytes": self.wal.record_bytes,
            "wal_records": self.wal.record_count,
            "snapshot_generation": self._snapshot_generation,
            "snapshot_bytes": (
                self.snapshot_path.stat().st_size if self.snapshot_path.exists() else 0
            ),
        }

    def close(self) -> None:
        self.wal.close()
