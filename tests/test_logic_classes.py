"""Unit tests for repro.logic.classes: the paper's syntactic fragments."""

import pytest

from repro.logic.ast import Var
from repro.logic.builders import (
    FALSE,
    TRUE,
    Rel,
    eq,
    eq_guard,
    exists,
    forall,
    guard,
    implies,
    not_,
    or_,
)
from repro.logic.classes import (
    FRAGMENTS,
    classify,
    in_epos,
    in_epos_forall_gbool,
    in_fragment,
    in_pos,
    in_pos_forall_g,
    why_not_in,
)
from repro.logic.parser import parse

R, S = Rel("R"), Rel("S")


class TestEPos:
    def test_ucq_shapes(self):
        assert in_epos(exists("x", "y", R("x", "y") & S("y", "x")))
        assert in_epos(or_(exists("x", R("x", "x")), exists("y", S("y", "y"))))
        assert in_epos(TRUE) and in_epos(FALSE)
        assert in_epos(eq("x", "y"))

    def test_forall_excluded(self):
        assert not in_epos(forall("x", R("x", "x")))

    def test_negation_excluded(self):
        assert not in_epos(not_(R("x", "x")))
        assert not in_epos(exists("x", ~R("x", "x")))

    def test_implication_excluded(self):
        assert not in_epos(implies(R("x", "x"), S("x", "x")))


class TestPos:
    def test_adds_forall(self):
        phi = forall("x", exists("y", R("x", "y")))
        assert in_pos(phi)
        assert not in_epos(phi)

    def test_still_no_negation(self):
        assert not in_pos(forall("x", ~R("x", "x")))

    def test_still_no_bare_implication(self):
        assert not in_pos(forall("x", implies(R("x", "x"), S("x", "x"))))


class TestPosForallG:
    def test_guard_accepted(self):
        phi = guard("R", ("x", "y"), exists("z", S("y", "z")))
        assert in_pos_forall_g(phi)
        assert not in_pos(phi)

    def test_equality_guard_accepted(self):
        phi = eq_guard("x", "z", R("x", "z"))
        assert in_pos_forall_g(phi)

    def test_nested_guards(self):
        inner = guard("S", ("u", "v"), R("u", "v"))
        phi = guard("R", ("x", "y"), inner)
        assert in_pos_forall_g(phi)

    def test_guard_with_repeated_variables_rejected(self):
        # the remark after Prop 5.1: ∀x (R(x,x) → S(x)) is NOT a guard
        x = Var("x")
        from repro.logic.ast import Forall, Implies, RelAtom

        phi = Forall((x,), Implies(RelAtom("R", (x, x)), RelAtom("S", (x,))))
        assert not in_pos_forall_g(phi)

    def test_guard_vars_must_match_atom_args(self):
        from repro.logic.ast import Forall, Implies, RelAtom

        x, y = Var("x"), Var("y")
        # guard atom uses y,x but quantifier binds x,y in that order
        phi = Forall((x, y), Implies(RelAtom("R", (y, x)), RelAtom("S", (x,))))
        assert not in_pos_forall_g(phi)

    def test_guard_body_may_use_outer_variables(self):
        # ϕ(x̄, ȳ) may have extra free variables in Pos+∀G
        phi = guard("R", ("x",), S("x", "w"))
        assert in_pos_forall_g(phi)

    def test_plain_forall_still_allowed(self):
        assert in_pos_forall_g(forall("x", exists("y", R("x", "y"))))

    def test_negation_still_rejected(self):
        assert not in_pos_forall_g(guard("R", ("x",), ~S("x", "x")))


class TestEPosForallGBool:
    def test_boolean_guard_accepted(self):
        phi = guard("R", ("x", "y"), exists("z", S("x", "z")))
        assert in_epos_forall_gbool(phi)

    def test_open_guard_rejected(self):
        # body has a free variable outside the guard block → not Boolean
        phi = guard("R", ("x",), S("x", "w"))
        assert not in_epos_forall_gbool(phi)

    def test_plain_forall_rejected(self):
        assert not in_epos_forall_gbool(forall("x", exists("y", R("x", "y"))))

    def test_epos_base_included(self):
        assert in_epos_forall_gbool(exists("x", R("x", "x")))

    def test_guards_compose_with_conjunction(self):
        phi = guard("R", ("x",), S("x", "x")) & exists("y", R("y", "y"))
        assert in_epos_forall_gbool(phi)


class TestClassifyAndReasons:
    def test_classify_hierarchy(self):
        ucq = exists("x", R("x", "x"))
        assert classify(ucq) == FRAGMENTS  # in everything

    def test_classify_pos_only(self):
        phi = forall("x", exists("y", R("x", "y")))
        got = classify(phi)
        assert "Pos" in got and "PosForallG" in got and "FO" in got
        assert "EPos" not in got and "EPosForallGBool" not in got

    def test_fo_catches_everything(self):
        assert in_fragment(not_(R("x", "x")), "FO")
        assert classify(not_(R("x", "x"))) == ("FO",)

    def test_why_not_in_mentions_negation(self):
        reason = why_not_in(not_(R("x", "x")), "EPos")
        assert reason is not None and "negation" in reason

    def test_why_not_in_none_when_member(self):
        assert why_not_in(exists("x", R("x", "x")), "EPos") is None

    def test_unknown_fragment_raises(self):
        with pytest.raises(ValueError):
            in_fragment(TRUE, "nope")
        with pytest.raises(ValueError):
            why_not_in(TRUE, "nope")

    def test_parsed_guard_recognised(self):
        phi = parse("forall x, y . R(x, y) -> exists z (S(y, z))")
        assert in_pos_forall_g(phi)
        assert in_epos_forall_gbool(phi)
