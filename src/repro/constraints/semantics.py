"""Constraint-aware semantics: restrict ``[[D]]`` to consistent worlds.

``[[D]]_Σ = { E ∈ [[D]] | E ⊨ Σ }`` for a set of FDs/keys ``Σ``.  Since
the intersection defining certain answers now ranges over fewer worlds,
certain answers can only grow — the classic effect the paper's future
work points at (e.g. a key can force two tuples to merge, turning a
possible answer into a certain one).

If no world over the pool satisfies the constraints, the incomplete
database is *inconsistent with Σ* and certain answers are vacuously
everything; this implementation surfaces the situation as an error.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Sequence

from repro.constraints.deps import FunctionalDependency, satisfies
from repro.data.instance import Instance
from repro.data.schema import Schema
from repro.logic.eval import evaluate
from repro.logic.queries import Query
from repro.semantics.base import Semantics

__all__ = ["ConstrainedSemantics", "certain_answers_under"]


class ConstrainedSemantics(Semantics):
    """A base semantics filtered by integrity constraints."""

    saturated = False  # constraints can rule out the isomorphic copy

    def __init__(self, base: Semantics, constraints: Iterable[FunctionalDependency]):
        self.base = base
        self.constraints = tuple(constraints)
        self.key = f"{base.key}+fd"
        self.name = f"{base.name} under {len(self.constraints)} constraint(s)"
        self.notation = f"{base.notation}|Σ"
        self.hom_class = base.hom_class
        self.sound_fragment = base.sound_fragment

    def expand(
        self,
        instance: Instance,
        pool: Sequence[Hashable],
        schema: Schema | None = None,
        extra_facts: int | None = None,
        limit: int = 500_000,
    ) -> Iterator[Instance]:
        for world in self.base.expand(
            instance, pool, schema=schema, extra_facts=extra_facts, limit=limit
        ):
            if satisfies(world, self.constraints):
                yield world

    def contains(self, instance: Instance, complete: Instance) -> bool:
        return satisfies(complete, self.constraints) and self.base.contains(
            instance, complete
        )


def certain_answers_under(
    query: Query,
    instance: Instance,
    base: Semantics,
    constraints: Iterable[FunctionalDependency],
    pool: Sequence[Hashable] | None = None,
    extra_facts: int | None = None,
    limit: int = 500_000,
) -> frozenset[tuple[Hashable, ...]]:
    """Certain answers over the consistent worlds only.

    Raises ``ValueError`` when no world over the pool is consistent —
    the incomplete database contradicts the constraints.
    """
    from repro.core.certain import default_pool, query_schema

    if pool is None:
        pool = default_pool(instance, query)
    sem = ConstrainedSemantics(base, constraints)
    schema = instance.schema().union(query_schema(query))
    result: frozenset[tuple[Hashable, ...]] | None = None
    for world in sem.expand(
        instance, list(pool), schema=schema, extra_facts=extra_facts, limit=limit
    ):
        if result is None:
            result = query.eval_raw(world)
        elif query.is_boolean:
            if result and not evaluate(query.formula, world):
                result = frozenset()
        else:
            adom = world.adom()
            result = frozenset(
                row
                for row in result
                if all(v in adom for v in row)
                and evaluate(query.formula, world, dict(zip(query.answer_vars, row)))
            )
        if not result:
            break
    if result is None:
        raise ValueError(
            "no consistent world over the pool: the database violates the constraints"
        )
    return result
