"""A self-healing wire client for the JSON-lines serving protocol.

:class:`Client` wraps the raw socket conversation of
``docs/wire-protocol.md`` in the retry/deadline/failover policy a
caller facing real networks needs:

* **per-op deadlines** — every public method is bounded by ``timeout``
  seconds of wall clock, connection attempts included; a blown deadline
  raises :class:`DeadlineExceeded`, never hangs;
* **capped-exponential retry with jitter** for *idempotent* requests
  (reads, ``ping``, admin ops): transport errors and injected drops are
  retried against the next endpoint in rotation, so a primary kill is
  invisible to readers as long as any replica still answers;
* **typed-error passthrough** for mutations: a ``degraded`` frame
  (the durability layer refused the write — see
  :class:`repro.session.DegradedError`) or a ``stale`` frame surfaces
  as a typed exception carrying the server's structured fields, never
  as prose to re-parse; a ``read_only`` frame triggers one redirect to
  the primary the replica announced;
* **bounded-staleness reads** — the client tracks the highest
  generation any of its own acknowledged writes reached and stamps it
  as ``min_generation`` on subsequent reads (read-your-writes), so a
  read failing over to a lagging replica either waits for the write it
  just made or fails ``stale`` and rotates, never silently rewinds;
* **honest write semantics** — a mutation is retried only while the
  client can prove it never reached a server (connection refused before
  anything was sent).  Once request bytes may have left, a transport
  failure raises :class:`IndeterminateWriteError`: the write may or may
  not have applied, and only the caller knows whether re-issuing it is
  idempotent for their data.

:class:`AsyncClient` is the same policy on asyncio with one addition —
true **pipelining**: one connection per endpoint shared by every
coroutine, many requests in flight, responses matched back by their
echoed ``id`` even when the server answers out of order, plus a
bounded :meth:`AsyncClient.fanout` scatter helper.  An ``overloaded``
frame (the async server shedding load at admission) is retryable by
definition — the request was never executed — and both clients do so
with backoff; a server-side ``deadline`` frame is retried for reads
and surfaced as :class:`IndeterminateWriteError` for writes (the op
may still complete after the server stopped waiting).

>>> from repro.client import Client
>>> from repro.server import serve
>>> from repro.session import Database
>>> with serve(Database({"R": [(1, 2)]})) as server:
...     client = Client(server.address)
...     client.query("R(x, y)")["answers"]
...     client.insert("R", [[3, 4]])["changed"]
...     client.close()
[[1, 2]]
1
"""

from __future__ import annotations

import asyncio
import json
import random
import socket
from time import monotonic, sleep
from typing import Callable, Iterable, Mapping, Sequence

from repro.replication.replica import parse_address

__all__ = [
    "AsyncClient",
    "Client",
    "ClientError",
    "DeadlineExceeded",
    "DegradedServerError",
    "IndeterminateWriteError",
    "OverloadedServerError",
    "ReadOnlyServerError",
    "ServerError",
    "StaleReadError",
    "TransportError",
]


class ClientError(Exception):
    """Base class for everything :class:`Client` raises on purpose."""


class TransportError(ClientError):
    """No server could be reached (or kept its connection) in time."""


class DeadlineExceeded(TransportError):
    """The per-op deadline expired before any server answered."""


class IndeterminateWriteError(ClientError):
    """A mutation was sent but its fate is unknown (connection died).

    The server may or may not have applied the write.  The client never
    auto-retries out of this state — re-issuing is the caller's call,
    made safe by checking generation counters (``stats``/``health``) or
    by the mutation's natural idempotence (set semantics: re-inserting
    a present row changes nothing).
    """


class ServerError(ClientError):
    """The server answered with an error frame; ``fields`` carries it.

    ``error_type`` is the structured discriminator (``"degraded"``,
    ``"read_only"``, ``"stale"``, or ``None`` for untyped errors).
    """

    def __init__(self, fields: dict):
        super().__init__(fields.get("error", "server error"))
        self.fields = fields
        self.error_type: str | None = fields.get("error_type")


class DegradedServerError(ServerError):
    """The node is in degraded read-only mode; the write was refused.

    The write was **not** applied.  ``fields["health"]`` carries the
    node's health record; an operator ``checkpoint`` heals the node.
    """


class ReadOnlyServerError(ServerError):
    """The node is a replica; ``primary`` names where writes go."""

    @property
    def primary(self) -> str | None:
        return self.fields.get("primary")


class StaleReadError(ServerError):
    """The node could not reach the requested ``min_generation`` in time."""


class OverloadedServerError(ServerError):
    """The server shed this request at admission (``--max-inflight`` /
    ``--max-conns`` exceeded).

    The request was **never executed** — shedding happens before the op
    touches the session — so re-sending is safe for every op, mutations
    included.  Both clients retry it with backoff (rotating endpoints
    for reads) while the deadline allows.
    """


def _typed_error(response: dict) -> ServerError:
    kind = response.get("error_type")
    if kind == "degraded":
        return DegradedServerError(response)
    if kind == "read_only":
        return ReadOnlyServerError(response)
    if kind == "stale":
        return StaleReadError(response)
    if kind == "overloaded":
        return OverloadedServerError(response)
    return ServerError(response)


#: ops safe to re-send after an ambiguous failure (no server-side effects,
#: or effects that are idempotent by definition, like ``checkpoint``)
IDEMPOTENT_OPS = frozenset(
    {"ping", "query", "batch", "explain", "dump", "stats", "health", "checkpoint", "promote"}
)
#: idempotent ops that may be answered by *any* endpoint in the rotation
FAILOVER_OPS = frozenset({"ping", "query", "batch", "explain", "dump"})


def _backoff_delay(base: float, cap: float, attempt: int, jitter: Callable[[], float]) -> float:
    """Capped-exponential backoff for attempt *n*, jittered to half."""
    delay = min(base * (2**attempt), cap)
    return delay * (0.5 + 0.5 * min(1.0, max(0.0, jitter())))


def _retryable_frame(error: ServerError) -> bool:
    """Server frames a client may transparently retry for *idempotent* ops.

    ``overloaded`` — shed at admission, nothing ran; ``deadline`` — the
    server gave up inside its own ``deadline_ms`` budget, and re-running
    a read is free.  Mutations treat ``deadline`` differently (the op
    may still complete server-side): see the request cores.
    """
    return isinstance(error, OverloadedServerError) or error.error_type == "deadline"


class Client:
    """A resilient JSON-lines client over one primary and its replicas.

    Parameters
    ----------
    primary:
        ``"host:port"`` (or an ``(host, port)`` pair) of the node that
        accepts writes;
    replicas:
        additional read endpoints; idempotent reads rotate across
        ``[primary, *replicas]`` on failure;
    timeout:
        per-operation wall-clock deadline in seconds (connects, sends,
        retries and backoff sleeps all count against it);
    retries:
        attempts per idempotent operation beyond the first;
    backoff_base / backoff_cap:
        capped exponential retry schedule: attempt *n* sleeps roughly
        ``min(base * 2**n, cap)`` seconds, jittered to half;
    read_your_writes:
        stamp the client's own highest acknowledged write generation as
        ``min_generation`` on reads that do not set one (default on);
    wait_timeout_s:
        how long a server may block to satisfy a ``min_generation``
        floor before answering ``stale``;
    jitter:
        a ``() -> float in [0, 1)`` hook, injectable for deterministic
        tests.

    One socket per endpoint is kept open and reused across requests;
    any transport error tears that connection down so the next attempt
    reconnects from scratch.  Instances are **not** thread-safe — use
    one per thread (the server multiplexes fine).
    """

    def __init__(
        self,
        primary: str | tuple,
        replicas: Iterable[str | tuple] = (),
        *,
        timeout: float = 5.0,
        connect_timeout: float = 1.0,
        retries: int = 5,
        backoff_base: float = 0.05,
        backoff_cap: float = 1.0,
        read_your_writes: bool = True,
        wait_timeout_s: float = 2.0,
        jitter: Callable[[], float] = random.random,
    ):
        self._primary = parse_address(primary)
        self._endpoints: list[tuple[str, int]] = [self._primary]
        for replica in replicas:
            addr = parse_address(replica)
            if addr not in self._endpoints:
                self._endpoints.append(addr)
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.retries = max(0, retries)
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.read_your_writes = read_your_writes
        self.wait_timeout_s = wait_timeout_s
        self._jitter = jitter
        self._rotation = 0
        #: highest generation an acknowledged write of *this client* reached
        self.last_write_generation = 0
        self._conns: dict[tuple[str, int], tuple[socket.socket, object]] = {}
        self._seq = 0

    # ------------------------------------------------------------------
    # connection plumbing
    # ------------------------------------------------------------------

    @property
    def primary_address(self) -> str:
        host, port = self._primary
        return f"{host}:{port}"

    @property
    def endpoints(self) -> list[str]:
        return [f"{host}:{port}" for host, port in self._endpoints]

    def close(self) -> None:
        """Close every cached connection (idempotent)."""
        for sock, _reader in self._conns.values():
            try:
                sock.close()
            except OSError:
                pass
        self._conns.clear()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _drop(self, endpoint: tuple[str, int]) -> None:
        conn = self._conns.pop(endpoint, None)
        if conn is not None:
            try:
                conn[0].close()
            except OSError:
                pass

    def _connect(self, endpoint: tuple[str, int], deadline: float):
        cached = self._conns.get(endpoint)
        if cached is not None:
            return cached
        budget = min(self.connect_timeout, deadline - monotonic())
        if budget <= 0:
            raise DeadlineExceeded(f"deadline expired connecting to {endpoint}")
        try:
            sock = socket.create_connection(endpoint, timeout=budget)
        except OSError as err:
            raise TransportError(f"cannot connect to {endpoint}: {err}") from err
        reader = sock.makefile("r", encoding="utf-8", newline="\n")
        self._conns[endpoint] = (sock, reader)
        return sock, reader

    def _exchange(self, endpoint: tuple[str, int], payload: dict, deadline: float) -> dict:
        """One request/response on one endpoint; raises on any failure.

        Transport failures *after* the request bytes may have left are
        tagged by re-raising :class:`IndeterminateWriteError` — the
        caller decides whether its op makes that ambiguity safe.
        """
        sock, reader = self._connect(endpoint, deadline)
        remaining = deadline - monotonic()
        if remaining <= 0:
            raise DeadlineExceeded(f"deadline expired before sending to {endpoint}")
        line = json.dumps(payload) + "\n"
        try:
            sock.settimeout(remaining)
            sock.sendall(line.encode("utf-8"))
            response = reader.readline()
        except OSError as err:
            self._drop(endpoint)
            if isinstance(err, socket.timeout):
                raise IndeterminateWriteError(
                    f"no response from {endpoint} within the deadline"
                ) from err
            raise IndeterminateWriteError(
                f"connection to {endpoint} failed mid-request: {err}"
            ) from err
        if not response:
            # clean EOF: the server closed without answering (drained,
            # crashed, or an injected drop) — the request's fate is unknown
            self._drop(endpoint)
            raise IndeterminateWriteError(f"{endpoint} closed the connection mid-request")
        try:
            return json.loads(response)
        except ValueError as err:
            self._drop(endpoint)
            raise TransportError(f"undecodable response from {endpoint}: {err}") from err

    def _sleep(self, attempt: int, deadline: float) -> None:
        delay = _backoff_delay(self.backoff_base, self.backoff_cap, attempt, self._jitter)
        remaining = deadline - monotonic()
        if remaining <= 0:
            raise DeadlineExceeded("retry budget exhausted")
        if delay >= remaining:
            # the schedule wants to sleep past the caller's deadline:
            # burn only what is left and fail *on* the deadline instead
            # of waking late for an attempt that cannot finish
            sleep(remaining)
            raise DeadlineExceeded("deadline expired during retry backoff")
        sleep(delay)

    # ------------------------------------------------------------------
    # the request core
    # ------------------------------------------------------------------

    def request(self, payload: dict, *, endpoint: str | tuple | None = None) -> dict:
        """Send one raw request object with the full resilience policy.

        The escape hatch the typed helpers build on.  ``endpoint`` pins
        the request to one node (admin ops on a specific replica);
        otherwise idempotent reads rotate over every endpoint and
        mutations go to the primary.  Returns the decoded ``ok: true``
        response; raises a typed :class:`ClientError` otherwise.
        """
        op = payload.get("op")
        self._seq += 1
        payload = {"id": self._seq, **payload}
        deadline = monotonic() + self.timeout
        pinned = parse_address(endpoint) if endpoint is not None else None
        if op in IDEMPOTENT_OPS:
            return self._request_idempotent(payload, deadline, pinned)
        return self._request_mutation(payload, deadline, pinned)

    def _stamp_read_floor(self, payload: dict) -> dict:
        if (
            self.read_your_writes
            and payload.get("op") in ("query", "batch")
            and self.last_write_generation > 0
            and "min_generation" not in payload
        ):
            payload = {
                **payload,
                "min_generation": self.last_write_generation,
                "wait_timeout_s": self.wait_timeout_s,
            }
        return payload

    def _request_idempotent(
        self, payload: dict, deadline: float, pinned: tuple[str, int] | None
    ) -> dict:
        payload = self._stamp_read_floor(payload)
        can_rotate = pinned is None and payload.get("op") in FAILOVER_OPS
        endpoints = [pinned] if pinned is not None else self._endpoints
        last_error: ClientError | None = None
        for attempt in range(self.retries + 1):
            if can_rotate:
                endpoint = endpoints[self._rotation % len(endpoints)]
            else:
                endpoint = endpoints[0] if pinned is not None else self._primary
            try:
                response = self._exchange(endpoint, payload, deadline)
            except DeadlineExceeded:
                raise
            except (TransportError, IndeterminateWriteError) as err:
                # idempotent: ambiguity is free to retry — rotate away
                last_error = (
                    err
                    if isinstance(err, TransportError)
                    else TransportError(str(err))
                )
                if can_rotate:
                    self._rotation += 1
            else:
                if response.get("ok"):
                    return response
                error = _typed_error(response)
                if isinstance(error, StaleReadError) and can_rotate and len(endpoints) > 1:
                    # this node is lagging; another may have caught up
                    last_error = error
                    self._rotation += 1
                elif _retryable_frame(error):
                    # shed at admission or timed out server-side: the read
                    # never completed, so back off and try again
                    last_error = error
                    if can_rotate:
                        self._rotation += 1
                else:
                    raise error
            if attempt < self.retries:
                self._sleep(attempt, deadline)
        raise last_error if last_error is not None else TransportError("no endpoints")

    def _request_mutation(
        self, payload: dict, deadline: float, pinned: tuple[str, int] | None
    ) -> dict:
        endpoint = pinned if pinned is not None else self._primary
        redirected = False
        last_error: ClientError | None = None
        for attempt in range(self.retries + 1):
            try:
                response = self._exchange(endpoint, payload, deadline)
            except DeadlineExceeded:
                raise
            except TransportError as err:
                # the connect itself failed: nothing was sent, retry is safe
                last_error = err
            except IndeterminateWriteError:
                # bytes may have left — surface the ambiguity, never re-send
                raise
            else:
                if response.get("ok"):
                    generation = response.get("generation")
                    if isinstance(generation, int):
                        self.last_write_generation = max(
                            self.last_write_generation, generation
                        )
                    return response
                error = _typed_error(response)
                if isinstance(error, OverloadedServerError):
                    # shed at admission: the write never ran, retry is safe
                    last_error = error
                elif error.error_type == "deadline":
                    # the server stopped waiting, but the op it handed to
                    # a worker may still complete — the indeterminate-write
                    # case, so surface it and never auto-re-send
                    raise IndeterminateWriteError(str(error)) from error
                elif (
                    isinstance(error, ReadOnlyServerError)
                    and error.primary
                    and not redirected
                    and pinned is None
                ):
                    # the write was refused, not applied: following the
                    # announced primary once is safe
                    endpoint = parse_address(error.primary)
                    self._primary = endpoint
                    if endpoint not in self._endpoints:
                        self._endpoints.insert(0, endpoint)
                    redirected = True
                    continue
                else:
                    raise error
            if attempt < self.retries:
                self._sleep(attempt, deadline)
        raise last_error if last_error is not None else TransportError("no endpoints")

    # ------------------------------------------------------------------
    # typed helpers
    # ------------------------------------------------------------------

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def query(
        self,
        query: str,
        *,
        vars: Sequence[str] | None = None,
        semantics: str | None = None,
        mode: str = "auto",
        min_generation: int | None = None,
        min_rel_generation: Mapping[str, int] | None = None,
    ) -> dict:
        payload: dict = {"op": "query", "query": query, "mode": mode}
        if vars is not None:
            payload["vars"] = list(vars)
        if semantics is not None:
            payload["semantics"] = semantics
        if min_generation is not None:
            payload["min_generation"] = min_generation
            payload["wait_timeout_s"] = self.wait_timeout_s
        if min_rel_generation:
            payload["min_rel_generation"] = dict(min_rel_generation)
            payload.setdefault("wait_timeout_s", self.wait_timeout_s)
        return self.request(payload)

    def insert(self, relation: str, rows: Iterable[Sequence]) -> dict:
        return self.request({"op": "insert", "relation": relation, "rows": list(rows)})

    def delete(self, relation: str, rows: Iterable[Sequence]) -> dict:
        return self.request({"op": "delete", "relation": relation, "rows": list(rows)})

    def apply_delta(
        self,
        adds: Mapping[str, list] | None = None,
        removes: Mapping[str, list] | None = None,
    ) -> dict:
        payload: dict = {"op": "delta"}
        if adds:
            payload["adds"] = dict(adds)
        if removes:
            payload["removes"] = dict(removes)
        return self.request(payload)

    def checkpoint(self, *, endpoint: str | tuple | None = None) -> dict:
        """Force a snapshot (the degraded-mode healing op)."""
        return self.request({"op": "checkpoint"}, endpoint=endpoint)

    def promote(self, endpoint: str | tuple) -> dict:
        """Flip the replica at ``endpoint`` writable and adopt it as primary."""
        response = self.request({"op": "promote"}, endpoint=endpoint)
        self._primary = parse_address(endpoint)
        if self._primary not in self._endpoints:
            self._endpoints.insert(0, self._primary)
        return response

    def stats(self, *, endpoint: str | tuple | None = None) -> dict:
        return self.request({"op": "stats"}, endpoint=endpoint)

    def health(self, *, endpoint: str | tuple | None = None) -> dict:
        return self.request({"op": "health"}, endpoint=endpoint)


class _AsyncConn:
    """One live pipelined connection: reader task + id-keyed waiters."""

    __slots__ = ("endpoint", "reader", "writer", "pending", "reader_task", "write_lock")

    def __init__(self, endpoint: tuple[str, int], reader, writer):
        self.endpoint = endpoint
        self.reader = reader
        self.writer = writer
        #: request id → Future resolved by the reader task
        self.pending: dict[object, asyncio.Future] = {}
        self.reader_task: asyncio.Task | None = None
        self.write_lock = asyncio.Lock()


class AsyncClient:
    """The :class:`Client` policy on asyncio, with true pipelining.

    Same endpoints, deadlines, retry/backoff, failover rotation,
    read-your-writes floor and honest-write semantics as the sync
    client — every policy note on :class:`Client` holds here — plus:

    * **pipelining** — each endpoint gets one connection shared by every
      coroutine of the owning event loop; any number of requests may be
      in flight at once, and responses are matched back to their callers
      by the echoed ``id``, so out-of-order completion (a protocol-v2
      server answers fast ops while a slow one still runs) just works;
    * **deadline propagation** — unless disabled (or the caller set its
      own), idempotent requests carry ``deadline_ms`` equal to the
      client's remaining budget, so a v2 server stops working on a
      request its client has already given up on;
    * :meth:`fanout` — a bounded ``asyncio.gather`` helper for the
      scatter half of scatter/gather workloads.

    Instances belong to one event loop.  A request whose response does
    not arrive in time abandons only its own ``id`` — the connection
    and its other in-flight requests stay live.

    >>> import asyncio
    >>> from repro.client import AsyncClient
    >>> from repro.server import async_serve
    >>> from repro.session import Database
    >>> async def demo():
    ...     server = async_serve(Database({"R": [(1, 2)]}))
    ...     try:
    ...         async with AsyncClient(server.address) as client:
    ...             responses = await client.fanout(
    ...                 [{"op": "query", "query": "R(x, y)"}] * 3, concurrency=2
    ...             )
    ...             return [r["answers"] for r in responses]
    ...     finally:
    ...         server.shutdown()
    >>> asyncio.run(demo())
    [[[1, 2]], [[1, 2]], [[1, 2]]]
    """

    def __init__(
        self,
        primary: str | tuple,
        replicas: Iterable[str | tuple] = (),
        *,
        timeout: float = 5.0,
        connect_timeout: float = 1.0,
        retries: int = 5,
        backoff_base: float = 0.05,
        backoff_cap: float = 1.0,
        read_your_writes: bool = True,
        wait_timeout_s: float = 2.0,
        propagate_deadline: bool = True,
        jitter: Callable[[], float] = random.random,
    ):
        self._primary = parse_address(primary)
        self._endpoints: list[tuple[str, int]] = [self._primary]
        for replica in replicas:
            addr = parse_address(replica)
            if addr not in self._endpoints:
                self._endpoints.append(addr)
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.retries = max(0, retries)
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.read_your_writes = read_your_writes
        self.wait_timeout_s = wait_timeout_s
        self.propagate_deadline = propagate_deadline
        self._jitter = jitter
        self._rotation = 0
        self.last_write_generation = 0
        self._conns: dict[tuple[str, int], _AsyncConn] = {}
        self._seq = 0

    # ------------------------------------------------------------------
    # connection plumbing
    # ------------------------------------------------------------------

    @property
    def primary_address(self) -> str:
        host, port = self._primary
        return f"{host}:{port}"

    @property
    def endpoints(self) -> list[str]:
        return [f"{host}:{port}" for host, port in self._endpoints]

    async def aclose(self) -> None:
        """Close every cached connection (idempotent)."""
        conns = list(self._conns.values())
        self._conns.clear()
        for conn in conns:
            if conn.reader_task is not None:
                conn.reader_task.cancel()
            conn.writer.close()
        for conn in conns:
            if conn.reader_task is not None:
                await asyncio.gather(conn.reader_task, return_exceptions=True)

    async def __aenter__(self) -> "AsyncClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.aclose()

    def _abandon(self, conn: _AsyncConn) -> None:
        """Drop a connection whose transport failed mid-request."""
        if self._conns.get(conn.endpoint) is conn:
            del self._conns[conn.endpoint]
        conn.writer.close()  # wakes the reader task, which fails the pending

    async def _read_loop(self, conn: _AsyncConn) -> None:
        """Resolve pipelined responses to their waiters, by echoed id."""
        failure: ClientError | None = None
        try:
            while True:
                line = await conn.reader.readline()
                if not line:
                    break  # clean EOF
                try:
                    response = json.loads(line)
                except ValueError as err:
                    failure = TransportError(
                        f"undecodable response from {conn.endpoint}: {err}"
                    )
                    break
                fut = conn.pending.pop(response.get("id"), None)
                if fut is not None and not fut.done():
                    fut.set_result(response)
        except OSError as err:
            failure = TransportError(f"connection to {conn.endpoint} failed: {err}")
        finally:
            if self._conns.get(conn.endpoint) is conn:
                del self._conns[conn.endpoint]
            conn.writer.close()
            if failure is None:
                # the server closed without answering (drained, crashed,
                # injected drop): every in-flight request's fate is unknown
                failure = IndeterminateWriteError(
                    f"{conn.endpoint} closed the connection mid-request"
                )
            for fut in conn.pending.values():
                if not fut.done():
                    fut.set_exception(failure)
            conn.pending.clear()

    async def _connect(self, endpoint: tuple[str, int], deadline: float) -> _AsyncConn:
        conn = self._conns.get(endpoint)
        if conn is not None:
            return conn
        budget = min(self.connect_timeout, deadline - monotonic())
        if budget <= 0:
            raise DeadlineExceeded(f"deadline expired connecting to {endpoint}")
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(*endpoint), budget
            )
        except (OSError, asyncio.TimeoutError) as err:
            raise TransportError(f"cannot connect to {endpoint}: {err}") from err
        conn = _AsyncConn(endpoint, reader, writer)
        conn.reader_task = asyncio.create_task(self._read_loop(conn))
        self._conns[endpoint] = conn
        return conn

    async def _exchange(
        self, endpoint: tuple[str, int], payload: dict, deadline: float
    ) -> dict:
        """One pipelined request/response on one endpoint; raises on failure.

        A response that never arrives abandons only this request's id;
        other requests multiplexed on the connection are untouched.
        """
        conn = await self._connect(endpoint, deadline)
        remaining = deadline - monotonic()
        if remaining <= 0:
            raise DeadlineExceeded(f"deadline expired before sending to {endpoint}")
        rid = payload["id"]
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        conn.pending[rid] = fut
        data = (json.dumps(payload) + "\n").encode("utf-8")
        try:
            async with conn.write_lock:
                conn.writer.write(data)
                await asyncio.wait_for(conn.writer.drain(), remaining)
        except (OSError, asyncio.TimeoutError) as err:
            conn.pending.pop(rid, None)
            self._abandon(conn)
            raise IndeterminateWriteError(
                f"connection to {endpoint} failed mid-request: {err}"
            ) from err
        remaining = deadline - monotonic()
        try:
            return await asyncio.wait_for(fut, remaining if remaining > 0 else 0)
        except asyncio.TimeoutError as err:
            conn.pending.pop(rid, None)
            raise IndeterminateWriteError(
                f"no response from {endpoint} within the deadline"
            ) from err

    async def _sleep(self, attempt: int, deadline: float) -> None:
        delay = _backoff_delay(self.backoff_base, self.backoff_cap, attempt, self._jitter)
        remaining = deadline - monotonic()
        if remaining <= 0:
            raise DeadlineExceeded("retry budget exhausted")
        if delay >= remaining:
            await asyncio.sleep(remaining)
            raise DeadlineExceeded("deadline expired during retry backoff")
        await asyncio.sleep(delay)

    # ------------------------------------------------------------------
    # the request core
    # ------------------------------------------------------------------

    async def request(self, payload: dict, *, endpoint: str | tuple | None = None) -> dict:
        """Send one raw request object with the full resilience policy.

        The async twin of :meth:`Client.request`: same endpoint
        selection, same typed errors, same honest-write rules.
        """
        op = payload.get("op")
        self._seq += 1
        payload = {"id": self._seq, **payload}
        deadline = monotonic() + self.timeout
        pinned = parse_address(endpoint) if endpoint is not None else None
        if op in IDEMPOTENT_OPS:
            return await self._request_idempotent(payload, deadline, pinned)
        return await self._request_mutation(payload, deadline, pinned)

    def _stamp_read_floor(self, payload: dict) -> dict:
        if (
            self.read_your_writes
            and payload.get("op") in ("query", "batch")
            and self.last_write_generation > 0
            and "min_generation" not in payload
        ):
            payload = {
                **payload,
                "min_generation": self.last_write_generation,
                "wait_timeout_s": self.wait_timeout_s,
            }
        return payload

    def _stamp_deadline(self, payload: dict, deadline: float) -> dict:
        """Propagate the remaining budget as ``deadline_ms`` (reads only)."""
        if not self.propagate_deadline or "deadline_ms" in payload:
            return payload
        remaining_ms = int((deadline - monotonic()) * 1000)
        if remaining_ms <= 0:
            return payload
        return {**payload, "deadline_ms": remaining_ms}

    async def _request_idempotent(
        self, payload: dict, deadline: float, pinned: tuple[str, int] | None
    ) -> dict:
        payload = self._stamp_read_floor(payload)
        can_rotate = pinned is None and payload.get("op") in FAILOVER_OPS
        endpoints = [pinned] if pinned is not None else self._endpoints
        last_error: ClientError | None = None
        for attempt in range(self.retries + 1):
            if can_rotate:
                endpoint = endpoints[self._rotation % len(endpoints)]
            else:
                endpoint = endpoints[0] if pinned is not None else self._primary
            try:
                response = await self._exchange(
                    endpoint, self._stamp_deadline(payload, deadline), deadline
                )
            except DeadlineExceeded:
                raise
            except (TransportError, IndeterminateWriteError) as err:
                # idempotent: ambiguity is free to retry — rotate away
                last_error = (
                    err
                    if isinstance(err, TransportError)
                    else TransportError(str(err))
                )
                if can_rotate:
                    self._rotation += 1
            else:
                if response.get("ok"):
                    return response
                error = _typed_error(response)
                if isinstance(error, StaleReadError) and can_rotate and len(endpoints) > 1:
                    # this node is lagging; another may have caught up
                    last_error = error
                    self._rotation += 1
                elif _retryable_frame(error):
                    last_error = error
                    if can_rotate:
                        self._rotation += 1
                else:
                    raise error
            if attempt < self.retries:
                await self._sleep(attempt, deadline)
        raise last_error if last_error is not None else TransportError("no endpoints")

    async def _request_mutation(
        self, payload: dict, deadline: float, pinned: tuple[str, int] | None
    ) -> dict:
        endpoint = pinned if pinned is not None else self._primary
        redirected = False
        last_error: ClientError | None = None
        for attempt in range(self.retries + 1):
            try:
                response = await self._exchange(endpoint, payload, deadline)
            except DeadlineExceeded:
                raise
            except TransportError as err:
                # the connect itself failed: nothing was sent, retry is safe
                last_error = err
            except IndeterminateWriteError:
                # bytes may have left — surface the ambiguity, never re-send
                raise
            else:
                if response.get("ok"):
                    generation = response.get("generation")
                    if isinstance(generation, int):
                        self.last_write_generation = max(
                            self.last_write_generation, generation
                        )
                    return response
                error = _typed_error(response)
                if isinstance(error, OverloadedServerError):
                    # shed at admission: the write never ran, retry is safe
                    last_error = error
                elif error.error_type == "deadline":
                    raise IndeterminateWriteError(str(error)) from error
                elif (
                    isinstance(error, ReadOnlyServerError)
                    and error.primary
                    and not redirected
                    and pinned is None
                ):
                    endpoint = parse_address(error.primary)
                    self._primary = endpoint
                    if endpoint not in self._endpoints:
                        self._endpoints.insert(0, endpoint)
                    redirected = True
                    continue
                else:
                    raise error
            if attempt < self.retries:
                await self._sleep(attempt, deadline)
        raise last_error if last_error is not None else TransportError("no endpoints")

    # ------------------------------------------------------------------
    # fan-out
    # ------------------------------------------------------------------

    async def fanout(
        self,
        payloads: Iterable[dict],
        *,
        concurrency: int = 64,
        return_exceptions: bool = False,
    ) -> list:
        """Issue many requests concurrently, bounded by ``concurrency``.

        Results come back in input order.  With ``return_exceptions``
        each failed slot holds its :class:`ClientError` instead of the
        first failure cancelling the whole gather.
        """
        semaphore = asyncio.Semaphore(max(1, concurrency))

        async def one(payload: dict):
            async with semaphore:
                return await self.request(payload)

        return list(
            await asyncio.gather(
                *(one(payload) for payload in payloads),
                return_exceptions=return_exceptions,
            )
        )

    # ------------------------------------------------------------------
    # typed helpers
    # ------------------------------------------------------------------

    async def ping(self) -> dict:
        return await self.request({"op": "ping"})

    async def query(
        self,
        query: str,
        *,
        vars: Sequence[str] | None = None,
        semantics: str | None = None,
        mode: str = "auto",
        min_generation: int | None = None,
        min_rel_generation: Mapping[str, int] | None = None,
    ) -> dict:
        payload: dict = {"op": "query", "query": query, "mode": mode}
        if vars is not None:
            payload["vars"] = list(vars)
        if semantics is not None:
            payload["semantics"] = semantics
        if min_generation is not None:
            payload["min_generation"] = min_generation
            payload["wait_timeout_s"] = self.wait_timeout_s
        if min_rel_generation:
            payload["min_rel_generation"] = dict(min_rel_generation)
            payload.setdefault("wait_timeout_s", self.wait_timeout_s)
        return await self.request(payload)

    async def insert(self, relation: str, rows: Iterable[Sequence]) -> dict:
        return await self.request(
            {"op": "insert", "relation": relation, "rows": list(rows)}
        )

    async def delete(self, relation: str, rows: Iterable[Sequence]) -> dict:
        return await self.request(
            {"op": "delete", "relation": relation, "rows": list(rows)}
        )

    async def apply_delta(
        self,
        adds: Mapping[str, list] | None = None,
        removes: Mapping[str, list] | None = None,
    ) -> dict:
        payload: dict = {"op": "delta"}
        if adds:
            payload["adds"] = dict(adds)
        if removes:
            payload["removes"] = dict(removes)
        return await self.request(payload)

    async def checkpoint(self, *, endpoint: str | tuple | None = None) -> dict:
        return await self.request({"op": "checkpoint"}, endpoint=endpoint)

    async def promote(self, endpoint: str | tuple) -> dict:
        """Flip the replica at ``endpoint`` writable and adopt it as primary."""
        response = await self.request({"op": "promote"}, endpoint=endpoint)
        self._primary = parse_address(endpoint)
        if self._primary not in self._endpoints:
            self._endpoints.insert(0, self._primary)
        return response

    async def stats(self, *, endpoint: str | tuple | None = None) -> dict:
        return await self.request({"op": "stats"}, endpoint=endpoint)

    async def health(self, *, endpoint: str | tuple | None = None) -> dict:
        return await self.request({"op": "health"}, endpoint=endpoint)
