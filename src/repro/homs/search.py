"""Homomorphism search between relational instances.

Homomorphisms serve two roles in the paper (Section 2.2): they define
the semantics of incompleteness (valuations are homomorphisms whose
image lies in ``Const``) and the preservation conditions under which
naive evaluation is sound.  This module provides one search *facade*
with switches covering every variant the paper needs:

* *database* homomorphisms — identity on constants (``fix_constants``),
* plain homomorphisms — constants may move (used for the "pure graph"
  examples of Section 10),
* onto homomorphisms — ``h(adom(D)) = adom(D')`` (WCWA, Cor. 4.9),
* strong onto homomorphisms — ``h(D) = D'`` (CWA, Cor. 4.9),
* injective maps and full isomorphisms (the ``≈`` relation).

Two engines implement the search:

* ``"csp"`` — the candidate-table engine of :mod:`repro.homs.engine`:
  per-fact candidate lists probed from the target's hash indexes,
  most-constrained-fact ordering, forward checking with conflict-driven
  early termination.  The default for anything beyond toy sizes.
* ``"legacy"`` — the original fact-by-fact extender, kept as the
  differential-testing baseline (and as the cheaper choice for very
  small inputs, where candidate-table setup outweighs the search).

``engine="auto"`` (the default) picks by instance size; both engines
yield exactly the same set of homomorphisms, in possibly different
orders.
"""

from __future__ import annotations

from typing import Hashable, Iterator, Mapping, Sequence

from repro.data.instance import Instance
from repro.data.values import Null, sort_key

__all__ = [
    "iter_homomorphisms",
    "find_homomorphism",
    "has_homomorphism",
    "find_isomorphism",
    "iter_mappings",
]

Assignment = dict[Hashable, Hashable]

#: below this many combined facts the legacy extender's lower setup cost
#: wins; above it the CSP engine's pruning dominates
_CSP_MIN_FACTS = 12


def _candidate_count(
    row: Sequence[Hashable],
    candidates,
    fix_constants: bool,
) -> int:
    """How many target tuples this fact can map onto in isolation."""
    count = 0
    for cand in candidates:
        bound: dict[Hashable, Hashable] = {}
        for value, image in zip(row, cand):
            if fix_constants and not isinstance(value, Null):
                if value != image:
                    break
            seen = bound.get(value)
            if seen is None:
                bound[value] = image
            elif seen != image:
                break
        else:
            count += 1
    return count


def _ordered_facts(
    source: Instance, target: Instance, fix_constants: bool = True
) -> list[tuple[str, tuple]]:
    """Source facts ordered most-constrained-first.

    Ordering by the per-fact *candidate-set size* — how many target
    tuples actually match the fact's constants and repeated-value
    pattern — rather than by raw target relation size: a fact over a
    large relation may still be maximally constrained (one candidate)
    when its constants pin the probe, and deciding it first prunes the
    search exponentially earlier.
    """
    facts = list(source.facts())
    facts.sort(
        key=lambda fact: (
            _candidate_count(fact[1], target.tuples(fact[0]), fix_constants),
            fact[0],
            tuple(map(sort_key, fact[1])),
        )
    )
    return facts


def _match_fact(
    row: Sequence[Hashable],
    candidate: Sequence[Hashable],
    assignment: Assignment,
    fix_constants: bool,
) -> Assignment | None:
    """Try to extend ``assignment`` so the fact maps onto ``candidate``."""
    extension: Assignment = {}
    for value, image in zip(row, candidate):
        if fix_constants and not isinstance(value, Null) and value != image:
            return None
        bound = assignment.get(value, extension.get(value))
        if bound is None:
            extension[value] = image
        elif bound != image:
            return None
    return extension


def _iter_homomorphisms_legacy(
    source: Instance,
    target: Instance,
    fix_constants: bool = True,
    onto: bool = False,
    strong_onto: bool = False,
    injective: bool = False,
    require_complete_image: bool = False,
    pinned: Mapping[Hashable, Hashable] | None = None,
) -> Iterator[Assignment]:
    """The original fact-by-fact extender (differential baseline)."""
    facts = _ordered_facts(source, target, fix_constants)
    source_adom = source.adom()
    initial: Assignment = {k: v for k, v in (pinned or {}).items() if k in source_adom}

    # Values that occur in no fact cannot exist (adom is fact-defined),
    # so matching all facts assigns every value of the active domain.

    def accept(assignment: Assignment) -> bool:
        if injective and len(set(assignment.values())) != len(assignment):
            return False
        if require_complete_image and any(isinstance(v, Null) for v in assignment.values()):
            return False
        if onto and set(assignment.values()) != set(target.adom()):
            return False
        if strong_onto and source.apply(assignment) != target:
            return False
        return True

    # candidates sorted once per relation, not once per search node
    sorted_tuples = {
        name: sorted(target.tuples(name), key=lambda t: tuple(map(sort_key, t)))
        for name in {fact[0] for fact in facts}
    }

    def extend(index: int, assignment: Assignment) -> Iterator[Assignment]:
        if index == len(facts):
            if accept(assignment):
                yield dict(assignment)
            return
        name, row = facts[index]
        for candidate in sorted_tuples[name]:
            extension = _match_fact(row, candidate, assignment, fix_constants)
            if extension is None:
                continue
            if injective:
                taken = set(assignment.values())
                images = list(extension.values())
                if len(set(images)) != len(images) or taken & set(images):
                    continue
            assignment.update(extension)
            yield from extend(index + 1, assignment)
            for key in extension:
                del assignment[key]

    if not source_adom:
        # The empty instance maps anywhere via the empty map, except
        # when ontoness demands hitting a non-empty active domain.
        empty: Assignment = {}
        if accept(empty):
            yield empty
        return

    yield from extend(0, dict(initial))


def iter_homomorphisms(
    source: Instance,
    target: Instance,
    fix_constants: bool = True,
    onto: bool = False,
    strong_onto: bool = False,
    injective: bool = False,
    require_complete_image: bool = False,
    pinned: Mapping[Hashable, Hashable] | None = None,
    engine: str = "auto",
) -> Iterator[Assignment]:
    """Yield every homomorphism ``h : source → target`` (as a dict on adom).

    Parameters mirror the paper's vocabulary:

    ``fix_constants``
        database homomorphisms: ``h(c) = c`` for every constant.
    ``onto``
        ``h(adom(source)) = adom(target)`` (Rsem-homomorphisms of WCWA).
    ``strong_onto``
        ``h(source) = target`` exactly (Rsem-homomorphisms of CWA).
    ``injective``
        ``h`` is injective on ``adom(source)``.
    ``require_complete_image``
        ``h`` maps every value to a constant — combined with
        ``fix_constants`` this makes ``h`` a *valuation*.
    ``pinned``
        pre-assigned images for selected values (e.g. "identity on the
        fix set" in the minimality tests of Section 10.2).
    ``engine``
        ``"csp"`` (candidate tables + forward checking), ``"legacy"``
        (the original extender), or ``"auto"`` (route by size).  Both
        engines yield the same set of homomorphisms.
    """
    # not a generator: an unknown engine name raises here, at call time,
    # not at the first next() on the returned iterator
    if engine == "auto":
        engine = (
            "csp"
            if source.fact_count() + target.fact_count() >= _CSP_MIN_FACTS
            else "legacy"
        )
    if engine == "csp":
        from repro.homs.engine import iter_homomorphisms_csp

        search = iter_homomorphisms_csp
    elif engine == "legacy":
        search = _iter_homomorphisms_legacy
    else:
        raise ValueError(f"unknown homomorphism engine {engine!r}; use csp/legacy/auto")
    return search(
        source,
        target,
        fix_constants=fix_constants,
        onto=onto,
        strong_onto=strong_onto,
        injective=injective,
        require_complete_image=require_complete_image,
        pinned=pinned,
    )


def find_homomorphism(
    source: Instance,
    target: Instance,
    **options,
) -> Assignment | None:
    """First homomorphism found, or ``None``.  Options as in :func:`iter_homomorphisms`."""
    for hom in iter_homomorphisms(source, target, **options):
        return hom
    return None


def has_homomorphism(source: Instance, target: Instance, **options) -> bool:
    """True iff some homomorphism ``source → target`` exists."""
    return find_homomorphism(source, target, **options) is not None


def find_isomorphism(
    source: Instance,
    target: Instance,
    fix_constants: bool = True,
) -> Assignment | None:
    """A bijection ``π`` on data values with ``π(source) = target``, or ``None``.

    This is the paper's structural equivalence ``≈`` (Section 3.1);
    with ``fix_constants`` it is the database version used for naive
    databases, without it the purely structural one.
    """
    if source.fact_count() != target.fact_count():
        return None
    if len(source.adom()) != len(target.adom()):
        return None
    return find_homomorphism(
        source,
        target,
        fix_constants=fix_constants,
        injective=True,
        strong_onto=True,
    )


def iter_mappings(
    domain: Sequence[Hashable],
    pool: Sequence[Hashable],
    base: Mapping[Hashable, Hashable] | None = None,
) -> Iterator[Assignment]:
    """All functions from ``domain`` into ``pool``, extended over ``base``.

    The brute-force engine behind valuation enumeration: for an
    instance with nulls ``⊥1..⊥n`` and a finite constant pool, the
    valuations are exactly ``iter_mappings(nulls, pool)``.
    """
    domain = sorted(domain, key=sort_key)
    base = dict(base or {})

    def extend(index: int, assignment: Assignment) -> Iterator[Assignment]:
        if index == len(domain):
            yield dict(assignment)
            return
        value = domain[index]
        for image in pool:
            assignment[value] = image
            yield from extend(index + 1, assignment)
        assignment.pop(value, None)  # pool may be empty: nothing assigned

    yield from extend(0, base)
