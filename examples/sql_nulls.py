"""SQL's NULL through the Codd-database lens (paper Sections 1 and 6).

Demonstrates:

* the infamous ``NOT IN`` paradox that motivates the paper,
* round-tripping SQL-style rows (``None``) into Codd databases,
* the Hoare/Plotkin information orderings and their match with the
  semantic orderings (Libkin 2011 recap + Theorem 7.1).

Run with::

    python examples/sql_nulls.py
"""

from repro import Instance, Query, evaluate, parse
from repro.data.codd import from_sql_rows, to_sql_rows
from repro.orders.codd import cwa_codd_leq, hoare_leq, plotkin_leq
from repro.orders.semantic import leq_cwa, leq_owa, leq_pcwa

# ----------------------------------------------------------------------
# 1. The NOT IN paradox
# ----------------------------------------------------------------------
# SQL:  SELECT x FROM X WHERE x NOT IN (SELECT y FROM Y)
# With X = {1,2,3} and Y = {1, NULL}, SQL returns the empty set even
# though |X| > |Y| — because x <> NULL is 'unknown' for every x.

db = from_sql_rows({"X": [(1,), (2,), (3,)], "Y": [(1,), (None,)]})
print("X =", sorted(db.tuples("X")), " Y =", sorted(db.tuples("Y"), key=repr))

not_in = Query(parse("X(v) & !Y(v)"), ("v",), name="not_in")
result = evaluate(not_in, db, semantics="cwa")
print(f"certain answers to X NOT IN Y under CWA: {set(result.answers)}")
# The certain answer is empty — but for the *right* reason: the single
# null can be any one of 2 or 3, and no tuple survives every valuation.
assert result.answers == frozenset()

# If Y's null could be at most 1 (say a key constraint made it equal 1),
# the paradox dissolves; model that by replacing the null:
y_null = next(iter(db.tuples("Y") - {(1,)}))[0]
resolved = db.apply({y_null: 1})
result2 = evaluate(not_in, resolved, semantics="cwa")
print(f"after resolving the null to 1: {sorted(result2.answers)}")
assert result2.answers == frozenset({(2,), (3,)})

# ----------------------------------------------------------------------
# 2. SQL rows round-trip
# ----------------------------------------------------------------------

rows = to_sql_rows(db)
print("\nback to SQL-style rows:", rows)
assert rows["Y"] == [(1,), (None,)] or rows["Y"] == [(None,), (1,)]

# ----------------------------------------------------------------------
# 3. Information orderings on Codd databases
# ----------------------------------------------------------------------
# The paper's Section 6 example: losing values makes tuples less
# informative; the orderings track how updates refine them.

incomplete = from_sql_rows({"R": [(None, 2)]})
more_info = Instance({"R": [(1, 2), (2, 2)]})

print("\nD  =", incomplete.pretty())
print("D' =", more_info.pretty())
print("Hoare   D ⊑H D':", hoare_leq(incomplete, more_info))
print("Plotkin D ⊑P D':", plotkin_leq(incomplete, more_info))
print("≼_OWA:", leq_owa(incomplete, more_info), " (matches ⊑H on Codd)")
print("≼_CWA:", leq_cwa(incomplete, more_info), " (needs a perfect matching too)")
print("⋐_CWA:", leq_pcwa(incomplete, more_info), " (matches ⊑P on Codd — Thm 7.1)")

assert hoare_leq(incomplete, more_info) == leq_owa(incomplete, more_info)
assert plotkin_leq(incomplete, more_info) == leq_pcwa(incomplete, more_info)
assert cwa_codd_leq(incomplete, more_info) == leq_cwa(incomplete, more_info)

print("\nSQL-nulls example OK.")
