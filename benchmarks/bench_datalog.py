"""Experiment DLOG — naive evaluation works for datalog (Section 12).

The paper's "Other languages" paragraph: datalog (without negation) is
monotone and generic, so naive evaluation computes certain answers.
Benched: transitive closure over incomplete graphs, validated against
the brute-force oracle under CWA and OWA, plus fixpoint scaling.
"""

import pytest

from repro.data.generate import cycle, path
from repro.data.instance import Instance
from repro.data.values import Null
from repro.datalog import (
    Atom,
    Program,
    Rule,
    datalog_certain_answers,
    datalog_naive_answers,
    evaluate_program,
)
from repro.logic.ast import Var
from repro.semantics import get_semantics

x, y, z = Var("x"), Var("y"), Var("z")
X, Y = Null("x"), Null("y")

TC = Program(
    (
        Rule(Atom("T", (x, y)), (Atom("E", (x, y)),)),
        Rule(Atom("T", (x, z)), (Atom("E", (x, y)), Atom("T", (y, z)))),
    )
)

EDBS = [
    Instance({"E": [(1, X), (X, 2)]}),
    Instance({"E": [(X, Y), (Y, X)]}),
    Instance({"E": [(1, 2), (2, X)]}),
]


@pytest.mark.parametrize("key", ["cwa", "owa"])
def test_datalog_naive_equals_certain(benchmark, key):
    sem = get_semantics(key)
    extra = {"extra_facts": 1} if key == "owa" else {}

    def run():
        agreements = 0
        for edb in EDBS:
            naive = datalog_naive_answers(TC, edb, "T")
            certain = datalog_certain_answers(TC, edb, "T", sem, **extra)
            agreements += naive == certain
        return agreements

    agreements = benchmark(run)
    benchmark.extra_info["agreement"] = f"{agreements}/{len(EDBS)}"
    assert agreements == len(EDBS)


@pytest.mark.parametrize("n", [8, 16, 32])
def test_tc_fixpoint_scaling(benchmark, n):
    edb = path(n, values=list(range(n + 1)))
    fixpoint = benchmark(evaluate_program, TC, edb)
    benchmark.extra_info["n_edges"] = n
    assert len(fixpoint.tuples("T")) == n * (n + 1) // 2


def test_tc_on_incomplete_cycle(benchmark):
    nodes = [Null(f"c{i}") for i in range(6)]
    edb = cycle(6, nodes)

    def run():
        return datalog_naive_answers(TC, edb, "T")

    answers = benchmark(run)
    # everything is a null: no certain (null-free) answers, by design
    assert answers == frozenset()
