"""Unit tests for repro.logic.parser."""

import pytest

from repro.logic.ast import (
    And,
    EqAtom,
    Exists,
    Forall,
    Implies,
    Not,
    Or,
    RelAtom,
    TrueF,
    Var,
)
from repro.logic.parser import ParseError, parse

x, y, z = Var("x"), Var("y"), Var("z")


class TestAtoms:
    def test_relational_atom(self):
        assert parse("R(x, y)") == RelAtom("R", (x, y))

    def test_numeric_constants(self):
        assert parse("R(x, 5)") == RelAtom("R", (x, 5))
        assert parse("R(-3)") == RelAtom("R", (-3,))

    def test_string_constants(self):
        assert parse("R('alice', x)") == RelAtom("R", ("alice", x))
        assert parse('R("bob")') == RelAtom("R", ("bob",))

    def test_equality(self):
        assert parse("x = y") == EqAtom(x, y)
        assert parse("x = 3") == EqAtom(x, 3)
        assert parse("5 = x") == EqAtom(5, x)

    def test_truth_constants(self):
        assert isinstance(parse("true"), TrueF)


class TestConnectives:
    def test_precedence_and_over_or(self):
        got = parse("R(x) | S(x) & T(x)")
        assert isinstance(got, Or)
        assert isinstance(got.subs[1], And)

    def test_arrow_lowest_right_assoc(self):
        got = parse("R(x) -> S(x) -> T(x)")
        assert isinstance(got, Implies)
        assert isinstance(got.right, Implies)

    def test_negation(self):
        assert parse("!R(x)") == Not(RelAtom("R", (x,)))
        assert parse("~~R(x)") == Not(Not(RelAtom("R", (x,))))

    def test_parentheses(self):
        got = parse("(R(x) | S(x)) & T(x)")
        assert isinstance(got, And)

    def test_nary_flattening_not_applied(self):
        got = parse("R(x) & S(x) & T(x)")
        assert isinstance(got, And) and len(got.subs) == 3


class TestQuantifiers:
    def test_dot_body_extends_right(self):
        got = parse("exists x . R(x) & S(x)")
        assert isinstance(got, Exists)
        assert isinstance(got.sub, And)

    def test_parenthesised_body(self):
        got = parse("exists x (R(x)) & S(y)")
        assert isinstance(got, And)
        assert isinstance(got.subs[0], Exists)

    def test_multi_variable(self):
        got = parse("forall x, y . E(x, y)")
        assert got == Forall((x, y), RelAtom("E", (x, y)))

    def test_unicode_connectives(self):
        assert parse("R(x) ∧ S(x)") == parse("R(x) & S(x)")
        assert parse("R(x) ∨ S(x)") == parse("R(x) | S(x)")
        assert parse("¬R(x)") == parse("!R(x)")
        assert parse("R(x) → S(x)") == parse("R(x) -> S(x)")

    def test_guard_shape_parses(self):
        got = parse("forall x, y . R(x, y) -> exists z . S(y, z)")
        assert isinstance(got, Forall)
        assert isinstance(got.sub, Implies)


class TestErrors:
    def test_trailing_input(self):
        with pytest.raises(ParseError):
            parse("R(x) R(y)")

    def test_unbalanced_parens(self):
        with pytest.raises(ParseError):
            parse("(R(x)")

    def test_bad_character(self):
        with pytest.raises(ParseError):
            parse("R(x) @ S(y)")

    def test_bare_identifier_without_equality(self):
        with pytest.raises(ParseError):
            parse("x")

    def test_empty_input(self):
        with pytest.raises(ParseError):
            parse("")

    def test_error_mentions_position(self):
        try:
            parse("R(x) &")
        except ParseError as err:
            assert "position" in str(err)
        else:
            pytest.fail("expected ParseError")


class TestRoundTrips:
    @pytest.mark.parametrize(
        "text",
        [
            "exists z (R(x, z) & S(z, y))",
            "forall x . exists y . D(x, y)",
            "forall x, y . R(x, y) -> (exists z . S(y, z))",
            "!R(x, 1) | x = y",
            "true & false",
        ],
    )
    def test_parse_is_stable_under_reparse_of_repr_free_forms(self, text):
        # parsing twice gives identical ASTs (determinism)
        assert parse(text) == parse(text)
