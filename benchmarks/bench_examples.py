"""Experiments E2-intro and E2-D0 — the paper's worked examples as benches.

Regenerates the introduction's join example and Section 2.4's D0
separation (the same query with different certain answers under OWA vs
CWA), timing naive evaluation against the certain-answer oracle.
"""

import pytest

from repro.core import certain_answers, certain_holds, naive_eval, naive_holds
from repro.data.generate import d0_example, intro_example
from repro.logic.parser import parse
from repro.logic.queries import Query
from repro.semantics import get_semantics

JOIN = Query(parse("exists z (R(x, z) & S(z, y))"), ("x", "y"), name="join")
CYCLE2 = Query.boolean(parse("exists x, y . D(x,y) & D(y,x)"), name="cycle2")
TOTAL = Query.boolean(parse("forall x . exists y . D(x,y)"), name="total")


def test_intro_naive(benchmark):
    db = intro_example()
    answers = benchmark(naive_eval, JOIN, db)
    benchmark.extra_info["answers"] = sorted(map(str, answers))
    assert answers == frozenset({(1, 4)})


@pytest.mark.parametrize("key", ["owa", "cwa", "mincwa"])
def test_intro_certain(benchmark, key):
    db = intro_example()
    sem = get_semantics(key)
    answers = benchmark(certain_answers, JOIN, db, sem)
    benchmark.extra_info["semantics"] = sem.notation
    assert answers == frozenset({(1, 4)}), key


def test_d0_exists_query_naive_matches_certain(benchmark):
    d0 = d0_example()

    def run():
        naive = naive_holds(CYCLE2, d0)
        owa = certain_holds(CYCLE2, d0, get_semantics("owa"), extra_facts=1)
        cwa = certain_holds(CYCLE2, d0, get_semantics("cwa"))
        return naive, owa, cwa

    naive, owa, cwa = benchmark(run)
    benchmark.extra_info["naive/owa/cwa"] = f"{naive}/{owa}/{cwa}"
    assert naive and owa and cwa


def test_d0_forall_query_separates_owa_from_cwa(benchmark):
    d0 = d0_example()

    def run():
        naive = naive_holds(TOTAL, d0)
        owa = certain_holds(TOTAL, d0, get_semantics("owa"), extra_facts=1)
        cwa = certain_holds(TOTAL, d0, get_semantics("cwa"))
        wcwa = certain_holds(TOTAL, d0, get_semantics("wcwa"))
        return naive, owa, cwa, wcwa

    naive, owa, cwa, wcwa = benchmark(run)
    benchmark.extra_info["naive"] = naive
    benchmark.extra_info["certain owa/cwa/wcwa"] = f"{owa}/{cwa}/{wcwa}"
    # the paper's separation: naive true; false under OWA; true under CWA
    assert naive and not owa and cwa and wcwa
