"""Tests for repro.session: the Database facade and prepared queries."""

import pytest

from repro.core import certain_answers, evaluate, naive_eval
from repro.core.plan import Plan
from repro.data.instance import Instance
from repro.data.values import Null
from repro.logic.parser import parse
from repro.logic.queries import Query
from repro.semantics import get_semantics
from repro.session import Database, PreparedQuery

X, Y = Null("x"), Null("y")

JOIN_TEXT = "exists z (R(x, z) & S(z, y))"
FORALL_TEXT = "forall x . exists y . D(x, y)"


def counting(monkeypatch, dotted, counter, key):
    """Wrap ``dotted`` (module.attr) so calls are counted in ``counter[key]``."""
    module_path, attr = dotted.rsplit(".", 1)
    import importlib

    module = importlib.import_module(module_path)
    real = getattr(module, attr)

    def wrapper(*args, **kwargs):
        counter[key] += 1
        return real(*args, **kwargs)

    monkeypatch.setattr(module, attr, wrapper)


class TestDatabaseBasics:
    def test_query_evaluates_like_free_function(self, intro_db, join_query):
        db = Database(intro_db, semantics="owa")
        prepared = db.query(join_query)
        assert prepared.evaluate().answers == evaluate(join_query, intro_db, "owa").answers

    def test_text_query_with_vars(self, intro_db):
        db = Database(intro_db, semantics="owa")
        q = db.query(JOIN_TEXT, vars=("x", "y"))
        assert q.evaluate().answers == frozenset({(1, 4)})

    def test_mapping_constructor(self):
        db = Database({"R": [(1, X)]})
        assert db.instance == Instance({"R": [(1, X)]})

    def test_default_vars_are_sorted_free_vars(self, intro_db):
        db = Database(intro_db, semantics="owa")
        q = db.query(JOIN_TEXT)
        assert tuple(v.name for v in q.query.answer_vars) == ("x", "y")

    def test_boolean_query(self, d0):
        db = Database(d0, semantics="cwa")
        result = db.evaluate("exists x, y . D(x, y) & D(y, x)")
        assert result.holds and result.exact

    def test_explain_returns_plan(self, d0):
        db = Database(d0, semantics="owa")
        plan = db.explain(FORALL_TEXT)
        assert isinstance(plan, Plan)
        assert plan.backend == "enumeration"
        assert not plan.verdict.sound

    def test_semantics_override_per_query(self, d0):
        db = Database(d0, semantics="owa")
        owa = db.evaluate(FORALL_TEXT)
        cwa = db.evaluate(FORALL_TEXT, semantics="cwa")
        assert not owa.holds and cwa.holds

    def test_prepared_query_of_other_db_rejected(self, d0, intro_db):
        other = Database(intro_db, semantics="cwa")
        q = other.query("exists x, y . D(x, y)")
        with pytest.raises(ValueError):
            Database(d0).query(q)

    def test_prepared_query_semantics_conflict_rejected(self, d0):
        db = Database(d0, semantics="cwa")
        q = db.query(FORALL_TEXT)
        with pytest.raises(ValueError):
            db.evaluate(q, semantics="owa")

    def test_stats_report_timing_and_backend(self, intro_db, join_query):
        db = Database(intro_db, semantics="owa")
        result = db.evaluate(join_query)
        assert result.stats["backend"] == "columnar"
        assert result.stats["execution_s"] >= 0
        assert result.stats["planning_s"] >= 0
        assert result.stats["pool_size"] == 0  # naive: no pool materialised

    def test_stats_pool_size_reports_materialised_pool(self, d0):
        db = Database(d0, semantics="cwa")
        result = db.evaluate(FORALL_TEXT, mode="enumeration")
        assert result.stats["pool_size"] >= 1


class TestCaching:
    """Acceptance: analyzer/core-check/pool computed once across evaluations."""

    def test_analyze_core_pool_each_computed_once(self, monkeypatch):
        counts = {"analyze": 0, "is_core": 0, "pool": 0}
        counting(monkeypatch, "repro.core.analyzer.analyze", counts, "analyze")
        counting(monkeypatch, "repro.homs.core.is_core", counts, "is_core")
        counting(monkeypatch, "repro.core.certain.default_pool", counts, "pool")

        # mincwa + sound fragment → the plan needs analyzer AND core check
        db = Database(Instance({"D": [(X, X), (X, 1)]}), semantics="mincwa")
        q = db.query("exists v . D(v, v)")
        first = q.evaluate()
        second = q.evaluate()
        third = q.evaluate()
        assert first.answers == second.answers == third.answers
        # naive-routed: the pool is never even materialised
        assert counts == {"analyze": 1, "is_core": 1, "pool": 0}

    def test_enumeration_path_reuses_pool(self, monkeypatch, d0):
        counts = {"analyze": 0, "pool": 0}
        counting(monkeypatch, "repro.core.analyzer.analyze", counts, "analyze")
        counting(monkeypatch, "repro.core.certain.default_pool", counts, "pool")
        db = Database(d0, semantics="owa")
        q = db.query(FORALL_TEXT)
        q.evaluate()
        q.evaluate()
        assert counts == {"analyze": 1, "pool": 1}

    def test_same_text_returns_same_prepared_object(self, d0):
        db = Database(d0, semantics="cwa")
        assert db.query(FORALL_TEXT) is db.query(FORALL_TEXT)

    def test_name_override_on_query_object_rejected(self, d0):
        db = Database(d0, semantics="cwa")
        q = Query.boolean(parse(FORALL_TEXT), name="total")
        with pytest.raises(ValueError, match="name"):
            db.query(q, name="other")

    def test_name_override_on_prepared_query_rejected(self, d0):
        db = Database(d0, semantics="cwa")
        p = db.query(FORALL_TEXT)
        with pytest.raises(ValueError, match="name"):
            db.query(p, name="other")

    def test_mixed_batch_reports_pool_only_for_oracle_backends(self):
        db = Database(Instance({"R": [(1, X)]}), semantics="owa")
        naive_r, enum_r = db.evaluate_many(
            ["exists z . R(1, z)", "forall u . exists v . R(u, v)"]
        )
        assert naive_r.method == "columnar" and naive_r.stats["pool_size"] == 0
        assert enum_r.method == "enumeration" and enum_r.stats["pool_size"] >= 1

    def test_query_objects_are_interned_too(self, d0, monkeypatch):
        counts = {"analyze": 0}
        counting(monkeypatch, "repro.core.analyzer.analyze", counts, "analyze")
        db = Database(d0, semantics="cwa")
        q = Query.boolean(parse(FORALL_TEXT))
        assert db.query(q) is db.query(q)
        for _ in range(3):
            db.evaluate(q)
        assert counts["analyze"] == 1

    def test_prepared_cache_is_bounded_lru(self, d0):
        db = Database(d0, semantics="cwa", prepared_cache_size=2)
        hot = db.query("exists u . D(u, 1)")
        db.query("exists u . D(u, 2)")
        assert db.query("exists u . D(u, 1)") is hot  # touch → most recent
        db.query("exists u . D(u, 3)")  # evicts the least recent (…, 2)
        assert db.query("exists u . D(u, 1)") is hot  # survived as LRU-hot
        assert len(db._prepared) <= 2

    def test_different_semantics_prepare_separately(self, d0):
        db = Database(d0, semantics="cwa")
        assert db.query(FORALL_TEXT) is not db.query(FORALL_TEXT, semantics="owa")

    def test_plan_object_cached_per_mode(self, d0):
        db = Database(d0, semantics="cwa")
        q = db.query(FORALL_TEXT)
        assert q.plan() is q.plan()
        assert q.plan("enumeration") is q.plan("enumeration")
        assert q.plan() is not q.plan("enumeration")


class TestInvalidation:
    def test_mutation_bumps_generation(self, d0):
        db = Database(d0, semantics="cwa")
        g = db.generation
        db.add_fact("D", (1, 2))
        assert db.generation == g + 1
        db.remove_fact("D", (1, 2))
        assert db.generation == g + 2

    def test_noop_mutation_keeps_generation(self, d0):
        db = Database(d0, semantics="cwa")
        g = db.generation
        db.remove_fact("Nope", (1,))
        assert db.generation == g

    def test_mutation_invalidates_pool_and_plan(self, monkeypatch):
        counts = {"pool": 0}
        counting(monkeypatch, "repro.core.certain.default_pool", counts, "pool")
        db = Database(Instance({"D": [(X, Y)]}), semantics="owa")
        q = db.query(FORALL_TEXT)
        plan_before = q.plan()
        q.evaluate()
        assert counts["pool"] == 1
        db.add_fact("D", (7, 8))
        q.evaluate()
        assert counts["pool"] == 2
        assert q.plan() is not plan_before
        assert 7 in q.pool and 8 in q.pool

    def test_mutation_changes_answers(self):
        db = Database(Instance({"D": [(1, 2)]}), semantics="cwa")
        q = db.query("exists x . D(x, 3)")
        assert not q.evaluate().holds
        db.add_fact("D", (2, 3))
        assert q.evaluate().holds

    def test_replace_swaps_instance(self, d0, intro_db):
        db = Database(d0)
        db.replace(intro_db)
        assert db.instance == intro_db

    def test_extra_facts_mutation_invalidates_plans(self, d0, forall_exists_query):
        # regression: changing the truncation knob must not leave a
        # cached plan claiming exactness for a now-truncated enumeration
        db = Database(d0, semantics="wcwa")
        q = db.query(forall_exists_query)
        # WCWA enumeration is exact only without the truncation bound
        assert q.evaluate("enumeration").exact
        db.extra_facts = 1
        result = q.evaluate("enumeration")
        assert not result.exact and result.direction == "superset"
        db.extra_facts = None
        assert q.evaluate("enumeration").exact

    def test_extra_facts_same_value_keeps_generation(self, d0):
        db = Database(d0, semantics="owa", extra_facts=2)
        g = db.generation
        db.extra_facts = 2
        assert db.generation == g

    def test_vars_override_on_prepared_query_rejected(self, d0):
        db = Database(d0, semantics="cwa")
        q = db.query("D(x, y)", vars=("x", "y"))
        with pytest.raises(ValueError, match="vars"):
            db.query(q, vars=("y", "x"))

    def test_core_check_cached_per_generation(self, monkeypatch):
        counts = {"is_core": 0}
        counting(monkeypatch, "repro.homs.core.is_core", counts, "is_core")
        db = Database(Instance({"D": [(X, X), (X, 1)]}), semantics="mincwa")
        q1 = db.query("exists v . D(v, v)")
        q2 = db.query("exists v . D(v, 1)")
        q1.evaluate()
        q2.evaluate()
        assert counts["is_core"] == 1  # shared across prepared queries
        db.add_fact("D", (1, 1))
        q1.evaluate()
        assert counts["is_core"] == 2


class TestEvaluateMany:
    QUERIES = [
        "exists x, y . D(x, y)",
        FORALL_TEXT,
        "exists x . D(x, x)",
    ]

    def test_matches_individual_evaluation(self, d0):
        db = Database(d0, semantics="cwa")
        batch = db.evaluate_many(self.QUERIES)
        solo = [db.evaluate(q) for q in self.QUERIES]
        assert [r.answers for r in batch] == [r.answers for r in solo]

    def test_shares_pool_and_core_check(self, monkeypatch):
        counts = {"pool": 0, "is_core": 0}
        counting(monkeypatch, "repro.core.certain.default_pool", counts, "pool")
        counting(monkeypatch, "repro.homs.core.is_core", counts, "is_core")
        db = Database(Instance({"D": [(X, X), (X, 1)]}), semantics="mincwa")
        db.evaluate_many(self.QUERIES, mode="enumeration")
        assert counts["pool"] == 1  # one shared pool for the whole batch
        assert counts["is_core"] <= 1

    def test_all_naive_batch_builds_no_pool(self, monkeypatch, d0):
        counts = {"pool": 0}
        counting(monkeypatch, "repro.core.certain.default_pool", counts, "pool")
        db = Database(d0, semantics="cwa")  # every query routes naive
        results = db.evaluate_many(self.QUERIES)
        assert counts["pool"] == 0
        assert all(r.method == "columnar" for r in results)

    def test_batch_stats(self, d0):
        db = Database(d0, semantics="cwa")
        for result in db.evaluate_many(self.QUERIES):
            assert result.stats["batch"] is True
            assert result.stats["execution_s"] >= 0
            assert result.stats["pool_size"] >= 0
            assert result.stats["pool_build_s"] >= 0

    def test_batch_pool_build_time_attributed(self, d0):
        db = Database(d0, semantics="cwa")
        first = db.evaluate_many(self.QUERIES, mode="enumeration")
        again = db.evaluate_many(self.QUERIES, mode="enumeration")
        assert any(r.stats["pool_build_s"] > 0 for r in first)
        assert all(r.stats["pool_build_s"] == 0 for r in again)  # memo hit

    def test_repeated_batches_reuse_the_shared_pool(self, monkeypatch):
        counts = {"pool": 0}
        counting(monkeypatch, "repro.core.certain.default_pool", counts, "pool")
        db = Database(Instance({"D": [(X, X), (X, 1)]}), semantics="mincwa")
        db.evaluate_many(self.QUERIES, mode="enumeration")
        db.evaluate_many(self.QUERIES, mode="enumeration")
        assert counts["pool"] == 1  # memoised across identical batches
        db.add_fact("D", (2, 3))
        db.evaluate_many(self.QUERIES, mode="enumeration")
        assert counts["pool"] == 2  # mutation invalidates the memo

    def test_shared_pool_covers_all_query_constants(self, monkeypatch):
        seen_pools = []
        import importlib

        certain_mod = importlib.import_module("repro.core.certain")
        real = certain_mod.default_pool

        def spy(*args, **kwargs):
            pool = real(*args, **kwargs)
            seen_pools.append(pool)
            return pool

        monkeypatch.setattr(certain_mod, "default_pool", spy)
        db = Database(Instance({"D": [(X, Y)]}), semantics="cwa")
        db.evaluate_many(
            ["exists x . D(x, 41)", "exists x . D(42, x)"], mode="enumeration"
        )
        assert len(seen_pools) == 1
        assert {41, 42} <= set(seen_pools[0])

    def test_empty_batch(self, d0):
        assert Database(d0).evaluate_many([]) == []

    def test_batches_reuse_the_prepared_plan_cache(self, monkeypatch, d0):
        counts = {"make_plan": 0}
        counting(monkeypatch, "repro.core.plan.make_plan", counts, "make_plan")
        db = Database(d0, semantics="cwa")
        db.evaluate_many(self.QUERIES)
        db.evaluate_many(self.QUERIES)      # same texts → interned → cached plans
        for text in self.QUERIES:
            db.query(text).evaluate()        # single path shares the same cache
        assert counts["make_plan"] == len(self.QUERIES)

    def test_exactness_flags_match_single_path(self, d0):
        db = Database(d0, semantics="owa")
        batch = db.evaluate_many(self.QUERIES)
        solo = [db.evaluate(q) for q in self.QUERIES]
        assert [(r.exact, r.direction, r.method) for r in batch] == [
            (r.exact, r.direction, r.method) for r in solo
        ]


class TestBackendSelection:
    def test_all_backends_selectable_by_name(self, d0):
        db = Database(d0, semantics="cwa")
        text = "exists x, y . D(x, y) & D(y, x)"
        answers = {
            mode: db.evaluate(text, mode=mode).answers
            for mode in ("naive", "enumeration", "ctable")
        }
        assert answers["enumeration"] == answers["ctable"]
        # this query is sound under CWA, so naive agrees as well
        assert answers["naive"] == answers["enumeration"]

    def test_ctable_agrees_with_enumeration_on_kary(self, intro_db, join_query):
        db = Database(intro_db, semantics="cwa")
        q = db.query(join_query)
        assert q.evaluate("ctable").answers == q.evaluate("enumeration").answers

    def test_ctable_rejected_outside_cwa(self, d0):
        db = Database(d0, semantics="owa")
        with pytest.raises(ValueError, match="ctable"):
            db.evaluate("exists x . D(x, x)", mode="ctable")

    def test_legacy_wrapper_accepts_all_backends(self, d0):
        q = Query.boolean(parse("exists x, y . D(x, y) & D(y, x)"))
        for mode in ("naive", "enumeration", "ctable"):
            result = evaluate(q, d0, semantics="cwa", mode=mode)
            assert result.method == mode
            assert result.holds

    def test_unknown_mode_raises(self, d0):
        with pytest.raises(ValueError, match="unknown backend"):
            Database(d0).evaluate("exists x . D(x, x)", mode="quantum")


class TestAgainstReference:
    """The session path must compute exactly what the primitives compute."""

    @pytest.mark.parametrize("semantics", ["owa", "cwa", "wcwa", "pcwa", "mincwa"])
    def test_auto_matches_free_evaluate(self, d0, semantics):
        q = Query.boolean(parse(FORALL_TEXT))
        db = Database(d0, semantics=semantics)
        assert db.evaluate(q).answers == evaluate(q, d0, semantics).answers

    def test_naive_backend_is_naive_eval(self, intro_db, join_query):
        db = Database(intro_db, semantics="owa")
        assert db.evaluate(join_query, mode="naive").answers == naive_eval(
            join_query, intro_db
        )

    def test_enumeration_backend_is_certain_answers(self, d0):
        q = Query.boolean(parse(FORALL_TEXT))
        db = Database(d0, semantics="cwa")
        assert db.evaluate(q, mode="enumeration").answers == certain_answers(
            q, d0, get_semantics("cwa")
        )

    def test_prepared_repr_mentions_semantics(self, d0):
        db = Database(d0, semantics="cwa")
        q = db.query(FORALL_TEXT)
        assert isinstance(q, PreparedQuery)
        assert "cwa" in repr(q)
