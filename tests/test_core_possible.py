"""Tests for possible answers (the dual of certain answers)."""

import pytest

from repro.core.certain import certain_answers, certain_holds
from repro.core.possible import possible_answers, possible_holds
from repro.data.instance import Instance
from repro.data.values import Null
from repro.logic.parser import parse
from repro.logic.queries import Query
from repro.semantics import get_semantics

X, Y = Null("x"), Null("y")


class TestBasics:
    def test_possible_contains_certain(self):
        d = Instance({"R": [(1, X), (2, 3)]})
        q = Query(parse("R(a, b)"), ("a", "b"))
        for key in ("cwa", "mincwa", "pcwa"):
            sem = get_semantics(key)
            certain = certain_answers(q, d, sem)
            possible = possible_answers(q, d, sem)
            assert certain <= possible, key

    def test_null_row_possible_not_certain(self):
        d = Instance({"R": [(1, X)]})
        q = Query.boolean(parse("R(1, 2)"))
        sem = get_semantics("cwa")
        assert possible_holds(q, d, sem)
        assert not certain_holds(q, d, sem)

    def test_impossible_stays_impossible(self):
        d = Instance({"R": [(1, X)]})
        q = Query.boolean(parse("R(2, 2)"))
        assert not possible_holds(q, d, get_semantics("cwa"))
        # ... though OWA extensions make anything over the schema possible
        assert possible_holds(q, d, get_semantics("owa"), extra_facts=1)

    def test_complete_instance_possible_equals_certain(self):
        d = Instance({"R": [(1, 2)]})
        q = Query(parse("R(a, b)"), ("a", "b"))
        sem = get_semantics("cwa")
        assert possible_answers(q, d, sem) == certain_answers(q, d, sem)

    def test_fresh_values_dropped_by_default(self):
        d = Instance({"R": [(1, X)]})
        q = Query(parse("R(a, b)"), ("a", "b"))
        possible = possible_answers(q, d, get_semantics("cwa"))
        assert all(not (isinstance(v, str) and v.startswith("_f")) for row in possible for v in row)

    def test_fresh_values_kept_on_request(self):
        d = Instance({"R": [(1, X)]})
        q = Query(parse("R(a, b)"), ("a", "b"))
        possible = possible_answers(q, d, get_semantics("cwa"), drop_fresh=False)
        assert any(isinstance(v, str) and v.startswith("_f") for row in possible for v in row)

    def test_kary_guard(self):
        q = Query(parse("R(a, b)"), ("a", "b"))
        with pytest.raises(ValueError):
            possible_holds(q, Instance.empty().add_fact("R", (1, 1)), get_semantics("cwa"))


class TestDisjunctiveKnowledge:
    def test_cwa_vs_pcwa_possibility(self):
        """Under powerset CWA, both images can coexist in one world."""
        d = Instance({"R": [(X,)]})
        both = Query.boolean(parse("R(1) & R(2)"))
        assert not possible_holds(both, d, get_semantics("cwa"))
        assert possible_holds(both, d, get_semantics("pcwa"), extra_facts=2)

    def test_minimal_semantics_restrict_possibility(self):
        d = Instance({"T": [(X, X), (X, Y)]})
        # a world with two distinct rows requires a non-minimal valuation
        q = Query.boolean(parse("exists a, b, c . T(a, b) & T(a, c) & !(b = c)"))
        assert possible_holds(q, d, get_semantics("cwa"))
        assert not possible_holds(q, d, get_semantics("mincwa"))
