"""A small text syntax for FO formulae.

Grammar (ASCII forms shown; the unicode connectives ∃ ∀ ∧ ∨ ¬ → are
accepted as synonyms)::

    formula     := implication
    implication := disjunction [ "->" implication ]          (right assoc)
    disjunction := conjunction { "|" conjunction }
    conjunction := unary { "&" unary }
    unary       := "!" unary | quantifier | primary
    quantifier  := ("exists" | "forall") ident {"," ident} "." formula
    primary     := "true" | "false" | "(" formula ")"
                 | ident "(" term {"," term} ")"             relational atom
                 | term "=" term                             equality atom
    term        := ident            → variable
                 | number           → integer constant
                 | 'text' | "text"  → string constant

A quantifier's body extends as far right as possible (dot notation).

>>> parse("exists z (R(x,z) & S(z,y))")        # parentheses work too
∃z ((R(x, z) ∧ S(z, y)))
"""

from __future__ import annotations

import re
from typing import Iterator, NamedTuple

from repro.logic.ast import (
    FALSE,
    TRUE,
    And,
    EqAtom,
    Exists,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    RelAtom,
    Term,
    Var,
)

__all__ = ["parse", "ParseError"]


class ParseError(ValueError):
    """Raised on malformed formula text, with position information."""


class _Token(NamedTuple):
    kind: str
    text: str
    pos: int


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<arrow>->|→)
  | (?P<and>&|∧|/\\)
  | (?P<or>\||∨|\\/)
  | (?P<not>!|~|¬)
  | (?P<exists>∃)
  | (?P<forall>∀)
  | (?P<lpar>\()
  | (?P<rpar>\))
  | (?P<comma>,)
  | (?P<dot>\.)
  | (?P<eqsign>=)
  | (?P<number>-?\d+)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<ident>[A-Za-z_][A-Za-z0-9_']*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"exists", "forall", "true", "false"}


def _tokenize(text: str) -> Iterator[_Token]:
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r} at position {pos}")
        kind = match.lastgroup or ""
        value = match.group()
        pos = match.end()
        if kind == "ws":
            continue
        if kind == "ident" and value in _KEYWORDS:
            kind = value
        if kind == "exists":
            kind, value = "exists", "exists"
        if kind == "forall":
            kind, value = "forall", "forall"
        yield _Token(kind, value, match.start())
    yield _Token("eof", "", len(text))


class _Parser:
    def __init__(self, text: str):
        self._text = text
        self._tokens = list(_tokenize(text))
        self._index = 0

    # token plumbing -----------------------------------------------------

    def _peek(self) -> _Token:
        return self._tokens[self._index]

    def _next(self) -> _Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._peek()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind} at position {token.pos}, found {token.text or 'end of input'!r}"
            )
        return self._next()

    # grammar ------------------------------------------------------------

    def parse(self) -> Formula:
        formula = self._implication()
        tail = self._peek()
        if tail.kind != "eof":
            raise ParseError(f"trailing input at position {tail.pos}: {tail.text!r}")
        return formula

    def _implication(self) -> Formula:
        left = self._disjunction()
        if self._peek().kind == "arrow":
            self._next()
            right = self._implication()
            return Implies(left, right)
        return left

    def _disjunction(self) -> Formula:
        parts = [self._conjunction()]
        while self._peek().kind == "or":
            self._next()
            parts.append(self._conjunction())
        return parts[0] if len(parts) == 1 else Or(tuple(parts))

    def _conjunction(self) -> Formula:
        parts = [self._unary()]
        while self._peek().kind == "and":
            self._next()
            parts.append(self._unary())
        return parts[0] if len(parts) == 1 else And(tuple(parts))

    def _unary(self) -> Formula:
        token = self._peek()
        if token.kind == "not":
            self._next()
            return Not(self._unary())
        if token.kind in ("exists", "forall"):
            return self._quantifier()
        return self._primary()

    def _quantifier(self) -> Formula:
        token = self._next()
        names = [self._expect("ident").text]
        while self._peek().kind == "comma":
            self._next()
            names.append(self._expect("ident").text)
        if self._peek().kind == "dot":
            self._next()
            body = self._implication()
        else:
            # parenthesised body: exists x (phi)
            self._expect("lpar")
            body = self._implication()
            self._expect("rpar")
        variables = tuple(Var(n) for n in names)
        return Exists(variables, body) if token.kind == "exists" else Forall(variables, body)

    def _primary(self) -> Formula:
        token = self._peek()
        if token.kind == "true":
            self._next()
            return TRUE
        if token.kind == "false":
            self._next()
            return FALSE
        if token.kind == "lpar":
            self._next()
            inner = self._implication()
            self._expect("rpar")
            return inner
        if token.kind == "ident":
            self._next()
            if self._peek().kind == "lpar":
                self._next()
                terms = [self._term()]
                while self._peek().kind == "comma":
                    self._next()
                    terms.append(self._term())
                self._expect("rpar")
                return RelAtom(token.text, tuple(terms))
            # bare identifier must start an equality
            self._expect("eqsign")
            return EqAtom(Var(token.text), self._term())
        if token.kind in ("number", "string"):
            left = self._term()
            self._expect("eqsign")
            return EqAtom(left, self._term())
        raise ParseError(f"expected a formula at position {token.pos}, found {token.text!r}")

    def _term(self) -> Term:
        token = self._next()
        if token.kind == "ident":
            return Var(token.text)
        if token.kind == "number":
            return int(token.text)
        if token.kind == "string":
            return token.text[1:-1]
        raise ParseError(f"expected a term at position {token.pos}, found {token.text!r}")


def parse(text: str) -> Formula:
    """Parse formula text into an AST (see module docstring for syntax)."""
    return _Parser(text).parse()
