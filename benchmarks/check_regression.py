"""CI regression gate: fail when any benchmark workload regresses >N×.

Compares a freshly measured harness JSON against the checked-in
baseline.  The baseline is a *convention*, not a hard-coded name: the
highest-numbered ``BENCH_pr*.json`` in the repository root is the
baseline, so each PR's checked-in numbers automatically become the next
PR's gate (override with ``--baseline``).

Rows are matched by their *identity fields* (everything that is not a
timing metric); timing metrics are the keys ending in ``_ms``/``_us``/
``seconds``.  Rows present on only one side are reported but do not
fail the gate — workloads are allowed to be added or retired.

Usage::

    python benchmarks/harness.py --json BENCH_fresh.json
    python benchmarks/check_regression.py BENCH_fresh.json
    python benchmarks/check_regression.py fresh.json --baseline old.json --tolerance 2.5
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

#: sections whose rows carry timing metrics worth gating
GATED_SECTIONS = (
    "performance",
    "engine",
    "columnar",
    "oracle_parallel",
    "homs",
    "serving",
    "serving_durable",
    "replication",
    "qos",
)

#: a timing metric is any numeric field with one of these suffixes
TIMING_SUFFIXES = ("_ms", "_us", "seconds")

#: metrics below this are noise-dominated on shared CI runners; skip them
MIN_GATED_MS = 0.5

#: the baseline naming convention: BENCH_pr<N>.json, highest N wins
BASELINE_PATTERN = re.compile(r"^BENCH_pr(\d+)\.json$")


def latest_baseline(root: Path, exclude: Path | None = None) -> Path:
    """The highest-numbered ``BENCH_pr*.json`` under ``root``."""
    best: tuple[int, Path] | None = None
    for path in root.iterdir():
        match = BASELINE_PATTERN.match(path.name)
        if not match:
            continue
        if exclude is not None and path.resolve() == exclude.resolve():
            continue
        number = int(match.group(1))
        if best is None or number > best[0]:
            best = (number, path)
    if best is None:
        raise SystemExit(
            f"no BENCH_pr*.json baseline found in {root} — pass --baseline"
        )
    return best[1]


def _is_timing(key: str) -> bool:
    return any(key.endswith(suffix) for suffix in TIMING_SUFFIXES)


def _identity(row: dict) -> tuple:
    return tuple(
        sorted((k, repr(v)) for k, v in row.items() if not _is_timing(k))
    )


def _to_ms(key: str, value: float) -> float:
    if key.endswith("_us"):
        return value / 1000.0
    if key.endswith("seconds"):
        return value * 1000.0
    return value


def compare(baseline: dict, fresh: dict, tolerance: float) -> list[str]:
    """Human-readable regression reports; empty = gate passes."""
    failures: list[str] = []
    base_quick = baseline.get("meta", {}).get("quick")
    fresh_quick = fresh.get("meta", {}).get("quick")
    if base_quick != fresh_quick:
        # quick and full runs measure different instance sizes under the
        # same row identity — comparing them would gate on noise
        print(
            f"note: baseline quick={base_quick} vs fresh quick={fresh_quick}; "
            "runs are not comparable, skipping the gate"
        )
        return failures
    for section in GATED_SECTIONS:
        base_rows = {_identity(r): r for r in baseline.get(section, [])}
        fresh_rows = {_identity(r): r for r in fresh.get(section, [])}
        for ident, fresh_row in fresh_rows.items():
            base_row = base_rows.get(ident)
            if base_row is None:
                print(f"note: [{section}] new workload row (no baseline): {dict(ident)}")
                continue
            for key, fresh_value in fresh_row.items():
                if not _is_timing(key) or not isinstance(fresh_value, (int, float)):
                    continue
                base_value = base_row.get(key)
                if not isinstance(base_value, (int, float)) or base_value <= 0:
                    continue
                if _to_ms(key, base_value) < MIN_GATED_MS:
                    continue  # sub-half-millisecond rows are timer noise
                ratio = fresh_value / base_value
                if ratio > tolerance:
                    failures.append(
                        f"[{section}] {dict(ident)} {key}: "
                        f"{base_value:.3f} → {fresh_value:.3f} ({ratio:.2f}× > {tolerance}×)"
                    )
        for ident in base_rows.keys() - fresh_rows.keys():
            print(f"note: [{section}] baseline row not measured this run: {dict(ident)}")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="freshly measured JSON")
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline JSON (default: the highest-numbered BENCH_pr*.json "
        "in the repository root)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=2.0,
        help="fail when fresh > tolerance × baseline (default 2.0)",
    )
    args = parser.parse_args(argv)
    fresh_path = Path(args.fresh)
    if args.baseline is not None:
        baseline_path = Path(args.baseline)
    else:
        root = Path(__file__).resolve().parent.parent
        baseline_path = latest_baseline(root, exclude=fresh_path)
        print(f"baseline (latest checked-in): {baseline_path.name}")
    with open(baseline_path, encoding="utf-8") as handle:
        baseline = json.load(handle)
    with open(fresh_path, encoding="utf-8") as handle:
        fresh = json.load(handle)
    failures = compare(baseline, fresh, args.tolerance)
    if failures:
        print(f"\nREGRESSION GATE FAILED ({len(failures)} metric(s) over {args.tolerance}×):")
        for failure in failures:
            print("  " + failure)
        return 1
    print(f"regression gate passed (tolerance {args.tolerance}×)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
