"""Negation-free datalog over naive databases (paper Section 12)."""

from repro.datalog.engine import (
    datalog_certain_answers,
    datalog_naive_answers,
    evaluate_program,
)
from repro.datalog.program import Atom, DatalogError, Program, Rule

__all__ = [
    "Atom",
    "Rule",
    "Program",
    "DatalogError",
    "evaluate_program",
    "datalog_naive_answers",
    "datalog_certain_answers",
]
