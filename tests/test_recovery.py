"""The acceptance test: ``kill -9`` a live server mid-stream, then recover.

A real ``repro serve --data-dir`` process (the CLI entry point, a real
TCP socket — no in-process shortcuts) is killed with SIGKILL while a
client streams mutations at it.  Recovery must then yield an instance
**bit-identical** — rows *and* per-relation generation counters — to a
reference session that applied exactly the acknowledged deltas in
order: the durability contract is "acknowledged means survived".
"""

import json
import os
import random
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

from repro.cli import main as cli_main
from repro.data.jsonio import instance_from_json
from repro.data.values import Null
from repro.replication import ReplicationFeed, apply_frame
from repro.session import Database

SRC = str(Path(__file__).resolve().parent.parent / "src")

# Nightly fuzz knobs (.github/workflows/nightly.yml): REPRO_FUZZ multiplies
# the replica-crash stream length and the trace-replay trial count
FUZZ = max(1, int(os.environ.get("REPRO_FUZZ", "1")))
FUZZ_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "0"))


def start_server(data_dir, *extra) -> tuple[subprocess.Popen, tuple[str, int]]:
    """Launch ``repro serve`` as a real subprocess; returns (proc, address)."""
    env = {**os.environ, "PYTHONPATH": SRC}
    proc = subprocess.Popen(
        [
            sys.executable,
            "-u",
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--data-dir",
            str(data_dir),
            *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise RuntimeError(f"server died during startup (rc={proc.poll()})")
        if "listening on" in line:
            host, port = line.strip().rsplit(" ", 1)[-1].rsplit(":", 1)
            return proc, (host, int(port))
    proc.kill()
    raise RuntimeError("server did not announce its address in time")


class Client:
    def __init__(self, address):
        self.sock = socket.create_connection(address, timeout=30)
        self.reader = self.sock.makefile("r", encoding="utf-8")
        self.writer = self.sock.makefile("w", encoding="utf-8")

    def call(self, **request) -> dict:
        self.writer.write(json.dumps(request) + "\n")
        self.writer.flush()
        response = json.loads(self.reader.readline())
        assert response.get("ok"), response
        return response

    def close(self):
        self.sock.close()


def mutation_stream(n: int):
    """A deterministic mutation stream: inserts, deletes, multi-relation
    deltas, null-carrying rows — every step effective."""
    for i in range(n):
        kind = i % 4
        if kind == 0:
            yield {"op": "insert", "relation": "R", "rows": [[i, f"?n{i % 3}"]]}
        elif kind == 1:
            yield {"op": "insert", "relation": "S", "rows": [[i], [i + 1000]]}
        elif kind == 2:
            yield {
                "op": "delta",
                "adds": {"T": [[i, i]]},
                "removes": {"S": [[i - 1]]},  # inserted by the previous step
            }
        else:
            yield {"op": "delete", "relation": "R", "rows": [[i - 3, f"?n{(i - 3) % 3}"]]}


def apply_to_reference(db: Database, request: dict) -> None:
    """Apply one acknowledged wire request to the reference session."""

    def rows(raw):
        return [
            tuple(Null(c[1:]) if isinstance(c, str) and c.startswith("?") else c for c in row)
            for row in raw
        ]

    if request["op"] == "insert":
        db.insert(request["relation"], *rows(request["rows"]))
    elif request["op"] == "delete":
        db.delete(request["relation"], *rows(request["rows"]))
    else:
        db.apply_delta(
            {name: rows(r) for name, r in request.get("adds", {}).items()},
            {name: rows(r) for name, r in request.get("removes", {}).items()},
        )


def session_state(db: Database) -> tuple:
    return (
        db.instance,
        db.generation,
        {name: db.rel_generation(name) for name in db.instance.relations},
    )


def test_kill9_mid_stream_recovers_acknowledged_prefix(tmp_path):
    data_dir = tmp_path / "data"
    n_total, n_before_kill = 40, 26
    proc, address = start_server(data_dir)
    acknowledged: list[dict] = []
    try:
        client = Client(address)
        for i, request in enumerate(mutation_stream(n_total)):
            if i == n_before_kill:
                # SIGKILL: no atexit, no flush, no graceful snapshot —
                # the WAL alone must carry the acknowledged prefix
                os.kill(proc.pid, signal.SIGKILL)
                break
            response = client.call(**request)
            assert response["changed"] > 0  # every stream step is effective
            acknowledged.append(request)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
    assert len(acknowledged) == n_before_kill

    # the reference: a fresh memory-only session applying exactly the
    # acknowledged deltas in acknowledgement order
    reference = Database()
    for request in acknowledged:
        apply_to_reference(reference, request)

    # recovery = snapshot + WAL tail; must be bit-identical to the reference
    recovered = Database(path=data_dir)
    assert session_state(recovered) == session_state(reference)
    assert recovered.recovery_info.wal_records == n_before_kill
    recovered.close()

    # `repro recover --dump` agrees (the operator-facing path)
    dump = tmp_path / "recovered.json"
    assert cli_main(["recover", str(data_dir), "--dump", str(dump)]) == 0
    assert instance_from_json(dump.read_text()) == reference.instance

    # ... and a restarted server resumes from the recovered state
    proc2, address2 = start_server(data_dir)
    try:
        client2 = Client(address2)
        stats = client2.call(op="stats")
        assert stats["durable"] and stats["generation"] == reference.generation
        assert stats["fact_count"] == reference.instance.fact_count()
        assert client2.call(op="insert", relation="R", rows=[[777, 778]])["changed"] == 1
        dumped = client2.call(op="dump")["instance"]
        want = reference.instance.with_delta(adds={"R": [(777, 778)]})[0]
        assert instance_from_json(json.dumps(dumped)) == want
        client2.close()
    finally:
        proc2.kill()
        proc2.wait(timeout=30)


def test_kill9_before_any_checkpoint_then_checkpoint_then_kill9_again(tmp_path):
    """Two crash generations: WAL-only recovery, then snapshot+tail recovery."""
    data_dir = tmp_path / "data"
    reference = Database()

    proc, address = start_server(data_dir)
    try:
        client = Client(address)
        for request in list(mutation_stream(8)):
            client.call(**request)
            apply_to_reference(reference, request)
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()

    # crash #1 recovered; compact through the CLI, then crash again
    assert cli_main(["snapshot", str(data_dir)]) == 0
    proc, address = start_server(data_dir)
    try:
        client = Client(address)
        checkpointed = client.call(op="checkpoint")  # the wire-level op too
        assert checkpointed["checkpointed"] is False  # nothing new since snapshot
        for request in list(mutation_stream(20))[8:20]:
            client.call(**request)
            apply_to_reference(reference, request)
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()

    recovered = Database(path=data_dir)
    assert session_state(recovered) == session_state(reference)
    info = recovered.recovery_info
    assert info.had_snapshot and info.snapshot_generation == 8 and info.wal_records == 12
    recovered.close()


def test_sigkill_replica_mid_stream_restart_converges_bit_identically(tmp_path):
    """The replication durability contract, mirror image of the primary's:
    SIGKILL a live replica while the primary keeps streaming at it, restart
    it from its own data directory, and the recovered replica must converge
    **bit-identically** — rows, ``generation``, per-relation
    ``rel_generation`` — with the primary, with no gap and no double-apply
    (dense generations make either show up as a counter mismatch)."""
    n_total = 24 + 8 * min(FUZZ, 47)  # nightly REPRO_FUZZ lengthens the stream
    primary_proc, primary_address = start_server(tmp_path / "primary")
    primary_hostport = f"{primary_address[0]}:{primary_address[1]}"
    replica_proc, replica_address = start_server(
        tmp_path / "replica", "--replica-of", primary_hostport
    )
    try:
        client = Client(primary_address)
        for i, request in enumerate(mutation_stream(n_total)):
            if i == n_total // 2:
                # no atexit, no flush, no position handoff: the replica's
                # own WAL alone must carry its durable position
                os.kill(replica_proc.pid, signal.SIGKILL)
                replica_proc.wait(timeout=30)
            client.call(**request)
        target = client.call(op="stats")

        replica_proc2, replica_address2 = start_server(
            tmp_path / "replica", "--replica-of", primary_hostport
        )
        try:
            replica_client = Client(replica_address2)
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                stats = replica_client.call(op="stats")
                if stats["generation"] == target["generation"]:
                    break
                time.sleep(0.02)
            assert stats["generation"] == target["generation"]
            assert (
                stats["replication"]["position"] == target["replication"]["position"]
            )  # generation *and* every rel_generation
            assert replica_client.call(op="dump")["instance"] == client.call(op="dump")["instance"]
            replica_client.close()
        finally:
            replica_proc2.kill()
            replica_proc2.wait(timeout=30)
        client.close()
    finally:
        for proc in (primary_proc, replica_proc):
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)


def test_trace_replay_through_feed_reproduces_counters_exactly(tmp_path):
    """Property: the feed's wire frames are a *complete* description of the
    session — replaying them through :func:`apply_frame` onto a fresh
    session reproduces rows, ``generation``, and every ``rel_generation``
    exactly, and every frame lands as ``"applied"`` (a skip, gap, or
    divergence would mean the stream and the WAL disagree)."""
    rng = random.Random(0xFEED + FUZZ_SEED)
    for trial in range(2 * FUZZ):
        source = Database(path=tmp_path / f"trial{trial}")
        for _ in range(rng.randrange(5, 40)):
            relation = rng.choice("RST")
            row = (rng.randrange(6), rng.randrange(6))
            if rng.random() < 0.3:
                source.delete(relation, row)  # often ineffective: no WAL record
            else:
                source.insert(relation, row)
        # Storage.trace() and the feed describe the same log
        assert len(list(source._storage.trace())) == len(source.raw_wal_records())

        feed = ReplicationFeed(source)
        frames = [json.loads(line) for _g, line, _size in feed._records]
        replica = Database()
        assert [apply_frame(replica, frame) for frame in frames] == ["applied"] * len(frames)
        assert session_state(replica) == session_state(source)
        feed.close()
        source.close()
