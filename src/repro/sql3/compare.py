"""Quantifying SQL's gap against certain answers.

The paper's introduction observes that SQL's three-valued semantics can
return answers that are not certain *and* miss answers that are — the
``NOT IN`` paradox being the canonical case.  This module measures both
error directions on concrete instances and workloads, producing the
numbers behind the reproduction's SQL-comparison experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.core.certain import certain_answers
from repro.core.naive import drop_null_tuples
from repro.data.instance import Instance
from repro.logic.queries import Query
from repro.semantics.base import Semantics
from repro.sql3.eval3 import answers3

__all__ = ["SqlComparison", "compare_sql_to_certain"]


@dataclass(frozen=True)
class SqlComparison:
    """Outcome of pitting SQL's 3VL answers against certain answers."""

    #: SQL answer rows (condition TRUE), nulls dropped
    sql: frozenset[tuple[Hashable, ...]]
    #: certain answers under the chosen semantics
    certain: frozenset[tuple[Hashable, ...]]

    @property
    def unsound(self) -> frozenset[tuple[Hashable, ...]]:
        """Rows SQL returns that are *not* certain (false positives)."""
        return self.sql - self.certain

    @property
    def incomplete(self) -> frozenset[tuple[Hashable, ...]]:
        """Certain answers SQL misses (false negatives)."""
        return self.certain - self.sql

    @property
    def agrees(self) -> bool:
        return self.sql == self.certain

    def __repr__(self) -> str:
        return (
            f"SqlComparison(sql={set(self.sql)}, certain={set(self.certain)}, "
            f"unsound={set(self.unsound)}, incomplete={set(self.incomplete)})"
        )


def compare_sql_to_certain(
    query: Query,
    instance: Instance,
    semantics: Semantics,
    pool: Sequence[Hashable] | None = None,
    extra_facts: int | None = None,
) -> SqlComparison:
    """Evaluate SQL-style and certain answers side by side.

    SQL rows containing nulls are dropped before comparison (they could
    never be certain, and SQL result sets expose raw nulls rather than
    answers).
    """
    sql_rows = drop_null_tuples(
        answers3(query.formula, instance, query.answer_vars)
        if not query.is_boolean
        else _boolean_rows(query, instance)
    )
    certain = certain_answers(query, instance, semantics, pool=pool, extra_facts=extra_facts)
    return SqlComparison(sql_rows, certain)


def _boolean_rows(query: Query, instance: Instance) -> frozenset[tuple]:
    from repro.sql3.eval3 import holds3
    from repro.sql3.truth import Truth

    return frozenset([()]) if holds3(query.formula, instance) is Truth.TRUE else frozenset()
