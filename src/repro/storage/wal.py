"""The append-only write-ahead log of session deltas.

Every effective mutation of a durable :class:`~repro.session.Database`
(``insert`` / ``delete`` / ``apply_delta``) appends exactly one record
*before* the new instance value is published, and the mutation is
acknowledged to the caller only after the record is fsync'd — so an
acknowledged delta survives ``kill -9``.

Record framing (one record, little-endian)::

    u32 payload length | payload bytes | u32 crc32(payload)

The payload is one compact JSON object::

    {"g": <generation after>, "rg": {rel: rel_generation after},
     "adds": {rel: [rows]}, "removes": {rel: [rows]}}

with rows in the :mod:`repro.data.jsonio` cell encoding (``"?x"`` is
the null ⊥x, ``"??x"`` the constant ``"?x"``).  The file itself starts
with a magic/version header so foreign or future-format files are
refused cleanly instead of being replayed as garbage.

Torn tails: a crash can leave a final record half-written (short
length word, short payload, or a checksum mismatch).  :meth:`replay`
stops at the first invalid frame and reports how many bytes it
ignored; :meth:`open_for_append` then truncates the torn bytes so new
records are never written after garbage.

Group commit: appends are cheap buffered writes; :meth:`sync` is the
durability point.  Concurrent callers coalesce — one *leader* fsyncs
the file once for every record appended so far, and followers whose
record is already covered return without their own fsync (the same
leader/follower shape as the serving layer's ``_BatchGate``).
"""

from __future__ import annotations

import errno
import json
import os
import struct
import threading
import time
import zlib
from pathlib import Path
from typing import Iterator

from repro import faults as _faults

__all__ = ["WalError", "WriteAheadLog", "MAGIC", "FORMAT_VERSION"]

#: file header: magic + format version (refuse anything else cleanly)
MAGIC = b"REPROWAL"
FORMAT_VERSION = 1

_HEADER = struct.Struct("<8sH")
_U32 = struct.Struct("<I")


class WalError(Exception):
    """The log cannot be read: foreign file, future format, mid-log rot."""


def _contains_valid_frame(blob: bytes, start: int, limit: int = 256 * 1024) -> bool:
    """Does ``blob[start:]`` contain a complete, checksum-valid frame?

    A genuine torn tail is the prefix of *one* interrupted append, so it
    can never contain a whole valid frame.  Finding one means an earlier
    record's length word rotted and is swallowing acknowledged records —
    corruption, not a crash artifact.  Zero-length frames are ignored
    (never written; a run of zeros would trivially checksum) and the
    scan window is bounded so a pathological tail stays cheap.
    """
    stop = min(len(blob), start + limit)
    for pos in range(start, stop - _U32.size + 1):
        (length,) = _U32.unpack_from(blob, pos)
        frame_end = pos + _U32.size + length + _U32.size
        if length == 0 or frame_end > len(blob):
            continue
        payload = blob[pos + _U32.size : frame_end - _U32.size]
        (crc,) = _U32.unpack_from(blob, frame_end - _U32.size)
        if zlib.crc32(payload) == crc:
            return True
    return False


def _fsync_dir(path: Path) -> None:
    """fsync the containing directory so renames/creates are durable."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return  # e.g. platforms without directory fds
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class WriteAheadLog:
    """One append-only log file with group-commit fsync.

    ``fsync=False`` keeps the framing and replay behaviour but makes
    :meth:`sync` a buffered flush only — the benchmark harness uses it
    to measure what durability itself costs.

    Failpoints (``faults`` defaults to the process-global registry):
    ``wal.append`` (errno, or ``torn-write`` — a partial frame is
    flushed and the tail marked dirty), ``wal.fsync`` (fails the group
    commit: no waiter is acknowledged), ``wal.truncate``.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        fsync: bool = True,
        faults: "_faults.FaultRegistry | None" = None,
    ):
        self.path = Path(path)
        self.fsync = fsync
        self.faults = _faults.coerce(faults)
        # a failed/torn append left non-record bytes at the file position:
        # appending after them would bury garbage between valid frames
        # (mid-log corruption, which replay refuses); truncate() clears it
        self._dirty_tail = False
        self._file = None  # opened lazily by open_for_append()
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._size = 0  # bytes written (valid records only)
        self._records = 0  # complete records in the log (replayed + appended)
        self._synced = 0  # high-water mark of fsync'd bytes
        self._syncing = False
        # bumped by truncate(); guards _synced against a leader restoring
        # a pre-truncate offset as the high-water mark (offsets from
        # different truncation epochs are not comparable)
        self._trunc_epoch = 0
        self._first_append: float | None = None  # monotonic stamp of oldest record

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def replay(self) -> tuple[list[dict], int]:
        """Read every complete record; returns ``(records, torn_bytes)``.

        ``torn_bytes`` counts trailing bytes that do not form a valid
        record (a crash mid-append) — they are reported, not replayed,
        and :meth:`open_for_append` truncates them.  A missing file is
        an empty log.  A bad magic or a future format version raises
        :class:`WalError` instead of guessing.
        """
        try:
            blob = self.path.read_bytes()
        except FileNotFoundError:
            return [], 0
        if not blob:
            return [], 0
        if len(blob) < _HEADER.size:
            # even the header was torn: nothing to replay
            self._size = 0
            return [], len(blob)
        magic, version = _HEADER.unpack_from(blob)
        if magic != MAGIC:
            raise WalError(f"{self.path}: not a repro WAL (bad magic {magic!r})")
        if version != FORMAT_VERSION:
            raise WalError(
                f"{self.path}: WAL format version {version} is not supported "
                f"(this build reads version {FORMAT_VERSION})"
            )
        records: list[dict] = []
        pos = _HEADER.size
        good = pos
        while pos < len(blob):
            if pos + _U32.size > len(blob):
                break  # torn length word
            (length,) = _U32.unpack_from(blob, pos)
            end = pos + _U32.size + length + _U32.size
            if end > len(blob):
                break  # torn payload or checksum
            payload = blob[pos + _U32.size : pos + _U32.size + length]
            (crc,) = _U32.unpack_from(blob, end - _U32.size)
            if zlib.crc32(payload) != crc:
                if end < len(blob):
                    # a bad checksum *followed by more data* is not a torn
                    # tail — the log rotted mid-file and replaying past it
                    # would silently drop acknowledged deltas
                    raise WalError(
                        f"{self.path}: checksum mismatch at byte {pos} with "
                        f"{len(blob) - end} bytes following — log is corrupt, "
                        f"not merely torn"
                    )
                break
            try:
                record = json.loads(payload)
            except ValueError as err:
                raise WalError(f"{self.path}: undecodable record at byte {pos}: {err}") from None
            records.append(record)
            pos = good = end
        if good < len(blob) and _contains_valid_frame(blob, good):
            raise WalError(
                f"{self.path}: invalid frame at byte {good} is followed by "
                f"complete valid records — the log is corrupt, not merely "
                f"torn; refusing to silently drop acknowledged deltas"
            )
        self._size = good
        self._synced = good
        self._records = len(records)
        if records and self._first_append is None:
            # age of recovered records counts from this open (monotonic
            # clocks do not survive the process that wrote them)
            self._first_append = time.monotonic()
        return records, len(blob) - good

    def buffered_records(self) -> list[dict]:
        """Every complete record currently in the log, without side effects.

        Unlike :meth:`replay` this does **not** reposition the log or
        touch the append-side counters, so it is safe on a log that is
        open for appending (buffered writes are flushed first so the
        file read sees them).  The caller serialises against concurrent
        appends — the replication feed reads under the session lock.
        Torn or missing tails are simply not returned; :meth:`replay`
        owns corruption detection at open time.
        """
        with self._lock:
            if self._file is not None:
                self._file.flush()
        try:
            blob = self.path.read_bytes()
        except FileNotFoundError:
            return []
        if len(blob) < _HEADER.size:
            return []
        records: list[dict] = []
        pos = _HEADER.size
        while pos + _U32.size <= len(blob):
            (length,) = _U32.unpack_from(blob, pos)
            end = pos + _U32.size + length + _U32.size
            if end > len(blob):
                break
            payload = blob[pos + _U32.size : pos + _U32.size + length]
            (crc,) = _U32.unpack_from(blob, end - _U32.size)
            if zlib.crc32(payload) != crc:
                break
            records.append(json.loads(payload))
            pos = end
        return records

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------

    def open_for_append(self) -> None:
        """Position the log for appending, truncating any torn tail.

        Creates the file (with its magic/version header) when absent.
        Call :meth:`replay` first on an existing log — it computes where
        the valid records end.
        """
        with self._lock:
            if self._file is not None:
                return
            exists = self.path.exists()
            self._file = open(self.path, "r+b" if exists else "w+b")
            if not exists or self._size == 0:
                self._file.seek(0)
                self._file.truncate()
                self._file.write(_HEADER.pack(MAGIC, FORMAT_VERSION))
                self._file.flush()
                if self.fsync:
                    os.fsync(self._file.fileno())
                    _fsync_dir(self.path.parent)
                self._size = self._synced = _HEADER.size
            else:
                self._file.seek(self._size)
                self._file.truncate()  # drop the torn tail, if any
            self._dirty_tail = False

    def append(self, record: dict) -> int:
        """Buffer one record; returns the offset :meth:`sync` must reach.

        The caller is expected to hold whatever lock serialises its own
        state transitions (the session lock) so record order matches
        publish order; the log's internal lock only protects the file.

        A failed write (real or injected) marks the tail **dirty**: the
        file position may hold a partial frame, and appending after it
        would bury garbage between valid records — which replay rightly
        refuses as corruption.  Further appends raise until
        :meth:`truncate` (a checkpoint) resets the log; the session's
        degraded mode enforces exactly that ordering.
        """
        payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
        frame = _U32.pack(len(payload)) + payload + _U32.pack(zlib.crc32(payload))
        with self._lock:
            if self._file is None:
                raise WalError(f"{self.path}: log is not open for appending")
            if self._dirty_tail:
                raise OSError(
                    errno.EIO,
                    f"{self.path}: a failed append left a dirty tail; "
                    f"checkpoint (truncate) before appending again",
                )
            action = self.faults.fire("wal.append", tearable=True)
            try:
                if action is not None:  # torn-write: flush half a frame
                    self._file.write(frame[: max(1, len(frame) // 2)])
                    self._file.flush()
                    raise OSError(
                        errno.EIO,
                        f"failpoint wal.append: injected torn write "
                        f"({len(frame) // 2} of {len(frame)} bytes flushed)",
                    )
                self._file.write(frame)
            except OSError:
                self._dirty_tail = True
                raise
            self._size += len(frame)
            self._records += 1
            if self._first_append is None:
                self._first_append = time.monotonic()
            return self._size

    def sync(self, upto: int) -> None:
        """Group-commit: return once bytes ``[0, upto)`` are durable.

        The first caller to arrive becomes the leader and fsyncs the
        *whole* buffered log once; every waiter whose record that fsync
        covered returns without issuing its own.

        Safe against a concurrent :meth:`truncate` (a checkpoint landing
        while the leader is inside ``fsync``): the high-water mark is
        only advanced when no truncation intervened, so a record
        appended *after* the truncate can never be mistaken for already
        durable just because its offset is small.  (The record the
        truncate dropped is covered by the checkpoint's own snapshot —
        it was published before the snapshot was taken.)  Safe against a
        concurrent :meth:`close` too: a closed log has nothing left to
        sync, so this returns instead of raising at the caller whose
        write already published.

        A *failed* fsync (disk full, I/O error) raises to the leader and
        does **not** advance the high-water mark: waiters re-elect a new
        leader and retry, so every caller truthfully gets
        durable-or-exception — a failed flush can never be acknowledged.
        """
        with self._cond:
            while self._synced < upto and self._syncing:
                self._cond.wait()
            if self._synced >= upto:
                return
            self._syncing = True
            file = self._file
            target = self._size
            epoch = self._trunc_epoch
        flushed = False
        try:
            if file is not None:
                try:
                    file.flush()
                    self.faults.fire("wal.fsync")
                    if self.fsync:
                        os.fsync(file.fileno())
                except ValueError:
                    pass  # closed under us mid-shutdown; see docstring
            flushed = True
        finally:
            with self._cond:
                self._syncing = False
                if flushed and self._trunc_epoch == epoch:
                    self._synced = max(self._synced, target)
                self._cond.notify_all()

    def truncate(self) -> None:
        """Drop every record (after a checkpoint made them redundant).

        Also the recovery step for a dirty tail: truncating discards
        whatever a failed append left behind, so the log is clean for
        appending again.
        """
        with self._lock:
            if self._file is None:
                raise WalError(f"{self.path}: log is not open for appending")
            self.faults.fire("wal.truncate")
            self._file.seek(_HEADER.size)
            self._file.truncate()
            self._file.flush()
            if self.fsync:
                os.fsync(self._file.fileno())
            self._size = self._synced = _HEADER.size
            self._trunc_epoch += 1
            self._records = 0
            self._first_append = None
            self._dirty_tail = False

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------

    @property
    def size_bytes(self) -> int:
        """Bytes of valid records currently in the log (header included)."""
        with self._lock:
            return self._size

    @property
    def record_bytes(self) -> int:
        """Bytes of records beyond the file header."""
        with self._lock:
            return max(0, self._size - _HEADER.size)

    @property
    def record_count(self) -> int:
        """Complete records currently in the log (replayed + appended)."""
        with self._lock:
            return self._records

    @property
    def dirty_tail(self) -> bool:
        """Did a failed append leave non-record bytes at the file position?

        While true, appends are refused and a checkpoint must not take
        the nothing-to-do fast path — only :meth:`truncate` clears it.
        """
        with self._lock:
            return self._dirty_tail

    def age_seconds(self) -> float:
        """Seconds since the oldest un-checkpointed record was appended."""
        with self._lock:
            if self._first_append is None:
                return 0.0
            return time.monotonic() - self._first_append

    def iter_offsets(self) -> Iterator[int]:  # pragma: no cover - debugging aid
        """Offsets of each record frame (for inspection tools)."""
        blob = self.path.read_bytes()
        pos = _HEADER.size
        while pos + _U32.size <= len(blob):
            (length,) = _U32.unpack_from(blob, pos)
            end = pos + _U32.size + length + _U32.size
            if end > len(blob):
                return
            yield pos
            pos = end

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                try:
                    self._file.flush()
                finally:
                    self._file.close()
                    self._file = None
