"""SQL's three-valued logic, for contrast with certain answers."""

from repro.sql3.compare import SqlComparison, compare_sql_to_certain
from repro.sql3.eval3 import answers3, evaluate3, holds3
from repro.sql3.truth import Truth, t_and, t_implies, t_not, t_or

__all__ = [
    "SqlComparison",
    "compare_sql_to_certain",
    "answers3",
    "evaluate3",
    "holds3",
    "Truth",
    "t_and",
    "t_implies",
    "t_not",
    "t_or",
]
