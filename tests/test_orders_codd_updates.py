"""Tests for Codd updates and the Libkin 1995 closure theorems (Section 6)."""

import pytest

from repro.data.instance import Instance
from repro.data.values import Null
from repro.orders.codd import hoare_leq, plotkin_leq
from repro.orders.codd_updates import (
    codd_add_copy,
    codd_reachable,
    codd_replace,
    iter_codd_cwa_updates,
)

A, B, C = Null("a"), Null("b"), Null("c")


class TestSingleSteps:
    def test_replace_one_occurrence(self):
        d = Instance({"R": [(A, 2)]})
        assert codd_replace(d, "R", (A, 2), 0, 1) == Instance({"R": [(1, 2)]})

    def test_replace_requires_null(self):
        d = Instance({"R": [(1, 2)]})
        with pytest.raises(ValueError):
            codd_replace(d, "R", (1, 2), 0, 9)

    def test_add_copy_keeps_original(self):
        d = Instance({"R": [(A, 2)]})
        updated = codd_add_copy(d, "R", (A, 2), 0, 1)
        assert Instance({"R": [(1, 2)]}) <= updated
        assert (A, 2) in updated.tuples("R")
        assert updated.fact_count() == 2

    def test_add_copy_freshens_other_nulls(self):
        d = Instance({"R": [(A, B)]})
        updated = codd_add_copy(d, "R", (A, B), 0, 1)
        assert updated.is_codd()  # B must not repeat
        assert updated.fact_count() == 2

    def test_iter_enumerates_both_kinds(self):
        d = Instance({"R": [(A, 2)]})
        results = list(iter_codd_cwa_updates(d, [1]))
        assert Instance({"R": [(1, 2)]}) in results
        assert any(r.fact_count() == 2 for r in results)


class TestSqlMotivation:
    def test_paper_example_null_2_to_both(self):
        """Section 6: (NULL, 2) must reach {(1,2),(2,2)} under Codd CWA
        updates — SQL's null represents both lost values."""
        d = Instance({"R": [(A, 2)]})
        e = Instance({"R": [(1, 2), (2, 2)]})
        assert codd_reachable(d, e)

    def test_naive_semantics_differ(self):
        """Contrast: marked-null CWA updates cannot do the same
        (tests in test_orders_updates cover that side)."""
        from repro.orders.updates import reachable

        d = Instance({"R": [(A, 2)]})
        e = Instance({"R": [(1, 2), (2, 2)]})
        assert not reachable(d, e, ("cwa",))


class TestLibkin95Closures:
    CODD_GRID = [
        Instance({"R": [(Null("a"), 2)]}),
        Instance({"R": [(1, Null("b"))]}),
        Instance({"R": [(1, 2)]}),
        Instance({"R": [(1, 2), (2, 2)]}),
        Instance({"R": [(1, 2), (1, 3)]}),
        Instance({"R": [(Null("p"), Null("q"))]}),
    ]

    def test_codd_cwa_closure_is_plotkin(self):
        for left in self.CODD_GRID:
            for right in self.CODD_GRID:
                got = codd_reachable(left, right)
                want = plotkin_leq(left, right)
                assert got == want, (left, right)

    def test_codd_cwa_owa_closure_is_hoare(self):
        for left in self.CODD_GRID:
            for right in self.CODD_GRID:
                got = codd_reachable(left, right, with_owa=True)
                want = hoare_leq(left, right)
                assert got == want, (left, right)

    def test_rejects_naive_databases(self):
        x = Null("x")
        naive = Instance({"R": [(x, x)]})
        with pytest.raises(ValueError):
            codd_reachable(naive, Instance({"R": [(1, 1)]}))
