"""Shared corpus builders for the benchmark harness."""

from __future__ import annotations

import random

import pytest

from repro.data.generate import random_instance
from repro.data.schema import Schema

SCHEMA = Schema({"R": 2, "S": 1})


def corpus(seed: int, n: int, n_facts=(1, 3), constants=(1, 2), n_nulls=2):
    """A reproducible list of small random incomplete instances."""
    rng = random.Random(seed)
    return [
        random_instance(
            SCHEMA,
            rng,
            n_facts=rng.randint(*n_facts),
            constants=constants,
            n_nulls=n_nulls,
        )
        for _ in range(n)
    ]


@pytest.fixture
def small_corpus():
    return corpus(20130622, 8)
