"""A thread-pooled JSON-lines query server over one shared :class:`Database`.

The serving layer that turns the engine from one-shot evaluation into a
long-lived service:

* :class:`QueryService` — the transport-free core: it translates JSON
  request objects (``{"op": "query", ...}``) into session operations,
  counts what it serves, and **coalesces concurrent query requests into
  one** :meth:`~repro.session.Database.evaluate_many` **batch** via a
  group-commit gate, so compatible certain-answer requests that arrive
  while another batch is running share one pool build and one core
  check;
* :class:`Server` — a small TCP front end: one JSON request per line,
  one JSON response per line, connections multiplexed over a bounded
  thread pool.  ``repro serve`` (:mod:`repro.cli`) wires it to a
  command line; ``examples/serving.py`` is a complete client.

Concurrency model: the :class:`~repro.session.Database` is already
thread-safe (immutable instance snapshots + per-relation generation
counters), so handler threads call straight into it.  Mutations apply
atomically; readers either hit the generation-keyed result cache or
evaluate against a consistent snapshot.  When the session was built
with ``workers > 1``, the oracle's process pool is created once at
startup and reused across requests (:class:`OracleWorkerPool`) instead
of being re-forked per call.

When the shared session is durable (``Database(path=...)``), mutations
are journaled/fsync'd before they are acknowledged, the ``checkpoint``
op forces a snapshot + log truncation, and ``repro serve --data-dir``
checkpoints on graceful shutdown.  See ``docs/wire-protocol.md`` for
the full op reference and ``docs/persistence.md`` for the durability
contract.

Wire format (cells follow :mod:`repro.data.jsonio` — ``"?x"`` is the
null ⊥x, ``"??x"`` the constant ``"?x"``)::

    → {"id": 1, "op": "query", "query": "exists z (R(x,z) & S(z,y))"}
    ← {"id": 1, "ok": true, "answers": [[1, 4]], "exact": true, ...}
    → {"id": 2, "op": "insert", "relation": "S", "rows": [[9, 9]]}
    ← {"id": 2, "ok": true, "changed": 1, "generation": 1}
"""

from __future__ import annotations

import json
import queue
import socket
import threading
from time import perf_counter

from repro.core.analyzer import FIGURE_1
from repro.data.jsonio import decode_row, encode_row, instance_to_json
from repro.session import Database, PreparedQuery

__all__ = ["QueryService", "Server", "serve"]


class _Pending:
    """One query request waiting in the batch gate."""

    __slots__ = ("prepared", "result", "error", "done", "group_size")

    def __init__(self, prepared: PreparedQuery):
        self.prepared = prepared
        self.result = None
        self.error: Exception | None = None
        self.done = False
        self.group_size = 0


class _BatchGate:
    """Group-commit for query requests.

    A thread arriving for a given mode when no batch is running becomes
    the *leader*: it drains every compatible request currently queued
    (its own plus whatever piled up while the previous batch ran) and
    evaluates them in one ``evaluate_many`` call.  Followers wait; when
    the batch completes, the leader steps down and any follower whose
    request is still queued is woken to lead the next round — so a
    leader serves exactly one batch and no request's latency depends on
    the arrival rate of later ones.  A lone request is a batch of one:
    no timers, no artificial latency.
    """

    def __init__(self, db: Database):
        self._db = db
        self._cond = threading.Condition()
        self._pending: dict[str, list[_Pending]] = {}
        self._leaders: set[str] = set()

    def evaluate(self, prepared: PreparedQuery, mode: str = "auto"):
        """Evaluate through the gate; returns ``(EvalResult, group_size)``."""
        item = _Pending(prepared)
        with self._cond:
            self._pending.setdefault(mode, []).append(item)
            while not item.done and mode in self._leaders:
                self._cond.wait()
            if not item.done:
                # no batch in flight: lead one round with whatever queued
                self._leaders.add(mode)
                batch = self._pending.pop(mode)
        if not item.done:
            try:
                self._run(batch, mode)
            finally:
                with self._cond:
                    self._leaders.discard(mode)
                    self._cond.notify_all()
        if item.error is not None:
            raise item.error
        return item.result, item.group_size

    def _run(self, batch: list[_Pending], mode: str) -> None:
        try:
            results = self._db.evaluate_many(
                [item.prepared for item in batch], mode=mode
            )
            for item, result in zip(batch, results):
                item.result = result
                item.group_size = len(batch)
        except Exception:
            # one bad request must not poison its batch-mates: fall back
            # to individual evaluation so each request gets its own
            # result or its own error
            for item in batch:
                try:
                    item.result = item.prepared.evaluate(mode)
                    item.group_size = 1
                except Exception as err:  # noqa: BLE001 - reported per request
                    item.error = err
        finally:
            with self._cond:
                for item in batch:
                    item.done = True
                self._cond.notify_all()


class QueryService:
    """Translate JSON requests into operations on one shared session.

    Transport-free: :meth:`handle` takes and returns plain dicts (the
    TCP server, tests and benchmarks all call it directly).  Thread-safe
    — any number of handler threads may call it concurrently.

    >>> from repro.session import Database
    >>> service = QueryService(Database({"R": [(1, 2)]}))
    >>> service.handle({"id": 1, "op": "query", "query": "R(x, y)"})["answers"]
    [[1, 2]]
    >>> service.handle({"op": "insert", "relation": "R", "rows": [[3, 4]]})["changed"]
    1
    >>> service.handle({"op": "nope"})["ok"]
    False
    """

    #: request fields every op understands
    _COMMON = ("id", "op")

    def __init__(self, db: Database, *, batch: bool = True):
        self.db = db
        self._batch = _BatchGate(db) if batch else None
        self._lock = threading.Lock()
        self._counters = {
            "requests": 0,
            "queries": 0,
            "mutations": 0,
            "batched_requests": 0,
            "errors": 0,
        }
        self._started = perf_counter()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def handle(self, request: dict) -> dict:
        """Serve one request object; never raises (errors become responses)."""
        with self._lock:
            self._counters["requests"] += 1
        rid = request.get("id") if isinstance(request, dict) else None
        try:
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
            op = request.get("op")
            handler = getattr(self, f"_op_{op}", None)
            if op is None or handler is None:
                raise ValueError(f"unknown op {op!r}")
            response = handler(request)
        except Exception as err:  # noqa: BLE001 - service boundary: a bad
            # request (parse recursion, schema violation, expansion limit,
            # …) must become an error *response*, never kill the worker
            # thread serving the connection
            with self._lock:
                self._counters["errors"] += 1
            response = {"ok": False, "error": str(err) or repr(err)}
        if rid is not None:
            response["id"] = rid
        return response

    def handle_line(self, line: str) -> str:
        """One JSON-lines exchange: request text in, response text out."""
        try:
            request = json.loads(line)
        except json.JSONDecodeError as err:
            with self._lock:
                self._counters["requests"] += 1
                self._counters["errors"] += 1
            return json.dumps({"ok": False, "error": f"bad JSON: {err}"})
        return json.dumps(self.handle(request))

    # ------------------------------------------------------------------
    # ops
    # ------------------------------------------------------------------

    def _op_ping(self, request: dict) -> dict:
        return {"ok": True, "pong": True}

    def _prepare(self, request: dict) -> PreparedQuery:
        text = request.get("query")
        if not isinstance(text, str) or not text:
            raise ValueError("'query' must be non-empty query text")
        vars_ = request.get("vars")
        if vars_ is not None and not isinstance(vars_, list):
            raise ValueError("'vars' must be a list of variable names")
        semantics = request.get("semantics")
        if semantics is not None and semantics not in FIGURE_1:
            raise ValueError(
                f"unknown semantics {semantics!r}; choose from {sorted(FIGURE_1)}"
            )
        return self.db.query(
            text, tuple(vars_) if vars_ is not None else None, semantics=semantics
        )

    def _render(self, prepared: PreparedQuery, result, group_size: int = 1) -> dict:
        query = prepared.query
        payload = {
            "ok": True,
            "answers": [
                encode_row(query.name, row)
                for row in sorted(result.answers, key=repr)
            ],
            "holds": result.holds,
            "exact": result.exact,
            "direction": result.direction,
            "method": result.method,
            "cache": result.stats.get("result_cache"),
            "generation": result.stats.get("generation"),
            "batched": group_size > 1,
        }
        if group_size > 1:
            with self._lock:
                self._counters["batched_requests"] += 1
        return payload

    def _op_query(self, request: dict) -> dict:
        prepared = self._prepare(request)
        mode = request.get("mode", "auto")
        if not isinstance(mode, str):
            raise ValueError("'mode' must be a backend name or 'auto'")
        with self._lock:
            self._counters["queries"] += 1
        if self._batch is not None:
            result, group_size = self._batch.evaluate(prepared, mode)
        else:
            result, group_size = prepared.evaluate(mode), 1
        return self._render(prepared, result, group_size)

    def _op_batch(self, request: dict) -> dict:
        """An explicit client-side batch: one evaluate_many, one response."""
        specs = request.get("queries")
        if not isinstance(specs, list):
            raise ValueError("'queries' must be a list of query objects")
        prepared = [self._prepare(spec) for spec in specs]
        with self._lock:
            self._counters["queries"] += len(prepared)
        mode = request.get("mode", "auto")
        results = self.db.evaluate_many(prepared, mode=mode)
        return {
            "ok": True,
            "results": [
                self._render(p, r, len(prepared)) for p, r in zip(prepared, results)
            ],
        }

    def _rows(self, request: dict, field: str = "rows") -> list[tuple]:
        relation = request.get("relation")
        if not isinstance(relation, str) or not relation:
            raise ValueError("'relation' must be a non-empty string")
        rows = request.get(field)
        if not isinstance(rows, list):
            raise ValueError(f"'{field}' must be a list of rows")
        return [decode_row(relation, row) for row in rows]

    def _mutated(self, changed: int) -> dict:
        with self._lock:
            self._counters["mutations"] += 1
        return {"ok": True, "changed": changed, "generation": self.db.generation}

    def _op_insert(self, request: dict) -> dict:
        return self._mutated(
            self.db.insert(request["relation"], *self._rows(request))
        )

    def _op_delete(self, request: dict) -> dict:
        return self._mutated(
            self.db.delete(request["relation"], *self._rows(request))
        )

    def _op_delta(self, request: dict) -> dict:
        def decode_side(side) -> dict[str, list[tuple]] | None:
            mapping = request.get(side)
            if mapping is None:
                return None
            if not isinstance(mapping, dict):
                raise ValueError(f"'{side}' must map relation names to row lists")
            return {
                name: [decode_row(name, row) for row in rows]
                for name, rows in mapping.items()
            }

        return self._mutated(
            self.db.apply_delta(decode_side("adds"), decode_side("removes"))
        )

    def _op_checkpoint(self, request: dict) -> dict:
        """Force a snapshot + WAL truncation on a durable session.

        On a memory-only session this reports ``checkpointed: false``
        rather than erroring — clients can issue it unconditionally.
        """
        written = self.db.checkpoint()
        response = {
            "ok": True,
            "checkpointed": written,
            "generation": self.db.generation,
        }
        stats = self.db.storage_stats
        if stats is not None:
            response["storage"] = stats
        return response

    def _op_explain(self, request: dict) -> dict:
        prepared = self._prepare(request)
        mode = request.get("mode", "auto")
        return {"ok": True, "plan": prepared.plan(mode).to_dict()}

    def _op_dump(self, request: dict) -> dict:
        return {"ok": True, "instance": json.loads(instance_to_json(self.db.instance))}

    def _op_stats(self, request: dict) -> dict:
        with self._lock:
            counters = dict(self._counters)
        db = self.db
        response = {
            "ok": True,
            "uptime_s": perf_counter() - self._started,
            "requests": counters,
            "result_cache": db.cache_stats,
            "generation": db.generation,
            "fact_count": db.instance.fact_count(),
            "relations": list(db.instance.relations),
            "semantics": db.semantics.key,
            "durable": db.path is not None,
        }
        storage = db.storage_stats
        if storage is not None:
            response["storage"] = storage
        return response


class Server:
    """A bounded-thread-pool TCP front end for a :class:`QueryService`.

    One JSON request per line, one JSON response per line (UTF-8).  A
    fixed pool of daemon worker threads takes accepted connections off a
    queue, each handling one connection for its whole lifetime — so
    ``max_threads`` bounds the number of *concurrent clients*, extra
    connections wait for a slot, and a forgotten :meth:`shutdown` can
    never wedge interpreter exit.
    """

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
        max_threads: int = 8,
    ):
        self.service = service
        self._listener = socket.create_server((host, port))
        self._listener.settimeout(0.2)  # lets serve_forever notice shutdown
        self.address: tuple[str, int] = self._listener.getsockname()[:2]
        self._queue: queue.Queue = queue.Queue()
        self._workers = [
            threading.Thread(
                target=self._worker, daemon=True, name=f"repro-serve-{i}"
            )
            for i in range(max(1, max_threads))
        ]
        for worker in self._workers:
            worker.start()
        self._shutdown = threading.Event()
        self._thread: threading.Thread | None = None
        self._conns: set[socket.socket] = set()
        self._conns_lock = threading.Lock()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def serve_forever(self) -> None:
        """Accept connections until :meth:`shutdown` (blocking)."""
        while not self._shutdown.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed under us during shutdown
            self._queue.put(conn)

    def start(self) -> "Server":
        """Run :meth:`serve_forever` on a daemon thread (tests, examples)."""
        self._thread = threading.Thread(target=self.serve_forever, daemon=True)
        self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop accepting, close the listener and live connections, drain threads."""
        self._shutdown.set()
        try:
            self._listener.close()
        except OSError:
            pass
        # close connections still waiting for a worker slot first, so no
        # worker dequeues a live socket after the poison pills go in
        while True:
            try:
                queued = self._queue.get_nowait()
            except queue.Empty:
                break
            if queued is not None:
                try:
                    queued.close()
                except OSError:
                    pass
        with self._conns_lock:
            live = list(self._conns)
        for conn in live:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        for _ in self._workers:
            self._queue.put(None)  # one poison pill per worker
        for worker in self._workers:
            worker.join(timeout=5)

    def __enter__(self) -> "Server":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # per-connection loop
    # ------------------------------------------------------------------

    def _worker(self) -> None:
        while True:
            conn = self._queue.get()
            if conn is None:
                return
            try:
                self._client(conn)
            except Exception:  # noqa: BLE001 - a broken connection must
                pass  # never take the worker (and its queue slot) down

    def _client(self, conn: socket.socket) -> None:
        with self._conns_lock:
            self._conns.add(conn)
        try:
            with conn:
                reader = conn.makefile("r", encoding="utf-8", newline="\n")
                writer = conn.makefile("w", encoding="utf-8", newline="\n")
                for line in reader:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        writer.write(self.service.handle_line(line) + "\n")
                        writer.flush()
                    except (OSError, ValueError):
                        break  # client went away mid-response
        except OSError:
            pass  # connection torn down during shutdown
        finally:
            with self._conns_lock:
                self._conns.discard(conn)


def serve(
    db: Database | None = None,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    max_threads: int = 8,
    batch: bool = True,
    instance=None,
    semantics: str = "cwa",
    workers: int | None = None,
    path: str | None = None,
) -> Server:
    """Build a server around ``db`` (or a fresh session) and start it.

    Returns the started :class:`Server`; ``server.address`` carries the
    bound ``(host, port)``.  The caller owns shutdown::

        with serve(Database({"R": [(1, 2)]})) as server:
            ...  # connect to server.address

    ``path`` makes the fresh session durable (``Database(path=...)``):
    opening recovers the directory's snapshot + WAL, and every
    acknowledged mutation is journaled.  When ``workers > 1`` the
    oracle's process pool is forked *before* any client thread exists.
    """
    if db is None:
        db = Database(instance, semantics=semantics, workers=workers, path=path)
    if db.workers and db.workers > 1:
        db.ensure_worker_pool()
    service = QueryService(db, batch=batch)
    return Server(service, host=host, port=port, max_threads=max_threads).start()
