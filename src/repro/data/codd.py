"""Codd databases: the model of SQL's single ``NULL``.

SQL uses one unmarked null; comparisons involving it never evaluate to
true.  This is properly modelled (paper, Section 6) by *Codd databases*:
naive databases in which no null repeats.  This module provides

* the tuple information ordering ``t ⊑ t'`` ("t' is at least as
  informative as t"),
* conversion from SQL-style rows (``None`` marks a null) to Codd
  instances and back,
* a validity check / constructor for Codd instances.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Sequence

from repro.data.instance import Instance
from repro.data.values import Null, NullFactory

__all__ = [
    "tuple_leq",
    "from_sql_rows",
    "to_sql_rows",
    "as_codd",
    "codd_instance",
]


def tuple_leq(t: Sequence[Hashable], s: Sequence[Hashable]) -> bool:
    """The information ordering ``t ⊑ s`` on tuples without repeated nulls.

    ``t ⊑ s`` holds iff the tuples have the same length and whenever a
    position of ``t`` holds a constant, ``s`` holds the *same* constant
    there (paper, Section 6).  Null positions of ``t`` may be refined to
    anything.
    """
    if len(t) != len(s):
        return False
    return all(isinstance(a, Null) or a == b for a, b in zip(t, s))


def from_sql_rows(
    relations: Mapping[str, Iterable[Sequence[Hashable]]],
    factory: NullFactory | None = None,
) -> Instance:
    """Interpret ``None`` entries as SQL nulls and build a Codd instance.

    Each ``None`` becomes a distinct fresh null, so the result is a Codd
    database by construction.

    >>> inst = from_sql_rows({"R": [(1, None), (None, 2)]})
    >>> inst.is_codd()
    True
    """
    factory = factory or NullFactory("c")
    rels: dict[str, list[tuple]] = {}
    for name, rows in relations.items():
        fixed_rows = []
        for row in rows:
            fixed_rows.append(tuple(factory.fresh() if v is None else v for v in row))
        rels[name] = fixed_rows
    return Instance(rels)


def to_sql_rows(instance: Instance) -> dict[str, list[tuple]]:
    """Render a Codd instance with ``None`` standing for each null.

    Raises ``ValueError`` when the instance is not Codd, because the
    identity of repeating nulls cannot be expressed with SQL's single
    unmarked null.
    """
    if not instance.is_codd():
        raise ValueError("instance repeats nulls; it has no faithful SQL rendering")
    return {
        name: [
            tuple(None if isinstance(v, Null) else v for v in row)
            for row in sorted(instance.tuples(name), key=repr)
        ]
        for name in instance.relations
    }


def as_codd(instance: Instance, factory: NullFactory | None = None) -> Instance:
    """Forget null identities: replace every null *occurrence* by a fresh null.

    This is the lossy projection of a naive database onto the Codd
    model.  The result always satisfies :meth:`Instance.is_codd`.
    """
    factory = factory or NullFactory("c")
    rels: dict[str, list[tuple]] = {}
    for name in instance.relations:
        rows = []
        for row in instance.tuples(name):
            rows.append(tuple(factory.fresh() if isinstance(v, Null) else v for v in row))
        rels[name] = rows
    return Instance(rels)


def codd_instance(relations: Mapping[str, Iterable[Sequence[Hashable]]]) -> Instance:
    """Build an instance and verify it is a Codd database."""
    inst = Instance({name: [tuple(r) for r in rows] for name, rows in relations.items()})
    if not inst.is_codd():
        raise ValueError("nulls repeat; not a Codd database")
    return inst
