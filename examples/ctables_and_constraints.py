"""Beyond naive tables: conditional tables and integrity constraints.

Two Section-12 directions made concrete on an HR scenario:

* *c-tables* express disjunctive and negative knowledge ("the auditor is
  Dana or Erin, and definitely not Alex") that marked nulls cannot;
* *keys* shrink the space of possible worlds, turning possible answers
  into certain ones.

Run with::

    python examples/ctables_and_constraints.py
"""

from repro import Instance, Null, Query, parse
from repro.constraints import Key, certain_answers_under
from repro.core import certain_answers
from repro.ctables import CFact, CInstance, ceq, cneq, cor, difference
from repro.semantics import get_semantics

# ----------------------------------------------------------------------
# 1. Disjunctive knowledge with a c-table
# ----------------------------------------------------------------------
# Assigned(person, case): the auditor on case 7 is unknown, but known to
# be Dana or Erin — and definitely not Alex.

who = Null("who")
assignments = CInstance(
    (
        CFact("Assigned", ("alex", 3)),
        CFact("Assigned", (who, 7)),
    ),
    global_condition=(ceq(who, "dana") | ceq(who, "erin")) & cneq(who, "alex"),
)
print("Conditional instance:", assignments)

someone = Query.boolean(
    parse("Assigned('dana', 7) | Assigned('erin', 7)"), name="dana_or_erin_on_7"
)
print(f"\n'dana or erin audits case 7' certain? {bool(assignments.certain_answers(someone))}")
assert assignments.certain_answers(someone)

nobody_alex = Query.boolean(parse("!Assigned('alex', 7)"), name="not_alex_on_7")
print(f"'alex does not audit case 7' certain? {bool(assignments.certain_answers(nobody_alex))}")
assert assignments.certain_answers(nobody_alex)
# A naive table cannot state either fact — it has no way to say "one of
# these two" or "not that one".

# ----------------------------------------------------------------------
# 2. Set difference with correct certain-answer semantics
# ----------------------------------------------------------------------
# Which employees are NOT assigned to any audited case?  (The difference
# construction attaches symbolic inequalities.)

staff_cases = CInstance(
    (
        CFact("Staff", ("alex",)),
        CFact("Staff", ("dana",)),
        CFact("Busy", (who,)),
    ),
    global_condition=cor(ceq(who, "dana"), ceq(who, "erin")),
)
free_staff = difference(staff_cases, "Staff", "Busy", "Free")
q_free = Query(parse("Free(p)"), ("p",), name="free_staff")
print(f"\ncertainly-free staff: {sorted(free_staff.certain_answers(q_free))}")
# alex is certainly free: the busy person is dana or erin, never alex.
assert free_staff.certain_answers(q_free) == frozenset({("alex",)})

# ----------------------------------------------------------------------
# 3. A key constraint turning a possible answer certain
# ----------------------------------------------------------------------
# Badge readings: badge 17 was seen with an unknown holder, and the
# registry says badge 17 belongs to Dana.  Badge numbers are a key.

seen = Null("holder")
readings = Instance({"Badge": [(17, seen), (17, "dana")]})
q_holder = Query.boolean(parse("forall b, p . Badge(b, p) -> p = 'dana'"), name="only_dana")

plain = bool(certain_answers(q_holder, readings, get_semantics("cwa")))
with_key = bool(
    certain_answers_under(
        q_holder, readings, get_semantics("cwa"), [Key("Badge", (0,), 2)]
    )
)
print(f"\n'badge 17 is dana's' certain without key: {plain}")
print(f"'badge 17 is dana's' certain with key:    {with_key}")
assert not plain and with_key

print("\nC-tables & constraints example OK.")
