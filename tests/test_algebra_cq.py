"""Unit tests for repro.algebra.cq: conjunctive queries, containment, minimisation."""

import pytest

from repro.algebra.cq import CQ, UCQ
from repro.data.generate import intro_example
from repro.data.instance import Instance
from repro.data.values import Null
from repro.logic.ast import Exists, Var
from repro.logic.classes import in_epos
from repro.logic.eval import answers
from repro.logic.parser import parse

x, y, z, w = Var("x"), Var("y"), Var("z"), Var("w")


class TestConstruction:
    def test_unsafe_head_rejected(self):
        with pytest.raises(ValueError):
            CQ((x,), (("R", (y,)),))

    def test_empty_body_rejected(self):
        with pytest.raises(ValueError):
            CQ((), ())

    def test_constants_in_head_ok(self):
        cq = CQ((x, 7), (("R", (x,)),))
        assert cq.head == (x, 7)


class TestEvaluation:
    def test_join_answers(self):
        cq = CQ((x, y), (("R", (x, z)), ("S", (z, y))))
        got = cq.answers(intro_example())
        assert (1, 4) in got and (Null("2"), 5) in got

    def test_constant_filters(self):
        cq = CQ((y,), (("R", (1, y)),))
        d = Instance({"R": [(1, 2), (3, 4)]})
        assert cq.answers(d) == frozenset({(2,)})

    def test_boolean_cq(self):
        cq = CQ((), (("E", (x, y)), ("E", (y, x))))
        assert cq.holds(Instance({"E": [(1, 2), (2, 1)]}))
        assert not cq.holds(Instance({"E": [(1, 2)]}))

    def test_repeated_variable_in_atom(self):
        cq = CQ((x,), (("E", (x, x)),))
        d = Instance({"E": [(1, 1), (1, 2)]})
        assert cq.answers(d) == frozenset({(1,)})

    def test_agreement_with_logic_eval(self):
        cq = CQ((x, y), (("R", (x, z)), ("S", (z, y))))
        formula = cq.to_formula()
        d = intro_example()
        assert cq.answers(d) == answers(formula, d, (x, y))


class TestFormulaBridge:
    def test_to_formula_is_epos(self):
        cq = CQ((x,), (("R", (x, z)),))
        assert in_epos(cq.to_formula())

    def test_to_formula_binds_non_head(self):
        cq = CQ((x,), (("R", (x, z)),))
        phi = cq.to_formula()
        assert isinstance(phi, Exists) and phi.vars == (z,)

    def test_from_formula_roundtrip(self):
        phi = parse("exists z (R(x, z) & S(z, y))")
        cq = CQ.from_formula(phi, (x, y))
        assert cq.answers(intro_example()) == frozenset({(1, 4), (Null("2"), 5)})

    def test_from_formula_rejects_disjunction(self):
        with pytest.raises(ValueError):
            CQ.from_formula(parse("R(x, x) | S(x, x)"), (x,))


class TestContainment:
    def test_classic_containment(self):
        # E(x,y) ∧ E(y,x) ⊆ E(x,y) ∧ E(y,z)
        a = CQ((), (("E", (x, y)), ("E", (y, x))))
        b = CQ((), (("E", (x, y)), ("E", (y, z))))
        assert a.contained_in(b)
        assert not b.contained_in(a)

    def test_head_preserved(self):
        # R(x,y) ⊄ R(y,x) as binary queries, but each is contained in ∃-projections
        a = CQ((x, y), (("R", (x, y)),))
        b = CQ((x, y), (("R", (y, x)),))
        assert not a.contained_in(b)
        assert a.contained_in(a)

    def test_constants_matter(self):
        a = CQ((), (("R", (1,)),))
        b = CQ((), (("R", (x,)),))
        assert a.contained_in(b)
        assert not b.contained_in(a)

    def test_arity_mismatch_raises(self):
        a = CQ((x,), (("R", (x,)),))
        b = CQ((), (("R", (x,)),))
        with pytest.raises(ValueError):
            a.contained_in(b)

    def test_equivalence(self):
        a = CQ((x,), (("R", (x, y)),))
        b = CQ((x,), (("R", (x, z)),))
        assert a.equivalent_to(b)


class TestMinimisation:
    def test_redundant_atom_removed(self):
        cq = CQ((x,), (("R", (x, y)), ("R", (x, z))))
        small = cq.minimize()
        assert len(small.body) == 1
        assert small.equivalent_to(cq)

    def test_core_query_untouched(self):
        cq = CQ((x,), (("R", (x, y)), ("S", (y, x))))
        assert len(cq.minimize().body) == 2

    def test_head_variables_not_collapsed(self):
        cq = CQ((x, y), (("R", (x, z)), ("R", (y, z))))
        small = cq.minimize()
        assert small.equivalent_to(cq)
        head_vars = {t for t in small.head}
        body_vars = {t for _, ts in small.body for t in ts}
        assert head_vars <= body_vars

    def test_boolean_minimisation(self):
        # E(x,y) ∧ E(z,w): two independent edges collapse to one
        cq = CQ((), (("E", (x, y)), ("E", (z, w))))
        assert len(cq.minimize().body) == 1


class TestUCQ:
    def test_union_of_answers(self):
        u = UCQ((CQ((x,), (("R", (x, 1)),)), CQ((x,), (("S", (x, 2)),))))
        d = Instance({"R": [(5, 1)], "S": [(6, 2)]})
        assert u.answers(d) == frozenset({(5,), (6,)})

    def test_mixed_arities_rejected(self):
        with pytest.raises(ValueError):
            UCQ((CQ((x,), (("R", (x,)),)), CQ((), (("R", (x,)),))))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            UCQ(())

    def test_to_formula_epos(self):
        u = UCQ((CQ((), (("R", (x,)),)), CQ((), (("S", (x,)),))))
        assert in_epos(u.to_formula())

    def test_ucq_containment(self):
        narrow = UCQ((CQ((), (("E", (x, y)), ("E", (y, x)))),))
        wide = UCQ((CQ((), (("E", (x, y)),)),))
        assert narrow.contained_in(wide)
        assert not wide.contained_in(narrow)

    def test_holds(self):
        u = UCQ((CQ((), (("R", (x,)),)),))
        assert u.holds(Instance({"R": [(1,)]}))
        assert not u.holds(Instance.empty())
