"""Log-shipping replication: the feed ring, the frame protocol, the
tailer, staleness-bounded reads, promotion, and end-to-end convergence
over real TCP sockets."""

import json
import socket
import threading
import time

import pytest

from repro.data.values import Null
from repro.replication import ReplicaTailer, ReplicationFeed, apply_frame
from repro.replication.replica import ReplicationError, parse_address
from repro.server import QueryService, serve
from repro.session import Database

X = Null("x")


def rpc(address, **request) -> dict:
    """One-shot JSON request/response against a served address."""
    with socket.create_connection(address, timeout=30) as sock:
        sock.sendall((json.dumps(request) + "\n").encode("utf-8"))
        return json.loads(sock.makefile("r", encoding="utf-8").readline())


def wait_until(predicate, timeout=30.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestParseAddress:
    def test_host_port_string(self):
        assert parse_address("10.0.0.7:8123") == ("10.0.0.7", 8123)

    def test_tuple_passthrough(self):
        assert parse_address(("localhost", "99")) == ("localhost", 99)

    @pytest.mark.parametrize("bad", ["nocolon", ":8000", "host:", "host:http"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_address(bad)


class TestApplyFrame:
    """The transport-free frame protocol on a bare session."""

    def test_hello_and_heartbeat_pass_through(self):
        db = Database()
        assert apply_frame(db, {"frame": "hello", "role": "primary"}) == "hello"
        assert apply_frame(db, {"frame": "heartbeat", "generation": 3}) == "heartbeat"
        assert db.generation == 0

    def test_snapshot_installs_state_and_counters_verbatim(self):
        db = Database()
        frame = {
            "frame": "snapshot",
            "generation": 7,
            "rel_generations": {"R": 5, "S": 2},
            "instance": {"R": [[1, "?x"]], "S": [[4]]},
        }
        assert apply_frame(db, frame) == "snapshot"
        assert db.instance.tuples("R") == {(1, X)}
        assert db.instance.tuples("S") == {(4,)}
        assert db.generation == 7
        assert db.rel_generation("R") == 5 and db.rel_generation("S") == 2

    def test_delta_applied_and_counters_verified(self):
        db = Database({"R": [(1, 2)]})
        frame = {
            "frame": "delta",
            "generation": 1,
            "rel_generations": {"R": 1},
            "adds": {"R": [[3, 4]]},
        }
        assert apply_frame(db, frame) == "applied"
        assert db.instance.tuples("R") == {(1, 2), (3, 4)}
        assert db.generation == 1

    def test_old_frame_skipped_not_reapplied(self):
        db = Database()
        apply_frame(db, {"frame": "delta", "generation": 1, "adds": {"R": [[1]]}})
        # the primary resent generation 1 after a reconnect
        assert (
            apply_frame(db, {"frame": "delta", "generation": 1, "removes": {"R": [[1]]}})
            == "skipped"
        )
        assert db.instance.tuples("R") == {(1,)}
        assert db.generation == 1

    def test_future_frame_is_a_gap(self):
        db = Database()
        frame = {"frame": "delta", "generation": 5, "adds": {"R": [[1]]}}
        assert apply_frame(db, frame) == "gap"
        assert db.generation == 0  # nothing was applied

    def test_ineffective_delta_is_divergence(self):
        db = Database({"R": [(1, 2)]})
        # the primary claims this write was effective; here it is a no-op,
        # so the generations drift — the replica must resync, not limp on
        frame = {"frame": "delta", "generation": 1, "adds": {"R": [[1, 2]]}}
        assert apply_frame(db, frame) == "diverged"

    def test_rel_generation_mismatch_is_divergence(self):
        db = Database()
        frame = {
            "frame": "delta",
            "generation": 1,
            "rel_generations": {"R": 9},
            "adds": {"R": [[1]]},
        }
        assert apply_frame(db, frame) == "diverged"

    def test_unknown_frame_raises(self):
        with pytest.raises(ReplicationError):
            apply_frame(Database(), {"frame": "mystery"})


class TestWaitForGeneration:
    def test_satisfied_immediately(self):
        db = Database()
        db.insert("R", (1,))
        assert db.wait_for_generation(1, timeout=0) is True
        assert db.wait_for_generation(rel_generations={"R": 1}, timeout=0) is True

    def test_timeout_returns_false(self):
        db = Database()
        start = time.monotonic()
        assert db.wait_for_generation(3, timeout=0.05) is False
        assert time.monotonic() - start < 5

    def test_concurrent_write_wakes_the_waiter(self):
        db = Database()
        threading.Timer(0.05, lambda: db.insert("R", (1,))).start()
        assert db.wait_for_generation(1, timeout=30) is True

    def test_rel_generation_floor_not_satisfied_by_other_relations(self):
        db = Database()
        db.insert("S", (1,))
        assert db.wait_for_generation(rel_generations={"R": 1}, timeout=0.05) is False


class TestReplicationFeed:
    def test_position_zero_always_bootstraps_with_a_snapshot(self):
        # generation 0 may be a *seeded* instance: "never synced" must
        # not be conflated with "already has the primary's state"
        db = Database({"R": [(1, 2)]})
        feed = ReplicationFeed(db)
        link = feed.register(None)
        frame = next(feed.stream(0, link))
        assert frame["frame"] == "snapshot" and frame["generation"] == 0
        assert frame["instance"] == {"R": [[1, 2]]}
        feed.close()

    def test_in_ring_position_streams_deltas(self):
        db = Database()
        feed = ReplicationFeed(db)
        db.insert("R", (1, 2))
        db.insert("R", (2, 3))
        link = feed.register(None)
        # generation 1 is still buffered: resume by deltas, no snapshot
        frame = json.loads(next(feed.stream(1, link)))
        assert frame["frame"] == "delta" and frame["generation"] == 2
        assert frame["adds"] == {"R": [[2, 3]]}
        assert frame["rel_generations"] == {"R": 2}
        assert link.sent_generation == 2 and link.snapshots == 0
        feed.close()

    def test_compacted_position_falls_back_to_snapshot(self):
        db = Database()
        feed = ReplicationFeed(db, max_records=4)
        for i in range(10):
            db.insert("R", (i,))
        stats = feed.stats
        assert stats["buffered_records"] == 4
        assert stats["floor_generation"] == 6 and stats["top_generation"] == 10
        link = feed.register(None)
        # generation 2 was evicted from the ring: bootstrap required
        frame = next(feed.stream(2, link))
        assert frame["frame"] == "snapshot" and frame["generation"] == 10
        assert link.snapshots == 1
        feed.close()

    def test_replace_resets_the_ring(self):
        db = Database()
        feed = ReplicationFeed(db)
        db.insert("R", (1,))
        db.replace({"S": [(9,)]})
        stats = feed.stats
        assert stats["buffered_records"] == 0 and stats["resets"] >= 1
        assert stats["floor_generation"] == stats["top_generation"] == db.generation
        # a replica mid-stream at the old position now needs a snapshot
        link = feed.register(None)
        frame = next(feed.stream(1, link))
        assert frame["frame"] == "snapshot"
        assert frame["instance"] == {"S": [[9]]}
        feed.close()

    def test_seeds_from_existing_wal(self, tmp_path):
        db = Database(path=tmp_path / "data")
        db.insert("R", (1,))
        db.insert("R", (2,))
        # a feed attached *after* the writes still serves them as deltas
        feed = ReplicationFeed(db)
        link = feed.register(None)
        frame = json.loads(next(feed.stream(1, link)))
        assert frame["frame"] == "delta" and frame["generation"] == 2
        feed.close()
        db.close()

    def test_caught_up_stream_emits_heartbeats(self):
        db = Database()
        feed = ReplicationFeed(db, heartbeat_s=0.01)
        db.insert("R", (1,))
        link = feed.register(None)
        stream = feed.stream(1, link)
        frame = next(stream)
        assert frame["frame"] == "heartbeat" and frame["generation"] == 1
        feed.close()

    def test_close_ends_streams_and_unhooks(self):
        db = Database()
        feed = ReplicationFeed(db)
        link = feed.register(None)
        stream = feed.stream(1, link)
        feed.close()
        assert list(stream) == []
        db.insert("R", (1,))  # listener removed: no error, nothing buffered
        assert feed.stats["buffered_records"] == 0

    def test_per_replica_lag_in_stats(self):
        db = Database()
        feed = ReplicationFeed(db)
        link = feed.register("10.0.0.9:4000")
        for i in range(3):
            db.insert("R", (i,))
        stream = feed.stream(0, link)
        next(stream)  # snapshot puts the link at the top
        [peer] = feed.stats["replicas"]
        assert peer["address"] == "10.0.0.9:4000"
        assert peer["lag_generations"] == 0 and peer["lag_bytes"] == 0
        db.insert("R", (99,))
        [peer] = feed.stats["replicas"]
        assert peer["lag_generations"] == 1 and peer["lag_bytes"] > 0
        feed.unregister(link)
        assert feed.stats["replicas"] == []
        feed.close()


class TestStalenessBoundedReads:
    def test_satisfied_bound_answers_normally(self):
        db = Database({"R": [(1, 2)]})
        service = QueryService(db)
        response = service.handle(
            {"op": "query", "query": "exists x, y (R(x, y))", "min_generation": 0}
        )
        assert response["ok"] and response["holds"]

    def test_unmet_bound_is_a_typed_stale_error_with_position(self):
        db = Database({"R": [(1, 2)]})
        service = QueryService(db)
        response = service.handle(
            {
                "op": "query",
                "query": "exists x, y (R(x, y))",
                "min_generation": 5,
                "wait_timeout_s": 0.05,
            }
        )
        assert response["ok"] is False
        assert response["error_type"] == "stale" and response["stale"] is True
        assert response["generation"] == 0 and response["min_generation"] == 5
        assert "rel_generations" in response and "stale" in response["error"]

    def test_min_rel_generation_bound(self):
        db = Database()
        db.insert("R", (1,))
        service = QueryService(db)
        ok = service.handle(
            {"op": "query", "query": "exists x (R(x))", "min_rel_generation": {"R": 1}}
        )
        assert ok["ok"] and ok["holds"]
        stale = service.handle(
            {
                "op": "query",
                "query": "exists x (R(x))",
                "min_rel_generation": {"S": 1},
                "wait_timeout_s": 0.05,
            }
        )
        assert stale["ok"] is False and stale["error_type"] == "stale"

    def test_bound_waits_for_a_concurrent_write(self):
        db = Database()
        service = QueryService(db)
        threading.Timer(0.05, lambda: db.insert("R", (1,))).start()
        response = service.handle(
            {
                "op": "query",
                "query": "exists x (R(x))",
                "min_generation": 1,
                "wait_timeout_s": 30,
            }
        )
        assert response["ok"] and response["holds"] and response["generation"] >= 1

    def test_batch_honours_one_bound_for_all_queries(self):
        db = Database({"R": [(1, 2)]})
        service = QueryService(db)
        response = service.handle(
            {
                "op": "batch",
                "queries": [{"query": "exists x, y (R(x, y))"}],
                "min_generation": 3,
                "wait_timeout_s": 0.05,
            }
        )
        assert response["ok"] is False and response["error_type"] == "stale"

    @pytest.mark.parametrize(
        "fields",
        [
            {"min_generation": "soon"},
            {"min_generation": -1},
            {"min_rel_generation": ["R"]},
            {"min_rel_generation": {"R": "x"}},
            {"min_generation": 1, "wait_timeout_s": -2},
        ],
    )
    def test_malformed_bounds_are_plain_errors_not_stale(self, fields):
        service = QueryService(Database())
        response = service.handle({"op": "query", "query": "exists x (R(x))", **fields})
        assert response["ok"] is False and response.get("error_type") != "stale"


class TestReplicaRoleAndPromotion:
    def replica_service(self):
        db = Database()
        tailer = ReplicaTailer(db, "127.0.0.1:9")  # never started: role only
        return QueryService(db, tailer=tailer)

    def test_writes_rejected_with_primary_address(self):
        service = self.replica_service()
        for request in (
            {"op": "insert", "relation": "R", "rows": [[1]]},
            {"op": "delete", "relation": "R", "rows": [[1]]},
            {"op": "delta", "adds": {"R": [[1]]}},
        ):
            response = service.handle(request)
            assert response["ok"] is False
            assert response["error_type"] == "read_only" and response["role"] == "replica"
            assert response["primary"] == "127.0.0.1:9"
        assert service.db.generation == 0

    def test_reads_still_served(self):
        service = self.replica_service()
        assert service.handle({"op": "query", "query": "exists x (R(x))"})["ok"]

    def test_promote_flips_writable_and_stops_the_tailer(self):
        service = self.replica_service()
        response = service.handle({"op": "promote"})
        assert response["ok"] and response["promoted"] and response["role"] == "primary"
        assert service.tailer.stopped
        assert service.handle({"op": "insert", "relation": "R", "rows": [[1]]})["ok"]

    def test_promote_idempotent_on_a_primary(self):
        service = QueryService(Database())
        response = service.handle({"op": "promote"})
        assert response["ok"] and response["promoted"] is False

    def test_stats_reports_role_and_position(self):
        service = self.replica_service()
        stats = service.handle({"op": "stats"})
        assert stats["role"] == "replica"
        replication = stats["replication"]
        assert replication["position"] == {"generation": 0, "rel_generations": {}}
        assert replication["tailer"]["primary"] == "127.0.0.1:9"

    def test_replicate_op_requires_the_streaming_transport(self):
        service = QueryService(Database(), feed=ReplicationFeed(Database()))
        response = service.handle({"op": "replicate", "position": {"generation": 0}})
        assert response["ok"] is False and "streaming" in response["error"]


class TestEndToEndOverTCP:
    """Primary and replica as real served nodes (in-process servers,
    real sockets); the tailer is the same code path ``repro serve
    --replica-of`` runs."""

    def converged(self, replica_addr, primary_db):
        def check():
            stats = rpc(replica_addr, op="stats")
            return stats["generation"] == primary_db.generation

        return check

    def test_replica_bootstraps_from_compacted_primary_and_converges(self, tmp_path):
        primary_db = Database(path=tmp_path / "primary")
        for i in range(6):
            primary_db.insert("R", (i, i + 1))
        assert primary_db.checkpoint()  # WAL truncated: history compacted away
        with serve(primary_db) as primary:
            primary_addr = f"{primary.address[0]}:{primary.address[1]}"
            replica_db = Database(path=tmp_path / "replica")
            with serve(replica_db, replicate_from=primary_addr) as replica:
                assert wait_until(self.converged(replica.address, primary_db))
                # identical certain answers from the bootstrapped state
                query = {"op": "query", "query": "exists x (R(x, 3))"}
                assert rpc(replica.address, **query) == rpc(primary.address, **query)
                # a post-bootstrap write arrives as a delta, not a snapshot
                rpc(primary.address, op="insert", relation="S", rows=[[41]])
                read = rpc(
                    replica.address,
                    op="query",
                    query="exists x (S(x))",
                    min_generation=primary_db.generation,
                    wait_timeout_s=30,
                )
                assert read["ok"] and read["holds"]
                assert replica_db.generation == primary_db.generation
                assert replica_db.instance == primary_db.instance
                stats = rpc(replica.address, op="stats")
                assert stats["replication"]["tailer"]["snapshots_loaded"] == 1
                assert stats["replication"]["tailer"]["frames_applied"] >= 1
            replica_db.close()
        primary_db.close()

    def test_primary_stats_reports_connected_replica_lag(self):
        primary_db = Database({"R": [(1, 2)]})
        with serve(primary_db) as primary:
            primary_addr = f"{primary.address[0]}:{primary.address[1]}"
            replica_db = Database()
            with serve(replica_db, replicate_from=primary_addr) as replica:
                replica_addr = f"{replica.address[0]}:{replica.address[1]}"

                def replica_listed():
                    peers = rpc(primary.address, op="stats")["replication"]["feed"]["replicas"]
                    return [p["address"] for p in peers] == [replica_addr]

                assert wait_until(replica_listed)
                assert wait_until(self.converged(replica.address, primary_db))
                [peer] = rpc(primary.address, op="stats")["replication"]["feed"]["replicas"]
                assert peer["lag_generations"] == 0 and peer["snapshots_sent"] == 1
        replica_db.close()
        primary_db.close()

    def test_primary_restart_no_gaps_no_double_applies(self, tmp_path):
        """Kill the primary's listener, restart on the same port, keep
        writing: the replica reconnects and converges with every
        generation applied exactly once."""
        primary_db = Database(path=tmp_path / "primary")
        with serve(primary_db) as primary:
            host, port = primary.address
            primary_addr = f"{host}:{port}"
            replica_db = Database(path=tmp_path / "replica")
            with serve(
                replica_db,
                replicate_from=primary_addr,
                backoff_base=0.05,
                backoff_cap=0.2,
            ) as replica:

                def bootstrapped():
                    tailer = rpc(replica.address, op="stats")["replication"]["tailer"]
                    return tailer["snapshots_loaded"] >= 1

                # pin the bootstrap before any write, so every one of the
                # 15 generations below must arrive as exactly one delta
                assert wait_until(bootstrapped)
                for i in range(5):
                    rpc(primary.address, op="insert", relation="R", rows=[[i, i]])
                assert wait_until(self.converged(replica.address, primary_db))
                primary.shutdown()  # the replica's stream breaks mid-flight

                # writes the replica never saw over the old connection
                for i in range(5, 10):
                    primary_db.insert("R", (i, i))

                with serve(primary_db, port=port):
                    for i in range(10, 15):
                        primary_db.insert("R", (i, i))
                    assert wait_until(self.converged(replica.address, primary_db))
                    assert replica_db.instance == primary_db.instance
                    assert replica_db.generation == primary_db.generation == 15
                    tailer = rpc(replica.address, op="stats")["replication"]["tailer"]
                    # exactly once: 15 generations, 15 applied frames
                    assert tailer["frames_applied"] == 15
                    assert tailer["gaps"] == 0 and tailer["divergences"] == 0
                    assert tailer["connects"] >= 2
            replica_db.close()
        primary_db.close()

    def test_promote_over_the_wire_enables_writes(self):
        primary_db = Database({"R": [(7, 8)]})
        with serve(primary_db) as primary:
            primary_addr = f"{primary.address[0]}:{primary.address[1]}"
            replica_db = Database()
            with serve(replica_db, replicate_from=primary_addr) as replica:
                assert wait_until(self.converged(replica.address, primary_db))
                denied = rpc(replica.address, op="insert", relation="R", rows=[[1, 1]])
                assert denied["ok"] is False and denied["error_type"] == "read_only"
                promoted = rpc(replica.address, op="promote")
                assert promoted["ok"] and promoted["promoted"]
                accepted = rpc(replica.address, op="insert", relation="R", rows=[[1, 1]])
                assert accepted["ok"] and accepted["changed"] == 1
                assert rpc(replica.address, op="stats")["role"] == "primary"
        replica_db.close()
        primary_db.close()
