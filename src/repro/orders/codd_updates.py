"""Codd-database updates and their closures (Section 6, Libkin 1995 recap).

SQL's single ``NULL`` has no identity, so updates on Codd databases act
on *occurrences*:

* ``D[v/R(t.i)]``  — replace the null occurrence at position ``i`` of
  tuple ``t`` in-place;
* ``D⁺[v/R(t.i)]`` — add a copy of ``t`` with that occurrence replaced,
  retaining the original (other null positions of the copy take fresh
  nulls, keeping the instance Codd — unmarked nulls carry no identity);
* OWA update       — add an arbitrary tuple.

The paper recalls (from [Libkin 1995]) that over Codd databases the
reflexive-transitive closure of the Codd-CWA updates is exactly the
Plotkin ordering ``⊑ᴾ``, and adding OWA updates yields the Hoare
ordering ``⊑ᴴ``.  :func:`codd_reachable` makes both checkable.
"""

from __future__ import annotations

from typing import Hashable, Iterator, Sequence

from repro.data.instance import Instance
from repro.data.values import Null, NullFactory, sort_key
from repro.orders.updates import canonical_nulls, iter_owa_updates

__all__ = [
    "codd_replace",
    "codd_add_copy",
    "iter_codd_cwa_updates",
    "codd_reachable",
]


def _replace_at(row: tuple, index: int, value: Hashable) -> tuple:
    return row[:index] + (value,) + row[index + 1 :]


def codd_replace(
    instance: Instance, name: str, row: tuple, index: int, value: Hashable
) -> Instance:
    """``D[v/R(t.i)]``: in-place replacement of one null occurrence."""
    if not isinstance(row[index], Null):
        raise ValueError(f"position {index} of {row!r} holds no null")
    return instance.remove_fact(name, row).add_fact(name, _replace_at(row, index, value))


def codd_add_copy(
    instance: Instance,
    name: str,
    row: tuple,
    index: int,
    value: Hashable,
    factory: NullFactory | None = None,
) -> Instance:
    """``D⁺[v/R(t.i)]``: add a refined copy of ``t``, keep the original.

    Null positions of the copy other than ``index`` receive fresh nulls
    so the result stays a Codd database.
    """
    if not isinstance(row[index], Null):
        raise ValueError(f"position {index} of {row!r} holds no null")
    factory = factory or NullFactory("cc")
    copy = tuple(
        value
        if j == index
        else (factory.fresh() if isinstance(v, Null) else v)
        for j, v in enumerate(row)
    )
    return instance.add_fact(name, copy)


def iter_codd_cwa_updates(
    instance: Instance, values: Sequence[Hashable]
) -> Iterator[Instance]:
    """All single Codd-CWA update results over the value pool."""
    factory = NullFactory("cc")
    for name, row in instance.facts():
        for index, cell in enumerate(row):
            if not isinstance(cell, Null):
                continue
            for value in values:
                if value == cell:
                    continue
                yield codd_replace(instance, name, row, index, value)
                yield codd_add_copy(instance, name, row, index, value, factory)


def codd_reachable(
    source: Instance,
    target: Instance,
    with_owa: bool = False,
    max_steps: int | None = None,
    max_frontier: int = 50_000,
) -> bool:
    """Is ``target`` reachable from ``source`` by Codd(-CWA[+OWA]) updates?

    Both instances must be Codd databases.  Bounded BFS with canonical
    null-relabelling deduplication, substitution values from the
    target's constants (sufficient by the closure theorems).
    """
    if not source.is_codd() or not target.is_codd():
        raise ValueError("Codd updates operate on Codd databases")
    values = sorted(target.constants(), key=sort_key)
    if max_steps is None:
        max_steps = 2 * (source.fact_count() + target.fact_count()) + 2
    max_facts = 2 * max(target.fact_count(), source.fact_count())
    max_nulls = (
        sum(1 for _n, row in source.facts() for v in row if isinstance(v, Null))
        + sum(1 for _n, row in target.facts() for v in row if isinstance(v, Null))
        + 2
    )

    goal = canonical_nulls(target)
    start = canonical_nulls(source)
    if start == goal:
        return True

    def admissible(state: Instance) -> bool:
        if state.fact_count() > max_facts or len(state.nulls()) > max_nulls:
            return False
        return state.constants() <= (target.constants() | source.constants())

    frontier = {start}
    seen = {start}
    for _ in range(max_steps):
        next_frontier: set[Instance] = set()
        for current in frontier:
            streams = [iter_codd_cwa_updates(current, values)]
            if with_owa:
                streams.append(iter_owa_updates(current, values, schema=target.schema()))
            for stream in streams:
                for updated in stream:
                    state = canonical_nulls(updated)
                    if state == goal:
                        return True
                    if state in seen or not admissible(state):
                        continue
                    seen.add(state)
                    next_frontier.add(state)
                    if len(seen) > max_frontier:
                        raise RuntimeError("Codd update search exceeded the frontier bound")
        if not next_frontier:
            break
        frontier = next_frontier
    return False
