"""Possible answers: the dual of certain answers.

[Imielinski & Lipski 1984] pair certain answers (true in *every*
possible world) with possible answers (true in *some* world):

``possible(Q, D) = ⋃ { Q(E) | E ∈ [[D]] }``.

Always ``certain ⊆ possible``.  The same pool-bounded enumeration
applies, with the approximation direction flipped for OWA: truncating
extensions makes the union an *under*-approximation, so every reported
possible answer is genuinely possible.

For k-ary queries the union may mention pool-fresh constants; by
genericity those stand for "any fresh value", and the
``drop_fresh`` switch (default on) removes them so results only mention
values from the instance and query.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.core.certain import default_pool, query_schema
from repro.data.instance import Instance
from repro.logic.queries import Query
from repro.semantics.base import Semantics

__all__ = ["possible_answers", "possible_holds"]


def possible_answers(
    query: Query,
    instance: Instance,
    semantics: Semantics,
    pool: Sequence[Hashable] | None = None,
    extra_facts: int | None = None,
    limit: int = 500_000,
    drop_fresh: bool = True,
) -> frozenset[tuple[Hashable, ...]]:
    """``⋃ { Q(E) : E ∈ [[instance]] }`` over the (defaulted) pool."""
    own_pool = pool is None
    if pool is None:
        pool = default_pool(instance, query)
    schema = instance.schema().union(query_schema(query))
    result: set[tuple[Hashable, ...]] = set()
    for complete in semantics.expand(
        instance, list(pool), schema=schema, extra_facts=extra_facts, limit=limit
    ):
        result |= query.eval_raw(complete)
        if query.is_boolean and result:
            break
    if drop_fresh and own_pool and not query.is_boolean:
        anchored = set(instance.adom()) | set(query.constants())
        result = {row for row in result if all(v in anchored for v in row)}
    return frozenset(result)


def possible_holds(
    query: Query,
    instance: Instance,
    semantics: Semantics,
    pool: Sequence[Hashable] | None = None,
    extra_facts: int | None = None,
    limit: int = 500_000,
) -> bool:
    """Possible truth of a Boolean query: true in some world."""
    if not query.is_boolean:
        raise ValueError(f"query {query.name!r} is {query.arity}-ary; use possible_answers()")
    return bool(
        possible_answers(query, instance, semantics, pool, extra_facts, limit)
    )
