"""Tests for the k-ary lifting construction (Sections 8/11, Claim 5)."""

import itertools

from repro.semantics.domain import DatabaseDomain
from repro.semantics.lifting import (
    kary_certain,
    kary_naive_works,
    kary_weakly_monotone,
    lift_domain,
    lift_query,
)

TUPLES = ((1,), (2,))


def base_domain() -> DatabaseDomain:
    sem = {"a": frozenset({"a"}), "b": frozenset({"b"}), "x": frozenset({"a", "b"})}
    iso = lambda o: "ax" if o in ("a", "x") else o
    return DatabaseDomain(frozenset(sem), frozenset({"a", "b"}), sem, iso)


def all_kary_queries():
    """Every function from {a,b,x} to subsets of TUPLES (64 queries)."""
    subsets = [frozenset(s) for r in range(3) for s in itertools.combinations(TUPLES, r)]
    for qa in subsets:
        for qb in subsets:
            for qx in subsets:
                table = {"a": qa, "b": qb, "x": qx}
                yield table.__getitem__


class TestConstruction:
    def test_shape(self):
        lifted = lift_domain(base_domain(), TUPLES)
        assert len(lifted.domain.objects) == 6
        assert len(lifted.domain.complete) == 4

    def test_semantics_fixes_tuple(self):
        lifted = lift_domain(base_domain(), TUPLES)
        assert lifted.domain.sem[("x", (1,))] == frozenset({("a", (1,)), ("b", (1,))})

    def test_claim5_item1_fairness_transfers(self):
        base = base_domain()
        assert base.is_fair()
        lifted = lift_domain(base, TUPLES)
        assert lifted.domain.is_fair()

    def test_saturation_transfers(self):
        base = base_domain()
        assert base.is_saturated()
        lifted = lift_domain(base, TUPLES)
        assert lifted.domain.is_saturated()

    def test_unfair_base_gives_unfair_lift(self):
        sem = {"a": frozenset({"b"}), "b": frozenset({"b"}), "x": frozenset({"a", "b"})}
        base = DatabaseDomain(frozenset(sem), frozenset({"a", "b"}), sem)
        assert not base.is_fair()
        lifted = lift_domain(base, TUPLES)
        assert not lifted.domain.is_fair()


class TestClaim5Exhaustively:
    """Claim 5 items 3–5 checked over all 64 k-ary queries on the base."""

    def test_item3_certain_answers_correspond(self):
        base = base_domain()
        lifted = lift_domain(base, TUPLES)
        for query in all_kary_queries():
            starred = lift_query(query)
            for x in base.objects:
                for t in TUPLES:
                    assert lifted.domain.certain(starred, (x, t)) == (
                        t in kary_certain(base, query, x)
                    )

    def test_item4_naive_evaluation_corresponds(self):
        base = base_domain()
        lifted = lift_domain(base, TUPLES)
        for query in all_kary_queries():
            starred = lift_query(query)
            assert lifted.domain.naive_works(starred) == kary_naive_works(base, query)

    def test_item5_weak_monotonicity_corresponds(self):
        base = base_domain()
        lifted = lift_domain(base, TUPLES)
        for query in all_kary_queries():
            starred = lift_query(query)
            assert lifted.domain.weakly_monotone(starred) == kary_weakly_monotone(
                base, query
            )

    def test_item2_genericity_of_lifted_generic_queries(self):
        # a k-ary query constant on iso classes lifts to a generic Q*
        base = base_domain()
        lifted = lift_domain(base, TUPLES)
        query = lambda o: frozenset({(1,)}) if o in ("a", "x") else frozenset()
        starred = lift_query(query)
        assert lifted.domain.is_generic(starred)

    def test_lemma_8_1_on_the_lifted_domain(self):
        """naive works ⇔ weakly monotone, via Thm 3.1 on D* (saturated)."""
        base = base_domain()
        lifted = lift_domain(base, TUPLES)
        assert lifted.domain.is_saturated()
        for query in all_kary_queries():
            starred = lift_query(query)
            if not lifted.domain.is_generic(starred):
                continue
            assert lifted.domain.naive_works(starred) == lifted.domain.weakly_monotone(
                starred
            )
            # ... which by Claim 5 is exactly Lemma 8.1 for the base query:
            assert kary_naive_works(base, query) == kary_weakly_monotone(base, query)
