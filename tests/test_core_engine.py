"""Tests for repro.core.engine: routing between naive and enumeration."""

import pytest

from repro.core.engine import evaluate
from repro.data.instance import Instance
from repro.data.values import Null
from repro.logic.parser import parse
from repro.logic.queries import Query

X, Y = Null("x"), Null("y")


class TestAutoRouting:
    def test_ucq_goes_columnar(self, join_query, intro_db):
        result = evaluate(join_query, intro_db, semantics="owa")
        assert result.method == "columnar"
        assert result.exact
        assert result.answers == frozenset({(1, 4)})

    def test_non_fragment_query_enumerates(self, d0, forall_exists_query):
        result = evaluate(forall_exists_query, d0, semantics="owa")
        assert result.method == "enumeration"
        assert not result.holds  # OWA certain answer is false

    def test_pos_query_columnar_under_cwa(self, d0, forall_exists_query):
        result = evaluate(forall_exists_query, d0, semantics="cwa")
        assert result.method == "columnar"
        assert result.exact
        assert result.holds  # CWA certain answer is true

    def test_agreement_naive_vs_enumeration(self, d0, forall_exists_query):
        fast = evaluate(forall_exists_query, d0, semantics="cwa")
        slow = evaluate(forall_exists_query, d0, semantics="cwa", mode="enumeration")
        assert fast.answers == slow.answers

    def test_minimal_semantics_core_check(self):
        # off-core instance: auto must NOT trust naive evaluation
        d = Instance({"D": [(X, X), (X, Y)]})
        q = Query.boolean(parse("forall v, w . D(v, w) -> D(v, v)"))
        result = evaluate(q, d, semantics="mincwa")
        assert result.method == "enumeration"

    def test_minimal_semantics_on_core_goes_columnar(self):
        d = Instance({"D": [(X, X)]})  # a core
        q = Query.boolean(parse("exists v . D(v, v)"))
        result = evaluate(q, d, semantics="mincwa")
        assert result.method == "columnar" and result.exact


class TestForcedModes:
    def test_force_naive_marks_approximation(self, d0, forall_exists_query):
        result = evaluate(forall_exists_query, d0, semantics="owa", mode="naive")
        assert result.method == "naive"
        assert not result.exact

    def test_force_enumeration(self, join_query, intro_db):
        result = evaluate(join_query, intro_db, semantics="cwa", mode="enumeration")
        assert result.method == "enumeration"
        assert result.exact
        assert result.answers == frozenset({(1, 4)})

    def test_owa_enumeration_is_flagged_superset(self, d0, forall_exists_query):
        result = evaluate(forall_exists_query, d0, semantics="owa", mode="enumeration")
        assert not result.exact
        assert result.direction == "superset"

    def test_unknown_mode_raises(self, join_query, intro_db):
        with pytest.raises(ValueError):
            evaluate(join_query, intro_db, mode="guess")


class TestResultShape:
    def test_holds_property(self, d0, exists_cycle_query):
        result = evaluate(exists_cycle_query, d0, semantics="cwa")
        assert result.holds is True

    def test_repr_shows_method(self, d0, exists_cycle_query):
        result = evaluate(exists_cycle_query, d0, semantics="cwa")
        assert "columnar" in repr(result)

    def test_verdict_attached(self, d0, exists_cycle_query):
        result = evaluate(d0 and exists_cycle_query, d0, semantics="cwa")
        assert result.verdict.semantics == "cwa"
