"""The replica side of log shipping: tail, apply, verify, reconnect.

A :class:`ReplicaTailer` owns one background thread that connects to a
primary's serving port, issues the ``replicate`` op from the session's
**durable** position, and applies what comes back:

* ``delta`` frames go through :meth:`Database.apply_delta` — the same
  single mutation path every local write takes, so the replica journals
  to its *own* WAL and is itself recoverable;
* ``snapshot`` frames (bootstrap: the requested position was compacted
  away, or the timelines diverged) go through :meth:`Database.restore`,
  which installs the primary's state and counters verbatim;
* after every applied delta the resulting ``(generation,
  rel_generation)`` counters are checked against the frame — any
  mismatch marks the replica diverged and forces a snapshot resync
  rather than serving silently wrong answers.

Gap and double-apply protection fall out of dense generations: a frame
at or below the applied position is skipped (the primary resent it
after a reconnect), a frame more than one ahead aborts the connection
(resuming from the durable position closes the gap).  Reconnects use
capped exponential backoff with jitter so a restarted primary is not
stampeded.
"""

from __future__ import annotations

import json
import random
import socket
import threading
from time import monotonic
from typing import TYPE_CHECKING, Callable

from repro import faults as _faults
from repro.data.instance import Instance
from repro.data.jsonio import decode_row
from repro.session import DegradedError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints only
    from repro.session import Database

__all__ = ["ReplicaTailer", "ReplicationError", "apply_frame", "parse_address"]


class ReplicationError(Exception):
    """The primary refused or broke the replication conversation."""


def parse_address(address: str | tuple) -> tuple[str, int]:
    """``"host:port"`` (or an ``(host, port)`` pair) → ``(host, port)``."""
    if isinstance(address, tuple):
        host, port = address
        return str(host), int(port)
    host, _, port = address.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {address!r}")
    return host, int(port)


def _decode_side(side: dict | None) -> dict[str, list[tuple]]:
    if not side:
        return {}
    return {name: [decode_row(name, row) for row in rows] for name, rows in side.items()}


def apply_frame(db: Database, frame: dict) -> str:
    """Apply one replication frame to ``db``; returns the outcome.

    Outcomes: ``"applied"`` (delta landed, counters verified),
    ``"skipped"`` (already applied — double-apply guard),
    ``"gap"`` (frame is ahead of the next dense generation; the caller
    must reconnect from its position), ``"diverged"`` (the delta landed
    but the counters disagree with the primary's; the caller must
    snapshot-resync), ``"snapshot"`` (full state installed), and the
    pass-throughs ``"hello"`` / ``"heartbeat"``.  Pure with respect to
    transport — the trace-replay property test drives it socket-free.
    """
    kind = frame.get("frame")
    if kind in ("hello", "heartbeat"):
        return kind
    # the ``replica.apply`` failpoint fires before any state lands: an
    # injected error aborts this tail session (the frame re-ships on
    # reconnect — dense generations make re-application idempotent)
    _faults.fire("replica.apply")
    if kind == "snapshot":
        relations = frame.get("instance") or {}
        instance = Instance(
            {name: [decode_row(name, row) for row in rows] for name, rows in relations.items()}
        )
        db.restore(instance, frame["generation"], frame.get("rel_generations") or {})
        return "snapshot"
    if kind == "delta":
        generation = int(frame["generation"])
        if generation <= db.generation:
            return "skipped"
        if generation != db.generation + 1:
            return "gap"
        db.apply_delta(_decode_side(frame.get("adds")), _decode_side(frame.get("removes")))
        if db.generation != generation:
            return "diverged"  # the delta was not effective here: state drift
        for name, gen in (frame.get("rel_generations") or {}).items():
            if db.rel_generation(name) != gen:
                return "diverged"
        return "applied"
    raise ReplicationError(f"unknown replication frame {kind!r}")


class ReplicaTailer:
    """Stream a primary's WAL into a local session, forever.

    ``announce`` is the replica's own serve address, reported to the
    primary so ``repro cluster status`` can find every replica from the
    primary alone.  ``backoff_base``/``backoff_cap`` bound the
    reconnect schedule; ``jitter`` is injectable for deterministic
    tests.
    """

    def __init__(
        self,
        db: Database,
        primary: str | tuple,
        *,
        announce: str | None = None,
        backoff_base: float = 0.2,
        backoff_cap: float = 5.0,
        connect_timeout: float = 10.0,
        read_timeout: float = 30.0,
        jitter: Callable[[], float] = random.random,
    ):
        self._db = db
        self._primary = parse_address(primary)
        self.announce = announce
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.connect_timeout = connect_timeout
        self.read_timeout = read_timeout
        self._jitter = jitter
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._state_lock = threading.Lock()
        self._sock: socket.socket | None = None
        self._resync = False
        self._connected = False
        self._last_frame: float | None = None
        self._last_error: str | None = None
        self._counters = {
            "connects": 0,
            "reconnects": 0,
            "frames_applied": 0,
            "frames_skipped": 0,
            "snapshots_loaded": 0,
            "gaps": 0,
            "divergences": 0,
        }

    @property
    def primary_address(self) -> str:
        host, port = self._primary
        return f"{host}:{port}"

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> ReplicaTailer:
        if self._thread is not None:
            raise RuntimeError("tailer already started")
        self._thread = threading.Thread(
            target=self._run, name=f"repro-tailer-{self.primary_address}", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop tailing (idempotent); interrupts a blocked read."""
        self._stop.set()
        with self._state_lock:
            sock = self._sock
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        thread = self._thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=10)

    @property
    def stopped(self) -> bool:
        return self._stop.is_set()

    # ------------------------------------------------------------------
    # the tail loop
    # ------------------------------------------------------------------

    def _run(self) -> None:
        delay = self.backoff_base
        while not self._stop.is_set():
            progressed = False
            try:
                progressed = self._tail_once()
            except (OSError, ValueError, ReplicationError, DegradedError) as err:
                # DegradedError: the *local* session refused the apply
                # (its own disk is failing) — keep tailing with backoff;
                # once an operator checkpoint heals it, frames land again
                with self._state_lock:
                    self._last_error = f"{type(err).__name__}: {err}"
            if self._stop.is_set():
                return
            if progressed:
                delay = self.backoff_base
            self._counters["reconnects"] += 1
            # capped exponential backoff with jitter: sleep in
            # [delay/2, delay), doubling (up to the cap) per barren retry
            self._stop.wait(delay * (0.5 + 0.5 * min(1.0, max(0.0, self._jitter()))))
            delay = min(delay * 2, self.backoff_cap)

    def _tail_once(self) -> bool:
        """One connect-and-tail session; True when any frame landed."""
        sock = socket.create_connection(self._primary, timeout=self.connect_timeout)
        progressed = False
        try:
            with self._state_lock:
                self._sock = sock
            if self._stop.is_set():
                return progressed
            request = {
                "op": "replicate",
                "position": self._db.position,
                "replica": {"address": self.announce},
            }
            if self._resync:
                request["resync"] = True
            sock.sendall((json.dumps(request) + "\n").encode("utf-8"))
            sock.settimeout(self.read_timeout)
            reader = sock.makefile("r", encoding="utf-8", newline="\n")
            self._counters["connects"] += 1
            for line in reader:
                if self._stop.is_set():
                    return progressed
                frame = json.loads(line)
                if frame.get("ok") is False:
                    raise ReplicationError(frame.get("error", "primary refused replication"))
                outcome = apply_frame(self._db, frame)
                now = monotonic()
                with self._state_lock:
                    self._last_frame = now
                    self._connected = True
                if outcome == "applied":
                    self._counters["frames_applied"] += 1
                    self._resync = False
                    progressed = True
                elif outcome == "snapshot":
                    self._counters["snapshots_loaded"] += 1
                    self._resync = False
                    progressed = True
                elif outcome == "skipped":
                    self._counters["frames_skipped"] += 1
                elif outcome == "gap":
                    # reconnecting replays from the durable position, so
                    # the missing generations are re-served in order
                    self._counters["gaps"] += 1
                    return progressed
                elif outcome == "diverged":
                    self._counters["divergences"] += 1
                    self._resync = True
                    return progressed
            return progressed
        finally:
            with self._state_lock:
                self._sock = None
                self._connected = False
            try:
                sock.close()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    @property
    def status(self) -> dict:
        """Counters for the ``stats`` wire op and ``repro cluster status``."""
        with self._state_lock:
            last_frame = self._last_frame
            return {
                "primary": self.primary_address,
                "connected": self._connected,
                "stopped": self._stop.is_set(),
                "last_frame_age_s": (
                    round(monotonic() - last_frame, 3) if last_frame is not None else None
                ),
                "last_error": self._last_error,
                **self._counters,
            }
