"""Tests for the (R_val, R_sem) scheme (Sections 4 and 7).

Executable checks of Proposition 4.1 (fair ⇔ R_sem transitive) and its
powerset analogue Proposition 7.2 / Lemma 7.3.
"""

import itertools

import pytest

from repro.semantics.relations import PowersetRelationPair, RelationPair

COMPLETE = frozenset({"a", "b", "c"})
OBJECTS = COMPLETE | {"x"}

#: R_val: x may become a or b; complete objects map to themselves.
RVAL = {
    "a": frozenset({"a"}),
    "b": frozenset({"b"}),
    "c": frozenset({"c"}),
    "x": frozenset({"a", "b"}),
}

IDENTITY = frozenset((c, c) for c in COMPLETE)


def pair_with(rsem_extra):
    return RelationPair(OBJECTS, COMPLETE, RVAL, IDENTITY | frozenset(rsem_extra))


class TestValidation:
    def test_valid_pair(self):
        pair_with([]).validate()

    def test_rval_must_be_total(self):
        bad = RelationPair(OBJECTS, COMPLETE, {k: v for k, v in RVAL.items() if k != "x"}, IDENTITY)
        with pytest.raises(ValueError):
            bad.validate()

    def test_rval_identity_on_complete(self):
        rv = dict(RVAL)
        rv["a"] = frozenset({"b"})
        with pytest.raises(ValueError):
            RelationPair(OBJECTS, COMPLETE, rv, IDENTITY).validate()

    def test_rsem_reflexive(self):
        bad = RelationPair(OBJECTS, COMPLETE, RVAL, frozenset({("a", "a")}))
        with pytest.raises(ValueError):
            bad.validate()


class TestProposition41:
    def test_identity_rsem_gives_cwa_like_fair_domain(self):
        pair = pair_with([])
        assert pair.is_rsem_transitive()
        assert pair.induced_domain().is_fair()

    def test_subset_like_rsem(self):
        # a → b → c chain without (a, c): not transitive ⇒ not fair
        pair = pair_with([("a", "b"), ("b", "c")])
        assert not pair.is_rsem_transitive()
        assert not pair.induced_domain().is_fair()
        # closing the chain restores both
        closed = pair_with([("a", "b"), ("b", "c"), ("a", "c")])
        assert closed.is_rsem_transitive()
        assert closed.induced_domain().is_fair()

    def test_prop_4_1_exhaustively(self):
        """fairness ⇔ R_sem transitivity over all small R_sem extensions."""
        extras = list(itertools.permutations(sorted(COMPLETE), 2))
        checked = 0
        for r in range(len(extras) + 1):
            for chosen in itertools.combinations(extras, r):
                pair = pair_with(chosen)
                if pair.is_rsem_transitive():
                    assert pair.induced_domain().is_fair(), chosen
                    checked += 1
        # every transitive R_sem induced a fair domain
        assert checked > 3

    def test_semantics_composition(self):
        pair = pair_with([("a", "c")])
        assert pair.semantics("x") == {"a", "b", "c"}
        assert pair.semantics("a") == {"a", "c"}


class TestPowersetPairs:
    def make(self, rsem_extra=()):
        # 𝓡_val: x yields {a}, {b}, or {a,b}; complete objects id_ℓ.
        rval = {
            "a": frozenset({frozenset({"a"})}),
            "b": frozenset({frozenset({"b"})}),
            "c": frozenset({frozenset({"c"})}),
            "x": frozenset({frozenset({"a"}), frozenset({"b"}), frozenset({"a", "b"})}),
        }
        id_r = frozenset((frozenset({c}), c) for c in COMPLETE)
        return PowersetRelationPair(OBJECTS, COMPLETE, rval, id_r | frozenset(rsem_extra))

    def test_validation(self):
        self.make().validate()

    def test_union_like_rsem_is_transitive(self):
        # 𝓡_sem = id_r plus ({a,b} → each member... actually the union
        # relation maps {a,b} to a fused object; model it as pairs to c)
        pair = self.make([(frozenset({"a", "b"}), "c")])
        assert pair.is_rsem_transitive()
        assert pair.induced_domain().is_fair()

    def test_prop_7_2_transitive_implies_fair(self):
        singles = [frozenset({c}) for c in COMPLETE]
        doubles = [frozenset(p) for p in itertools.combinations(sorted(COMPLETE), 2)]
        candidates = [(s, c) for s in singles + doubles for c in COMPLETE]
        checked = 0
        for r in (0, 1, 2):
            for chosen in itertools.combinations(candidates, r):
                pair = self.make(chosen)
                if pair.is_rsem_transitive():
                    assert pair.induced_domain().is_fair(), chosen
                    checked += 1
        assert checked > 5

    def test_semantics_composition(self):
        pair = self.make([(frozenset({"a", "b"}), "c")])
        assert pair.semantics("x") == {"a", "b", "c"}
        assert pair.semantics("a") == {"a"}
