"""Query plans: the analyze-then-route decision as an inspectable value.

The paper's practical payoff is a *routing* insight — run ordinary
(naive) evaluation exactly when Figure 1 proves it computes certain
answers, fall back to an expensive oracle otherwise.  This module turns
that inline decision into a first-class :class:`Plan`: which backend
will run, why (the analyzer's verdict), how reliable the result will be
(exactness and containment direction), whether the core check was
needed and what it said, and rough cost hints.  ``Database.explain``
and the ``repro explain`` CLI subcommand surface plans to users;
:func:`repro.core.engine.execute_plan` runs them.
"""

from __future__ import annotations

import json
import textwrap
from dataclasses import dataclass
from typing import Callable, Hashable, Sequence

from repro.core.analyzer import Verdict, analyze
from repro.core.backends import NAIVE_AUTO_BACKEND, get_backend, naive_is_certain
from repro.data.instance import Instance
from repro.homs.core import is_core
from repro.logic.compile import compiled_query
from repro.logic.queries import Query
from repro.semantics import get_semantics
from repro.semantics.base import Semantics

__all__ = ["CostHints", "Plan", "make_plan", "choose_workers", "PARALLEL_MIN_WORLDS"]

#: cap for the reported valuation-count bound (beyond this it is "huge")
_VALUATION_CAP = 10**12

#: below this many (bounded) valuations, process-pool dispatch costs more
#: than it saves — the oracle runs serially regardless of ``workers``
PARALLEL_MIN_WORLDS = 4096

#: hard cap on worker processes (fan-out beyond this only adds overhead)
MAX_WORKERS = 32


def choose_workers(requested: int | None, valuation_bound: int) -> int:
    """The oracle's parallelism cost model: how many workers to really use.

    ``requested`` is the user's ceiling (``Database(workers=...)``,
    ``--workers``); ``valuation_bound`` the planner's ``pool**nulls``
    estimate (negative = overflowed the reporting cap, i.e. huge).
    Returns ``0`` for the serial path: parallel dispatch only pays for
    itself when the world count clears :data:`PARALLEL_MIN_WORLDS`, so
    small pools are auto-routed to the serial oracle no matter how many
    workers were requested.
    """
    if not requested or requested <= 1:
        return 0
    if 0 <= valuation_bound < PARALLEL_MIN_WORLDS:
        return 0
    return min(int(requested), MAX_WORKERS)


@dataclass(frozen=True)
class CostHints:
    """Back-of-envelope cost signals for a plan."""

    #: total tuples in the instance
    fact_count: int
    #: distinct nulls in the instance
    null_count: int
    #: size of the constant pool the oracle would enumerate over
    pool_size: int
    #: ``pool_size ** null_count`` capped at 10^12 (-1 = overflowed cap)
    valuation_bound: int
    #: worker processes the oracle will shard worlds across (0 = serial;
    #: the cost model routes small valuation spaces back to serial)
    workers: int = 0

    def to_dict(self) -> dict:
        return {
            "fact_count": self.fact_count,
            "null_count": self.null_count,
            "pool_size": self.pool_size,
            "valuation_bound": self.valuation_bound,
            "workers": self.workers,
        }


@dataclass(frozen=True)
class Plan:
    """An evaluation plan for one (query, instance, semantics, mode) quadruple."""

    #: rendering of the planned query
    query: str
    #: the backend that will run (registry name)
    backend: str
    #: the requested mode ("auto" or a forced backend name)
    mode: str
    #: semantics key
    semantics: str
    #: the analyzer verdict that drove the routing
    verdict: Verdict
    #: will the computed answers provably equal the certain answers?
    exact: bool
    #: for inexact plans, the containment direction ("subset"/"superset"/"unknown")
    direction: str
    #: result of the core check; ``None`` when the plan never needed it
    instance_is_core: bool | None
    #: rough cost signals
    cost: CostHints
    #: free-form planner remarks
    notes: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        """A JSON-serialisable rendering (``repro explain --json``)."""
        return {
            "query": self.query,
            "backend": self.backend,
            "mode": self.mode,
            "semantics": self.semantics,
            "verdict": {
                "sound": self.verdict.sound,
                "over_cores_only": self.verdict.over_cores_only,
                "approximation": self.verdict.approximation,
                "fragment": self.verdict.fragment,
                "reason": self.verdict.reason,
            },
            "exact": self.exact,
            "direction": self.direction,
            "instance_is_core": self.instance_is_core,
            "cost": self.cost.to_dict(),
            "notes": list(self.notes),
        }

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    def render(self) -> str:
        """A human-readable multi-line rendering (``repro explain``)."""
        try:
            summary = get_backend(self.backend).summary
        except ValueError:
            # plans outlive the registry (a plug-in backend may have been
            # unregistered since planning); render degrades, not crashes
            summary = "(backend no longer registered)"
        sound = "SOUND" if self.verdict.sound else "not sound"
        if self.verdict.over_cores_only:
            sound += " (over cores)"
        if self.exact:
            status = "exact — result equals the certain answers"
        else:
            arrows = {
                "subset": "answers ⊆ certain answers",
                "superset": "certain answers ⊆ answers",
                "unknown": "no containment guarantee",
            }
            status = f"approximate ({arrows.get(self.direction, self.direction)})"
        if self.instance_is_core is None:
            core_line = "not needed"
        else:
            core_line = "instance is a core" if self.instance_is_core else "instance is NOT a core"
        bound = (
            "huge (cap exceeded)"
            if self.cost.valuation_bound < 0
            else str(self.cost.valuation_bound)
        )
        sharding = (
            f", sharded over {self.cost.workers} workers"
            if self.cost.workers
            else ""
        )
        reason = textwrap.fill(
            self.verdict.reason, width=66, subsequent_indent=" " * 16
        )
        lines = [
            f"plan: {self.query}",
            f"  semantics   : {self.semantics}",
            f"  requested   : {self.mode}",
            f"  backend     : {self.backend} — {summary}",
            f"  verdict     : naive evaluation {sound} [fragment {self.verdict.fragment}]",
            f"                {reason}",
            f"  exactness   : {status}",
            f"  core check  : {core_line}",
            f"  cost        : {self.cost.fact_count} facts, {self.cost.null_count} nulls, "
            f"pool {self.cost.pool_size} → ≤ {bound} valuations{sharding}",
        ]
        for note in self.notes:
            lines.append(f"  note        : {note}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        status = "exact" if self.exact else f"approx({self.direction})"
        return f"Plan(backend={self.backend!r}, semantics={self.semantics!r}, {status})"


def make_plan(
    query: Query,
    instance: Instance,
    semantics: Semantics | str = "cwa",
    mode: str = "auto",
    *,
    verdict: Verdict | None = None,
    core_check: Callable[[], bool] | None = None,
    pool: Sequence[Hashable] | None = None,
    extra_facts: int | None = None,
    workers: int | None = None,
) -> Plan:
    """Plan the evaluation of ``query`` on ``instance`` under ``semantics``.

    ``mode`` is ``"auto"`` (route by the analyzer + core check, the
    extracted Figure-1 policy) or the name of a registered backend to
    force.  ``verdict``, ``core_check`` and ``pool`` let a session layer
    inject cached values so preparing a query pays for the analyzer,
    the core check and pool construction exactly once.  ``workers``
    caps the oracle's world sharding; :func:`choose_workers` decides
    whether the valuation space justifies it.
    """
    sem = get_semantics(semantics) if isinstance(semantics, str) else semantics
    if verdict is None:
        verdict = analyze(query, sem)

    core_flag: bool | None = None

    def ensure_core() -> bool:
        nonlocal core_flag
        if core_flag is None:
            core_flag = bool(core_check()) if core_check is not None else is_core(instance)
        return core_flag

    notes: list[str] = []
    if mode == "auto":
        core_needed = verdict.sound and verdict.over_cores_only
        if naive_is_certain(verdict, ensure_core() if core_needed else True):
            # naive evaluation is provably exact — run the columnar
            # dictionary-encoded executor (compiled and naive-interp stay
            # registered as forced differential baselines)
            name = NAIVE_AUTO_BACKEND
            notes.append(
                "columnar executor: joins ordered by per-instance column "
                "stats; `repro explain --operators` names the chosen "
                "kernels and join order"
            )
        else:
            name = "enumeration"
            if core_needed:
                notes.append(
                    "analyzer is positive over cores only and the instance is not "
                    "a core; routing to the oracle (naive would under-approximate)"
                )
    else:
        name = mode

    backend = get_backend(name)
    backend.validate(sem)
    if backend.needs_core_check(verdict):
        ensure_core()
    exact, direction = backend.exactness(sem, verdict, core_flag, extra_facts)

    if mode != "auto":
        if verdict.sound and verdict.over_cores_only and core_flag is None:
            # don't pay the (worst-case exponential) core check just to
            # render a note — say what the auto choice would hinge on
            notes.append(
                f"forced backend {name!r}; auto's choice would depend on "
                f"the core check (not run)"
            )
        else:
            auto_name = (
                NAIVE_AUTO_BACKEND if naive_is_certain(verdict, core_flag) else "enumeration"
            )
            if auto_name != name:
                notes.append(f"forced backend {name!r}; auto would choose {auto_name!r}")
    if name == "enumeration" and not sem.enumeration_exact(extra_facts):
        notes.append(
            f"bounded enumeration cannot cover all of [[D]] under {sem.key} "
            "with this extra_facts setting, so the oracle over-approximates: "
            "certain ⊆ answers"
        )
    # result-determinacy note: when the backend can prove the answers are
    # a pure function of a known relation set, a session's result cache
    # may key on those relations' generations (repro.session)
    cache_reads = backend.cache_relations(sem, exact, compiled_query(query))
    if cache_reads is not None:
        shown = ", ".join(sorted(cache_reads)) if cache_reads else "∅"
        notes.append(
            f"result is a pure function of relations {{{shown}}} — "
            "session result-cache eligible, keyed on their generations"
        )

    null_count = len(instance.nulls())
    if pool is not None:
        pool_size = len(pool)
    else:
        # arithmetic identity with len(default_pool(instance, query)):
        # the base constants plus |nulls|+1 fresh values — avoids
        # materialising and sorting a pool just for a cost hint
        pool_size = len(instance.constants() | query.constants()) + null_count + 1
    raw_bound = pool_size**null_count
    bound = raw_bound if raw_bound <= _VALUATION_CAP else -1
    chosen_workers = 0
    backend_parallel = getattr(backend, "supports_workers", False)
    if workers and workers > 1:
        if backend_parallel and sem.substitution_only:
            chosen_workers = choose_workers(workers, bound)
            if workers > 1 and chosen_workers == 0:
                notes.append(
                    f"workers={workers} requested but ≤ {bound} valuations is "
                    f"below the parallel threshold ({PARALLEL_MIN_WORLDS}); "
                    "running the serial oracle"
                )
        elif backend_parallel:
            notes.append(
                f"workers={workers} requested but {sem.key!r} expansion is not "
                "substitution-only; the oracle enumerates serially"
            )
    return Plan(
        query=repr(query),
        backend=name,
        mode=mode,
        semantics=sem.key,
        verdict=verdict,
        exact=exact,
        direction=direction,
        instance_is_core=core_flag,
        cost=CostHints(
            fact_count=instance.fact_count(),
            null_count=null_count,
            pool_size=pool_size,
            valuation_bound=bound,
            workers=chosen_workers,
        ),
        notes=tuple(notes),
    )
