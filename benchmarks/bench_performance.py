"""Experiment PERF — the practical payoff: naive evaluation vs enumeration.

The paper's point is *economic*: certain answers are intractable in
general (coNP-hard under CWA, undecidable under OWA), while naive
evaluation is ordinary polynomial query evaluation.  These benches chart
the widening gap as instances grow: naive evaluation scales smoothly;
the certain-answer oracle's cost explodes with the number of nulls
(|pool|^n valuations).  Who wins and by how much — naive, by orders of
magnitude growing with null count — is the reproduction's "performance
figure".
"""

import random

import pytest

from repro.core import certain_answers, naive_eval
from repro.core.engine import evaluate
from repro.data.generate import random_instance
from repro.data.schema import Schema
from repro.logic.parser import parse
from repro.logic.queries import Query
from repro.semantics import get_semantics

SCHEMA = Schema({"R": 2, "S": 1})
JOIN = Query(parse("exists z (R(x, z) & R(z, y))"), ("x", "y"), name="join2")
GUARDED = Query.boolean(
    parse("forall x, y . R(x, y) -> exists u . R(y, u) | S(y)"), name="guarded"
)


def make_instance(n_facts: int, n_nulls: int, seed: int = 99):
    rng = random.Random(seed)
    return random_instance(
        SCHEMA, rng, n_facts=n_facts, constants=(1, 2, 3, 4), n_nulls=n_nulls
    )


@pytest.mark.parametrize("n_facts", [4, 8, 16, 32])
def test_naive_eval_scaling(benchmark, n_facts):
    instance = make_instance(n_facts, n_nulls=3)
    benchmark.extra_info["n_facts"] = n_facts
    benchmark(naive_eval, JOIN, instance)


@pytest.mark.parametrize("n_nulls", [1, 2, 3])
def test_certain_answers_scaling_in_nulls(benchmark, n_nulls):
    instance = make_instance(5, n_nulls=n_nulls)
    sem = get_semantics("cwa")
    benchmark.extra_info["n_nulls"] = len(instance.nulls())
    benchmark(certain_answers, JOIN, instance, sem)


def test_naive_vs_enumeration_same_answer_cwa(benchmark):
    """The engine's routing: same certain answers, naive path vs oracle."""
    instance = make_instance(5, n_nulls=2)

    def run():
        fast = evaluate(GUARDED, instance, semantics="cwa")  # naive route
        slow = evaluate(GUARDED, instance, semantics="cwa", mode="enumeration")
        assert fast.answers == slow.answers
        return fast.method, slow.method

    fast_method, slow_method = benchmark(run)
    benchmark.extra_info["routes"] = f"{fast_method} vs {slow_method}"
    assert fast_method == "compiled" and slow_method == "enumeration"


@pytest.mark.parametrize("key", ["cwa", "mincwa", "pcwa"])
def test_oracle_cost_by_semantics(benchmark, key):
    """Relative oracle cost across semantics on one fixed instance."""
    instance = make_instance(4, n_nulls=2)
    sem = get_semantics(key)
    benchmark.extra_info["semantics"] = sem.notation
    benchmark(certain_answers, JOIN, instance, sem)


def test_engine_naive_route_cost(benchmark):
    """End-to-end engine cost when the analyzer approves naive evaluation."""
    instance = make_instance(16, n_nulls=3)
    result = benchmark(evaluate, JOIN, instance, "owa")
    assert result.method == "compiled"
