"""Array kernels over dictionary-encoded columns.

The columnar executor (:mod:`repro.logic.columnar`) lowers the hottest
operator shapes — base-relation joins and semi-joins on a single shared
column — onto the kernels in this module.  Each kernel has two
implementations:

* a **vectorised** path over int64 numpy views of the encoded columns
  (``argsort`` + ``searchsorted`` sort-merge, ``isin`` semi-join), used
  when numpy is importable and the inputs are large enough to amortise
  the array setup;
* a **pure-Python** path over the relation's cached sorted runs and key
  sets, always available — numpy is an optional accelerator, never a
  dependency.

Both paths return the same frozenset of encoded rows; the differential
suite in ``tests/test_columnar.py`` runs the random-query matrix against
each, and ``REPRO_PURE_KERNELS=1`` forces the pure path process-wide.

Sort orders, numpy views and key sets are cached on the
:class:`~repro.data.dictionary.EncodedRelation` itself, so the sort of a
sort-merge join is paid once per relation per key column — every later
join against the same column merges already-sorted runs.
"""

from __future__ import annotations

import os

from repro.data.dictionary import EncodedRelation

__all__ = [
    "sort_merge_join",
    "sort_merge_join_project",
    "semi_join",
    "numpy_enabled",
    "kernel_suffix",
]

try:  # optional acceleration; the pure path below is always available
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via REPRO_PURE_KERNELS
    _np = None

if os.environ.get("REPRO_PURE_KERNELS"):
    _np = None

#: below this many rows (left + right) the vector path's array setup
#: costs more than the pure merge saves
MIN_VECTOR_ROWS = 64

_EMPTY: frozenset[tuple[int, ...]] = frozenset()
_UNIT: frozenset[tuple] = frozenset([()])


def numpy_enabled() -> bool:
    """True when the vectorised kernel paths are in effect."""
    return _np is not None


def kernel_suffix() -> str:
    """EXPLAIN suffix naming the active implementation."""
    return "vector" if numpy_enabled() else "pure"


# ----------------------------------------------------------------------
# sort-merge join
# ----------------------------------------------------------------------

def sort_merge_join(
    left: EncodedRelation,
    right: EncodedRelation,
    l_pos: int,
    r_pos: int,
    extra: tuple[int, ...],
) -> frozenset[tuple[int, ...]]:
    """``{l + r[extra] : l ∈ left, r ∈ right, l[l_pos] == r[r_pos]}``.

    Equivalent to the hash join of two plain scans on one shared column,
    but runs off cached sorted runs instead of a hash build.
    """
    if not left.n_rows or not right.n_rows:
        return _EMPTY
    if _np is not None and left.n_rows + right.n_rows >= MIN_VECTOR_ROWS:
        return _vector_sort_merge(left, right, l_pos, r_pos, extra)
    return _pure_sort_merge(left, right, l_pos, r_pos, extra)


def _vector_sort_merge(left, right, l_pos, r_pos, extra):
    l_order, l_sorted = left.np_order(l_pos)
    r_order, r_sorted = right.np_order(r_pos)
    lo = _np.searchsorted(r_sorted, l_sorted, side="left")
    hi = _np.searchsorted(r_sorted, l_sorted, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        return _EMPTY
    l_idx = _np.repeat(l_order, counts)
    # within each left row's match range, offsets 0..count-1 off its lo
    offsets = _np.arange(total) - _np.repeat(_np.cumsum(counts) - counts, counts)
    r_idx = r_order[_np.repeat(lo, counts) + offsets]
    width = left.arity + len(extra)
    mat = _np.empty((total, width), dtype=_np.int64)
    for j in range(left.arity):
        mat[:, j] = left.np_column(j)[l_idx]
    for k, pos in enumerate(extra):
        mat[:, left.arity + k] = right.np_column(pos)[r_idx]
    return frozenset(map(tuple, mat.tolist()))


def _pure_sort_merge(left, right, l_pos, r_pos, extra):
    l_rows = left.sorted_rows(l_pos)
    r_rows = right.sorted_rows(r_pos)
    n_left, n_right = len(l_rows), len(r_rows)
    out: set[tuple[int, ...]] = set()
    i = j = 0
    while i < n_left and j < n_right:
        a, b = l_rows[i][l_pos], r_rows[j][r_pos]
        if a < b:
            i += 1
        elif a > b:
            j += 1
        else:
            j_end = j
            while j_end < n_right and r_rows[j_end][r_pos] == a:
                j_end += 1
            tails = [tuple(r[p] for p in extra) for r in r_rows[j:j_end]]
            while i < n_left and l_rows[i][l_pos] == a:
                lr = l_rows[i]
                for tail in tails:
                    out.add(lr + tail)
                i += 1
            j = j_end
    return frozenset(out)


# ----------------------------------------------------------------------
# fused sort-merge join + projection
# ----------------------------------------------------------------------

def sort_merge_join_project(
    left: EncodedRelation,
    right: EncodedRelation,
    l_pos: int,
    r_pos: int,
    extra: tuple[int, ...],
    indices: tuple[int, ...],
) -> frozenset[tuple[int, ...]]:
    """:func:`sort_merge_join` with the projection fused into the kernel.

    ``indices`` selects columns of the joined row ``l + r[extra]``
    (positions ``>= left.arity`` address the ``extra`` tail).  Fusing
    matters because many-to-many joins expand and projections collapse:
    the vector path gathers **only the projected columns** and dedups
    the expansion with ``np.unique`` at C speed, so the wide joined
    intermediate is never materialised as Python tuples at all.
    """
    if not left.n_rows or not right.n_rows:
        return _EMPTY
    if _np is not None and left.n_rows + right.n_rows >= MIN_VECTOR_ROWS:
        return _vector_sort_merge_project(left, right, l_pos, r_pos, extra, indices)
    return _pure_sort_merge_project(left, right, l_pos, r_pos, extra, indices)


def _vector_sort_merge_project(left, right, l_pos, r_pos, extra, indices):
    l_order, l_sorted = left.np_order(l_pos)
    r_order, r_sorted = right.np_order(r_pos)
    lo = _np.searchsorted(r_sorted, l_sorted, side="left")
    hi = _np.searchsorted(r_sorted, l_sorted, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        return _EMPTY
    if not indices:
        return _UNIT  # nullary projection of a non-empty join
    l_idx = _np.repeat(l_order, counts)
    offsets = _np.arange(total) - _np.repeat(_np.cumsum(counts) - counts, counts)
    r_idx = r_order[_np.repeat(lo, counts) + offsets]
    mat = _np.empty((total, len(indices)), dtype=_np.int64)
    for k, col in enumerate(indices):
        if col < left.arity:
            mat[:, k] = left.np_column(col)[l_idx]
        else:
            mat[:, k] = right.np_column(extra[col - left.arity])[r_idx]
    mat = _np.unique(mat, axis=0)
    return frozenset(map(tuple, mat.tolist()))


def _pure_sort_merge_project(left, right, l_pos, r_pos, extra, indices):
    l_rows = left.sorted_rows(l_pos)
    r_rows = right.sorted_rows(r_pos)
    n_left, n_right = len(l_rows), len(r_rows)
    la = left.arity
    out: set[tuple[int, ...]] = set()
    i = j = 0
    while i < n_left and j < n_right:
        a, b = l_rows[i][l_pos], r_rows[j][r_pos]
        if a < b:
            i += 1
        elif a > b:
            j += 1
        else:
            j_end = j
            while j_end < n_right and r_rows[j_end][r_pos] == a:
                j_end += 1
            tails = [tuple(r[p] for p in extra) for r in r_rows[j:j_end]]
            while i < n_left and l_rows[i][l_pos] == a:
                lr = l_rows[i]
                for tail in tails:
                    out.add(
                        tuple(
                            lr[c] if c < la else tail[c - la] for c in indices
                        )
                    )
                i += 1
            j = j_end
    return frozenset(out)


# ----------------------------------------------------------------------
# semi-join
# ----------------------------------------------------------------------

def semi_join(
    left: EncodedRelation,
    right: EncodedRelation,
    l_pos: int,
    r_pos: int,
) -> frozenset[tuple[int, ...]]:
    """``{l ∈ left : ∃r ∈ right, l[l_pos] == r[r_pos]}``."""
    if not left.n_rows or not right.n_rows:
        return _EMPTY
    if _np is not None and left.n_rows + right.n_rows >= MIN_VECTOR_ROWS:
        mask = _np.isin(left.np_column(l_pos), right.np_column(r_pos))
        if not mask.any():
            return _EMPTY
        idx = _np.nonzero(mask)[0]
        mat = _np.empty((len(idx), left.arity), dtype=_np.int64)
        for j in range(left.arity):
            mat[:, j] = left.np_column(j)[idx]
        return frozenset(map(tuple, mat.tolist()))
    keys = right.key_set(r_pos)
    return frozenset(row for row in left.row_tuples() if row[l_pos] in keys)
