"""Integration tests replaying every worked example of the paper end-to-end.

Each test names the paper location it reproduces.  These are the
ground-truth anchors for the benchmark harness (EXPERIMENTS.md).
"""

from repro.core import analyze, certain_answers, certain_holds, evaluate, naive_eval
from repro.data.generate import (
    cores_graph_example,
    cycle,
    d0_example,
    disjoint_union,
    intro_example,
    minimal_4ary_example,
    sql_paradox_example,
)
from repro.data.instance import Instance
from repro.data.values import Null
from repro.homs.core import core, is_core
from repro.homs.minimal import is_d_minimal, iter_minimal_valuations
from repro.logic.parser import parse
from repro.logic.queries import Query
from repro.semantics import get_semantics

X, Y = Null("x"), Null("y")


class TestIntroduction:
    def test_integration_join_example(self):
        """Section 1: naive evaluation of π_AC(R ⋈ S) returns {(1,4), (⊥2,5)};
        dropping nulls yields the certain answer {(1,4)} under OWA."""
        db = intro_example()
        q = Query(parse("exists z (R(x, z) & S(z, y))"), ("x", "y"))
        raw = q.eval_raw(db)
        assert raw == frozenset({(1, 4), (Null("2"), 5)})
        assert naive_eval(q, db) == frozenset({(1, 4)})
        assert certain_answers(q, db, get_semantics("owa")) == frozenset({(1, 4)})

    def test_sql_not_in_paradox(self):
        """Section 1: SQL's 3-valued logic makes X − Y empty although
        |X| > |Y|, when Y contains a null.  We reproduce the shape: the
        certain answer to x ∈ X ∧ ¬(x ∈ Y) is empty under CWA because
        the null in Y might be any of X's values — matching SQL here —
        while SQL's uniform emptiness is the criticised oversimplification."""
        x_table, y_table = sql_paradox_example()
        db = x_table.union(y_table)
        q = Query(parse("X(v) & !Y(v)"), ("v",))
        certain = certain_answers(q, db, get_semantics("cwa"))
        # the null in Y can equal any single element, so only elements
        # that are in X and cannot be hit... every element can be hit:
        # but only ONE null exists, so it can block only one value —
        # certain answers are the X-values minus Y-constants minus the
        # possible null values... with one null, 2 of {2,3} always remain
        # but no single tuple is in EVERY answer? Check: valuation ⊥=2
        # gives answers {3}; ⊥=3 gives {2} → intersection empty.
        assert certain == frozenset()

    def test_fact_1_ucq_naive_works_owa_and_cwa(self):
        """Fact 1 (Imielinski–Lipski): naive evaluation works for UCQs."""
        db = intro_example()
        q = Query(parse("exists z (R(x, z) & S(z, y))"), ("x", "y"))
        for key in ("owa", "cwa"):
            assert naive_eval(q, db) == certain_answers(q, db, get_semantics(key))


class TestSection2Examples:
    def test_d0_semantics_shapes(self):
        """Section 2.3: [[D0]]_CWA = all {(c,c'),(c',c)}; OWA = supersets."""
        d0 = d0_example()
        cwa = get_semantics("cwa")
        assert cwa.contains(d0, Instance({"D": [(1, 2), (2, 1)]}))
        assert cwa.contains(d0, Instance({"D": [(5, 5)]}))
        assert not cwa.contains(d0, Instance({"D": [(1, 2)]}))
        owa = get_semantics("owa")
        assert owa.contains(d0, Instance({"D": [(1, 2), (2, 1), (7, 8)]}))

    def test_d0_exists_query_all_semantics(self):
        """Section 2.4: ∃x,y (D(x,y) ∧ D(y,x)) certain under OWA and CWA,
        and evaluates to true naively."""
        d0 = d0_example()
        q = Query.boolean(parse("exists x, y . D(x,y) & D(y,x)"))
        assert q.holds(d0)
        assert certain_holds(q, d0, get_semantics("owa"))
        assert certain_holds(q, d0, get_semantics("cwa"))

    def test_d0_forall_query_owa_vs_cwa(self):
        """Section 2.4: ∀x∃y D(x,y) naively true on D0; certain answer
        false under OWA but true under CWA."""
        d0 = d0_example()
        q = Query.boolean(parse("forall x . exists y . D(x, y)"))
        assert q.holds(d0)
        assert not certain_holds(q, d0, get_semantics("owa"))
        assert certain_holds(q, d0, get_semantics("cwa"))


class TestSection4Examples:
    def test_strong_onto_vs_onto_example(self):
        """Section 4.3: D = {(1,2)} → strong onto {(3,4)}, onto {(3,4),(4,3)}."""
        from repro.homs.properties import is_onto, is_strong_onto

        d = Instance({"D": [(1, 2)]})
        h = {1: 3, 2: 4}
        assert is_strong_onto(h, d, Instance({"D": [(3, 4)]}))
        assert is_onto(h, d, Instance({"D": [(3, 4), (4, 3)]}))
        assert not is_strong_onto(h, d, Instance({"D": [(3, 4), (4, 3)]}))

    def test_wcwa_sandwich(self):
        """Section 4.3: [[D]]_CWA ⊆ [[D]]_WCWA ⊆ [[D]]_OWA, strictly."""
        d = Instance({"D": [(X, Y)]})
        witness_wcwa = Instance({"D": [(1, 2), (2, 1)]})
        assert not get_semantics("cwa").contains(d, witness_wcwa)
        assert get_semantics("wcwa").contains(d, witness_wcwa)
        witness_owa = Instance({"D": [(1, 2), (3, 3)]})
        assert not get_semantics("wcwa").contains(d, witness_owa)
        assert get_semantics("owa").contains(d, witness_owa)


class TestSection5Guard:
    def test_repeated_guard_variable_counterexample(self):
        """Remark after Prop 5.1: ∀x (R(x,x) → S(x)) fails preservation:
        D ⊨ φ with R = {(1,2)}, S = ∅; h(1)=h(2)=3 gives D' = {R(3,3)},
        D' ⊭ φ."""
        q = parse("forall v . R(v, v) -> S(v)")
        d = Instance({"R": [(1, 2)]})
        d_prime = Instance({"R": [(3, 3)]})
        from repro.logic.eval import holds

        assert holds(q, d)
        assert not holds(q, d_prime)
        # and h is indeed a (plain) strong onto homomorphism
        from repro.homs.properties import is_strong_onto

        assert is_strong_onto({1: 3, 2: 3}, d, d_prime)


class TestSection10Minimality:
    def test_non_minimal_valuation_example(self):
        """Section 10 opening: v(⊥)=1, v(⊥')=2 on {(⊥,⊥),(⊥,⊥')} is not
        minimal; v'(⊥)=v'(⊥')=1 is."""
        d = Instance({"T": [(X, X), (X, Y)]})
        assert not is_d_minimal(d, {X: 1, Y: 2})
        assert is_d_minimal(d, {X: 1, Y: 1})

    def test_proposition_10_1_positive_parts(self):
        """Prop 10.1: minimal images are cores and equal h(core(D))."""
        d = Instance({"T": [(X, X), (X, Y)]})
        c = core(d)
        assert c == Instance({"T": [(X, X)]})
        for v in iter_minimal_valuations(d, [1, 2]):
            image = d.apply(v)
            assert is_core(image)
            assert image == c.apply(v)

    def test_proposition_10_1_4ary_counterexample(self):
        """Prop 10.1: D, h(D) cores yet h not D-minimal (4-ary relation)."""
        d, h = minimal_4ary_example()
        assert is_core(d)
        assert is_core(d.apply(h))
        assert not is_d_minimal(d, h, mode="database")

    def test_proposition_10_1_graph_counterexample(self):
        """Prop 10.1: G = C4+C6, H = C3+C2 both cores, h strong onto but
        not minimal (G is 2-colourable so G → C2)."""
        from repro.homs.properties import is_strong_onto
        from repro.homs.search import has_homomorphism

        g, h_graph, hom = cores_graph_example()
        assert is_core(g, fix_constants=False)
        assert is_core(h_graph, fix_constants=False)
        assert is_strong_onto(hom, g, h_graph)
        c2 = cycle(2, [Null("m0"), Null("m1")])
        assert has_homomorphism(g, c2, fix_constants=False)
        assert not is_d_minimal(g, hom, mode="mapping")

    def test_min_cwa_differs_from_core_cwa(self):
        """Prop 10.1's last point: C3^C + C2^C ∈ [[core(D)]]_CWA-style
        membership but ∉ [[D]]^min_CWA for D = C6 + C4 (all nulls)."""
        g, _, _ = cores_graph_example()
        assert core(g, fix_constants=True) == g  # already a core
        target = disjoint_union(cycle(3, ["a", "b", "c"]), cycle(2, ["d", "e"]))
        assert get_semantics("cwa").contains(g, target)
        assert not get_semantics("mincwa").contains(g, target)

    def test_corollary_10_11_remark(self):
        """After Cor 10.11: ∀x D(x,x) on {(⊥,⊥),(⊥,⊥')} — certain answer
        under [[·]]^min_CWA is true, naive evaluation says false, and the
        reason is Q(D) ≠ Q(core(D))."""
        d = Instance({"D": [(X, X), (X, Y)]})
        q = Query.boolean(parse("forall v . D(v, v)"))
        assert not q.holds(d)  # naive: false
        assert certain_holds(q, d, get_semantics("mincwa"))  # certain: true
        assert q.holds(core(d))  # core disagreement explains it

    def test_proposition_10_13_approximation(self):
        """Prop 10.13: for Pos+∀G queries, naive true ⇒ certain true under
        the minimal semantics, even off-core."""
        d = Instance({"D": [(X, X), (X, Y)]})  # not a core
        q = Query.boolean(parse("forall v, w . D(v, w) -> exists u . D(v, u)"))
        assert q.holds(d)
        assert certain_holds(q, d, get_semantics("mincwa"))


class TestEngineOnPaperExamples:
    def test_engine_routes_and_agrees_everywhere(self):
        db = intro_example()
        q = Query(parse("exists z (R(x, z) & S(z, y))"), ("x", "y"))
        for key in ("owa", "cwa", "wcwa", "pcwa"):
            result = evaluate(q, db, semantics=key)
            assert result.method == "columnar"
            assert result.answers == frozenset({(1, 4)}), key

    def test_verdicts_match_figure_1_on_examples(self):
        q_pos = Query.boolean(parse("forall x . exists y . D(x, y)"))
        assert not analyze(q_pos, "owa").sound
        assert analyze(q_pos, "wcwa").sound
        assert analyze(q_pos, "cwa").sound
