"""Experiment SESSION — what preparing a query buys over the free function.

The legacy ``evaluate`` re-runs the Figure-1 analyzer, the core check
and pool construction on every call; a prepared query pays for them
once.  These benches measure the per-call planning overhead that the
session API amortises — the gap is the "serving traffic" story of the
API redesign: for cheap naive-routed queries, planning dominates the
actual evaluation, so caching it is a direct throughput win.
"""

import random

import pytest

from repro.core.engine import evaluate
from repro.data.generate import random_instance
from repro.data.schema import Schema
from repro.session import Database

SCHEMA = Schema({"R": 2, "S": 1})
JOIN_TEXT = "exists z (R(x, z) & R(z, y))"
GUARDED_TEXT = "forall x, y . R(x, y) -> exists u . R(y, u) | S(y)"


def make_instance(n_facts: int, n_nulls: int, seed: int = 99):
    rng = random.Random(seed)
    return random_instance(
        SCHEMA, rng, n_facts=n_facts, constants=(1, 2, 3, 4), n_nulls=n_nulls
    )


@pytest.mark.parametrize("n_facts", [8, 32])
def test_free_function_reruns_planning(benchmark, n_facts):
    instance = make_instance(n_facts, n_nulls=3)
    db = Database(instance, semantics="cwa")
    query = db.query(GUARDED_TEXT).query
    benchmark.extra_info["n_facts"] = n_facts
    benchmark(evaluate, query, instance, "cwa")


@pytest.mark.parametrize("n_facts", [8, 32])
def test_prepared_query_amortises_planning(benchmark, n_facts):
    instance = make_instance(n_facts, n_nulls=3)
    db = Database(instance, semantics="cwa")
    prepared = db.query(GUARDED_TEXT)
    prepared.evaluate()  # warm the caches
    benchmark.extra_info["n_facts"] = n_facts
    benchmark(prepared.evaluate)


def test_prepare_once_evaluate_many(benchmark):
    instance = make_instance(16, n_nulls=2)
    db = Database(instance, semantics="cwa")
    queries = [JOIN_TEXT, GUARDED_TEXT, "exists x . S(x)"]

    def serve():
        prepared = [db.query(text) for text in queries]
        return [p.evaluate() for p in prepared]

    serve()  # warm
    results = benchmark(serve)
    assert len(results) == 3


def test_batch_evaluation_shares_pool(benchmark):
    instance = make_instance(16, n_nulls=2)
    db = Database(instance, semantics="cwa")
    queries = [JOIN_TEXT, GUARDED_TEXT, "exists x . S(x)"]
    results = benchmark(db.evaluate_many, queries)
    assert len(results) == 3 and all(r.stats["batch"] for r in results)
