"""Abstract syntax of first-order queries over relational vocabularies.

The paper studies FO under the active-domain semantics (Section 2.4) and
its syntactic fragments: existential positive formulae ``∃Pos`` (unions
of conjunctive queries), positive formulae ``Pos``, and their extensions
with universal guards ``Pos+∀G`` and ``∃Pos+∀G_bool`` (Sections 5, 7).

Terms are either :class:`Var` objects or plain Python values acting as
constants.  Formulae are immutable and hashable, so they can key caches
and sit in sets.  Connectives ``∧``/``∨`` are n-ary for readability;
``→`` is first-class because the guarded fragments are defined through
it (semantically it is ``¬φ ∨ ψ``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Union

__all__ = [
    "Var",
    "Term",
    "Formula",
    "TrueF",
    "FalseF",
    "RelAtom",
    "EqAtom",
    "Not",
    "And",
    "Or",
    "Implies",
    "Exists",
    "Forall",
    "TRUE",
    "FALSE",
]


@dataclass(frozen=True, slots=True)
class Var:
    """A first-order variable, identified by name."""

    name: str

    def __repr__(self) -> str:
        return self.name


Term = Union[Var, Hashable]


class Formula:
    """Base class for all formulae; subclasses are frozen dataclasses."""

    __slots__ = ()

    # Connective sugar — lets tests read naturally:
    #   R(x, y) & S(y)   |   ~phi   |   phi | psi
    def __and__(self, other: "Formula") -> "And":
        return And((self, other))

    def __or__(self, other: "Formula") -> "Or":
        return Or((self, other))

    def __invert__(self) -> "Not":
        return Not(self)

    def __rshift__(self, other: "Formula") -> "Implies":
        return Implies(self, other)


def _term_repr(term: Term) -> str:
    if isinstance(term, Var):
        return term.name
    return repr(term)


@dataclass(frozen=True, slots=True, repr=False)
class TrueF(Formula):
    """The constant ``true``."""

    def __repr__(self) -> str:
        return "true"


@dataclass(frozen=True, slots=True, repr=False)
class FalseF(Formula):
    """The constant ``false``."""

    def __repr__(self) -> str:
        return "false"


TRUE = TrueF()
FALSE = FalseF()


@dataclass(frozen=True, slots=True, repr=False)
class RelAtom(Formula):
    """A relational atom ``R(t1, …, tk)``."""

    name: str
    terms: tuple[Term, ...]

    def __post_init__(self):
        object.__setattr__(self, "terms", tuple(self.terms))
        if not self.terms:
            raise ValueError("relational atoms need at least one term")

    def __repr__(self) -> str:
        return f"{self.name}({', '.join(_term_repr(t) for t in self.terms)})"


@dataclass(frozen=True, slots=True, repr=False)
class EqAtom(Formula):
    """An equality atom ``t1 = t2``."""

    left: Term
    right: Term

    def __repr__(self) -> str:
        return f"{_term_repr(self.left)} = {_term_repr(self.right)}"


@dataclass(frozen=True, slots=True, repr=False)
class Not(Formula):
    """Negation ``¬φ``."""

    sub: Formula

    def __repr__(self) -> str:
        return f"¬({self.sub!r})"


@dataclass(frozen=True, slots=True, repr=False)
class And(Formula):
    """N-ary conjunction ``φ1 ∧ … ∧ φn``."""

    subs: tuple[Formula, ...]

    def __post_init__(self):
        object.__setattr__(self, "subs", tuple(self.subs))
        if len(self.subs) < 1:
            raise ValueError("And needs at least one conjunct")

    def __repr__(self) -> str:
        return "(" + " ∧ ".join(repr(s) for s in self.subs) + ")"


@dataclass(frozen=True, slots=True, repr=False)
class Or(Formula):
    """N-ary disjunction ``φ1 ∨ … ∨ φn``."""

    subs: tuple[Formula, ...]

    def __post_init__(self):
        object.__setattr__(self, "subs", tuple(self.subs))
        if len(self.subs) < 1:
            raise ValueError("Or needs at least one disjunct")

    def __repr__(self) -> str:
        return "(" + " ∨ ".join(repr(s) for s in self.subs) + ")"


@dataclass(frozen=True, slots=True, repr=False)
class Implies(Formula):
    """Implication ``φ → ψ`` (semantically ``¬φ ∨ ψ``).

    Kept primitive because the guarded fragments ``Pos+∀G`` and
    ``∃Pos+∀G_bool`` are *syntactic* classes whose defining rule is
    ``∀x̄ (guard → body)``.
    """

    left: Formula
    right: Formula

    def __repr__(self) -> str:
        return f"({self.left!r} → {self.right!r})"


@dataclass(frozen=True, slots=True, repr=False)
class Exists(Formula):
    """Existential quantification ``∃x1…xn φ``."""

    vars: tuple[Var, ...]
    sub: Formula

    def __post_init__(self):
        object.__setattr__(self, "vars", tuple(self.vars))
        if not self.vars:
            raise ValueError("Exists needs at least one variable")
        if any(not isinstance(v, Var) for v in self.vars):
            raise TypeError("quantified positions must be Var objects")

    def __repr__(self) -> str:
        names = ", ".join(v.name for v in self.vars)
        return f"∃{names} ({self.sub!r})"


@dataclass(frozen=True, slots=True, repr=False)
class Forall(Formula):
    """Universal quantification ``∀x1…xn φ``."""

    vars: tuple[Var, ...]
    sub: Formula

    def __post_init__(self):
        object.__setattr__(self, "vars", tuple(self.vars))
        if not self.vars:
            raise ValueError("Forall needs at least one variable")
        if any(not isinstance(v, Var) for v in self.vars):
            raise TypeError("quantified positions must be Var objects")

    def __repr__(self) -> str:
        names = ", ".join(v.name for v in self.vars)
        return f"∀{names} ({self.sub!r})"
