"""Certain answers by bounded enumeration of ``[[D]]``.

``certain(Q, D) = ⋂ { Q(E) | E ∈ [[D]] }`` (Section 2.4).  ``[[D]]`` is
infinite, so the oracle enumerates its members over a finite constant
pool.  For every CWA-flavoured semantics this is *exact* for generic
queries when the pool contains ``Const(D)``, the query's constants, and
``|Null(D)| + 1`` fresh constants: any valuation factors through a pool
valuation composed with an isomorphism fixing those constants, and
generic queries cannot distinguish the two (the saturation argument of
Sections 3.1/8; the ``+1`` spare fresh constant rules fresh values out
of the intersection).

For OWA the extensions are unbounded; ``extra_facts`` truncates them.
The computed set then *over-approximates* the certain answers (we
intersect over fewer instances), so:

* a naive answer **outside** the computed set genuinely refutes
  soundness of naive evaluation, and
* computed ⊆ naive genuinely establishes ``certain ⊆ naive``.

This is exactly the direction needed to validate Figure 1 empirically.

Execution is **incremental**: the query is compiled once per batch
(:func:`repro.logic.compile.compiled_query`, memoised on the query
value) and the same set-at-a-time plan is re-executed across all worlds.
For substitution-only semantics (CWA) the oracle never materialises an
:class:`~repro.data.instance.Instance` per world — it substitutes pool
values into the null positions of pre-split row templates, executes over
lightweight :class:`~repro.data.indexes.TableContext` layers that share
the hash indexes of the null-free relations across every world, stops as
soon as the running intersection is empty, and enumerates only one
valuation per orbit of the interchangeable fresh-constant tail
(restricted-growth canonical form).  Orbit skipping is sound because the
skipped worlds are permutation images of enumerated ones: a genuine
certain answer contains no fresh constant (some enumerated world's
active domain avoids it), and fresh-free answers survive a world iff
they survive its permutation images, by genericity.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Hashable, Iterable, Iterator, Sequence

from repro.data.indexes import TableContext
from repro.data.instance import Instance
from repro.data.schema import Schema
from repro.data.values import Null, sort_key
from repro.logic.ast import RelAtom
from repro.logic.compile import CompiledQuery, compiled_query
from repro.logic.queries import Query
from repro.logic.transform import subformulas
from repro.semantics.base import Semantics, guard_limit

__all__ = ["default_pool", "query_schema", "certain_answers", "certain_holds"]


def _pool_parts(
    instance: Instance,
    query: Query | None = None,
    n_fresh: int | None = None,
    extra_constants: Iterable[Hashable] = (),
) -> tuple[list[Hashable], list[str]]:
    """``(sorted base constants, fresh tail)`` of the default pool.

    Split out of :func:`default_pool` so the oracle knows which suffix
    of the pool is the interchangeable fresh-constant tail (the orbit
    structure its incremental enumerator exploits).
    """
    base: set[Hashable] = set(instance.constants())
    if query is not None:
        base |= set(query.constants())
    base.update(extra_constants)
    if n_fresh is None:
        n_fresh = len(instance.nulls()) + 1
    fresh: list[str] = []
    index = 1
    while len(fresh) < n_fresh:
        candidate = f"_f{index}"
        if candidate not in base:
            fresh.append(candidate)
        index += 1
    return sorted(base, key=sort_key), fresh


def default_pool(
    instance: Instance,
    query: Query | None = None,
    n_fresh: int | None = None,
    extra_constants: Iterable[Hashable] = (),
) -> list[Hashable]:
    """The constant pool making bounded enumeration exact (see module doc).

    The pool is ordered deterministically and *type-stably* — constants
    are grouped by type name before value (via
    :func:`repro.data.values.sort_key`), never by raw ``repr``, so
    instances mixing ``int`` and ``str`` cells always enumerate in the
    same order regardless of construction order, and limit truncation
    is reproducible.  ``extra_constants`` widens the pool (e.g. with
    the constants of a whole query batch) without changing the scheme.
    """
    base, fresh = _pool_parts(instance, query, n_fresh, extra_constants)
    return base + fresh


@lru_cache(maxsize=1024)
def query_schema(query: Query) -> Schema:
    """The schema mentioned by the query's relational atoms.

    Memoised: queries are immutable values and the oracle consults the
    schema on every call, so repeated evaluation of a prepared query
    walks the formula once, not once per evaluation.
    """
    arities: dict[str, int] = {}
    for sub in subformulas(query.formula):
        if isinstance(sub, RelAtom):
            existing = arities.setdefault(sub.name, len(sub.terms))
            if existing != len(sub.terms):
                raise ValueError(
                    f"relation {sub.name!r} used with arities {existing} and {len(sub.terms)}"
                )
    return Schema(arities)


# ----------------------------------------------------------------------
# incremental world enumeration (substitution-only semantics)
# ----------------------------------------------------------------------

def _canonical_valuations(
    n_nulls: int, base_choices: Sequence[Hashable], fresh_tail: Sequence[Hashable]
) -> Iterator[tuple[Hashable, ...]]:
    """One valuation per orbit of the fresh-tail permutation group.

    Values are drawn from ``base_choices`` freely; fresh constants enter
    in restricted-growth order (the i-th *distinct* fresh value used is
    ``fresh_tail[i]``), the standard transversal of the action of
    ``Sym(fresh_tail)`` on valuation tuples.  With an empty tail this
    degenerates to the full product — no skipping.
    """
    vals: list[Hashable] = [None] * n_nulls

    def rec(i: int, n_used: int) -> Iterator[tuple[Hashable, ...]]:
        if i == n_nulls:
            yield tuple(vals)
            return
        for v in base_choices:
            vals[i] = v
            yield from rec(i + 1, n_used)
        for j in range(n_used):
            vals[i] = fresh_tail[j]
            yield from rec(i + 1, n_used)
        if n_used < len(fresh_tail):
            vals[i] = fresh_tail[n_used]
            yield from rec(i + 1, n_used + 1)

    return rec(0, 0)


def _certain_by_valuations(
    cq: CompiledQuery,
    instance: Instance,
    semantics: Semantics,
    pool: Sequence[Hashable],
    fresh_tail: Sequence[Hashable],
    limit: int,
) -> frozenset[tuple[Hashable, ...]]:
    """``⋂ Q(v(D))`` over valuations, without building an Instance per world.

    The relations are split once: null-free relations live in a shared
    base context (their hash indexes are built at most once for the
    whole enumeration); null-carrying relations are pre-compiled into
    row templates and substituted per valuation.  ``fresh_tail`` lists
    the interchangeable pool values — those mentioned by neither the
    instance nor the query (empty = enumerate the full product).
    """
    nulls = sorted(instance.nulls(), key=sort_key)
    guard_limit(len(pool) ** len(nulls), limit, f"{semantics.name} expansion")
    fresh_set = frozenset(fresh_tail)
    base_choices = [v for v in pool if v not in fresh_set]
    if nulls and not base_choices and len(fresh_set) == 1:
        # a single interchangeable value that every valuation must use is
        # not a skippable tail: no world's active domain avoids it, so
        # rows mentioning it can be genuinely certain — enumerate plainly
        fresh_tail, fresh_set = (), frozenset()
        base_choices = list(pool)
    null_index = {n: i for i, n in enumerate(nulls)}

    static: dict[str, frozenset[tuple]] = {}
    # per relation: rows as ((is_null, payload), ...) — payload is the
    # null's valuation slot when is_null, the constant cell otherwise
    templates: dict[str, list[tuple[tuple[bool, object], ...]]] = {}
    base_constants: set[Hashable] = set()
    for name in instance.relations:
        rows = instance.tuples(name)
        if any(isinstance(v, Null) for row in rows for v in row):
            templates[name] = [
                tuple(
                    (True, null_index[v]) if isinstance(v, Null) else (False, v)
                    for v in row
                )
                for row in rows
            ]
            base_constants.update(
                v for row in rows for v in row if not isinstance(v, Null)
            )
        else:
            static[name] = rows
            for row in rows:
                base_constants.update(row)
    base_ctx = TableContext(static) if static else None
    base_adom = frozenset(base_constants)

    dyn_names = sorted(templates)
    seen: set[tuple] = set()
    result: frozenset[tuple[Hashable, ...]] | None = None
    for vals in _canonical_valuations(len(nulls), base_choices, tuple(fresh_tail)):
        rels = {
            name: frozenset(
                tuple(vals[payload] if is_null else payload for is_null, payload in spec)
                for spec in specs
            )
            for name, specs in templates.items()
        }
        key = tuple(rels[name] for name in dyn_names)
        if key in seen:
            continue
        seen.add(key)
        # every null occurs in some row, so the world's active domain is
        # exactly the static/constant part plus the valuation's image
        ctx = TableContext(rels, adom=base_adom | frozenset(vals), base=base_ctx)
        rows = cq.answers(ctx)
        result = rows if result is None else result & rows
        if not result:
            break
    if result is None:
        raise RuntimeError(
            f"[[D]] came out empty over the pool — {semantics!r} violated totality"
        )
    if result and fresh_set:
        # a certain answer never mentions a fresh constant (some world's
        # active domain avoids it); dropping such rows here replays what
        # the skipped permutation-image worlds would have done
        result = frozenset(row for row in result if fresh_set.isdisjoint(row))
    return result


def certain_answers(
    query: Query,
    instance: Instance,
    semantics: Semantics,
    pool: Sequence[Hashable] | None = None,
    extra_facts: int | None = None,
    limit: int = 500_000,
) -> frozenset[tuple[Hashable, ...]]:
    """``⋂ { Q(E) : E ∈ [[instance]] }`` over the (defaulted) pool.

    Boolean queries yield ``{()}`` for certainly-true and ``frozenset()``
    otherwise, matching :meth:`Query.eval_raw`.  The query is compiled
    once (memoised across calls) and the same set-at-a-time plan runs on
    every world; enumeration stops as soon as the running intersection
    is empty.
    """
    if pool is None:
        base, fresh = _pool_parts(instance, query)
        pool = base + fresh
    cq = compiled_query(query)
    if semantics.substitution_only:
        # the interchangeable tail of *any* pool: values mentioned by
        # neither the instance nor the query are anonymous to both, so
        # permuting them fixes D and Q while permuting worlds — exactly
        # the genericity the orbit transversal needs.  (For the default
        # pool this recovers the |Null(D)|+1 fresh constants; for a
        # session's batch pool it also covers the other queries'
        # constants, which are fresh with respect to *this* query.)
        known = instance.constants() | set(query.constants())
        fresh_tail = tuple(v for v in pool if v not in known)
        return _certain_by_valuations(
            cq, instance, semantics, list(pool), fresh_tail, limit
        )
    schema = instance.schema().union(query_schema(query))
    result: frozenset[tuple[Hashable, ...]] | None = None
    for complete in semantics.expand(
        instance, list(pool), schema=schema, extra_facts=extra_facts, limit=limit
    ):
        rows = cq.answers(complete)
        result = rows if result is None else result & rows
        if not result:
            break
    if result is None:
        raise RuntimeError(
            f"[[D]] came out empty over the pool — {semantics!r} violated totality"
        )
    return result


def certain_holds(
    query: Query,
    instance: Instance,
    semantics: Semantics,
    pool: Sequence[Hashable] | None = None,
    extra_facts: int | None = None,
    limit: int = 500_000,
) -> bool:
    """Certain truth of a Boolean query."""
    if not query.is_boolean:
        raise ValueError(f"query {query.name!r} is {query.arity}-ary; use certain_answers()")
    return bool(
        certain_answers(query, instance, semantics, pool, extra_facts, limit)
    )
