"""Compilation of FO formulas into set-at-a-time relational plans.

The tree-walking evaluator (:mod:`repro.logic.eval`) computes
``answers(φ)`` by testing every candidate tuple in ``adom^k`` — correct,
and the right *baseline* for the paper's polynomial-data-complexity
claim, but with constants that hide it: a join ``∃z (R(x,z) ∧ R(z,y))``
costs ``O(|adom|² · |R|)`` regardless of join selectivity.

This module translates formulas **bottom-up into relational-algebra
operators** in the classic set-at-a-time discipline:

* relational atoms become index-assisted scans;
* conjunctions become chains of **hash joins** on the shared variables,
  degenerating to **semi-joins** when the right side contributes no new
  columns (the ``∃``-heavy case) and probing the per-instance hash
  indexes of :mod:`repro.data.indexes` when the right side is a plain
  scan;
* negated conjuncts whose variables are already bound become
  **anti-joins**;
* universal quantifiers compile through the dual ``∀x̄ φ ≡ ¬∃x̄ ¬φ``, so
  guarded formulas (``Pos+∀G``) stay join-shaped;
* only *genuinely unsafe* subtrees (a bare ``¬R(x,y)``, a disjunct that
  does not bind a variable) fall back to the **active-domain
  complement/extension** — exactly the semantics the interpreter
  implements, so the compiled evaluator is **equivalent on every
  formula**, not just the safe fragment.

Every operator maintains the invariant that its output rows range over
the active domain of the execution context, which makes the compiled
result bit-for-bit equal to :func:`repro.logic.eval.answers` (the
differential property suite in ``tests/test_compile.py`` asserts this
over random instances and queries in all fragments).

Compilation is instance-independent: a :class:`CompiledQuery` is built
once (``compiled_query`` memoises per :class:`~repro.logic.queries.Query`)
and executed against any :class:`~repro.data.instance.Instance` or raw
:class:`~repro.data.indexes.TableContext` — the certain-answer oracle
re-executes one compiled plan across thousands of pool-valuation worlds.
"""

from __future__ import annotations

import itertools
from functools import lru_cache
from typing import Hashable, Iterable, Sequence

from repro.data.indexes import TableContext, as_context
from repro.logic.ast import (
    And,
    EqAtom,
    Exists,
    FalseF,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    RelAtom,
    TrueF,
    Var,
)
from repro.logic.transform import free_vars, nnf

__all__ = ["CompiledQuery", "compile_formula", "compiled_query", "clear_compile_cache"]

_EMPTY: frozenset[tuple] = frozenset()
_UNIT: frozenset[tuple] = frozenset([()])


# ----------------------------------------------------------------------
# operator nodes
# ----------------------------------------------------------------------

class Node:
    """One relational operator; ``columns`` names its output schema.

    Invariant: ``evaluate`` returns a frozenset of tuples aligned with
    ``columns`` whose values all lie in the context's active domain.
    Results are memoised per run so shared subplans (hash-consed by
    subformula) execute once per world.
    """

    __slots__ = ("columns",)

    def __init__(self, columns: Iterable[Var]):
        self.columns: tuple[Var, ...] = tuple(columns)

    def evaluate(self, ctx: TableContext, memo: dict) -> frozenset[tuple]:
        key = id(self)
        if key not in memo:
            memo[key] = self._run(ctx, memo)
        return memo[key]

    def _run(self, ctx: TableContext, memo: dict) -> frozenset[tuple]:
        raise NotImplementedError

    def label(self) -> str:
        return type(self).__name__

    def children(self) -> tuple["Node", ...]:
        return ()

    def describe(self, indent: int = 0) -> str:
        """An EXPLAIN-style rendering of the operator tree."""
        cols = ", ".join(c.name for c in self.columns)
        lines = ["  " * indent + f"{self.label()} [{cols}]"]
        for child in self.children():
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)


class ConstNode(Node):
    """``true`` / ``false``: the nullary unit / empty relation."""

    __slots__ = ("truth",)

    def __init__(self, truth: bool):
        super().__init__(())
        self.truth = truth

    def _run(self, ctx, memo):
        return _UNIT if self.truth else _EMPTY

    def label(self):
        return "true" if self.truth else "false"


class ScanNode(Node):
    """Index-assisted scan of one relational atom.

    Constant positions probe the per-relation hash index; repeated
    variables filter; the output projects to the distinct variables in
    first-occurrence order.
    """

    __slots__ = (
        "name",
        "arity",
        "_const_positions",
        "_const_key",
        "_eq_checks",
        "_var_positions",
        "is_plain",
    )

    def __init__(self, atom: RelAtom):
        seen: dict[Var, int] = {}
        const_positions: list[int] = []
        const_key: list[Hashable] = []
        eq_checks: list[tuple[int, int]] = []
        for i, term in enumerate(atom.terms):
            if isinstance(term, Var):
                if term in seen:
                    eq_checks.append((i, seen[term]))
                else:
                    seen[term] = i
            else:
                const_positions.append(i)
                const_key.append(term)
        super().__init__(seen)
        self.name = atom.name
        self.arity = len(atom.terms)
        self._const_positions = tuple(const_positions)
        self._const_key = tuple(const_key)
        self._eq_checks = tuple(eq_checks)
        self._var_positions = tuple(seen.values())
        self.is_plain = not const_positions and not eq_checks

    def _run(self, ctx, memo):
        rows = ctx.rows(self.name)
        if not rows or len(next(iter(rows))) != self.arity:
            # absent relation, or one stored under a different arity: the
            # atom matches nothing (the interpreter's tuple-membership
            # test likewise never succeeds), and probing would build an
            # index over rows the key positions may not even reach
            return _EMPTY
        if self._const_positions:
            rows = ctx.index(self.name, self._const_positions).get(self._const_key, ())
        if self.is_plain:
            return frozenset(rows)
        eq, keep = self._eq_checks, self._var_positions
        out = set()
        for row in rows:
            if all(row[i] == row[j] for i, j in eq):
                out.add(tuple(row[p] for p in keep))
        return frozenset(out)

    def label(self):
        if self.is_plain:
            sel = ""
        else:
            sel = f" σ={len(self._const_positions) + len(self._eq_checks)}"
        return f"scan {self.name}/{self.arity}{sel}"


class DomainNode(Node):
    """The active domain as a unary relation (unsafe-variable fallback)."""

    __slots__ = ()

    def __init__(self, var: Var):
        super().__init__((var,))

    def _run(self, ctx, memo):
        return frozenset((a,) for a in ctx.adom())

    def label(self):
        return "adom"


class DiagonalNode(Node):
    """``x = y`` over the active domain: ``{(a, a) | a ∈ adom}``."""

    __slots__ = ()

    def __init__(self, left: Var, right: Var):
        super().__init__((left, right))

    def _run(self, ctx, memo):
        return frozenset((a, a) for a in ctx.adom())

    def label(self):
        return "adom-diagonal"


class SingletonNode(Node):
    """``x = c``: the singleton ``{(c,)}`` when ``c`` is active, else ∅."""

    __slots__ = ("value",)

    def __init__(self, var: Var, value: Hashable):
        super().__init__((var,))
        self.value = value

    def _run(self, ctx, memo):
        return frozenset([(self.value,)]) if self.value in ctx.adom() else _EMPTY

    def label(self):
        return f"singleton {self.value!r}"


class DomainGuardNode(Node):
    """Gate on a non-empty active domain (dummy quantified variables)."""

    __slots__ = ("child",)

    def __init__(self, child: Node):
        super().__init__(child.columns)
        self.child = child

    def _run(self, ctx, memo):
        if not ctx.adom():
            return _EMPTY
        return self.child.evaluate(ctx, memo)

    def label(self):
        return "adom-guard"

    def children(self):
        return (self.child,)


class JoinNode(Node):
    """Hash join on the shared columns.

    Degenerates to a semi-join when the right side adds no columns, to a
    cross product when no columns are shared, and probes the context's
    cached per-relation hash index when the right side is a plain scan
    (so repeated executions over one instance share the build side).
    """

    __slots__ = ("left", "right", "_l_key", "_r_key", "_r_extra", "_probe")

    def __init__(self, left: Node, right: Node):
        shared = [c for c in left.columns if c in right.columns]
        self.left, self.right = left, right
        self._l_key = tuple(left.columns.index(c) for c in shared)
        self._r_key = tuple(right.columns.index(c) for c in shared)
        self._r_extra = tuple(
            i for i, c in enumerate(right.columns) if c not in left.columns
        )
        super().__init__(left.columns + tuple(right.columns[i] for i in self._r_extra))
        # plain scans expose position == column-index, so the shared key
        # maps directly onto an index over the stored rows
        self._probe = (
            isinstance(right, ScanNode) and right.is_plain and bool(shared)
        )

    def _run(self, ctx, memo):
        left_rows = self.left.evaluate(ctx, memo)
        if not left_rows:
            return _EMPTY
        lk, rk, extra = self._l_key, self._r_key, self._r_extra

        if self._probe:
            stored = ctx.rows(self.right.name)
            if not stored or len(next(iter(stored))) != self.right.arity:
                return _EMPTY  # same arity guard as the scan itself
            idx = ctx.index(self.right.name, rk)
            if not extra:  # semi-join straight off the index
                return frozenset(
                    lr for lr in left_rows if tuple(lr[i] for i in lk) in idx
                )
            out = set()
            for lr in left_rows:
                bucket = idx.get(tuple(lr[i] for i in lk))
                if bucket:
                    for row in bucket:
                        out.add(lr + tuple(row[i] for i in extra))
            return frozenset(out)

        right_rows = self.right.evaluate(ctx, memo)
        if not right_rows:
            return _EMPTY
        if not extra:  # semi-join on materialised keys
            keys = {tuple(r[i] for i in rk) for r in right_rows}
            return frozenset(
                lr for lr in left_rows if tuple(lr[i] for i in lk) in keys
            )
        out = set()
        if len(right_rows) <= len(left_rows):
            table: dict[tuple, list[tuple]] = {}
            for r in right_rows:
                table.setdefault(tuple(r[i] for i in rk), []).append(
                    tuple(r[i] for i in extra)
                )
            for lr in left_rows:
                bucket = table.get(tuple(lr[i] for i in lk))
                if bucket:
                    for tail in bucket:
                        out.add(lr + tail)
        else:
            ltable: dict[tuple, list[tuple]] = {}
            for lr in left_rows:
                ltable.setdefault(tuple(lr[i] for i in lk), []).append(lr)
            for r in right_rows:
                bucket = ltable.get(tuple(r[i] for i in rk))
                if bucket:
                    tail = tuple(r[i] for i in extra)
                    for lr in bucket:
                        out.add(lr + tail)
        return frozenset(out)

    def label(self):
        if not self._r_extra:
            kind = "semi-join"
        elif not self._l_key:
            kind = "product"
        else:
            kind = "hash-join"
        if self._probe:
            kind += " (index probe)"
        return kind

    def children(self):
        return (self.left, self.right)


class AntiJoinNode(Node):
    """Rows of ``left`` with **no** partner in ``right`` (negation)."""

    __slots__ = ("left", "right", "_l_key")

    def __init__(self, left: Node, right: Node):
        missing = [c for c in right.columns if c not in left.columns]
        if missing:
            raise ValueError(f"anti-join needs bound columns; unbound: {missing}")
        super().__init__(left.columns)
        self.left, self.right = left, right
        self._l_key = tuple(left.columns.index(c) for c in right.columns)

    def _run(self, ctx, memo):
        left_rows = self.left.evaluate(ctx, memo)
        if not left_rows:
            return _EMPTY
        right_rows = self.right.evaluate(ctx, memo)
        if not right_rows:
            return left_rows
        lk = self._l_key
        # the right side's full rows are the probe keys
        return frozenset(
            lr for lr in left_rows if tuple(lr[i] for i in lk) not in right_rows
        )

    def label(self):
        return "anti-join"

    def children(self):
        return (self.left, self.right)


class FilterNode(Node):
    """Column=column / column=constant selections (equality atoms)."""

    __slots__ = ("child", "_col_eqs", "_const_eqs")

    def __init__(
        self,
        child: Node,
        col_eqs: Sequence[tuple[int, int]],
        const_eqs: Sequence[tuple[int, Hashable]],
    ):
        super().__init__(child.columns)
        self.child = child
        self._col_eqs = tuple(col_eqs)
        self._const_eqs = tuple(const_eqs)

    def _run(self, ctx, memo):
        rows = self.child.evaluate(ctx, memo)
        ce, ke = self._col_eqs, self._const_eqs
        return frozenset(
            row
            for row in rows
            if all(row[i] == row[j] for i, j in ce)
            and all(row[i] == v for i, v in ke)
        )

    def label(self):
        return f"select ({len(self._col_eqs) + len(self._const_eqs)} eqs)"

    def children(self):
        return (self.child,)


class ProjectNode(Node):
    """Deduplicating projection / column reorder (``∃`` and plan output)."""

    __slots__ = ("child", "_indices")

    def __init__(self, child: Node, columns: Sequence[Var]):
        super().__init__(columns)
        self.child = child
        self._indices = tuple(child.columns.index(c) for c in self.columns)

    def _run(self, ctx, memo):
        rows = self.child.evaluate(ctx, memo)
        idx = self._indices
        return frozenset(tuple(row[i] for i in idx) for row in rows)

    def label(self):
        return "project"

    def children(self):
        return (self.child,)


class UnionNode(Node):
    """Set union of same-schema children (``∨``)."""

    __slots__ = ("parts",)

    def __init__(self, parts: Sequence[Node]):
        super().__init__(parts[0].columns)
        for p in parts[1:]:
            if p.columns != self.columns:
                raise ValueError("union needs identical column tuples")
        self.parts = tuple(parts)

    def _run(self, ctx, memo):
        return frozenset().union(*(p.evaluate(ctx, memo) for p in self.parts))

    def label(self):
        return f"union ({len(self.parts)})"

    def children(self):
        return self.parts


class ComplementNode(Node):
    """Active-domain complement ``adom^k − child`` (unsafe fallback)."""

    __slots__ = ("child",)

    def __init__(self, child: Node):
        super().__init__(child.columns)
        self.child = child

    def _run(self, ctx, memo):
        rows = self.child.evaluate(ctx, memo)
        if not self.columns:
            return _EMPTY if rows else _UNIT
        domain = ctx.sorted_adom()
        return frozenset(
            row
            for row in itertools.product(domain, repeat=len(self.columns))
            if row not in rows
        )

    def label(self):
        return f"adom-complement^{len(self.columns)}"

    def children(self):
        return (self.child,)


# ----------------------------------------------------------------------
# compilation
# ----------------------------------------------------------------------

def _sorted_vars(vars_: Iterable[Var]) -> list[Var]:
    return sorted(set(vars_), key=lambda v: v.name)


def _compile(phi: Formula, memo: dict[Formula, Node], stats=None) -> Node:
    node = memo.get(phi)
    if node is None:
        node = _build(phi, memo, stats)
        memo[phi] = node
    return node


def _build(phi: Formula, memo: dict[Formula, Node], stats) -> Node:
    match phi:
        case TrueF():
            return ConstNode(True)
        case FalseF():
            return ConstNode(False)
        case RelAtom():
            return ScanNode(phi)
        case EqAtom(left=left, right=right):
            return _compile_eq(left, right)
        case Not(sub=sub):
            # post-NNF this is an atom; the generic complement keeps the
            # compiler total for hand-built non-NNF trees as well
            return ComplementNode(_compile(sub, memo, stats))
        case And():
            return _compile_and(_flatten_and(phi), memo, stats)
        case Or(subs=subs):
            return _compile_or(subs, memo, stats)
        case Implies(left=left, right=right):
            return _compile(Or((nnf(left, True), nnf(right))), memo, stats)
        case Exists(vars=vs, sub=sub):
            return _compile_exists(vs, sub, memo, stats)
        case Forall(vars=vs, sub=sub):
            # ∀x̄ φ ≡ ¬∃x̄ ¬φ: the violator set is join-shaped (guards
            # become anti-joins), and the complement only ranges over the
            # formula's own free variables
            violators = _compile(Exists(vs, nnf(sub, True)), memo, stats)
            return ComplementNode(violators)
    raise TypeError(f"not a formula: {phi!r}")


def _compile_eq(left, right) -> Node:
    lv, rv = isinstance(left, Var), isinstance(right, Var)
    if lv and rv:
        return DomainNode(left) if left == right else DiagonalNode(left, right)
    if lv:
        return SingletonNode(left, right)
    if rv:
        return SingletonNode(right, left)
    return ConstNode(left == right)


def _compile_exists(vs: tuple[Var, ...], sub: Formula, memo, stats=None) -> Node:
    child = _compile(sub, memo, stats)
    bound = set(vs)
    keep = [c for c in child.columns if c not in bound]
    node = child if len(keep) == len(child.columns) else ProjectNode(child, keep)
    if any(v not in child.columns for v in vs):
        # a quantified variable the body never mentions still ranges over
        # the active domain: ∃v φ is false on the empty domain
        node = DomainGuardNode(node)
    return node


def _flatten_and(phi: And) -> list[Formula]:
    out: list[Formula] = []
    for sub in phi.subs:
        if isinstance(sub, And):
            out.extend(_flatten_and(sub))
        else:
            out.append(sub)
    return out


def _compile_or(subs: Sequence[Formula], memo, stats=None) -> Node:
    children = [_compile(s, memo, stats) for s in subs]
    all_cols = _sorted_vars(c for n in children for c in n.columns)
    padded: list[Node] = []
    for node in children:
        # a disjunct that does not bind some output variable is unsafe
        # there: the variable ranges over the active domain
        for v in all_cols:
            if v not in node.columns:
                node = JoinNode(node, DomainNode(v))
        if node.columns != tuple(all_cols):
            node = ProjectNode(node, all_cols)
        padded.append(node)
    if len(padded) == 1:
        return padded[0]
    return UnionNode(padded)


def _selectivity(node: Node) -> int:
    """Join-order heuristic: lower = likely smaller / cheaper first."""
    if isinstance(node, (SingletonNode, ConstNode)):
        return 0
    if isinstance(node, ScanNode):
        return 1 if not node.is_plain else 2
    if isinstance(node, (DomainNode, DiagonalNode)):
        return 5
    if isinstance(node, ComplementNode):
        return 6
    return 3


def _order_cost(node: Node, stats) -> int:
    """Join-order key: static class ranks, or stats-driven cardinalities.

    Without ``stats`` this is exactly the historical :func:`_selectivity`
    ranking — the ``compiled`` backend's plans are bit-for-bit stable.
    With ``stats`` (a mapping of relation name to row count, plus the
    pseudo-relation ``"%adom"`` for the domain size) producers are
    ordered by estimated output cardinality instead, so a small relation
    seeds the join chain even when the static ranks tie.  Join order
    never affects results (set semantics) — only performance.
    """
    if stats is None:
        return _selectivity(node)
    adom = max(1, stats.get("%adom", 16))
    if isinstance(node, (SingletonNode, ConstNode)):
        return 0
    if isinstance(node, ScanNode):
        # each bound position (constant probe or repeated variable)
        # shrinks the estimate by the classic 1/4 selectivity guess
        shrink = 4 ** (len(node._const_positions) + len(node._eq_checks))
        return max(1, stats.get(node.name, adom) // shrink)
    if isinstance(node, (DomainNode, DiagonalNode)):
        return adom
    if isinstance(node, DomainGuardNode):
        return _order_cost(node.child, stats)
    if isinstance(node, (ProjectNode, FilterNode)):
        return _order_cost(node.child, stats)
    if isinstance(node, UnionNode):
        return sum(_order_cost(p, stats) for p in node.parts)
    if isinstance(node, AntiJoinNode):
        return _order_cost(node.left, stats)
    if isinstance(node, JoinNode):
        return max(_order_cost(node.left, stats), _order_cost(node.right, stats))
    if isinstance(node, ComplementNode):
        return adom ** max(1, len(node.columns))
    return adom


def _compile_and(conjuncts: list[Formula], memo, stats=None) -> Node:
    out_cols = _sorted_vars(v for c in conjuncts for v in free_vars(c))

    filters: list[tuple] = []        # EqAtoms with at least one variable
    negatives: list[Formula] = []    # anti-join representatives (∃-closed)
    producers: list[Node] = []
    for c in conjuncts:
        match c:
            case EqAtom(left=left, right=right) if isinstance(left, Var) or isinstance(right, Var):
                filters.append((left, right))
            case Not(sub=sub):
                negatives.append(sub)
            case Forall(vars=vs, sub=sub):
                # ∀ḡ ψ as a conjunct: anti-join against ∃ḡ ¬ψ once the
                # free variables are bound (the guarded-fragment case)
                negatives.append(Exists(vs, nnf(sub, True)))
            case _:
                producers.append(_compile(c, memo, stats))

    # variables mentioned only by filters/negatives need a base producer
    covered_somewhere = {v for n in producers for v in n.columns}
    for v in out_cols:
        if v not in covered_somewhere:
            const = next(
                (
                    other
                    for left, right in filters
                    for var, other in ((left, right), (right, left))
                    if var == v and not isinstance(other, Var)
                ),
                _NO_CONST,
            )
            producers.append(
                SingletonNode(v, const) if const is not _NO_CONST else DomainNode(v)
            )

    if not producers:
        chain: Node = ConstNode(True)
    else:
        order = list(enumerate(producers))
        first = min(order, key=lambda p: (_order_cost(p[1], stats), len(p[1].columns), p[0]))
        order.remove(first)
        chain = first[1]
    covered = set(chain.columns)
    pending_filters = list(filters)
    pending_negs = [(frozenset(free_vars(rep)), rep) for rep in negatives]

    def apply_ready(chain: Node) -> Node:
        nonlocal pending_filters, pending_negs
        col_eqs: list[tuple[int, int]] = []
        const_eqs: list[tuple[int, Hashable]] = []
        rest = []
        cols = chain.columns
        for left, right in pending_filters:
            lv, rv = isinstance(left, Var), isinstance(right, Var)
            if lv and rv:
                if left in covered and right in covered:
                    col_eqs.append((cols.index(left), cols.index(right)))
                else:
                    rest.append((left, right))
            else:
                var, const = (left, right) if lv else (right, left)
                if var in covered:
                    const_eqs.append((cols.index(var), const))
                else:
                    rest.append((left, right))
        pending_filters = rest
        if col_eqs or const_eqs:
            chain = FilterNode(chain, col_eqs, const_eqs)
        neg_rest = []
        for needed, rep in pending_negs:
            if needed <= covered:
                chain = AntiJoinNode(chain, _compile(rep, memo, stats))
            else:
                neg_rest.append((needed, rep))
        pending_negs = neg_rest
        return chain

    chain = apply_ready(chain)
    if producers:
        while order:
            # greedy: join something connected to the covered variables,
            # preferring many shared columns and selective operands
            def key(p):
                idx, node = p
                shared = sum(1 for c in node.columns if c in covered)
                new = len(node.columns) - shared
                return (shared == 0, -shared, _order_cost(node, stats), new, idx)

            nxt = min(order, key=key)
            order.remove(nxt)
            chain = JoinNode(chain, nxt[1])
            covered.update(nxt[1].columns)
            chain = apply_ready(chain)

    assert not pending_filters and not pending_negs, "And compilation left work behind"
    if chain.columns != tuple(out_cols):
        chain = ProjectNode(chain, out_cols)
    return chain


_NO_CONST = object()


# ----------------------------------------------------------------------
# the public face
# ----------------------------------------------------------------------

#: node types whose output depends on the context's *active domain*, not
#: only on the rows of the relations the plan reads.  Plans free of these
#: are pure functions of their scanned relations — the certain-answer
#: oracle uses that to enumerate valuations only over the nulls those
#: relations mention.
_ADOM_DEPENDENT_NODES = (
    DomainNode,
    DiagonalNode,
    SingletonNode,
    DomainGuardNode,
    ComplementNode,
)


def _walk_nodes(root: Node):
    stack, seen = [root], set()
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        yield node
        stack.extend(node.children())


class CompiledQuery:
    """An FO formula compiled to a relational operator DAG.

    Equivalent to :func:`repro.logic.eval.answers` /
    :func:`~repro.logic.eval.evaluate` on every formula and instance;
    compiled once, executable against any instance or raw context.
    """

    __slots__ = ("formula", "answer_vars", "_root", "_relations", "_adom_dependent")

    def __init__(
        self,
        formula: Formula,
        answer_vars: Sequence[Var | str] = (),
        *,
        stats=None,
    ):
        self.formula = formula
        self.answer_vars = tuple(
            Var(v) if isinstance(v, str) else v for v in answer_vars
        )
        missing = free_vars(formula) - set(self.answer_vars)
        if missing:
            names = ", ".join(sorted(v.name for v in missing))
            raise ValueError(f"answer variables do not cover free variables: {names}")
        memo: dict[Formula, Node] = {}
        root = _compile(nnf(formula), memo, stats)
        for v in self.answer_vars:
            # extra answer variables range freely over the active domain,
            # mirroring the interpreter's enumeration
            if v not in root.columns:
                root = JoinNode(root, DomainNode(v))
        if root.columns != self.answer_vars:
            root = ProjectNode(root, self.answer_vars)
        self._root = root
        self._relations: frozenset[str] | None = None
        self._adom_dependent: bool | None = None

    @property
    def is_boolean(self) -> bool:
        return not self.answer_vars

    @property
    def relations(self) -> frozenset[str]:
        """The relation names the operator DAG reads (scans and probes)."""
        if self._relations is None:
            self._relations = frozenset(
                node.name for node in _walk_nodes(self._root)
                if isinstance(node, ScanNode)
            )
        return self._relations

    @property
    def adom_dependent(self) -> bool:
        """Does the result depend on the context's active domain?

        ``False`` means the answers are a pure function of the rows of
        :attr:`relations` — two contexts agreeing on those relations
        produce identical answers regardless of their domains.  The
        oracle's world enumerator uses this to skip valuating nulls the
        plan can never observe.
        """
        if self._adom_dependent is None:
            self._adom_dependent = any(
                isinstance(node, _ADOM_DEPENDENT_NODES)
                for node in _walk_nodes(self._root)
            )
        return self._adom_dependent

    def answers(self, source) -> frozenset[tuple[Hashable, ...]]:
        """``{ā ∈ adom^k : source ⊨ φ(ā)}`` — set-at-a-time.

        ``source`` is an :class:`~repro.data.instance.Instance` or a
        :class:`~repro.data.indexes.TableContext`.  Boolean formulas
        yield ``{()}`` / ``frozenset()``.
        """
        ctx = as_context(source)
        return self._root.evaluate(ctx, {})

    def holds(self, source) -> bool:
        """Truth of a Boolean (sentence) compilation."""
        if not self.is_boolean:
            raise ValueError(
                f"compiled query has arity {len(self.answer_vars)}; use answers()"
            )
        return bool(self.answers(source))

    def describe(self) -> str:
        """EXPLAIN-style rendering of the operator tree."""
        return self._root.describe()

    def __repr__(self) -> str:
        head = ", ".join(v.name for v in self.answer_vars)
        return f"CompiledQuery({head or '·'} ← {self.formula!r})"


def compile_formula(formula: Formula, answer_vars: Sequence[Var | str] = ()) -> CompiledQuery:
    """Compile ``formula`` with the given answer-column order."""
    return CompiledQuery(formula, answer_vars)


@lru_cache(maxsize=1024)
def _compiled(formula: Formula, answer_vars: tuple[Var, ...]) -> CompiledQuery:
    return CompiledQuery(formula, answer_vars)


@lru_cache(maxsize=512)
def _compiled_with_stats(
    formula: Formula,
    answer_vars: tuple[Var, ...],
    stats_key: tuple[tuple[str, int], ...],
) -> CompiledQuery:
    """Stats-specialised compilation, memoised on the bucketed stats.

    ``stats_key`` is the bucketed row-count snapshot produced by
    :meth:`repro.data.dictionary.ColumnarContext.stats_key` — counts
    rounded to powers of two, so small mutations reuse the same plan.
    """
    return CompiledQuery(formula, answer_vars, stats=dict(stats_key))


def compiled_query(query) -> CompiledQuery:
    """The memoised compilation of a :class:`~repro.logic.queries.Query`.

    Queries are immutable values, so one compilation serves every
    evaluation — the certain-answer oracle re-executes it across all
    pool-valuation worlds of a batch.
    """
    return _compiled(query.formula, query.answer_vars)


def clear_compile_cache() -> None:
    """Drop memoised compilations (tests and long-lived deployments)."""
    _compiled.cache_clear()
    _compiled_with_stats.cache_clear()
