"""Unit tests for repro.algebra.ops: named-column relational algebra."""

import pytest

from repro.algebra.ops import Relation, from_instance, to_instance
from repro.data.generate import intro_example
from repro.data.instance import Instance
from repro.data.values import Null

X = Null("x")


def rel(columns, rows):
    return Relation(tuple(columns), frozenset(tuple(r) for r in rows))


class TestConstruction:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            rel(("a", "a"), [(1, 2)])

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            rel(("a", "b"), [(1,)])

    def test_from_instance(self):
        r = from_instance(intro_example(), "R", ("A", "B"))
        assert len(r) == 2

    def test_from_instance_arity_mismatch(self):
        with pytest.raises(ValueError):
            from_instance(intro_example(), "R", ("A",))

    def test_to_instance_roundtrip(self):
        r = rel(("a", "b"), [(1, 2)])
        assert to_instance(r, "T") == Instance({"T": [(1, 2)]})


class TestOperators:
    def test_select_eq_naive_null_semantics(self):
        r = rel(("a",), [(1,), (X,)])
        assert len(r.select_eq("a", 1)) == 1
        assert len(r.select_eq("a", X)) == 1  # syntactic null equality
        assert len(r.select_eq("a", Null("other"))) == 0

    def test_select_predicate(self):
        r = rel(("a", "b"), [(1, 2), (3, 4)])
        assert len(r.select(lambda row: row["a"] > 2)) == 1

    def test_project_reorders(self):
        r = rel(("a", "b"), [(1, 2)])
        assert r.project(("b", "a")).rows == frozenset({(2, 1)})

    def test_project_deduplicates(self):
        r = rel(("a", "b"), [(1, 2), (1, 3)])
        assert len(r.project(("a",))) == 1

    def test_rename(self):
        r = rel(("a",), [(1,)]).rename({"a": "z"})
        assert r.columns == ("z",)

    def test_natural_join(self):
        r = rel(("a", "b"), [(1, 2), (5, 6)])
        s = rel(("b", "c"), [(2, 3)])
        joined = r.join(s)
        assert joined.columns == ("a", "b", "c")
        assert joined.rows == frozenset({(1, 2, 3)})

    def test_join_on_nulls_is_syntactic(self):
        r = rel(("a", "b"), [(1, X)])
        s = rel(("b", "c"), [(X, 4), (Null("other"), 5)])
        assert r.join(s).rows == frozenset({(1, X, 4)})

    def test_join_without_shared_columns_is_product(self):
        r = rel(("a",), [(1,)])
        s = rel(("b",), [(2,)])
        assert r.join(s).rows == frozenset({(1, 2)})

    def test_union_difference_schema_checked(self):
        r = rel(("a",), [(1,)])
        s = rel(("b",), [(2,)])
        with pytest.raises(ValueError):
            r.union(s)
        with pytest.raises(ValueError):
            r.difference(s)

    def test_union_difference(self):
        r = rel(("a",), [(1,), (2,)])
        s = rel(("a",), [(2,), (3,)])
        assert r.union(s).rows == frozenset({(1,), (2,), (3,)})
        assert r.difference(s).rows == frozenset({(1,)})

    def test_product_requires_disjoint(self):
        r = rel(("a",), [(1,)])
        with pytest.raises(ValueError):
            r.product(r)

    def test_drop_null_rows(self):
        r = rel(("a", "b"), [(1, X), (1, 2)])
        assert r.drop_null_rows().rows == frozenset({(1, 2)})

    def test_missing_column_raises(self):
        with pytest.raises(KeyError):
            rel(("a",), [(1,)]).project(("zz",))


class TestIntroQueryViaAlgebra:
    def test_pi_ac_join(self):
        """The paper's π_AC(R ⋈ S) with naive evaluation, algebraically."""
        db = intro_example()
        r = from_instance(db, "R", ("A", "B"))
        s = from_instance(db, "S", ("B", "C"))
        raw = r.join(s).project(("A", "C"))
        assert len(raw) == 2  # (1,4) and (⊥2,5)
        assert raw.drop_null_rows().rows == frozenset({(1, 4)})
