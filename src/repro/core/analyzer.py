"""The query analyzer: Figure 1 as an executable policy.

Given a query and a semantics, decide *syntactically* whether naive
evaluation is guaranteed to compute certain answers, quoting the paper's
result that justifies the verdict.  This is the practical payoff of the
paper: a planner can route a query to the ordinary evaluation engine
whenever the analyzer says yes, and only fall back to expensive
certain-answer computation otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.logic.classes import in_fragment, why_not_in
from repro.logic.queries import Query
from repro.semantics.base import Semantics

__all__ = ["Verdict", "analyze", "FIGURE_1"]

#: Figure 1 of the paper: semantics key → (sound fragment, restriction, citation).
FIGURE_1 = {
    "owa": ("EPos", None, "Imielinski & Lipski 1984; optimal by Libkin 2011 / Rossman 2008"),
    "wcwa": ("Pos", None, "Theorem 5.2 via Lyndon-style preservation under onto homomorphisms"),
    "cwa": (
        "PosForallG",
        None,
        "Theorem 5.2 via preservation under strong onto homomorphisms (Prop. 5.1)",
    ),
    "pcwa": (
        "EPosForallGBool",
        None,
        "Corollary 7.9 via unions of strong onto homomorphisms (Lemma 7.8)",
    ),
    "mincwa": (
        "PosForallG",
        "cores",
        "Corollary 10.12; in general needs Q(D) = Q(core(D)) (Cor. 10.6)",
    ),
    "minpcwa": (
        "EPosForallGBool",
        "cores",
        "Corollary 10.12; in general needs Q(D) = Q(core(D)) (Cor. 10.6)",
    ),
}

_FRAGMENT_PRETTY = {
    "EPos": "∃Pos (unions of conjunctive queries)",
    "Pos": "Pos (positive formulae)",
    "PosForallG": "Pos+∀G (positive with universal guards)",
    "EPosForallGBool": "∃Pos+∀G_bool (existential positive with Boolean guards)",
}


@dataclass(frozen=True)
class Verdict:
    """The analyzer's decision for one (query, semantics) pair."""

    #: naive evaluation is provably sound and complete for certain answers
    sound: bool
    #: ... but only when the input instance is a core (minimal semantics)
    over_cores_only: bool
    #: naive 'true'/answers are still certain even when not complete
    #: (weak monotonicity holds; Prop. 10.13 for minimal semantics)
    approximation: bool
    #: the fragment that was tested
    fragment: str
    #: semantics key
    semantics: str
    #: human-readable justification
    reason: str

    def __bool__(self) -> bool:
        return self.sound


def analyze(query: Query, semantics: Semantics | str) -> Verdict:
    """Decide whether naive evaluation computes certain answers for ``query``.

    The decision is *syntactic* (fragment membership), hence sound but
    not complete: a query logically equivalent to one in the fragment
    but written outside it gets a negative verdict.  Under OWA and for
    Boolean queries the fragment is also semantically optimal
    ([Libkin 2011]): naive evaluation works iff the query is equivalent
    to a union of conjunctive queries.
    """
    key = semantics if isinstance(semantics, str) else semantics.key
    if key not in FIGURE_1:
        raise ValueError(f"unknown semantics {key!r}; expected one of {sorted(FIGURE_1)}")
    fragment, restriction, citation = FIGURE_1[key]
    pretty = _FRAGMENT_PRETTY[fragment]

    if in_fragment(query.formula, fragment):
        if restriction == "cores":
            return Verdict(
                sound=True,
                over_cores_only=True,
                approximation=True,
                fragment=fragment,
                semantics=key,
                reason=(
                    f"query is in {pretty}; naive evaluation computes certain answers "
                    f"over cores, and is a sound approximation elsewhere ({citation})"
                ),
            )
        return Verdict(
            sound=True,
            over_cores_only=False,
            approximation=True,
            fragment=fragment,
            semantics=key,
            reason=f"query is in {pretty}; naive evaluation computes certain answers ({citation})",
        )

    reason = why_not_in(query.formula, fragment) or "outside the fragment"
    extra = ""
    if key == "owa" and query.is_boolean:
        extra = (
            " — for Boolean FO under OWA this is tight: naive evaluation works "
            "iff the query is equivalent to a union of conjunctive queries"
        )
    return Verdict(
        sound=False,
        over_cores_only=False,
        approximation=False,
        fragment=fragment,
        semantics=key,
        reason=f"not syntactically in {pretty}: {reason}{extra}",
    )
