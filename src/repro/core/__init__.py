"""The paper's primary contribution: naive evaluation, certain answers, the analyzer."""

from repro.core.analyzer import FIGURE_1, Verdict, analyze
from repro.core.certain import certain_answers, certain_holds, default_pool, query_schema
from repro.core.naive import drop_null_tuples, naive_eval, naive_holds
from repro.core.backends import (
    Backend,
    CompiledBackend,
    CTableBackend,
    EnumerationBackend,
    NaiveBackend,
    NaiveInterpBackend,
    available_backends,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.core.plan import CostHints, Plan, make_plan
from repro.core.engine import EvalResult, evaluate, execute_plan
from repro.core.monotone import (
    HOM_CLASSES,
    Counterexample,
    preservation_counterexample,
    weak_monotonicity_counterexample,
)
from repro.core.possible import possible_answers, possible_holds

__all__ = [
    "FIGURE_1",
    "Verdict",
    "analyze",
    "certain_answers",
    "certain_holds",
    "default_pool",
    "query_schema",
    "Backend",
    "NaiveBackend",
    "CompiledBackend",
    "NaiveInterpBackend",
    "EnumerationBackend",
    "CTableBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "unregister_backend",
    "CostHints",
    "Plan",
    "make_plan",
    "EvalResult",
    "evaluate",
    "execute_plan",
    "HOM_CLASSES",
    "Counterexample",
    "preservation_counterexample",
    "weak_monotonicity_counterexample",
    "drop_null_tuples",
    "naive_eval",
    "naive_holds",
    "possible_answers",
    "possible_holds",
]
