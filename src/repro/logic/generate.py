"""Random formula generation, stratified by syntactic fragment.

The Figure 1 validation harness samples queries from each fragment and
checks that naive evaluation agrees with the certain-answer oracle on
random instances.  Generators guarantee membership in the requested
fragment (asserted via the recognizers) and produce *sentences* by
existentially closing leftover free variables.
"""

from __future__ import annotations

import random

from repro.data.schema import Schema
from repro.logic.ast import And, Exists, Forall, Formula, Implies, Or, RelAtom, Var
from repro.logic.classes import in_fragment
from repro.logic.transform import free_vars

__all__ = ["random_sentence", "random_kary_query"]


def _random_atom(schema: Schema, rng: random.Random, pool: list[Var]) -> Formula:
    name = rng.choice(list(schema.relations))
    terms = tuple(rng.choice(pool) for _ in range(schema.arity(name)))
    return RelAtom(name, terms)


def _build(
    schema: Schema,
    rng: random.Random,
    pool: list[Var],
    depth: int,
    fragment: str,
    fresh_counter: list[int],
) -> Formula:
    if depth <= 0 or rng.random() < 0.3:
        return _random_atom(schema, rng, pool)

    options = ["and", "or", "exists"]
    if fragment in ("Pos", "PosForallG"):
        options.append("forall")
    if fragment in ("PosForallG", "EPosForallGBool"):
        options.append("guard")
    op = rng.choice(options)

    if op in ("and", "or"):
        left = _build(schema, rng, pool, depth - 1, fragment, fresh_counter)
        right = _build(schema, rng, pool, depth - 1, fragment, fresh_counter)
        return And((left, right)) if op == "and" else Or((left, right))

    if op in ("exists", "forall"):
        fresh_counter[0] += 1
        var = Var(f"q{fresh_counter[0]}")
        body = _build(schema, rng, pool + [var], depth - 1, fragment, fresh_counter)
        return Exists((var,), body) if op == "exists" else Forall((var,), body)

    # guard: ∀ḡ (R(ḡ) → body)
    name = rng.choice(list(schema.relations))
    arity = schema.arity(name)
    guard_vars = []
    for _ in range(arity):
        fresh_counter[0] += 1
        guard_vars.append(Var(f"g{fresh_counter[0]}"))
    guard_vars = tuple(guard_vars)
    if fragment == "EPosForallGBool":
        # Boolean guards: the body may only use the guard variables.
        body_pool = list(guard_vars)
    else:
        body_pool = pool + list(guard_vars)
    body = _build(schema, rng, body_pool, depth - 1, fragment, fresh_counter)
    if fragment == "EPosForallGBool":
        # close any variable the recursion existentially introduced but
        # left free (cannot happen for guard vars; safety net for atoms)
        loose = sorted(free_vars(body) - set(guard_vars), key=lambda v: v.name)
        if loose:
            body = Exists(tuple(loose), body)
    return Forall(guard_vars, Implies(RelAtom(name, guard_vars), body))


def random_sentence(
    schema: Schema,
    rng: random.Random,
    fragment: str = "EPos",
    max_depth: int = 3,
) -> Formula:
    """A random Boolean sentence guaranteed to lie in ``fragment``."""
    counter = [0]
    seed_pool = [Var("s1"), Var("s2")]
    phi = _build(schema, rng, seed_pool, max_depth, fragment, counter)
    loose = sorted(free_vars(phi), key=lambda v: v.name)
    if loose:
        phi = Exists(tuple(loose), phi)
    assert in_fragment(phi, fragment), f"generator escaped {fragment}: {phi!r}"
    return phi


def random_kary_query(
    schema: Schema,
    rng: random.Random,
    fragment: str = "EPos",
    arity: int = 1,
    max_depth: int = 2,
):
    """A random k-ary query in ``fragment`` (free variables = answers).

    Built by generating a sentence-in-progress and withholding ``arity``
    variables from closure; the head variables are guaranteed to occur.
    """
    from repro.logic.queries import Query

    counter = [0]
    head = tuple(Var(f"a{i}") for i in range(arity))
    # anchor every head variable in an atom so the query is safe
    anchors = []
    for var in head:
        name = rng.choice(list(schema.relations))
        k = schema.arity(name)
        position = rng.randrange(k)
        terms = tuple(
            var if j == position else Var(f"x{counter[0] * k + j}")
            for j in range(k)
        )
        counter[0] += 1
        anchors.append(RelAtom(name, terms))
    body = _build(schema, rng, list(head), max_depth, fragment, counter)
    phi: Formula = And(tuple(anchors) + (body,))
    loose = sorted(free_vars(phi) - set(head), key=lambda v: v.name)
    if loose:
        phi = Exists(tuple(loose), phi)
    assert in_fragment(phi, fragment), f"generator escaped {fragment}: {phi!r}"
    return Query(phi, head, name=f"rand_{fragment}_{arity}ary")
