"""Link and anchor checker for the Markdown docs (CI's docs job).

Scans inline Markdown links ``[text](target)`` in the given files or
directories (``*.md``, recursively) and fails when

* a relative link points at a file that does not exist, or
* a ``#fragment`` names a heading that does not exist in the target
  (GitHub-style slugs: lowercase, punctuation stripped, spaces to
  hyphens, ``-1``/``-2`` suffixes for duplicates).

External links (``http://``, ``https://``, ``mailto:``) are *not*
fetched — CI must not depend on the network — only their syntax is
accepted.  Usage::

    python tools/check_links.py README.md docs
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: inline links/images; [text](target "title") — title dropped
LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
CODE_FENCE = re.compile(r"^\s*(```|~~~)")


def slugify(heading: str) -> str:
    """GitHub's anchor algorithm, close enough for ASCII docs."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # code spans keep their text
    text = re.sub(r"[!?.,:;'\"()\[\]{}<>*&^%$@#+=|\\/—·]", "", text.lower())
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    """Every heading slug in ``path`` (with duplicate suffixes)."""
    seen: dict[str, int] = {}
    anchors: set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING.match(line)
        if not match:
            continue
        slug = slugify(match.group(2))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        anchors.add(slug if count == 0 else f"{slug}-{count}")
    return anchors


def check_file(path: Path, root: Path) -> list[str]:
    errors: list[str] = []
    in_fence = False
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            file_part, _, fragment = target.partition("#")
            dest = path if not file_part else (path.parent / file_part).resolve()
            where = f"{path.relative_to(root)}:{lineno}"
            if file_part and not dest.exists():
                errors.append(f"{where}: broken link {target!r} (no such file)")
                continue
            if fragment:
                if dest.suffix.lower() != ".md":
                    continue  # anchors into non-markdown files: not checkable
                if fragment not in anchors_of(dest):
                    errors.append(
                        f"{where}: broken anchor {target!r} "
                        f"(no heading slug {fragment!r} in {dest.name})"
                    )
    return errors


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__)
        return 2
    root = Path.cwd()
    files: list[Path] = []
    for arg in argv:
        path = Path(arg)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.exists():
            files.append(path)
        else:
            print(f"error: {arg} does not exist")
            return 2
    errors: list[str] = []
    for path in files:
        errors.extend(check_file(path.resolve(), root))
    for error in errors:
        print(error)
    print(f"checked {len(files)} file(s): " + ("FAILED" if errors else "all links ok"))
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
