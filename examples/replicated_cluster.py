"""A replicated cluster: one primary, two replicas, a promotion.

Starts three *real* ``repro serve`` subprocesses over TCP — a durable
primary and two replicas tailing it via ``--replica-of`` — then walks
the whole replication story end to end:

* replicas bootstrap from the primary and serve the same certain
  answers;
* ``min_generation`` gives read-your-writes on a replica: pass the
  generation from the primary's write ack, and the replica waits for
  replication to catch up (or answers with a typed ``stale`` error —
  never a silently stale answer);
* replicas reject writes with a typed ``read_only`` error naming the
  primary;
* after the primary dies, ``promote`` flips a replica writable and the
  cluster keeps serving.

Run with::

    python examples/replicated_cluster.py
"""

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

SRC = str(Path(__file__).resolve().parent.parent / "src")


def start_node(name, data_dir, *extra):
    """Launch ``python -m repro serve``; return (proc, address)."""
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", "serve", "--port", "0",
         "--data-dir", str(data_dir), *extra],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env={**os.environ, "PYTHONPATH": SRC},
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise RuntimeError(f"{name} died during startup (rc={proc.poll()})")
        print(f"  [{name}] {line.rstrip()}")
        if "listening on" in line:
            host, port = line.strip().rsplit(" ", 1)[-1].rsplit(":", 1)
            return proc, (host, int(port))
    raise RuntimeError(f"{name} did not announce its address")


class Client:
    """A minimal JSON-lines client: one request per line, one response back."""

    def __init__(self, address):
        self.sock = socket.create_connection(address, timeout=30)
        self.reader = self.sock.makefile("r", encoding="utf-8")
        self.writer = self.sock.makefile("w", encoding="utf-8")

    def call(self, **request):
        self.writer.write(json.dumps(request) + "\n")
        self.writer.flush()
        return json.loads(self.reader.readline())

    def ok(self, **request):
        response = self.call(**request)
        assert response["ok"], response
        return response


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="repro-cluster-"))
    join = "exists z (R(x, z) & S(z, y))"

    # 1. the cluster: a durable primary, two replicas tailing its WAL
    print("cluster:")
    primary_proc, primary_address = start_node("primary", root / "primary")
    primary_hostport = f"{primary_address[0]}:{primary_address[1]}"
    replicas = [
        start_node(f"replica{i}", root / f"replica{i}",
                   "--replica-of", primary_hostport)
        for i in (1, 2)
    ]

    # 2. write on the primary; the ack's generation is the read bound
    primary = Client(primary_address)
    primary.ok(op="insert", relation="R", rows=[[1, "?x"], [2, 3]])
    ack = primary.ok(op="insert", relation="S", rows=[["?x", 4]])
    print(f"\nprimary acked generation {ack['generation']}")

    # 3. read-your-writes on a replica: min_generation = the ack
    readers = [Client(address) for _proc, address in replicas]
    for i, reader in enumerate(readers, start=1):
        answer = reader.ok(op="query", query=join, vars=["x", "y"],
                           min_generation=ack["generation"], wait_timeout_s=30)
        print(f"  replica{i}: answers={answer['answers']} "
              f"generation={answer['generation']}")
        assert answer["answers"] == [[1, 4]]
        assert answer["generation"] >= ack["generation"]

    # ... while an impossible bound becomes a *typed* stale error
    stale = readers[0].call(op="query", query=join,
                            min_generation=ack["generation"] + 100,
                            wait_timeout_s=0.1)
    assert stale["ok"] is False and stale["error_type"] == "stale"
    print(f"  unreachable bound -> typed stale error at "
          f"generation {stale['generation']} (never a silent stale answer)")

    # 4. replicas are read-only, and say where to write instead
    denied = readers[0].call(op="insert", relation="R", rows=[[9, 9]])
    assert denied["ok"] is False and denied["error_type"] == "read_only"
    print(f"  write on a replica -> read_only, primary={denied['primary']}")

    # 5. per-replica lag is visible from the primary alone
    feed = primary.ok(op="stats")["replication"]["feed"]
    print("\nreplication stats on the primary:")
    for peer in feed["replicas"]:
        print(f"  {peer['address']}: lag {peer['lag_generations']} generations "
              f"({peer['lag_bytes']} bytes), {peer['snapshots_sent']} snapshot(s)")
    assert len(feed["replicas"]) == 2

    # 6. failover: the primary dies, replica1 is promoted writable
    print(f"\nkill -9 the primary (pid {primary_proc.pid}), promote replica1")
    os.kill(primary_proc.pid, signal.SIGKILL)
    primary_proc.wait(timeout=30)
    promoted = readers[0].ok(op="promote")
    assert promoted["promoted"] and promoted["role"] == "primary"
    print(f"  promoted at generation {promoted['generation']} "
          f"(checkpointed={promoted['checkpointed']})")

    accepted = readers[0].ok(op="insert", relation="R", rows=[[5, "?x"]])
    after = readers[0].ok(op="query", query=join, vars=["x", "y"])
    print(f"  write accepted at generation {accepted['generation']}; "
          f"answers now {after['answers']}")
    assert after["answers"] == [[1, 4], [5, 4]]

    # 7. graceful shutdown: SIGTERM checkpoints both survivors
    for proc, _address in replicas:
        proc.terminate()
        proc.wait(timeout=30)
    print("\nprimary + two replicas, read-your-writes, typed staleness, "
          "promote failover — OK.")


if __name__ == "__main__":
    main()
