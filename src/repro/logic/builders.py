"""Ergonomic construction of formulae.

Convention: in builder positions, a bare ``str`` denotes a *variable*
and any other Python value denotes a constant.  To use a string as a
constant, wrap it in :func:`const`.

>>> R, S = Rel("R"), Rel("S")
>>> phi = exists("z", R("x", "z") & S("z", "y"))
>>> phi
∃z ((R(x, z) ∧ S(z, y)))
"""

from __future__ import annotations

from typing import Hashable

from repro.logic.ast import (
    FALSE,
    TRUE,
    And,
    EqAtom,
    Exists,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    RelAtom,
    Term,
    Var,
)

__all__ = [
    "Rel",
    "atom",
    "var",
    "const",
    "eq",
    "and_",
    "or_",
    "not_",
    "implies",
    "exists",
    "forall",
    "guard",
    "eq_guard",
    "TRUE",
    "FALSE",
]


class _Const:
    """Wrapper marking a string as a constant in builder positions."""

    __slots__ = ("value",)

    def __init__(self, value: Hashable):
        self.value = value


def const(value: Hashable) -> _Const:
    """Force ``value`` (typically a string) to be read as a constant."""
    return _Const(value)


def var(name: str) -> Var:
    """Make a variable explicitly (equivalent to a bare string in builders)."""
    return Var(name)


def _term(value) -> Term:
    if isinstance(value, Var):
        return value
    if isinstance(value, _Const):
        return value.value
    if isinstance(value, str):
        return Var(value)
    return value


class Rel:
    """A relation-symbol factory: ``Rel("R")("x", 1)`` builds ``R(x, 1)``."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __call__(self, *terms) -> RelAtom:
        return RelAtom(self.name, tuple(_term(t) for t in terms))

    def __repr__(self) -> str:
        return f"Rel({self.name!r})"


def atom(name: str, *terms) -> RelAtom:
    """Build a relational atom directly."""
    return RelAtom(name, tuple(_term(t) for t in terms))


def eq(left, right) -> EqAtom:
    """Equality atom ``left = right``."""
    return EqAtom(_term(left), _term(right))


def and_(*subs: Formula) -> Formula:
    """Conjunction; a single argument is returned unchanged."""
    return subs[0] if len(subs) == 1 else And(tuple(subs))


def or_(*subs: Formula) -> Formula:
    """Disjunction; a single argument is returned unchanged."""
    return subs[0] if len(subs) == 1 else Or(tuple(subs))


def not_(sub: Formula) -> Not:
    """Negation."""
    return Not(sub)


def implies(left: Formula, right: Formula) -> Implies:
    """Implication ``left → right``."""
    return Implies(left, right)


def exists(*args) -> Exists:
    """``exists("x", "y", phi)``: existentially quantify the leading names."""
    *names, body = args
    return Exists(tuple(Var(n) if isinstance(n, str) else n for n in names), body)


def forall(*args) -> Forall:
    """``forall("x", "y", phi)``: universally quantify the leading names."""
    *names, body = args
    return Forall(tuple(Var(n) if isinstance(n, str) else n for n in names), body)


def guard(name: str, variables: tuple[str, ...] | list[str], body: Formula) -> Forall:
    """A universal guard ``∀x̄ (name(x̄) → body)`` in the Pos+∀G shape.

    The variables must be pairwise distinct (checked here, because the
    fragment's preservation theorem fails without it).
    """
    vs = tuple(Var(v) if isinstance(v, str) else v for v in variables)
    if len(set(vs)) != len(vs):
        raise ValueError("guard variables must be pairwise distinct")
    return Forall(vs, Implies(RelAtom(name, vs), body))


def eq_guard(x: str, z: str, body: Formula) -> Forall:
    """The equality guard ``∀x,z (x = z → body)``."""
    vx, vz = Var(x), Var(z)
    if vx == vz:
        raise ValueError("equality guard needs two distinct variables")
    return Forall((vx, vz), Implies(EqAtom(vx, vz), body))
