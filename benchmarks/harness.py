"""Standalone harness: regenerate every table/figure of the reproduction.

Prints, in order:

* Figure 1 — the semantics × fragment grid with measured agreement rates,
* the strictness column — per semantics, a query just outside the
  fragment where naive evaluation provably disagrees,
* the worked-example table (E2-intro, E2-D0, Section 10),
* the orderings correspondence tables (Theorems 6.2, 7.1, Libkin 2011),
* the performance summary (naive vs oracle).

Run with::

    python benchmarks/harness.py            # full run (~1 minute)
    python benchmarks/harness.py --quick    # fewer trials
    python benchmarks/harness.py --json BENCH.json   # also dump numbers

``--json`` writes the measured numbers (figure-1 row timings, the
naive-vs-oracle table, and the compiled-vs-interpreted engine
comparison) to a machine-readable file so CI can track the performance
trajectory PR over PR.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import time

from repro.core import certain_answers, certain_holds, naive_eval, naive_holds
from repro.core.analyzer import FIGURE_1
from repro.data.generate import (
    cores_graph_example,
    cycle,
    d0_example,
    disjoint_union,
    intro_example,
    random_instance,
)
from repro.data.instance import Instance
from repro.data.schema import Schema
from repro.data.values import Null
from repro.homs.core import core, is_core
from repro.homs.minimal import is_d_minimal
from repro.logic.generate import random_sentence
from repro.logic.parser import parse
from repro.logic.queries import Query
from repro.orders.codd import has_refinement_matching, hoare_leq, plotkin_leq
from repro.orders.semantic import leq_cwa, leq_owa, leq_pcwa
from repro.orders.updates import reachable
from repro.semantics import get_semantics

SCHEMA = Schema({"R": 2, "S": 1})
X, Y = Null("x"), Null("y")


def rule(char="─", width=78):
    print(char * width)


def heading(text):
    print()
    rule("═")
    print(text)
    rule("═")


def certain_kwargs(key):
    if key == "owa":
        return {"extra_facts": 1}
    if key == "wcwa":
        return {"extra_facts": 2}
    return {}


# ----------------------------------------------------------------------
# Figure 1
# ----------------------------------------------------------------------

def figure_1(n_queries: int, n_instances: int) -> list[dict]:
    heading("Figure 1 — naive evaluation per semantics (paper's summary table)")
    print(f"{'semantics':<22} {'fragment':<18} {'restriction':<12} {'agreement':>10} {'time':>8}")
    rule()
    rows: list[dict] = []
    for key in ("owa", "wcwa", "cwa", "pcwa", "mincwa", "minpcwa"):
        fragment, restriction, _ = FIGURE_1[key]
        sem = get_semantics(key)
        rng = random.Random(0xF1 + hash(key) % 1000)
        agreements = trials = 0
        start = time.perf_counter()
        for i in range(n_instances):
            instance = random_instance(
                SCHEMA, rng, n_facts=rng.randint(1, 3), constants=(1, 2), n_nulls=2
            )
            if restriction == "cores":
                instance = core(instance)
            for _ in range(n_queries):
                query = Query.boolean(random_sentence(SCHEMA, rng, fragment, max_depth=2))
                naive = naive_holds(query, instance)
                certain = certain_holds(query, instance, sem, **certain_kwargs(key))
                trials += 1
                agreements += naive == certain
        elapsed = time.perf_counter() - start
        print(
            f"{sem.notation:<22} {fragment:<18} {restriction or '—':<12} "
            f"{agreements:>4}/{trials:<5} {elapsed:>7.1f}s"
        )
        rows.append(
            {
                "semantics": key,
                "fragment": fragment,
                "agreements": agreements,
                "trials": trials,
                "seconds": round(elapsed, 4),
            }
        )
    return rows


def strictness() -> None:
    heading("Strictness — outside the fragment, naive evaluation fails")
    rows = [
        (
            "owa",
            "∀x∃y D(x,y)",
            Query.boolean(parse("forall x . exists y . D(x,y)")),
            d0_example(),
        ),
        (
            "wcwa",
            "∀x,y (D(x,y)→S(x))",
            Query.boolean(parse("forall x, y . D(x, y) -> S(x)")),
            Instance({"D": [(X, Y)], "S": [(X,)]}),
        ),
        (
            "cwa",
            "¬∃v D(v,v)",
            Query.boolean(parse("!(exists v . D(v, v))")),
            Instance({"D": [(X, Y)]}),
        ),
        (
            "pcwa",
            "∃w∀x,y (D(x,y)→D(x,w))",
            Query.boolean(parse("exists w . forall x, y . D(x, y) -> D(x, w)")),
            Instance({"D": [(X, Y)]}),
        ),
        (
            "mincwa",
            "∀v D(v,v) (off-core)",
            Query.boolean(parse("forall v . D(v, v)")),
            Instance({"D": [(X, X), (X, Y)]}),
        ),
        (
            "minpcwa",
            "∀v D(v,v) (off-core)",
            Query.boolean(parse("forall v . D(v, v)")),
            Instance({"D": [(X, X), (X, Y)]}),
        ),
    ]
    print(f"{'semantics':<10} {'query':<26} {'naive':>6} {'certain':>8} {'verdict':<10}")
    rule()
    for key, label, query, instance in rows:
        kwargs = certain_kwargs(key)
        if key in ("pcwa", "minpcwa"):
            kwargs = {"extra_facts": 4}
        naive = naive_holds(query, instance)
        certain = certain_holds(query, instance, get_semantics(key), **kwargs)
        verdict = "disagree ✓" if naive != certain else "agree ✗"
        print(f"{key:<10} {label:<26} {str(naive):>6} {str(certain):>8} {verdict:<10}")


# ----------------------------------------------------------------------
# worked examples
# ----------------------------------------------------------------------

def worked_examples() -> None:
    heading("Worked examples (Sections 1, 2.4, 10)")
    db = intro_example()
    join = Query(parse("exists z (R(x, z) & S(z, y))"), ("x", "y"))
    naive = naive_eval(join, db)
    print(f"E2-intro  π_AC(R⋈S) naive = {set(naive)}")
    for key in ("owa", "cwa", "mincwa"):
        got = certain_answers(join, db, get_semantics(key), **certain_kwargs(key))
        print(f"          certain under {get_semantics(key).notation:<14} = {set(got)}")

    d0 = d0_example()
    total = Query.boolean(parse("forall x . exists y . D(x,y)"))
    print(f"\nE2-D0     ∀x∃y D(x,y) on D0: naive = {naive_holds(total, d0)}")
    for key in ("owa", "wcwa", "cwa"):
        got = certain_holds(total, d0, get_semantics(key), **certain_kwargs(key))
        print(f"          certain under {get_semantics(key).notation:<14} = {got}")

    print("\nP10.1     C4+C6 → C3+C2 (both cores, h strong onto, h NOT minimal)")
    g, h_graph, hom = cores_graph_example()
    print(f"          G core: {is_core(g, fix_constants=False)}  "
          f"H core: {is_core(h_graph, fix_constants=False)}  "
          f"h minimal: {is_d_minimal(g, hom, mode='mapping')}")
    target = disjoint_union(cycle(3, ["a", "b", "c"]), cycle(2, ["d", "e"]))
    print(f"          C3ᶜ+C2ᶜ ∈ [[G]]_CWA: {get_semantics('cwa').contains(g, target)}   "
          f"∈ [[G]]^min_CWA: {get_semantics('mincwa').contains(g, target)}")

    sol = Instance({"D": [(X, X), (X, Y)]})
    q = Query.boolean(parse("forall v . D(v, v)"))
    print(f"\nC10.11    ∀v D(v,v) on {{(⊥,⊥),(⊥,⊥')}}: naive={naive_holds(q, sol)}, "
          f"certain^min={certain_holds(q, sol, get_semantics('mincwa'))}, "
          f"naive-on-core={naive_holds(q, core(sol))}")


# ----------------------------------------------------------------------
# orderings
# ----------------------------------------------------------------------

def orderings() -> None:
    heading("Orderings — update closures and Codd correspondences (Thm 6.2, 7.1)")
    naive_grid = [
        Instance({"R": [(X, Y)]}),
        Instance({"R": [(X, X)]}),
        Instance({"R": [(1, X)]}),
        Instance({"R": [(1, 2)]}),
        Instance({"R": [(1, 1), (2, 2)]}),
        Instance({"R": [(1, 2), (2, 1)]}),
    ]
    codd_grid = [
        Instance({"R": [(1, Null("a"))]}),
        Instance({"R": [(1, Null("b")), (2, Null("c"))]}),
        Instance({"R": [(1, 2)]}),
        Instance({"R": [(1, 2), (1, 3)]}),
        Instance({"R": [(Null("p"), Null("q"))]}),
    ]

    def sweep(grid, f, g):
        agree = total = 0
        for a in grid:
            for b in grid:
                total += 1
                agree += f(a, b) == g(a, b)
        return f"{agree}/{total}"

    print("Theorem 6.2  closure(CWA updates) = ≼_CWA:          ",
          sweep(naive_grid, lambda a, b: reachable(a, b, ("cwa",)), leq_cwa))
    print("Theorem 6.2  closure(CWA+OWA updates) = ≼_OWA:      ",
          sweep(naive_grid, lambda a, b: reachable(a, b, ("cwa", "owa")), leq_owa))
    print("Theorem 7.1  closure(CWA+copying updates) = ⋐_CWA:  ",
          sweep(naive_grid, lambda a, b: reachable(a, b, ("cwa", "copying")), leq_pcwa))
    print("Libkin'11    ≼_OWA = ⊑ᴴ on Codd:                    ",
          sweep(codd_grid, leq_owa, hoare_leq))
    print("Libkin'11    ≼_CWA = ⊑ᴾ + matching on Codd:         ",
          sweep(codd_grid, leq_cwa,
                lambda a, b: plotkin_leq(a, b) and has_refinement_matching(a, b)))
    print("Theorem 7.1  ⋐_CWA = ⊑ᴾ on Codd:                    ",
          sweep(codd_grid, leq_pcwa, plotkin_leq))


# ----------------------------------------------------------------------
# performance
# ----------------------------------------------------------------------

def performance() -> list[dict]:
    heading("PERF — naive evaluation vs certain-answer oracle (wall clock)")
    join = Query(parse("exists z (R(x, z) & R(z, y))"), ("x", "y"))
    print(f"{'n_facts':>8} {'n_nulls':>8} {'naive':>12} {'oracle(CWA)':>14} {'speedup':>9}")
    rule()
    rows: list[dict] = []
    for n_facts, n_nulls in ((4, 1), (4, 2), (6, 3), (8, 4), (10, 5)):
        rng = random.Random(1000 + n_facts * 10 + n_nulls)
        # resample until the instance really carries n_nulls distinct nulls,
        # so the oracle's |pool|^n valuation cost is the one reported
        while True:
            instance = random_instance(
                SCHEMA, rng, n_facts=n_facts, constants=(1, 2, 3, 4),
                n_nulls=n_nulls, null_probability=0.7,
            )
            if len(instance.nulls()) == n_nulls:
                break
        start = time.perf_counter()
        for _ in range(5):
            naive_eval(join, instance)
        naive_t = (time.perf_counter() - start) / 5
        start = time.perf_counter()
        certain_answers(join, instance, get_semantics("cwa"))
        oracle_t = time.perf_counter() - start
        print(
            f"{n_facts:>8} {len(instance.nulls()):>8} {naive_t * 1e6:>10.0f}µs "
            f"{oracle_t * 1e6:>12.0f}µs {oracle_t / max(naive_t, 1e-9):>8.0f}x"
        )
        rows.append(
            {
                "n_facts": n_facts,
                "n_nulls": n_nulls,
                "naive_us": round(naive_t * 1e6, 2),
                "oracle_cwa_us": round(oracle_t * 1e6, 2),
            }
        )
    return rows


def _timed(thunk) -> float:
    start = time.perf_counter()
    thunk()
    return time.perf_counter() - start


def _legacy_certain_cwa(query: Query, instance: Instance) -> frozenset:
    """The seed's oracle loop: materialise each valuation image as an
    :class:`Instance` and intersect interpreted evaluations — the
    'before' column of the engine comparison."""
    from repro.core.certain import default_pool, query_schema
    from repro.logic.eval import evaluate

    from repro.logic.eval import answers as interp_answers

    sem = get_semantics("cwa")
    pool = default_pool(instance, query)
    schema = instance.schema().union(query_schema(query))
    result = None
    for complete in sem.expand(instance, list(pool), schema=schema):
        if result is None:
            if query.is_boolean:
                result = (
                    frozenset([()]) if evaluate(query.formula, complete) else frozenset()
                )
            else:
                result = interp_answers(query.formula, complete, query.answer_vars)
        elif query.is_boolean:
            if not evaluate(query.formula, complete):
                result = frozenset()
        else:
            adom = complete.adom()
            result = frozenset(
                row
                for row in result
                if all(v in adom for v in row)
                and evaluate(query.formula, complete, dict(zip(query.answer_vars, row)))
            )
        if not result:
            break
    return result if result is not None else frozenset()


def engine_comparison(quick: bool) -> list[dict]:
    """PR 2's headline numbers: set-at-a-time compilation vs tree walking."""
    heading("ENGINE — compiled set-at-a-time vs tuple-at-a-time interpreter")
    join = Query(parse("exists z (R(x, z) & R(z, y))"), ("x", "y"))
    rows: list[dict] = []

    print("naive evaluation of the join query (best of 3):")
    print(f"{'n_facts':>8} {'adom':>6} {'interp':>12} {'compiled':>12} {'speedup':>9}")
    rule()
    sizes = (8, 16, 32) if quick else (8, 16, 32, 64, 128)
    for n_facts in sizes:
        rng = random.Random(99)
        instance = random_instance(
            SCHEMA, rng, n_facts=n_facts,
            constants=tuple(range(max(4, n_facts // 2))), n_nulls=3,
        )
        reps = 1 if n_facts > 32 else 3
        interp_t = min(
            _timed(lambda: naive_eval(join, instance, engine="interp"))
            for _ in range(reps)
        )
        compiled_t = min(
            _timed(lambda: naive_eval(join, instance, engine="compiled"))
            for _ in range(3)
        )
        assert naive_eval(join, instance, engine="interp") == naive_eval(
            join, instance, engine="compiled"
        )
        print(
            f"{n_facts:>8} {len(instance.adom()):>6} {interp_t * 1e3:>10.2f}ms "
            f"{compiled_t * 1e3:>10.3f}ms {interp_t / max(compiled_t, 1e-9):>8.0f}x"
        )
        rows.append(
            {
                "workload": "naive_join",
                "n_facts": n_facts,
                "interp_ms": round(interp_t * 1e3, 4),
                "compiled_ms": round(compiled_t * 1e3, 4),
            }
        )

    print("\nCWA certain answers (incremental worlds vs per-world instances):")
    print(
        f"{'n_facts':>8} {'nulls':>6} {'pool':>6} {'seed':>12} "
        f"{'incremental':>12} {'speedup':>9}"
    )
    rule()
    from repro.core.certain import default_pool

    cases = ((6, 3), (8, 4)) if quick else ((6, 3), (8, 4), (10, 5))
    for n_facts, n_nulls in cases:
        rng = random.Random(1000 + n_facts * 10 + n_nulls)
        while True:
            instance = random_instance(
                SCHEMA, rng, n_facts=n_facts, constants=(1, 2, 3, 4),
                n_nulls=n_nulls, null_probability=0.7,
            )
            if len(instance.nulls()) == n_nulls:
                break
        pool_size = len(default_pool(instance, join))
        legacy_t = _timed(lambda: _legacy_certain_cwa(join, instance))
        new_t = _timed(lambda: certain_answers(join, instance, get_semantics("cwa")))
        assert _legacy_certain_cwa(join, instance) == certain_answers(
            join, instance, get_semantics("cwa")
        )
        print(
            f"{n_facts:>8} {n_nulls:>6} {pool_size:>6} {legacy_t * 1e3:>10.1f}ms "
            f"{new_t * 1e3:>10.1f}ms {legacy_t / max(new_t, 1e-9):>8.0f}x"
        )
        rows.append(
            {
                "workload": "certain_cwa",
                "n_facts": n_facts,
                "n_nulls": n_nulls,
                "pool_size": pool_size,
                "legacy_ms": round(legacy_t * 1e3, 4),
                "incremental_ms": round(new_t * 1e3, 4),
            }
        )
    return rows


# ----------------------------------------------------------------------
# PR 10: the columnar dictionary-encoded executor
# ----------------------------------------------------------------------

def columnar(quick: bool) -> list[dict]:
    """PR 10's headline numbers: array kernels vs the compiled engine.

    The workload the columnar engine exists for: join keys are marked
    nulls (an anonymised fact table), so the compiled engine pays a
    Python-level ``Null.__hash__`` per probe and per materialised
    intermediate row, while the columnar engine runs int codes through
    sort-merge/``unique`` kernels and drops null answer rows by parity
    before decoding anything.
    """
    from repro.logic import kernels

    heading("COLUMNAR — dictionary-encoded kernels vs compiled cell tuples")
    rows: list[dict] = []

    print("many-to-many join, null join keys, projected output (best of 3):")
    print(f"{'n_rows':>8} {'nulls':>6} {'compiled':>12} {'columnar':>12} {'speedup':>9}")
    rule()
    join = Query(parse("exists y (R(x, z) & S(z, y))"), ("x", "z"))
    sizes = (512, 2048) if quick else (512, 2048, 8192)
    headline = 0.0
    for n in sizes:
        rng = random.Random(7)
        nulls = [Null(f"k{i}") for i in range(max(8, n // 64))]
        instance = Instance({
            "R": [(rng.randint(0, n), rng.choice(nulls)) for _ in range(n)],
            "S": [(rng.choice(nulls), rng.randint(0, n)) for _ in range(n)],
        })
        compiled_t = min(
            _timed(lambda: naive_eval(join, instance, engine="compiled"))
            for _ in range(3)
        )
        columnar_t = min(
            _timed(lambda: naive_eval(join, instance, engine="columnar"))
            for _ in range(3)
        )
        assert naive_eval(join, instance, engine="columnar") == naive_eval(
            join, instance, engine="compiled"
        )
        headline = compiled_t / max(columnar_t, 1e-9)
        print(
            f"{n:>8} {len(nulls):>6} {compiled_t * 1e3:>10.2f}ms "
            f"{columnar_t * 1e3:>10.3f}ms {headline:>8.1f}x"
        )
        rows.append(
            {
                "workload": "columnar_join",
                "n_rows": n,
                "compiled_ms": round(compiled_t * 1e3, 4),
                "columnar_ms": round(columnar_t * 1e3, 4),
            }
        )
    if not quick and kernels.numpy_enabled():
        # the PR's acceptance bar, enforced in-run like the serving one
        assert headline >= 5.0, f"columnar speedup {headline:.1f}x < 5x"

    print("\nsemi-join probe (null keys, small output, best of 3):")
    print(f"{'n_rows':>8} {'answers':>8} {'compiled':>12} {'columnar':>12} {'speedup':>9}")
    rule()
    probe = Query(parse("exists z (R(x, z) & S(z))"), ("x",))
    for n in ((16384,) if quick else (16384, 65536)):
        rng = random.Random(11)
        nulls = [Null(f"k{i}") for i in range(n)]
        instance = Instance({
            "R": [(rng.randint(0, n * 4), nulls[rng.randint(0, n - 1)]) for _ in range(n)],
            "S": [(nulls[rng.randint(0, n - 1)],) for _ in range(n // 64)],
        })
        compiled_t = min(
            _timed(lambda: naive_eval(probe, instance, engine="compiled"))
            for _ in range(3)
        )
        columnar_t = min(
            _timed(lambda: naive_eval(probe, instance, engine="columnar"))
            for _ in range(3)
        )
        answers = naive_eval(probe, instance, engine="columnar")
        assert answers == naive_eval(probe, instance, engine="compiled")
        print(
            f"{n:>8} {len(answers):>8} {compiled_t * 1e3:>10.2f}ms "
            f"{columnar_t * 1e3:>10.3f}ms {compiled_t / max(columnar_t, 1e-9):>8.1f}x"
        )
        rows.append(
            {
                "workload": "columnar_semi_join",
                "n_rows": n,
                "compiled_ms": round(compiled_t * 1e3, 4),
                "columnar_ms": round(columnar_t * 1e3, 4),
            }
        )
    return rows


# ----------------------------------------------------------------------
# PR 3: parallel/pruned oracle and the CSP homomorphism engine
# ----------------------------------------------------------------------

def _pr2_certain_cwa(query: Query, instance: Instance) -> frozenset:
    """PR 2's oracle loop, replicated as the 'before' column: orbit-canonical
    valuations over *all* nulls, shared static indexes, running-intersection
    early exit — but no plan-relevance restriction, no seed worlds, no
    residual probing, no sharding."""
    from repro.core.certain import _canonical_valuations, _pool_parts, query_schema
    from repro.data.indexes import TableContext
    from repro.data.values import Null, sort_key
    from repro.logic.compile import compiled_query

    base, fresh = _pool_parts(instance, query)
    pool = base + fresh
    cq = compiled_query(query)
    known = instance.constants() | set(query.constants())
    fresh_tail = tuple(v for v in pool if v not in known)
    nulls = sorted(instance.nulls(), key=sort_key)
    fresh_set = frozenset(fresh_tail)
    base_choices = [v for v in pool if v not in fresh_set]
    null_index = {n: i for i, n in enumerate(nulls)}
    static, templates, base_constants = {}, {}, set()
    for name in instance.relations:
        rows = instance.tuples(name)
        if any(isinstance(v, Null) for row in rows for v in row):
            templates[name] = [
                tuple((True, null_index[v]) if isinstance(v, Null) else (False, v) for v in row)
                for row in rows
            ]
            base_constants.update(v for row in rows for v in row if not isinstance(v, Null))
        else:
            static[name] = rows
            for row in rows:
                base_constants.update(row)
    base_ctx = TableContext(static) if static else None
    base_adom = frozenset(base_constants)
    dyn_names = sorted(templates)
    seen, result = set(), None
    for vals in _canonical_valuations(len(nulls), base_choices, fresh_tail):
        rels = {
            name: frozenset(
                tuple(vals[p] if is_null else p for is_null, p in spec) for spec in specs
            )
            for name, specs in templates.items()
        }
        key = tuple(rels[name] for name in dyn_names)
        if key in seen:
            continue
        seen.add(key)
        ctx = TableContext(rels, adom=base_adom | frozenset(vals), base=base_ctx)
        rows = cq.answers(ctx)
        result = rows if result is None else result & rows
        if not result:
            break
    result = result if result is not None else frozenset()
    if result and fresh_set:
        result = frozenset(row for row in result if fresh_set.isdisjoint(row))
    return result


def oracle_parallel(quick: bool) -> list[dict]:
    """PR 3's oracle numbers: plan-relevant pruning + residual probing +
    optional world sharding, against the PR 2 incremental enumerator."""
    heading("ORACLE — pruned/sharded world enumeration vs PR 2 incremental")
    from repro.core import certain_answers

    join = Query(parse("exists z (R(x, z) & R(z, y))"), ("x", "y"))
    sem = get_semantics("cwa")
    print(
        f"{'n_facts':>8} {'nulls':>6} {'pr2':>12} {'serial':>12} "
        f"{'4 workers':>12} {'speedup':>9}"
    )
    rule()
    rows: list[dict] = []
    cases = ((8, 4), (10, 5)) if quick else ((6, 3), (8, 4), (10, 5), (12, 6))
    for n_facts, n_nulls in cases:
        rng = random.Random(1000 + n_facts * 10 + n_nulls)
        while True:
            instance = random_instance(
                SCHEMA, rng, n_facts=n_facts, constants=(1, 2, 3, 4),
                n_nulls=n_nulls, null_probability=0.7,
            )
            if len(instance.nulls()) == n_nulls:
                break
        assert _pr2_certain_cwa(join, instance) == certain_answers(join, instance, sem)
        pr2_t = min(_timed(lambda: _pr2_certain_cwa(join, instance)) for _ in range(3))
        serial_t = min(
            _timed(lambda: certain_answers(join, instance, sem)) for _ in range(3)
        )
        stats: dict = {}
        workers_t = min(
            _timed(lambda: certain_answers(join, instance, sem, workers=4, stats_out=stats))
            for _ in range(3)
        )
        best = min(serial_t, workers_t)
        print(
            f"{n_facts:>8} {n_nulls:>6} {pr2_t * 1e3:>10.1f}ms {serial_t * 1e3:>10.1f}ms "
            f"{workers_t * 1e3:>10.1f}ms {pr2_t / max(best, 1e-9):>8.1f}x"
        )
        rows.append(
            {
                "workload": "oracle_cwa_pr3",
                "n_facts": n_facts,
                "n_nulls": n_nulls,
                "pr2_ms": round(pr2_t * 1e3, 4),
                "serial_ms": round(serial_t * 1e3, 4),
                "workers4_ms": round(workers_t * 1e3, 4),
                "oracle_mode": stats.get("mode"),
            }
        )
    return rows


def _seed_backtracker(source, target, fix_constants=True):
    """The seed repo's homomorphism search, replicated as the 'before'
    column: facts ordered by target relation size, candidates re-sorted at
    every node, no candidate tables, no forward checking."""
    from repro.data.values import Null, sort_key

    facts = list(source.facts())
    facts.sort(key=lambda f: (len(target.tuples(f[0])), f[0], tuple(map(sort_key, f[1]))))

    def extend(index, assignment):
        if index == len(facts):
            yield dict(assignment)
            return
        name, row = facts[index]
        for candidate in sorted(target.tuples(name), key=lambda t: tuple(map(sort_key, t))):
            extension = {}
            ok = True
            for value, image in zip(row, candidate):
                if fix_constants and not isinstance(value, Null) and value != image:
                    ok = False
                    break
                bound = assignment.get(value, extension.get(value))
                if bound is None:
                    extension[value] = image
                elif bound != image:
                    ok = False
                    break
            if not ok:
                continue
            assignment.update(extension)
            yield from extend(index + 1, assignment)
            for k in extension:
                del assignment[k]

    if not source.adom():
        yield {}
        return
    yield from extend(0, {})


def hom_engine_comparison(quick: bool) -> list[dict]:
    """PR 3's homomorphism numbers: CSP candidate tables + forward checking
    against the seed backtracker."""
    heading("HOMS — CSP engine (candidate tables + forward checking) vs legacy")
    from repro.data.values import Null
    from repro.homs.engine import clear_candidate_cache
    from repro.homs.search import has_homomorphism, iter_homomorphisms

    rng = random.Random(0x7053)
    X = [Null(f"x{i}") for i in range(10)]

    big_target = random_instance(
        SCHEMA, rng, n_facts=150 if quick else 600,
        constants=tuple(range(40)), n_nulls=0,
    )
    pattern = Instance({
        "R": [(X[0], X[1]), (X[1], X[2]), (X[2], X[3]), (X[3], 5),
              (X[4], X[5]), (X[5], X[0])],
        "S": [(X[0],), (X[3],)],
    })

    def bipartite(n):
        rows = []
        for a in range(n):
            for b in range(n):
                rows.append((f"l{a}", f"r{b}"))
                rows.append((f"r{b}", f"l{a}"))
        return Instance({"E": rows})

    c7 = cycle(7, values=[Null(f"c{i}") for i in range(7)])
    k_bip = bipartite(3 if quick else 4)

    p5 = Instance({"E": [(Null(f"p{i}"), Null(f"p{i+1}")) for i in range(5)]})
    graph = random_instance(
        Schema({"E": 2}), rng, n_facts=40 if quick else 120,
        constants=tuple(range(18)), n_nulls=0,
    )

    workloads = [
        ("find: pattern+constants → big target", pattern, big_target, True, "has"),
        ("refute: C7 → bipartite (no hom)", c7, k_bip, False, "has"),
        ("enumerate: all homs P5 → graph", p5, graph, False, "count"),
    ]
    print(f"{'workload':<40} {'legacy':>12} {'csp':>12} {'speedup':>9}")
    rule()
    rows: list[dict] = []
    for label, src, tgt, fix, mode in workloads:
        def run_seed():
            if mode == "has":
                return next(iter(_seed_backtracker(src, tgt, fix)), None) is not None
            return sum(1 for _ in _seed_backtracker(src, tgt, fix))

        def run_csp():
            clear_candidate_cache()
            if mode == "has":
                return has_homomorphism(src, tgt, fix_constants=fix, engine="csp")
            return sum(1 for _ in iter_homomorphisms(src, tgt, fix_constants=fix, engine="csp"))

        assert run_seed() == run_csp()
        seed_t = min(_timed(run_seed) for _ in range(3))
        csp_t = min(_timed(run_csp) for _ in range(3))
        print(
            f"{label:<40} {seed_t * 1e3:>10.1f}ms {csp_t * 1e3:>10.2f}ms "
            f"{seed_t / max(csp_t, 1e-9):>8.1f}x"
        )
        rows.append(
            {
                "workload": "homs",
                "case": label,
                "legacy_ms": round(seed_t * 1e3, 4),
                "csp_ms": round(csp_t * 1e3, 4),
            }
        )
    return rows


# ----------------------------------------------------------------------
# PR 4: the serving layer — incremental mutation + result cache
# ----------------------------------------------------------------------

def serving(quick: bool) -> list[dict]:
    """PR 4's serving numbers: incremental mutation with the generation-keyed
    result cache against full re-ingest, plus request latency through the
    JSON service."""
    heading("SERVING — incremental mutation + result cache vs full re-ingest")
    from repro.server import QueryService
    from repro.session import Database

    rng = random.Random(0x5E44)
    # a 128-fact instance: 96 R-edges over 24 constants (+2 nulls), 32 S rows
    r_rows = list({
        (rng.randrange(24), rng.randrange(24)) for _ in range(200)
    })[:94] + [(0, Null("a")), (Null("a"), Null("b"))]
    s_rows = [(i,) for i in range(128 - len(r_rows))]
    base = {"R": r_rows, "S": s_rows}
    join_text = "exists z (R(x, z) & R(z, y))"
    n_facts = len(r_rows) + len(s_rows)

    # A. write-then-requery, writes touching a relation the query does not
    # read: the incremental session patches indexes and serves the cached
    # result; the re-ingest baseline rebuilds Database/instance/plan/indexes
    n_inc = 100 if quick else 400
    n_re = 20 if quick else 60
    db = Database({k: list(v) for k, v in base.items()})
    q = db.query(join_text, vars=("x", "y"))
    want = q.evaluate().answers
    start = time.perf_counter()
    for i in range(n_inc):
        db.insert("S", (1000 + i,))
        assert q.evaluate().answers == want
    incremental_t = (time.perf_counter() - start) / n_inc
    hit_rate = db.cache_stats["hits"] / max(
        1, db.cache_stats["hits"] + db.cache_stats["misses"]
    )

    grown_s = list(s_rows)
    start = time.perf_counter()
    for i in range(n_re):
        grown_s.append((1000 + i,))
        fresh = Database({"R": list(r_rows), "S": list(grown_s)})
        got = fresh.query(join_text, vars=("x", "y")).evaluate().answers
    reingest_t = (time.perf_counter() - start) / n_re
    assert got == want
    speedup = reingest_t / max(incremental_t, 1e-9)
    # the acceptance bar: incremental mutation beats full re-ingest ≥5×
    assert speedup >= 5, f"incremental speedup {speedup:.1f}× below the 5× bar"
    print(
        f"{'write+requery':<28} {'re-ingest':>12} {'incremental':>12} "
        f"{'speedup':>9} {'hit rate':>9}"
    )
    rule()
    print(
        f"{f'{n_facts} facts, unrelated write':<28} {reingest_t * 1e3:>10.2f}ms "
        f"{incremental_t * 1e3:>10.3f}ms {speedup:>8.0f}x {hit_rate * 100:>8.1f}%"
    )
    rows = [
        {
            "workload": "serving_requery",
            "n_facts": n_facts,
            "reingest_ms": round(reingest_t * 1e3, 4),
            "incremental_ms": round(incremental_t * 1e3, 4),
            "cache_hit_rate": round(hit_rate, 4),
        }
    ]

    # B. request latency through the JSON service: a deterministic mix of
    # reads (3 prepared texts) and single-fact writes on the S relation
    texts = [
        join_text,
        "exists z (R(x, z) & S(z))",
        "exists x, y (R(x, y) & R(y, x))",
    ]
    service = QueryService(Database({k: list(v) for k, v in base.items()}))
    n_requests = 200 if quick else 600
    latencies: list[float] = []
    stream_rng = random.Random(0xAB)
    start = time.perf_counter()
    for i in range(n_requests):
        if stream_rng.random() < 0.15:
            request = {"op": "insert", "relation": "S", "rows": [[2000 + i]]}
        else:
            request = {
                "op": "query",
                "query": texts[stream_rng.randrange(len(texts))],
            }
        t0 = time.perf_counter()
        response = service.handle(request)
        latencies.append(time.perf_counter() - t0)
        assert response["ok"], response
    total_t = time.perf_counter() - start
    latencies.sort()
    p50 = latencies[len(latencies) // 2]
    p95 = latencies[int(len(latencies) * 0.95)]

    n_mut = 200 if quick else 1000
    mut_db = Database({k: list(v) for k, v in base.items()})
    start = time.perf_counter()
    for i in range(n_mut):
        mut_db.insert("S", (5000 + i,))
    mutation_t = (time.perf_counter() - start) / n_mut

    print(f"\n{'request stream':<28} {'p50':>10} {'p95':>10} {'req/s':>10} {'mut/s':>10}")
    rule()
    print(
        f"{f'{n_requests} reqs, 15% writes':<28} {p50 * 1e3:>8.3f}ms {p95 * 1e3:>8.3f}ms "
        f"{n_requests / total_t:>10.0f} {1 / mutation_t:>10.0f}"
    )
    rows.append(
        {
            "workload": "serving_requests",
            "n_requests": n_requests,
            "p50_ms": round(p50 * 1e3, 4),
            "p95_ms": round(p95 * 1e3, 4),
            "mutation_us": round(mutation_t * 1e6, 2),
        }
    )
    return rows


# ----------------------------------------------------------------------
# PR 5: durable serving — WAL mutation cost and recovery vs log length
# ----------------------------------------------------------------------

def serving_durable(quick: bool) -> list[dict]:
    """PR 5's durability numbers: what fsync costs per acknowledged write,
    and how recovery time scales with WAL length (the case for compaction).
    The WAL is replayed as a deterministic workload trace, so the recovery
    rows measure exactly the mutation stream the previous column wrote."""
    heading("DURABLE — fsync'd WAL writes and recovery vs log length")
    import shutil
    import tempfile
    from pathlib import Path

    from repro.session import Database

    rows: list[dict] = []

    # A. mutation throughput: the same insert stream against a durable
    # session with fsync, a durable session without, and memory-only —
    # pricing the journal encoding and the fsync separately
    n_mut = 150 if quick else 500
    per: dict[str, float] = {}
    for label, durable, fsync in (
        ("fsync", True, True), ("nofsync", True, False), ("memory", False, True),
    ):
        root = Path(tempfile.mkdtemp(prefix="repro-durable-"))
        db = Database(
            path=str(root / "data") if durable else None,
            fsync=fsync,
            wal_max_bytes=1 << 30,  # no compaction mid-measurement
        )
        start = time.perf_counter()
        for i in range(n_mut):
            db.insert("S", (10_000 + i,))
        per[label] = (time.perf_counter() - start) / n_mut
        db.close()
        shutil.rmtree(root, ignore_errors=True)
    print(f"{'mutation stream':<28} {'fsync on':>12} {'fsync off':>12} {'memory':>12}")
    rule()
    print(
        f"{f'{n_mut} single-fact inserts':<28} {per['fsync'] * 1e6:>10.0f}µs "
        f"{per['nofsync'] * 1e6:>10.0f}µs {per['memory'] * 1e6:>10.0f}µs"
    )
    rows.append(
        {
            "workload": "durable_mutation",
            "n_mutations": n_mut,
            "fsync_us": round(per["fsync"] * 1e6, 2),
            "nofsync_us": round(per["nofsync"] * 1e6, 2),
            "memory_us": round(per["memory"] * 1e6, 2),
        }
    )

    # B. recovery time vs log length, and the same state after checkpoint:
    # WAL-tail replay is linear in the log, snapshot load is flat
    print(f"\n{'recovery':<28} {'wal replay':>12} {'snapshot':>12} {'facts':>8}")
    rule()
    lengths = (100, 400) if quick else (100, 1000, 4000)
    for n_records in lengths:
        root = Path(tempfile.mkdtemp(prefix="repro-durable-"))
        db = Database(path=str(root / "data"), fsync=False, wal_max_bytes=1 << 30)
        for i in range(n_records):
            db.insert("R", (i, i + 1))
        n_facts = db.instance.fact_count()
        db.close()
        replay_t = _timed(lambda: Database(path=str(root / "data"), fsync=False).close())
        compact = Database(path=str(root / "data"), fsync=False)
        compact.checkpoint()
        compact.close()
        snapshot_t = _timed(lambda: Database(path=str(root / "data"), fsync=False).close())
        shutil.rmtree(root, ignore_errors=True)
        print(
            f"{f'{n_records} WAL records':<28} {replay_t * 1e3:>10.1f}ms "
            f"{snapshot_t * 1e3:>10.1f}ms {n_facts:>8}"
        )
        rows.append(
            {
                "workload": "durable_recovery",
                "wal_records": n_records,
                "replay_ms": round(replay_t * 1e3, 4),
                "snapshot_ms": round(snapshot_t * 1e3, 4),
            }
        )
    return rows


# ----------------------------------------------------------------------
# PR 6: log-shipping replication — read scaling, steady lag, catch-up
# ----------------------------------------------------------------------

def _read_worker(address: tuple, n: int) -> float:
    """Hammer one served node with ``n`` reads over one connection.

    Module-level so :class:`~concurrent.futures.ProcessPoolExecutor` can
    pickle it — readers must be separate *processes*: in-process client
    threads would share the harness's GIL and cap the measured
    throughput well below what the server processes can actually serve.
    """
    import socket

    sock = socket.create_connection(tuple(address), timeout=60)
    reader = sock.makefile("r", encoding="utf-8")
    writer = sock.makefile("w", encoding="utf-8")
    request = json.dumps(
        {"op": "query", "query": "exists z (R(x, z) & R(z, y))", "vars": ["x", "y"]}
    ) + "\n"
    start = time.perf_counter()
    for _ in range(n):
        writer.write(request)
        writer.flush()
        response = json.loads(reader.readline())
        assert response.get("ok"), response
    elapsed = time.perf_counter() - start
    sock.close()
    return elapsed


def replication(quick: bool) -> list[dict]:
    """PR 6's replication numbers, all against real ``repro serve``
    subprocesses over TCP: read throughput scaling across 1→4 replicas,
    steady-state ack-to-replica lag (the wall time from a primary-
    acknowledged write to a ``min_generation`` read landing on a
    replica), and catch-up time after a multi-thousand-record backlog."""
    heading("REPLICATION — log-shipping read replicas over the WAL")
    import os
    import shutil
    import signal
    import socket
    import subprocess
    import tempfile
    from concurrent.futures import ProcessPoolExecutor
    from pathlib import Path

    src = Path(__file__).resolve().parent.parent / "src"
    env = {**os.environ, "PYTHONPATH": str(src)}
    root = Path(tempfile.mkdtemp(prefix="repro-replication-"))
    procs: list[subprocess.Popen] = []

    def spawn(*args) -> tuple[subprocess.Popen, tuple[str, int]]:
        proc = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro", "serve", "--port", "0", *args],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
        )
        procs.append(proc)
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            line = proc.stdout.readline()
            if not line:
                raise RuntimeError(f"repro serve died during startup (rc={proc.poll()})")
            if "listening on" in line:
                host, port = line.strip().rsplit(" ", 1)[-1].rsplit(":", 1)
                return proc, (host, int(port))
        raise RuntimeError("repro serve did not announce its address in time")

    class Client:
        def __init__(self, address):
            self.sock = socket.create_connection(address, timeout=60)
            self.reader = self.sock.makefile("r", encoding="utf-8")
            self.writer = self.sock.makefile("w", encoding="utf-8")

        def call(self, **request) -> dict:
            self.writer.write(json.dumps(request) + "\n")
            self.writer.flush()
            response = json.loads(self.reader.readline())
            assert response.get("ok"), response
            return response

        def close(self):
            self.sock.close()

    rows: list[dict] = []
    try:
        # the primary is memory-only: the feed's in-memory ring, not the
        # disk, carries the stream — replicas are durable so the catch-up
        # column below can resume from a killed replica's own position
        _primary_proc, primary = spawn()
        primary_hostport = f"{primary[0]}:{primary[1]}"
        writer = Client(primary)
        rng = random.Random(0x5EED)
        r_rows = list({(rng.randrange(24), rng.randrange(24)) for _ in range(200)})[:96]
        writer.call(op="insert", relation="R", rows=[list(row) for row in r_rows])
        generation = writer.call(op="stats")["generation"]

        replicas = [
            spawn("--replica-of", primary_hostport, "--data-dir", str(root / f"replica{i}"))
            for i in range(4)
        ]
        for _proc, address in replicas:
            Client(address).call(
                op="query", query="exists x, y (R(x, y))",
                min_generation=generation, wait_timeout_s=60,
            )

        # A. read throughput scaling: the same total read volume served by
        # 1, 2, then 4 replica processes, one reader process per replica slot
        n_reads = 400 if quick else 2000
        n_clients = 4
        print(f"{'read scaling':<28} {'replicas':>9} {'reads':>8} {'per read':>10} {'reads/s':>9}")
        rule()
        for n_replicas in (1, 2, 4):
            addresses = [replicas[i % n_replicas][1] for i in range(n_clients)]
            with ProcessPoolExecutor(max_workers=n_clients) as pool:
                start = time.perf_counter()
                futures = [
                    pool.submit(_read_worker, address, n_reads // n_clients)
                    for address in addresses
                ]
                for future in futures:
                    future.result()
                elapsed = time.perf_counter() - start
            print(
                f"{f'{n_clients} reader procs':<28} {n_replicas:>9} {n_reads:>8} "
                f"{elapsed / n_reads * 1e6:>8.0f}µs {n_reads / elapsed:>9.0f}"
            )
            rows.append(
                {
                    "workload": "replica_read_scaling",
                    "n_replicas": n_replicas,
                    "n_reads": n_reads,
                    "per_read_us": round(elapsed / n_reads * 1e6, 2),
                }
            )

        # B. steady-state lag: after each primary-acknowledged write, a
        # min_generation read on a replica measures ack-to-visible wall time
        n_writes = 50 if quick else 200
        reader = Client(replicas[0][1])
        latencies = []
        for i in range(n_writes):
            writer.call(op="insert", relation="S", rows=[[50_000 + i]])
            generation += 1
            t0 = time.perf_counter()
            reader.call(
                op="query", query="exists x (S(x))",
                min_generation=generation, wait_timeout_s=60,
            )
            latencies.append(time.perf_counter() - t0)
        latencies.sort()
        p50 = latencies[len(latencies) // 2]
        p95 = latencies[int(len(latencies) * 0.95)]
        print(f"\n{'steady-state lag':<28} {'writes':>8} {'p50':>10} {'p95':>10}")
        rule()
        print(
            f"{'ack → replica-visible':<28} {n_writes:>8} "
            f"{p50 * 1e3:>8.2f}ms {p95 * 1e3:>8.2f}ms"
        )
        rows.append(
            {
                "workload": "replica_steady_lag",
                "n_writes": n_writes,
                "ack_to_replica_p50_ms": round(p50 * 1e3, 4),
                "ack_to_replica_p95_ms": round(p95 * 1e3, 4),
            }
        )
        reader.close()

        # C. catch-up: SIGKILL a replica, build a backlog on the primary,
        # restart the replica from its durable position, time convergence
        backlog = 800 if quick else 4000
        victim_proc, _victim_address = replicas[3]
        os.kill(victim_proc.pid, signal.SIGKILL)
        victim_proc.wait(timeout=30)
        for i in range(backlog):
            writer.call(op="insert", relation="T", rows=[[i, i]])
        generation += backlog
        start = time.perf_counter()
        _proc, address = spawn(
            "--replica-of", primary_hostport, "--data-dir", str(root / "replica3")
        )
        Client(address).call(
            op="query", query="exists x, y (T(x, y))",
            min_generation=generation, wait_timeout_s=300,
        )
        catchup = time.perf_counter() - start
        print(f"\n{'catch-up':<28} {'backlog':>8} {'time':>10} {'records/s':>10}")
        rule()
        print(
            f"{'restart after SIGKILL':<28} {backlog:>8} "
            f"{catchup:>9.2f}s {backlog / catchup:>10.0f}"
        )
        rows.append(
            {
                "workload": "replica_catchup",
                "backlog_records": backlog,
                "catchup_seconds": round(catchup, 4),
            }
        )
        writer.close()
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
        for proc in procs:
            proc.wait(timeout=30)
        shutil.rmtree(root, ignore_errors=True)
    return rows


# ----------------------------------------------------------------------
# PR 9: the asyncio serving core — QoS under connection load
# ----------------------------------------------------------------------

def _percentiles(latencies: list[float]) -> tuple[float, float, float]:
    latencies = sorted(latencies)
    return (
        latencies[len(latencies) // 2],
        latencies[int(len(latencies) * 0.95)],
        latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))],
    )


def _qos_stream(address, n_conns: int, per_conn: int, rate: float) -> tuple:
    """Open ``n_conns`` long-lived connections, then offer a fixed
    ``rate`` requests/second of mixed traffic (85% cached reads, 15%
    single-fact inserts) spread across all of them with jittered
    per-connection think time.

    Holding the *offered load* constant while the connection count
    climbs is the point: the measured latency then prices what carrying
    idle-ish connections costs the serving core, not the unbounded
    queueing a closed loop would manufacture on one CPU.

    Returns ``(per-request latencies, connection-setup seconds)``.
    """
    import asyncio

    texts = [
        "exists z (R(x, z) & R(z, y))",
        "exists x, y (R(x, y) & R(y, x))",
        "exists x (R(x, 3))",
    ]

    async def drive():
        gate = asyncio.Semaphore(100)  # connect burst stays under the backlog
        latencies: list[float] = []

        async def open_conn():
            async with gate:
                last: OSError | None = None
                for attempt in range(5):
                    try:
                        return await asyncio.open_connection(*address)
                    except OSError as err:
                        last = err
                        await asyncio.sleep(0.05 * (attempt + 1))
                raise last

        start = time.perf_counter()
        conns = await asyncio.gather(*(open_conn() for _ in range(n_conns)))
        connect_s = time.perf_counter() - start
        interval = n_conns / rate  # mean think time ⇒ n_conns/interval ≈ rate

        async def run(i, reader, writer):
            local = random.Random(0x905 + i)
            await asyncio.sleep(local.uniform(0, interval))  # desynchronise
            for k in range(per_conn):
                if local.random() < 0.15:
                    request = {"op": "insert", "relation": "S",
                               "rows": [[i * 10_000 + k]]}
                else:
                    request = {"op": "query",
                               "query": texts[local.randrange(len(texts))]}
                data = (json.dumps(request) + "\n").encode("utf-8")
                t0 = time.perf_counter()
                writer.write(data)
                await writer.drain()
                line = await reader.readline()
                latencies.append(time.perf_counter() - t0)
                response = json.loads(line)
                assert response.get("ok"), response
                await asyncio.sleep(local.uniform(0.5, 1.5) * interval)

        await asyncio.gather(*(run(i, r, w) for i, (r, w) in enumerate(conns)))
        for _reader, writer in conns:
            writer.close()
        return latencies, connect_s

    return asyncio.run(drive())


def qos(quick: bool) -> list[dict]:
    """PR 9's QoS numbers: request latency through the asyncio core as the
    connection count climbs past anything a thread-per-connection server
    can hold, against the threaded shim at its comfortable 64 connections
    — plus a deterministic proof that overload is answered with typed
    ``overloaded`` frames, never a hang or a dropped connection.

    The load generator shares this process with the servers, so CPython's
    cycle collector is paused for the latency sweep: a generator-side GC
    pause freezing 5000 client coroutines would be billed to the server
    under test.  (Server-side GC cost is real and documented in
    ``docs/serving.md`` — soak it with ``benchmarks/qos_soak.py``, where
    the server is a separate process with default GC.)"""
    heading("QOS — async core at 100/1k/5k connections vs threaded at 64")
    import gc

    from repro.server import FEATURES, AsyncServer, QueryService, serve
    from repro.session import Database

    rng = random.Random(0x905)
    r_rows = list({(rng.randrange(24), rng.randrange(24)) for _ in range(200)})[:96]
    rows: list[dict] = []
    rate = 200.0 if quick else 400.0  # offered req/s, identical for every row

    print(f"{'core':<12} {'conns':>7} {'reqs':>7} {'p50':>9} {'p95':>9} "
          f"{'p99':>9} {'conn setup':>11}")
    rule()

    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        # the baseline: the threaded shim at its one-thread-per-conn scale
        base_per_conn = 10 if quick else 30
        with serve(Database({"R": list(r_rows)}), max_threads=64) as server:
            latencies, connect_s = _qos_stream(server.address, 64, base_per_conn, rate)
        threaded_p50, threaded_p95, threaded_p99 = _percentiles(latencies)
        print(f"{'threaded':<12} {64:>7} {len(latencies):>7} {threaded_p50 * 1e3:>7.2f}ms "
              f"{threaded_p95 * 1e3:>7.2f}ms {threaded_p99 * 1e3:>7.2f}ms {connect_s:>10.2f}s")
        rows.append(
            {
                "workload": "qos_latency",
                "core": "threaded",
                "n_conns": 64,
                "n_requests": len(latencies),
                "p50_ms": round(threaded_p50 * 1e3, 4),
                "p95_ms": round(threaded_p95 * 1e3, 4),
                "p99_ms": round(threaded_p99 * 1e3, 4),
            }
        )

        sweeps = ((50, 8), (200, 6)) if quick else ((100, 8), (1000, 4), (5000, 3))
        for n_conns, per_conn in sweeps:
            service = QueryService(Database({"R": list(r_rows)}), features=FEATURES)
            server = AsyncServer(
                service, max_inflight=128, max_conns=n_conns + 16
            ).start()
            try:
                latencies, connect_s = _qos_stream(server.address, n_conns, per_conn, rate)
            finally:
                server.shutdown()
            p50, p95, p99 = _percentiles(latencies)
            print(f"{'async':<12} {n_conns:>7} {len(latencies):>7} {p50 * 1e3:>7.2f}ms "
                  f"{p95 * 1e3:>7.2f}ms {p99 * 1e3:>7.2f}ms {connect_s:>10.2f}s")
            # the acceptance bar: holding 1000 connections — ~15× past
            # where the threaded core stops accepting — must not cost more
            # than 2× its tail latency at the 64-conn comfort point
            if n_conns == 1000:
                assert p99 <= 2 * threaded_p99, (
                    f"async p99 {p99 * 1e3:.2f}ms at {n_conns} conns exceeds 2× "
                    f"threaded p99 {threaded_p99 * 1e3:.2f}ms"
                )
            rows.append(
                {
                    "workload": "qos_latency",
                    "core": "async",
                    "n_conns": n_conns,
                    "n_requests": len(latencies),
                    "p50_ms": round(p50 * 1e3, 4),
                    "p95_ms": round(p95 * 1e3, 4),
                    "p99_ms": round(p99 * 1e3, 4),
                }
            )
    finally:
        if gc_was_enabled:
            gc.enable()
        gc.collect()

    # deterministic overload shed: one admission slot, eight pipelined
    # slot-holding queries — exactly seven typed overloaded frames, all
    # eight answered, nothing hung, nothing dropped
    import socket as socket_mod

    service = QueryService(Database({"R": [(1, 2)]}), features=FEATURES)
    server = AsyncServer(service, max_inflight=1).start()
    try:
        sock = socket_mod.create_connection(server.address, timeout=30)
        reader = sock.makefile("r", encoding="utf-8")
        n_sent = 8
        for i in range(n_sent):
            frame = json.dumps({
                "id": i, "op": "query", "query": "R(x, y)",
                "min_generation": 99, "wait_timeout_s": 0.2,
            }) + "\n"
            sock.sendall(frame.encode("utf-8"))
        answers = [json.loads(reader.readline()) for _ in range(n_sent)]
        sock.close()
    finally:
        server.shutdown()
    shed = sum(1 for a in answers if a.get("error_type") == "overloaded")
    assert shed == n_sent - 1, f"expected {n_sent - 1} sheds, saw {shed}"
    assert {a["id"] for a in answers} == set(range(n_sent))  # every one answered
    print(f"\n{'overload shed':<28} {n_sent} pipelined vs 1 slot → "
          f"{shed} typed overloaded frames, {n_sent} answered, 0 dropped")
    rows.append(
        {
            "workload": "qos_overload_shed",
            "max_inflight": 1,
            "sent": n_sent,
            "shed": shed,
            "answered": len(answers),
        }
    )
    return rows


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="fewer trials")
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the measured numbers to PATH as JSON (perf tracking)",
    )
    args = parser.parse_args()
    n_queries = 3 if args.quick else 6
    n_instances = 3 if args.quick else 5

    print("Reproduction harness — Gheerbrant, Libkin & Sirangelo, PODS 2013")
    figure1_rows = figure_1(n_queries, n_instances)
    strictness()
    worked_examples()
    orderings()
    perf_rows = performance()
    engine_rows = engine_comparison(args.quick)
    columnar_rows = columnar(args.quick)
    oracle_rows = oracle_parallel(args.quick)
    hom_rows = hom_engine_comparison(args.quick)
    serving_rows = serving(args.quick)
    durable_rows = serving_durable(args.quick)
    replication_rows = replication(args.quick)
    qos_rows = qos(args.quick)
    if args.json:
        payload = {
            "meta": {
                "python": platform.python_version(),
                "machine": platform.machine(),
                "quick": args.quick,
            },
            "figure1": figure1_rows,
            "performance": perf_rows,
            "engine": engine_rows,
            "columnar": columnar_rows,
            "oracle_parallel": oracle_rows,
            "homs": hom_rows,
            "serving": serving_rows,
            "serving_durable": durable_rows,
            "replication": replication_rows,
            "qos": qos_rows,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"\nNumbers written to {args.json}")
    print("\nAll experiment tables regenerated.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
