"""The self-healing client: deadlines, retries, failover, honest writes.

The acceptance scenario rides at the bottom: reads keep succeeding
through a primary kill plus replica failover without the caller ever
seeing a transport error, and an indeterminate mutation retried by the
caller never double-applies (verified via generation counters).
"""

import time

import pytest

from repro import faults
from repro.client import (
    Client,
    DeadlineExceeded,
    DegradedServerError,
    IndeterminateWriteError,
    ReadOnlyServerError,
    ServerError,
    TransportError,
)
from repro.server import serve
from repro.session import Database


def wait_until(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def address_of(server) -> str:
    return f"{server.address[0]}:{server.address[1]}"


@pytest.fixture(autouse=True)
def clean_global_failpoints():
    yield
    faults.install(None)


class TestBasics:
    def test_roundtrip_and_read_your_writes(self):
        with serve(Database({"R": [(1, 2)]})) as server:
            with Client(server.address) as client:
                assert client.query("R(x, y)")["answers"] == [[1, 2]]
                ack = client.insert("R", [[3, 4]])
                assert ack["changed"] == 1
                assert client.last_write_generation == ack["generation"]
                # the read floor is stamped automatically: this query
                # carries min_generation = the write's generation
                answers = client.query("R(x, y)")["answers"]
                assert {tuple(row) for row in answers} == {(1, 2), (3, 4)}

    def test_typed_server_error_passthrough(self):
        with serve(Database()) as server:
            with Client(server.address) as client:
                with pytest.raises(ServerError) as err:
                    client.query("R(x,")  # parse error: untyped server error
                assert err.value.error_type is None

    def test_degraded_error_is_typed_and_carries_health(self, tmp_path):
        db = Database(path=str(tmp_path), faults="wal.fsync=once:eio")
        with serve(db) as server:
            with Client(server.address) as client:
                with pytest.raises(DegradedServerError) as err:
                    client.insert("R", [[1, 2]])
                assert err.value.fields["health"]["state"] == "degraded"
                # reads keep working against the degraded node
                assert client.query("R(x, y)", min_generation=0)["ok"]
                # checkpoint heals it, writes flow again
                assert client.checkpoint()["ok"]
                assert client.health()["state"] == "ok"
                assert client.insert("R", [[3, 4]])["changed"] == 1
        db.close()

    def test_unreachable_endpoint_raises_transport_error(self):
        client = Client(
            "127.0.0.1:9", timeout=1.0, connect_timeout=0.2, retries=1
        )
        with pytest.raises(TransportError):
            client.ping()
        client.close()

    def test_health_op_round_trips(self):
        with serve(Database()) as server:
            with Client(server.address) as client:
                health = client.health()
                assert health["state"] == "ok" and health["degraded_count"] == 0


class TestWriteSemantics:
    def test_write_to_replica_redirects_to_the_announced_primary(self):
        primary_db = Database({"R": [(1, 2)]})
        with serve(primary_db) as primary:
            replica_db = Database()
            with serve(replica_db, replicate_from=address_of(primary)) as replica:
                # the replica knows its primary from configuration, so the
                # redirect works even before the stream catches up
                with Client(replica.address) as client:
                    assert client.insert("R", [[3, 4]])["changed"] == 1
                    assert client.primary_address == address_of(primary)
            replica_db.close()
        primary_db.close()

    def test_lost_response_is_indeterminate_and_retry_does_not_double_apply(self):
        db = Database({"R": [(1, 2)]})
        with serve(db) as server:
            # the server processes the insert, then the response is lost
            faults.install("server.send=once:drop-conn")
            with Client(server.address) as client:
                before = db.generation
                with pytest.raises(IndeterminateWriteError):
                    client.insert("R", [[3, 4]])
                # the caller decides the retry is safe (set semantics) and
                # re-issues: the row is already present, so the generation
                # counter proves single application
                assert client.insert("R", [[3, 4]])["changed"] == 0
                assert db.generation == before + 1
        db.close()

    def test_lost_request_is_indeterminate_and_was_never_applied(self):
        db = Database({"R": [(1, 2)]})
        with serve(db) as server:
            # the request is dropped before any processing happens
            faults.install("server.recv=once:drop-conn")
            with Client(server.address) as client:
                before = db.generation
                with pytest.raises(IndeterminateWriteError):
                    client.insert("R", [[3, 4]])
                assert db.generation == before  # nothing applied
                assert client.insert("R", [[3, 4]])["changed"] == 1
                assert db.generation == before + 1
        db.close()


class TestRetryBackoff:
    def test_backoff_sleep_never_overshoots_the_deadline(self):
        """Regression: a backoff delay larger than the remaining budget
        used to park the client past its own deadline.  Now the sleep is
        clipped to the remainder and the deadline fires on schedule —
        with no doomed extra attempt after the budget is gone."""
        client = Client(
            "127.0.0.1:9",  # discard port: connection refused instantly
            timeout=0.5,
            connect_timeout=0.2,
            retries=10,
            backoff_base=30.0,  # one un-clipped sleep would blow 60x past
            backoff_cap=60.0,
            jitter=lambda: 1.0,
        )
        started = time.monotonic()
        with pytest.raises(DeadlineExceeded):
            client.ping()
        elapsed = time.monotonic() - started
        assert elapsed < 2.0, f"slept {elapsed:.1f}s past a 0.5s deadline"
        client.close()


class TestFailover:
    def test_reads_survive_primary_kill_and_replica_failover(self):
        """The acceptance demo: no caller-visible transport error."""
        primary_db = Database({"R": [(1, 2)]})
        primary = serve(primary_db)
        replica_db = Database()
        replica = serve(replica_db, replicate_from=address_of(primary))
        try:
            client = Client(
                primary.address,
                replicas=[address_of(replica)],
                timeout=10.0,
                retries=6,
            )
            ack = client.insert("R", [[3, 4]])
            assert ack["changed"] == 1
            # wait for the replica to apply the write the client just made
            assert wait_until(lambda: replica_db.generation >= ack["generation"])
            assert client.query("R(x, y)")["answers"] == [[1, 2], [3, 4]]

            # kill the primary: reads must fail over to the replica without
            # the caller seeing anything but a (possibly slower) answer
            primary.shutdown()
            primary_db.close()
            answers = client.query("R(x, y)")["answers"]
            assert answers == [[1, 2], [3, 4]]

            # writes are still refused (replica), with the typed error
            with pytest.raises((ReadOnlyServerError, TransportError)):
                client.insert("R", [[5, 6]])

            # failover completes: promote the replica, writes flow again
            assert client.promote(address_of(replica))["role"] == "primary"
            assert client.insert("R", [[5, 6]])["changed"] == 1
            assert client.query("R(x, y)")["answers"] == [[1, 2], [3, 4], [5, 6]]
            client.close()
        finally:
            replica.shutdown()
            replica_db.close()

    def test_stale_replica_rotates_to_a_caught_up_endpoint(self):
        primary_db = Database({"R": [(1, 2)]})
        with serve(primary_db) as primary:
            # a lagging "replica" that will never catch up: a plain
            # independent node at generation 0 serving the replicate op
            lagging_db = Database()
            with serve(lagging_db) as lagging:
                client = Client(
                    lagging.address,
                    replicas=[address_of(primary)],
                    timeout=10.0,
                    wait_timeout_s=0.1,
                )
                # a write through the lagging node redirects nowhere (it
                # is a primary too) — so write via rotation to the real
                # primary by pinning the read floor instead: issue the
                # write against the real primary directly
                ack = client.request(
                    {"op": "insert", "relation": "R", "rows": [[3, 4]]},
                    endpoint=address_of(primary),
                )
                # reads with the write's floor: the lagging node answers
                # stale, the client rotates to the caught-up primary
                response = client.query("R(x, y)", min_generation=ack["generation"])
                assert [[3, 4]] == [r for r in response["answers"] if r == [3, 4]]
                client.close()
            lagging_db.close()
        primary_db.close()
