"""Minimal-valuation semantics (Section 10; Hernich 2011, Minker 1982).

``[[D]]^min_CWA = { h(D) | h a D-minimal valuation }`` and its powerset
variant ``⦇D⦈^min_CWA`` (unions of images of nonempty sets of D-minimal
valuations).  These semantics are **not saturated**: an instance need
not have an isomorphic complete member of its own semantics.  Their
representative set is the set of *cores* (Theorem 10.2), so naive
evaluation results hold over cores (Corollary 10.12), and in general
naive evaluation additionally requires ``Q(D) = Q(core(D))``
(Corollary 10.6).
"""

from __future__ import annotations

import math
from typing import Hashable, Iterator, Sequence

from repro.data.instance import Instance
from repro.data.schema import Schema
from repro.homs.minimal import is_d_minimal
from repro.homs.search import iter_homomorphisms
from repro.semantics.base import Semantics, guard_limit
from repro.semantics.powerset import iter_nonempty_unions

__all__ = ["MinCWA", "MinPowersetCWA"]


def _minimal_images(instance: Instance, pool: Sequence[Hashable]) -> list[Instance]:
    from repro.homs.minimal import iter_minimal_valuations

    seen: set[Instance] = set()
    images: list[Instance] = []
    for valuation in iter_minimal_valuations(instance, list(pool)):
        image = instance.apply(valuation)
        if image not in seen:
            seen.add(image)
            images.append(image)
    return images


class MinCWA(Semantics):
    """Minimal closed-world assumption ``[[·]]^min_CWA``."""

    key = "mincwa"
    name = "minimal CWA"
    notation = "[[·]]^min_CWA"
    saturated = False
    hom_class = "minimal homomorphisms"
    sound_fragment = "PosForallG"  # over cores (Corollary 10.12)

    def expand(
        self,
        instance: Instance,
        pool: Sequence[Hashable],
        schema: Schema | None = None,
        extra_facts: int | None = None,
        limit: int = 500_000,
    ) -> Iterator[Instance]:
        guard_limit(len(pool) ** len(instance.nulls()), limit, "min-CWA expansion")
        yield from _minimal_images(instance, pool)

    def contains(self, instance: Instance, complete: Instance) -> bool:
        self._check_complete(complete)
        # E ∈ [[D]]^min_CWA iff some valuation maps D exactly onto E and
        # is D-minimal.  Minimality is checked exactly (the competing
        # homomorphism's image is a subinstance of E, so the search is
        # self-contained).
        for hom in iter_homomorphisms(
            instance,
            complete,
            fix_constants=True,
            require_complete_image=True,
            strong_onto=True,
        ):
            if is_d_minimal(instance, hom, mode="database"):
                return True
        return False


class MinPowersetCWA(Semantics):
    """Minimal powerset closed-world assumption ``⦇·⦈^min_CWA``."""

    key = "minpcwa"
    name = "minimal powerset CWA"
    notation = "⦇·⦈^min_CWA"
    saturated = False
    hom_class = "unions of minimal homomorphisms"
    sound_fragment = "EPosForallGBool"  # over cores (Corollary 10.12)
    #: like :class:`~repro.semantics.powerset.PowersetCWA`, ``extra_facts``
    #: is reinterpreted as the union-size bound (``None`` = default).
    default_union_bound = 2

    def enumeration_exact(self, extra_facts: int | None) -> bool:
        return False  # unions may combine unboundedly many valuations

    def expand(
        self,
        instance: Instance,
        pool: Sequence[Hashable],
        schema: Schema | None = None,
        extra_facts: int | None = None,
        limit: int = 500_000,
    ) -> Iterator[Instance]:
        bound = self.default_union_bound if extra_facts is None else extra_facts
        images = _minimal_images(instance, pool)
        top = min(bound, len(images))
        guard_limit(
            sum(math.comb(len(images), k) for k in range(1, top + 1)),
            limit,
            "min-powerset-CWA expansion",
        )
        yield from iter_nonempty_unions(images, max_size=bound)

    def contains(self, instance: Instance, complete: Instance) -> bool:
        self._check_complete(complete)
        # E ∈ ⦇D⦈^min_CWA iff E is a union of images of D-minimal
        # valuations, each of which is necessarily ⊆ E; the union of all
        # such images is the largest candidate.
        covered = Instance.empty()
        any_minimal = False
        for hom in iter_homomorphisms(
            instance, complete, fix_constants=True, require_complete_image=True
        ):
            if not is_d_minimal(instance, hom, mode="database"):
                continue
            any_minimal = True
            covered = covered.union(instance.apply(hom))
            if complete.issubinstance(covered):
                break
        return any_minimal and covered == complete
