"""Randomised empirical validation of Figure 1 (the paper's summary table).

For every semantics and its sound fragment, sample random sentences and
random small instances and check that naive evaluation agrees with the
certain-answer oracle.  For the extension semantics (OWA, WCWA over
larger alphabets) the oracle over-approximates certain answers, which
still makes disagreement a genuine refutation — see
``repro.core.certain``'s module docstring.

The strictness tests then exhibit, for each semantics, a query *outside*
the fragment on which naive evaluation provably disagrees with the
certain answers — showing the table's rows are not vacuous.
"""

import random

import pytest

from repro.core import certain_holds, naive_holds
from repro.core.analyzer import FIGURE_1
from repro.data.generate import d0_example, random_instance
from repro.data.instance import Instance
from repro.data.schema import Schema
from repro.data.values import Null
from repro.homs.core import core
from repro.logic.generate import random_sentence
from repro.logic.parser import parse
from repro.logic.queries import Query
from repro.semantics import get_semantics

SCHEMA = Schema({"R": 2, "S": 1})
N_TRIALS = 12

X, Y = Null("x"), Null("y")


def _instances(rng: random.Random, n: int):
    for _ in range(n):
        yield random_instance(
            SCHEMA, rng, n_facts=rng.randint(1, 3), constants=(1, 2), n_nulls=2
        )


def _certain_kwargs(key: str) -> dict:
    if key == "owa":
        return {"extra_facts": 1}
    if key == "wcwa":
        return {"extra_facts": 2}
    return {}


@pytest.mark.parametrize("key", sorted(FIGURE_1))
def test_figure1_row_naive_equals_certain(key):
    """naive == certain on the sound fragment (over cores for minimal)."""
    fragment, restriction, _ = FIGURE_1[key]
    sem = get_semantics(key)
    rng = random.Random(hash(key) & 0xFFFF)
    agreements = 0
    for instance in _instances(rng, N_TRIALS):
        if restriction == "cores":
            instance = core(instance)
        query = Query.boolean(random_sentence(SCHEMA, rng, fragment, max_depth=2))
        naive = naive_holds(query, instance)
        certain = certain_holds(query, instance, sem, **_certain_kwargs(key))
        assert naive == certain, (
            f"Figure 1 violated for {key}/{fragment}: naive={naive}, "
            f"certain={certain} on {instance!r} with {query!r}"
        )
        agreements += 1
    assert agreements == N_TRIALS


class TestStrictness:
    """Outside the fragment, naive evaluation genuinely fails per semantics."""

    def test_owa_fails_beyond_ucq(self):
        q = Query.boolean(parse("forall x . exists y . D(x, y)"))
        d0 = d0_example()
        assert naive_holds(q, d0)
        assert not certain_holds(q, d0, get_semantics("owa"), extra_facts=1)

    def test_wcwa_fails_beyond_pos(self):
        # a guarded formula (Pos+∀G \ Pos): sound for CWA, broken by WCWA
        q = Query.boolean(parse("forall x, y . D(x, y) -> S(x)"))
        d = Instance({"D": [(X, Y)], "S": [(X,)]})
        assert naive_holds(q, d)
        assert not certain_holds(q, d, get_semantics("wcwa"), extra_facts=2)
        # while CWA keeps it (Figure 1's CWA row)
        assert certain_holds(q, d, get_semantics("cwa"))

    def test_cwa_fails_beyond_pos_forall_g(self):
        q = Query.boolean(parse("!(exists v . D(v, v))"))
        d = Instance({"D": [(X, Y)]})
        assert naive_holds(q, d)
        assert not certain_holds(q, d, get_semantics("cwa"))

    def test_pcwa_fails_beyond_epos_gbool(self):
        # ∃w ∀x,y (D(x,y) → D(x,w)): open guard under ∃ — outside the
        # fragment, and unions of two valuations break it.
        q = Query.boolean(parse("exists w . forall x, y . D(x, y) -> D(x, w)"))
        d = Instance({"D": [(X, Y)]})
        assert naive_holds(q, d)
        assert not certain_holds(q, d, get_semantics("pcwa"), extra_facts=3)
        # contrast: sound under plain CWA (it is preserved under strong
        # onto homs? no — but certain answers still agree here)
        assert certain_holds(q, d, get_semantics("cwa"))

    def test_minimal_semantics_fail_off_core(self):
        # Cor 10.11 remark: naive false ≠ certain true off-core
        d = Instance({"D": [(X, X), (X, Y)]})
        q = Query.boolean(parse("forall v . D(v, v)"))
        assert not naive_holds(q, d)
        assert certain_holds(q, d, get_semantics("mincwa"))

    def test_minimal_powerset_fails_off_core(self):
        d = Instance({"D": [(X, X), (X, Y)]})
        q = Query.boolean(parse("forall v . D(v, v)"))
        assert not naive_holds(q, d)
        assert certain_holds(q, d, get_semantics("minpcwa"), extra_facts=4)


class TestKAryFigure1:
    """Theorem 8.2: the lifting to k-ary queries, sampled."""

    @pytest.mark.parametrize("key", ["owa", "cwa", "wcwa", "pcwa"])
    def test_kary_naive_equals_certain(self, key):
        from repro.core.certain import certain_answers
        from repro.core.naive import naive_eval
        from repro.logic.generate import random_kary_query

        fragment, _, _ = FIGURE_1[key]
        sem = get_semantics(key)
        rng = random.Random(hash(key) >> 3)
        for instance in _instances(rng, 6):
            query = random_kary_query(SCHEMA, rng, fragment, arity=1, max_depth=1)
            naive = naive_eval(query, instance)
            certain = certain_answers(query, instance, sem, **_certain_kwargs(key))
            assert naive == certain, (key, instance, query)

    @pytest.mark.parametrize("key", ["mincwa", "minpcwa"])
    def test_theorem_11_5_kary_minimal_over_cores(self, key):
        """Theorem 11.5: k-ary naive evaluation works for the minimal
        semantics over cores (and Q^C(D) = Q^C(core(D)) trivially there)."""
        from repro.core.certain import certain_answers
        from repro.core.naive import naive_eval
        from repro.logic.generate import random_kary_query

        fragment, restriction, _ = FIGURE_1[key]
        assert restriction == "cores"
        sem = get_semantics(key)
        rng = random.Random(hash(key) >> 2)
        for instance in _instances(rng, 5):
            instance = core(instance)
            query = random_kary_query(SCHEMA, rng, fragment, arity=1, max_depth=1)
            naive = naive_eval(query, instance)
            certain = certain_answers(query, instance, sem, extra_facts=3)
            assert naive == certain, (key, instance, query)

    def test_theorem_11_5_core_condition_is_needed(self):
        """Off-core, the extra condition Q^C(D) = Q^C(core(D)) bites even
        for k-ary queries: a guarded query distinguishing D from its core."""
        from repro.core.certain import certain_answers
        from repro.core.naive import naive_eval
        from repro.logic.parser import parse
        from repro.logic.queries import Query

        d = Instance({"D": [(X, X), (X, Y)], "S": [(1,)]})
        q = Query(parse("S(a) & (forall v, w . D(v, w) -> v = w)"), ("a",))
        naive = naive_eval(q, d)
        certain = certain_answers(q, d, get_semantics("mincwa"))
        assert naive == frozenset()  # ⊥ ≠ ⊥' syntactically
        assert certain == frozenset({(1,)})  # minimal valuations collapse them
