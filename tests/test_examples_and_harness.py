"""Smoke tests: every example script runs clean; the harness sections work.

The examples double as integration tests of the public API — each ends
with internal assertions and an "... OK." line.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True, timeout=300
    )
    assert result.returncode == 0, result.stderr
    assert "OK." in result.stdout


def test_examples_directory_has_required_scripts():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3  # deliverable (b): at least three examples


class TestHarnessSections:
    """The lighter harness sections, imported and executed directly."""

    @pytest.fixture(autouse=True)
    def _add_benchmarks_to_path(self, monkeypatch):
        root = pathlib.Path(__file__).parent.parent / "benchmarks"
        monkeypatch.syspath_prepend(str(root))

    def test_strictness_section(self, capsys):
        import harness

        harness.strictness()
        out = capsys.readouterr().out
        assert out.count("disagree ✓") == 6

    def test_worked_examples_section(self, capsys):
        import harness

        harness.worked_examples()
        out = capsys.readouterr().out
        assert "{(1, 4)}" in out

    def test_orderings_section(self, capsys):
        import harness

        harness.orderings()
        out = capsys.readouterr().out
        assert "36/36" in out and "25/25" in out

    def test_figure1_section_quick(self, capsys):
        import harness

        harness.figure_1(n_queries=1, n_instances=1)
        out = capsys.readouterr().out
        # six rows, all fully agreeing
        assert out.count("1/1") == 6

    def test_columnar_section_quick(self, capsys):
        import harness

        rows = harness.columnar(quick=True)
        out = capsys.readouterr().out
        assert "COLUMNAR" in out
        assert {r["workload"] for r in rows} == {"columnar_join", "columnar_semi_join"}
        assert all("compiled_ms" in r and "columnar_ms" in r for r in rows)

    def test_columnar_section_is_gated(self):
        import check_regression

        assert "columnar" in check_regression.GATED_SECTIONS
