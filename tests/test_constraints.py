"""Tests for constraints: FDs, keys, constrained certain answers (Section 12)."""

import pytest

from repro.constraints import (
    ConstrainedSemantics,
    FunctionalDependency,
    Key,
    certain_answers_under,
    satisfies,
    violations,
)
from repro.data.instance import Instance
from repro.data.values import Null
from repro.core.certain import certain_answers
from repro.logic.parser import parse
from repro.logic.queries import Query
from repro.semantics import get_semantics

X, Y = Null("x"), Null("y")


class TestFDs:
    def test_holds_simple(self):
        fd = FunctionalDependency("R", (0,), (1,))
        assert fd.holds_in(Instance({"R": [(1, 2), (2, 2)]}))
        assert not fd.holds_in(Instance({"R": [(1, 2), (1, 3)]}))

    def test_nulls_compare_syntactically(self):
        fd = FunctionalDependency("R", (0,), (1,))
        assert fd.holds_in(Instance({"R": [(1, X), (2, Y)]}))
        assert not fd.holds_in(Instance({"R": [(1, X), (1, Y)]}))

    def test_violations_reported(self):
        fd = FunctionalDependency("R", (0,), (1,))
        d = Instance({"R": [(1, 2), (1, 3)]})
        found = violations(d, [fd])
        assert len(found) == 1
        assert found[0][0] == fd

    def test_empty_relation_vacuous(self):
        fd = FunctionalDependency("R", (0,), (1,))
        assert fd.holds_in(Instance.empty())

    def test_validation(self):
        with pytest.raises(ValueError):
            FunctionalDependency("R", (0,), ())
        with pytest.raises(ValueError):
            FunctionalDependency("R", (0,), (0,))

    def test_key_helper(self):
        key = Key("R", (0,), arity=3)
        assert key.lhs == (0,) and key.rhs == (1, 2)
        with pytest.raises(ValueError):
            Key("R", (0, 1), arity=2)

    def test_satisfies_multiple(self):
        fds = [FunctionalDependency("R", (0,), (1,)), FunctionalDependency("S", (0,), (1,))]
        d = Instance({"R": [(1, 2)], "S": [(1, 2), (1, 2)]})
        assert satisfies(d, fds)


class TestConstrainedSemantics:
    def test_expand_filters_inconsistent_worlds(self):
        d = Instance({"R": [(1, X), (1, 2)]})
        key = Key("R", (0,), arity=2)
        sem = ConstrainedSemantics(get_semantics("cwa"), [key])
        worlds = list(sem.expand(d, [2, 3]))
        # the key forces X = 2: only the merged world survives
        assert worlds == [Instance({"R": [(1, 2)]})]

    def test_contains_checks_constraints(self):
        d = Instance({"R": [(1, X), (1, 2)]})
        key = Key("R", (0,), arity=2)
        sem = ConstrainedSemantics(get_semantics("cwa"), [key])
        assert sem.contains(d, Instance({"R": [(1, 2)]}))
        assert not sem.contains(d, Instance({"R": [(1, 2), (1, 3)]}))

    def test_metadata(self):
        sem = ConstrainedSemantics(get_semantics("cwa"), [Key("R", (0,), 2)])
        assert sem.key == "cwa+fd"
        assert "Σ" in sem.notation


class TestConstraintsChangeCertainAnswers:
    def test_key_makes_answer_certain(self):
        """The classic effect: without the key, R(1,2)'s null partner is
        anything; with the key on position 0, the null must equal 2."""
        d = Instance({"R": [(1, X), (1, 2)]})
        q = Query(parse("R(a, b)"), ("a", "b"))
        plain = certain_answers(q, d, get_semantics("cwa"))
        assert plain == frozenset({(1, 2)})
        constrained = certain_answers_under(
            q, d, get_semantics("cwa"), [Key("R", (0,), 2)]
        )
        assert constrained == frozenset({(1, 2)})
        # the *Boolean* gain: "the null equals 2" becomes certain
        qb = Query.boolean(parse("forall a, b . R(a, b) -> b = 2"))
        assert not bool(certain_answers(qb, d, get_semantics("cwa")))
        assert bool(
            certain_answers_under(qb, d, get_semantics("cwa"), [Key("R", (0,), 2)])
        )

    def test_certain_answers_only_grow(self):
        d = Instance({"R": [(1, X), (2, 2)]})
        q = Query(parse("R(a, b)"), ("a", "b"))
        plain = certain_answers(q, d, get_semantics("cwa"))
        constrained = certain_answers_under(
            q, d, get_semantics("cwa"), [FunctionalDependency("R", (1,), (0,))]
        )
        assert plain <= constrained

    def test_inconsistent_database_raises(self):
        d = Instance({"R": [(1, 2), (1, 3)]})  # hard key violation
        q = Query(parse("R(a, b)"), ("a", "b"))
        with pytest.raises(ValueError):
            certain_answers_under(q, d, get_semantics("cwa"), [Key("R", (0,), 2)])

    def test_fd_propagates_through_join(self):
        """An FD can transfer certainty across a join through nulls."""
        d = Instance({"R": [(1, X)], "S": [(2, 9)]})
        fd = FunctionalDependency("R", (0,), (1,))
        q = Query.boolean(parse("exists a, b . R(a, b) & S(b, 9)"))
        # without constraints the null may be anything — not certain
        assert not bool(certain_answers(q, d, get_semantics("cwa")))
        # the FD alone doesn't pin it either (single R-tuple): still open
        assert not bool(certain_answers_under(q, d, get_semantics("cwa"), [fd]))
        # but adding a second R-tuple with the same key does:
        d2 = d.union(Instance({"R": [(1, 2)]}))
        assert bool(certain_answers_under(q, d2, get_semantics("cwa"), [fd]))
