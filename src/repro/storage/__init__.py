"""Durable serving: snapshot + write-ahead-log persistence for sessions.

``Database(path="...")`` turns a memory-only session into a durable
one.  The division of labour:

* :mod:`repro.storage.snapshot` — the versioned, checksummed,
  binary-framed snapshot of (instance rows + generation counters),
  published by atomic replace;
* :mod:`repro.storage.wal` — the append-only write-ahead log of
  effective deltas, group-commit fsync'd, torn-tail tolerant;
* :mod:`repro.storage.store` — :class:`Storage`, the engine tying the
  two together: recovery = latest snapshot + WAL-tail replay, plus
  size/age-triggered compaction.

The durability contract, in one sentence: **a mutation acknowledged by
a durable session survives** ``kill -9`` **and recovers bit-identically
(rows and generation counters)**; unacknowledged writes may or may not
survive, but never partially.  See ``docs/persistence.md`` for the file
formats and the crash-ordering argument.

>>> import tempfile
>>> from repro.session import Database
>>> with tempfile.TemporaryDirectory() as d:
...     db = Database(path=d)
...     _ = db.insert("R", (1, 2))
...     db.close()
...     Database(path=d).instance.tuples("R")
frozenset({(1, 2)})
"""

from repro.storage.snapshot import SnapshotError, SnapshotState, read_snapshot, write_snapshot
from repro.storage.store import RecoveryInfo, Storage
from repro.storage.wal import WalError, WriteAheadLog

__all__ = [
    "RecoveryInfo",
    "SnapshotError",
    "SnapshotState",
    "Storage",
    "WalError",
    "WriteAheadLog",
    "read_snapshot",
    "write_snapshot",
]
