"""Nightly QoS soak: a thousand connections against a faulty server.

Runs a real ``repro serve`` subprocess (the asyncio core) with
failpoints armed via ``REPRO_FAILPOINTS`` — hung reads and dropped
responses at a low probability — then holds ``--conns`` long-lived
client connections against it for ``--duration`` seconds, each running
a mixed read/write stream with client-side reconnects.

The invariants enforced (exit 1 on violation):

* **no hangs** — every request is either answered or fails with a
  visible transport error within ``--request-timeout`` seconds;
* **typed shedding** — overload answers are ``overloaded`` frames that
  arrive promptly, never silence;
* **the server survives** — after the storm it still answers ``stats``
  on a fresh connection, and its counters are internally consistent.

Injected connection drops are *expected* (that is the point); they are
counted and reported, not failed on.

Usage::

    python benchmarks/qos_soak.py --conns 1000 --duration 60
    python benchmarks/qos_soak.py --conns 50 --duration 5 --seed 7   # smoke
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import random
import subprocess
import sys
import time
from pathlib import Path


def spawn_server(seed: int, max_conns: int) -> tuple[subprocess.Popen, tuple[str, int]]:
    src = Path(__file__).resolve().parent.parent / "src"
    failpoints = (
        f"server.recv=prob(0.002,{seed}):hang(200);"
        f"server.send=prob(0.001,{seed + 1}):drop-conn"
    )
    env = {**os.environ, "PYTHONPATH": str(src), "REPRO_FAILPOINTS": failpoints}
    proc = subprocess.Popen(
        [
            sys.executable, "-u", "-m", "repro", "serve", "--port", "0",
            "--max-conns", str(max_conns + 64), "--max-inflight", "128",
        ],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise RuntimeError(f"repro serve died during startup (rc={proc.poll()})")
        if "listening on" in line:
            host, port = line.strip().rsplit(" ", 1)[-1].rsplit(":", 1)
            return proc, (host, int(port))
    raise RuntimeError("repro serve did not announce its address in time")


async def soak(address, n_conns: int, duration: float, request_timeout: float,
               seed: int) -> dict:
    stop_at = time.monotonic() + duration
    sem = asyncio.Semaphore(64)       # outstanding-request cap (closed loop)
    gate = asyncio.Semaphore(100)     # connect burst stays under the backlog
    stats = {
        "requests": 0, "ok": 0, "overloaded": 0, "server_errors": 0,
        "reconnects": 0, "hangs": 0,
    }
    latencies: list[float] = []
    texts = [
        "exists z (R(x, z) & R(z, y))",
        "exists x, y (R(x, y) & R(y, x))",
    ]

    async def connect():
        async with gate:
            last: OSError | None = None
            for attempt in range(8):
                try:
                    return await asyncio.open_connection(*address)
                except OSError as err:
                    last = err
                    await asyncio.sleep(0.1 * (attempt + 1))
            raise last

    async def worker(i: int) -> None:
        rng = random.Random(seed * 100_003 + i)
        reader = writer = None
        while time.monotonic() < stop_at:
            if writer is None:
                try:
                    reader, writer = await connect()
                except OSError:
                    stats["reconnects"] += 1
                    continue
            if rng.random() < 0.1:
                request = {"op": "insert", "relation": "S",
                           "rows": [[i * 1_000_000 + stats["requests"]]]}
            else:
                request = {"op": "query", "query": texts[rng.randrange(len(texts))]}
            data = (json.dumps(request) + "\n").encode("utf-8")
            async with sem:
                stats["requests"] += 1
                t0 = time.perf_counter()
                try:
                    writer.write(data)
                    await writer.drain()
                    line = await asyncio.wait_for(
                        reader.readline(), timeout=request_timeout
                    )
                except asyncio.TimeoutError:
                    stats["hangs"] += 1  # the one thing that must not happen
                    writer.close()
                    writer = None
                    continue
                except OSError:
                    line = b""
                latencies.append(time.perf_counter() - t0)
            if not line:  # injected drop (or reap): reconnect and move on
                stats["reconnects"] += 1
                writer.close()
                writer = None
                continue
            response = json.loads(line)
            if response.get("ok"):
                stats["ok"] += 1
            elif response.get("error_type") == "overloaded":
                stats["overloaded"] += 1
            else:
                stats["server_errors"] += 1
            await asyncio.sleep(rng.uniform(0.2, 1.0))
        if writer is not None:
            writer.close()

    await asyncio.gather(*(worker(i) for i in range(n_conns)))
    latencies.sort()
    if latencies:
        stats["p50_ms"] = round(latencies[len(latencies) // 2] * 1e3, 3)
        stats["p95_ms"] = round(latencies[int(len(latencies) * 0.95)] * 1e3, 3)
        stats["p99_ms"] = round(
            latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))] * 1e3, 3
        )
    return stats


async def final_probe(address) -> dict:
    reader, writer = await asyncio.open_connection(*address)
    writer.write(b'{"op": "stats"}\n')
    await writer.drain()
    response = json.loads(await asyncio.wait_for(reader.readline(), timeout=30))
    writer.close()
    return response


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--conns", type=int, default=1000)
    parser.add_argument("--duration", type=float, default=60.0)
    parser.add_argument("--request-timeout", type=float, default=30.0)
    parser.add_argument("--seed", type=int, default=None)
    args = parser.parse_args(argv)
    seed = args.seed if args.seed is not None else int(time.time()) % 100_000

    proc, address = spawn_server(seed, args.conns)
    try:
        # seed the instance the read stream queries
        async def seed_rows():
            reader, writer = await asyncio.open_connection(*address)
            rng = random.Random(seed)
            rows = sorted({(rng.randrange(24), rng.randrange(24)) for _ in range(150)})
            writer.write((json.dumps(
                {"op": "insert", "relation": "R", "rows": [list(r) for r in rows]}
            ) + "\n").encode("utf-8"))
            await writer.drain()
            assert json.loads(await reader.readline())["ok"]
            writer.close()

        asyncio.run(seed_rows())
        print(f"soak: {args.conns} conns for {args.duration:.0f}s "
              f"against {address[0]}:{address[1]} (seed {seed})")
        stats = asyncio.run(
            soak(address, args.conns, args.duration, args.request_timeout, seed)
        )
        probe = asyncio.run(final_probe(address))
        stats["server_alive"] = bool(probe.get("ok"))
        stats["server_requests"] = probe.get("requests")
        print(json.dumps(stats, indent=2))
        failures = []
        if stats["hangs"]:
            failures.append(f"{stats['hangs']} request(s) hung past the timeout")
        if not stats["server_alive"]:
            failures.append("server no longer answers stats after the soak")
        if stats["server_errors"]:
            failures.append(f"{stats['server_errors']} untyped server error(s)")
        if not stats["ok"]:
            failures.append("no request succeeded at all")
        if failures:
            print("SOAK FAILED: " + "; ".join(failures))
            return 1
        print("soak passed: no hangs, typed shedding only, server healthy")
        return 0
    finally:
        proc.kill()
        proc.wait(timeout=30)


if __name__ == "__main__":
    sys.exit(main())
