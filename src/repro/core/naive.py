"""Naive evaluation: the two-step procedure of Section 2.4.

Step one evaluates the query on the incomplete database itself, treating
nulls as ordinary values (syntactic equality).  Step two eliminates the
answer tuples that contain nulls — a tuple with a null can never be a
certain answer.  For Boolean queries step two is vacuous.

Three engines implement step one:

* ``columnar`` — the compiled operator DAG executed over
  dictionary-encoded int columns (:mod:`repro.logic.columnar`): array
  kernels, sort-merge joins, stats-driven join ordering;
* ``compiled`` — the set-at-a-time relational plan of
  :mod:`repro.logic.compile`: hash joins, semi-/anti-joins, per-instance
  hash indexes — retained as a differential baseline;
* ``interp`` — the tuple-at-a-time tree walker of
  :mod:`repro.logic.eval`, retained as the differential-testing baseline
  (the ``naive-interp`` backend).

Both compute the same function on every query and instance; the
compiled engine just makes the paper's polynomial data complexity
visible at realistic instance sizes.
"""

from __future__ import annotations

from typing import Hashable

from repro.data.instance import Instance
from repro.data.values import Null
from repro.logic import columnar as _columnar
from repro.logic import compile as _compile
from repro.logic.queries import Query

__all__ = ["naive_eval", "naive_holds", "drop_null_tuples"]


def drop_null_tuples(
    rows: frozenset[tuple[Hashable, ...]]
) -> frozenset[tuple[Hashable, ...]]:
    """Step two: keep only the tuples made entirely of constants."""
    return frozenset(
        row for row in rows if not any(isinstance(v, Null) for v in row)
    )


def naive_eval(
    query: Query, instance: Instance, engine: str = "compiled"
) -> frozenset[tuple[Hashable, ...]]:
    """The naive evaluation of ``query`` on ``instance``.

    Returns the set of null-free answers (``Q^C(D)`` in Section 8's
    notation).  Boolean queries return ``{()}``/``frozenset()``.
    ``engine`` selects step one's implementation (see module doc).
    """
    if engine == "columnar":
        # the columnar executor drops null rows pre-decode (odd codes)
        return _columnar.columnar_naive_eval(query, instance)
    if engine == "compiled":
        raw = _compile.compiled_query(query).answers(instance)
    elif engine == "interp":
        raw = query.eval_raw(instance)
    else:
        raise ValueError(
            f"unknown naive engine {engine!r}; use 'columnar', 'compiled' or 'interp'"
        )
    return drop_null_tuples(raw)


def naive_holds(query: Query, instance: Instance, engine: str = "compiled") -> bool:
    """Naive truth value of a Boolean query."""
    if not query.is_boolean:
        raise ValueError(f"query {query.name!r} is {query.arity}-ary; use naive_eval()")
    return bool(naive_eval(query, instance, engine=engine))
