"""Unit tests for repro.logic.transform."""

from repro.logic.ast import FALSE, TRUE, And, EqAtom, Exists, Not, Or, RelAtom, Var
from repro.logic.builders import Rel, eq, exists, forall, implies, not_
from repro.logic.transform import (
    all_vars,
    constants_used,
    free_vars,
    is_sentence,
    nnf,
    quantifier_depth,
    relations_used,
    subformulas,
    substitute,
)

R, S = Rel("R"), Rel("S")
x, y, z = Var("x"), Var("y"), Var("z")


class TestFreeVars:
    def test_atom(self):
        assert free_vars(R("x", "y")) == {x, y}
        assert free_vars(R("x", const_1:= 1)) == {x}

    def test_quantifier_binds(self):
        assert free_vars(exists("x", R("x", "y"))) == {y}
        assert free_vars(forall("x", "y", R("x", "y"))) == set()

    def test_shadowing(self):
        phi = R("x", "x") & exists("x", S("x", "y"))
        assert free_vars(phi) == {x, y}

    def test_implies_and_not(self):
        assert free_vars(implies(R("x", "y"), S("y", "z"))) == {x, y, z}
        assert free_vars(not_(eq("x", "y"))) == {x, y}

    def test_truth_constants(self):
        assert free_vars(TRUE) == set()

    def test_all_vars_includes_bound(self):
        phi = exists("x", R("x", "y"))
        assert all_vars(phi) == {x, y}


class TestSubstitute:
    def test_ground_substitution(self):
        phi = R("x", "y")
        assert substitute(phi, {x: 1, y: 2}) == R(1, 2)

    def test_bound_variables_untouched(self):
        phi = exists("x", R("x", "y"))
        out = substitute(phi, {x: 1, y: 2})
        assert out == exists("x", R("x", 2))

    def test_empty_binding_identity(self):
        phi = R("x", "y")
        assert substitute(phi, {}) is phi

    def test_equality_atoms(self):
        assert substitute(eq("x", "y"), {x: 3}) == EqAtom(3, y)


class TestShapeQueries:
    def test_is_sentence(self):
        assert is_sentence(exists("x", R("x", "x")))
        assert not is_sentence(R("x", "x"))

    def test_relations_used(self):
        phi = exists("x", R("x", "x") & S("x", "x")) | R("y", "y")
        assert relations_used(phi) == {"R", "S"}

    def test_constants_used(self):
        phi = R("x", 7) & eq("x", 9)
        assert constants_used(phi) == {7, 9}

    def test_subformulas_traversal(self):
        phi = exists("x", R("x", "x") & TRUE)
        kinds = [type(s).__name__ for s in subformulas(phi)]
        assert kinds == ["Exists", "And", "RelAtom", "TrueF"]

    def test_quantifier_depth(self):
        assert quantifier_depth(R("x", "y")) == 0
        assert quantifier_depth(exists("x", forall("y", R("x", "y")))) == 2
        assert quantifier_depth(exists("x", R("x", "x")) & forall("y", S("y", "y"))) == 1


class TestNNF:
    def test_double_negation(self):
        phi = not_(not_(R("x", "y")))
        assert nnf(phi) == R("x", "y")

    def test_de_morgan(self):
        phi = not_(R("x", "x") & S("x", "x"))
        assert nnf(phi) == Or((Not(R("x", "x")), Not(S("x", "x"))))

    def test_quantifier_duals(self):
        phi = not_(forall("x", R("x", "x")))
        assert nnf(phi) == Exists((x,), Not(R("x", "x")))

    def test_implication_compiled(self):
        phi = implies(R("x", "x"), S("x", "x"))
        assert nnf(phi) == Or((Not(R("x", "x")), S("x", "x")))

    def test_negated_implication(self):
        phi = not_(implies(R("x", "x"), S("x", "x")))
        assert nnf(phi) == And((R("x", "x"), Not(S("x", "x"))))

    def test_truth_constants_flip(self):
        assert nnf(not_(TRUE)) == FALSE
        assert nnf(not_(FALSE)) == TRUE
