"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import instance_from_json, instance_to_json, main
from repro.data.instance import Instance
from repro.data.values import Null


class TestJsonFormat:
    def test_round_trip(self):
        d = Instance({"R": [(1, Null("x"))], "S": [(Null("x"), 4)]})
        assert instance_from_json(instance_to_json(d)) == d

    def test_nulls_marked_with_question(self):
        d = instance_from_json('{"R": [[1, "?x"], ["?x", 2]]}')
        assert len(d.nulls()) == 1  # ?x repeats

    def test_plain_strings_are_constants(self):
        d = instance_from_json('{"R": [["alice", "bob"]]}')
        assert d.is_complete()

    def test_non_object_rejected(self):
        with pytest.raises(ValueError):
            instance_from_json("[1, 2]")

    def test_nested_list_rejected(self):
        with pytest.raises(ValueError):
            instance_from_json('{"R": [[[1]]]}')


class TestCommands:
    def test_analyze_all_semantics(self, capsys):
        assert main(["analyze", "exists z (R(x,z) & S(z,y))"]) == 0
        out = capsys.readouterr().out
        assert "owa" in out and "SOUND" in out

    def test_analyze_single_semantics(self, capsys):
        assert main(["analyze", "forall x . exists y . D(x,y)", "--semantics", "owa"]) == 0
        out = capsys.readouterr().out
        assert "not sound" in out

    def test_fragments(self, capsys):
        assert main(["fragments", "forall x . exists y . D(x,y)"]) == 0
        out = capsys.readouterr().out
        assert "Pos" in out and "EPos" not in out.split("fragments:")[1].split(",")[0]

    def test_evaluate_kary(self, tmp_path, capsys):
        db = tmp_path / "db.json"
        db.write_text(json.dumps({"R": [[1, "?1"], ["?2", "?3"]], "S": [["?1", 4], ["?3", 5]]}))
        code = main(["evaluate", "exists z (R(x,z) & S(z,y))", str(db), "--semantics", "owa"])
        assert code == 0
        out = capsys.readouterr().out
        assert "1, 4" in out and "naive" in out

    def test_evaluate_boolean(self, tmp_path, capsys):
        db = tmp_path / "db.json"
        db.write_text(json.dumps({"D": [["?a", "?b"], ["?b", "?a"]]}))
        code = main(["evaluate", "exists x, y . D(x,y) & D(y,x)", str(db), "--semantics", "cwa"])
        assert code == 0
        assert "certain answer: True" in capsys.readouterr().out

    def test_evaluate_missing_file(self, capsys):
        code = main(["evaluate", "R(x)", "/nonexistent/db.json"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_query_reported(self, capsys):
        code = main(["fragments", "R(x"])
        assert code == 2

    def test_mode_flag(self, tmp_path, capsys):
        db = tmp_path / "db.json"
        db.write_text(json.dumps({"D": [["?a", "?b"]]}))
        code = main(
            ["evaluate", "exists x, y . D(x, y)", str(db), "--mode", "enumeration"]
        )
        assert code == 0
        assert "enumeration" in capsys.readouterr().out
