"""Tests for repro.core.plan: the extracted Figure-1 routing policy."""

import json

import pytest

from repro.core.certain import default_pool
from repro.core.plan import CostHints, Plan, make_plan
from repro.data.instance import Instance
from repro.data.values import Null
from repro.logic.parser import parse
from repro.logic.queries import Query

X, Y = Null("x"), Null("y")


class TestAutoRouting:
    def test_ucq_owa_routes_columnar(self, intro_db, join_query):
        plan = make_plan(join_query, intro_db, "owa")
        assert plan.backend == "columnar"
        assert plan.exact
        assert plan.instance_is_core is None  # never needed

    def test_forall_owa_routes_enumeration(self, d0, forall_exists_query):
        plan = make_plan(forall_exists_query, d0, "owa")
        assert plan.backend == "enumeration"
        assert not plan.exact and plan.direction == "superset"

    def test_forall_cwa_routes_columnar(self, d0, forall_exists_query):
        plan = make_plan(forall_exists_query, d0, "cwa")
        assert plan.backend == "columnar"
        assert plan.exact

    def test_minimal_off_core_routes_enumeration(self):
        d = Instance({"D": [(X, X), (X, Y)]})
        q = Query.boolean(parse("forall v, w . D(v, w) -> D(v, v)"))
        plan = make_plan(q, d, "mincwa")
        assert plan.backend == "enumeration"
        assert plan.instance_is_core is False
        assert any("not" in note and "core" in note for note in plan.notes)

    def test_minimal_on_core_routes_columnar(self):
        d = Instance({"D": [(X, X)]})
        q = Query.boolean(parse("exists v . D(v, v)"))
        plan = make_plan(q, d, "mincwa")
        assert plan.backend == "columnar"
        assert plan.instance_is_core is True
        assert plan.exact


class TestForcedModes:
    def test_forced_naive_notes_divergence(self, d0, forall_exists_query):
        plan = make_plan(forall_exists_query, d0, "owa", mode="naive")
        assert plan.backend == "naive"
        assert not plan.exact
        assert any("auto would choose 'enumeration'" in n for n in plan.notes)

    def test_forced_enumeration_cwa_is_exact(self, intro_db, join_query):
        plan = make_plan(join_query, intro_db, "cwa", mode="enumeration")
        assert plan.backend == "enumeration"
        assert plan.exact

    def test_forced_enumeration_never_pays_the_core_check(self):
        # regression: the divergence note must neither read an uncomputed
        # core flag nor trigger the (worst-case exponential) core check —
        # when the auto choice hinges on it, the note says so honestly
        d = Instance({"D": [(X, X)]})  # a core, but the plan may not know
        q = Query.boolean(parse("exists v . D(v, v)"))
        plan = make_plan(
            q, d, "mincwa", mode="enumeration",
            core_check=lambda: (_ for _ in ()).throw(AssertionError("core check ran")),
        )
        assert plan.instance_is_core is None
        assert any("depend on the core check" in n for n in plan.notes)

    def test_forced_mode_note_uses_known_core_flag(self):
        # when the core check already ran (e.g. forced naive), the note
        # reports the actual divergence
        d = Instance({"D": [(X, X), (X, Y)]})  # not a core
        q = Query.boolean(parse("exists v . D(v, v)"))
        plan = make_plan(q, d, "mincwa", mode="naive")
        assert plan.instance_is_core is False
        assert any("auto would choose 'enumeration'" in n for n in plan.notes)

    def test_forced_ctable_under_cwa(self, d0):
        q = Query.boolean(parse("exists x . D(x, x)"))
        plan = make_plan(q, d0, "cwa", mode="ctable")
        assert plan.backend == "ctable" and plan.exact

    def test_forced_ctable_under_owa_raises(self, d0):
        q = Query.boolean(parse("exists x . D(x, x)"))
        with pytest.raises(ValueError, match="ctable"):
            make_plan(q, d0, "owa", mode="ctable")

    def test_unknown_mode_raises(self, d0):
        q = Query.boolean(parse("exists x . D(x, x)"))
        with pytest.raises(ValueError, match="unknown backend"):
            make_plan(q, d0, "cwa", mode="guess")


class TestInjectedCaches:
    def test_injected_pool_skips_default_pool(self, d0, forall_exists_query, monkeypatch):
        import importlib

        certain = importlib.import_module("repro.core.certain")

        def boom(*args, **kwargs):
            raise AssertionError("default_pool must not be called when pool is injected")

        monkeypatch.setattr(certain, "default_pool", boom)
        pool = [1, 2, 3]
        plan = make_plan(forall_exists_query, d0, "owa", pool=pool)
        assert plan.cost.pool_size == 3

    def test_injected_core_check_is_used(self):
        d = Instance({"D": [(X, X), (X, Y)]})  # NOT a core
        q = Query.boolean(parse("exists v . D(v, v)"))
        plan = make_plan(q, d, "mincwa", core_check=lambda: True)
        assert plan.backend == "columnar"  # believed the lie
        assert plan.instance_is_core is True

    def test_injected_verdict_is_used(self, intro_db, join_query):
        from repro.core.analyzer import analyze

        verdict = analyze(join_query, "owa")
        plan = make_plan(join_query, intro_db, "owa", verdict=verdict)
        assert plan.verdict is verdict


class TestPlanRendering:
    def test_render_mentions_backend_and_verdict(self, d0, forall_exists_query):
        owa = make_plan(forall_exists_query, d0, "owa").render()
        assert "enumeration" in owa and "not sound" in owa
        cwa = make_plan(forall_exists_query, d0, "cwa").render()
        assert "naive" in cwa and "SOUND" in cwa

    def test_to_dict_is_json_serialisable(self, d0, forall_exists_query):
        plan = make_plan(forall_exists_query, d0, "owa")
        data = json.loads(plan.to_json())
        assert data["backend"] == "enumeration"
        assert data["verdict"]["sound"] is False
        assert data["cost"]["pool_size"] == plan.cost.pool_size
        assert data["semantics"] == "owa"

    def test_cost_hints(self, d0, forall_exists_query):
        plan = make_plan(forall_exists_query, d0, "cwa")
        pool = default_pool(d0, forall_exists_query)
        assert plan.cost == CostHints(
            fact_count=d0.fact_count(),
            null_count=len(d0.nulls()),
            pool_size=len(pool),
            valuation_bound=len(pool) ** len(d0.nulls()),
        )

    def test_repr(self, intro_db, join_query):
        plan = make_plan(join_query, intro_db, "owa")
        assert "columnar" in repr(plan) and "exact" in repr(plan)
        assert isinstance(plan, Plan)

    def test_render_survives_unregistered_backend(self, intro_db, join_query):
        from dataclasses import replace

        plan = replace(make_plan(join_query, intro_db, "owa"), backend="gone")
        assert "no longer registered" in plan.render()

    def test_execute_plan_rejects_semantics_mismatch(self, intro_db, join_query):
        from repro.core.engine import execute_plan
        from repro.semantics import get_semantics

        plan = make_plan(join_query, intro_db, "cwa")
        with pytest.raises(ValueError, match="re-plan"):
            execute_plan(plan, join_query, intro_db, get_semantics("owa"))
