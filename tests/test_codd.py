"""Unit tests for repro.data.codd: SQL-null modelling."""

import pytest

from repro.data.codd import as_codd, codd_instance, from_sql_rows, to_sql_rows, tuple_leq
from repro.data.instance import Instance
from repro.data.values import Null


class TestTupleLeq:
    def test_reflexive_on_constants(self):
        assert tuple_leq((1, 2), (1, 2))

    def test_null_positions_refine_to_anything(self):
        assert tuple_leq((1, Null("x")), (1, 2))
        assert tuple_leq((Null("x"), Null("y")), (5, 6))

    def test_constant_positions_must_match(self):
        assert not tuple_leq((1, 2), (1, 3))
        assert not tuple_leq((1, Null("x")), (2, 2))

    def test_length_mismatch(self):
        assert not tuple_leq((1,), (1, 2))

    def test_not_symmetric(self):
        assert tuple_leq((Null("x"),), (1,))
        assert not tuple_leq((1,), (Null("x"),))


class TestSqlRows:
    def test_from_sql_rows_makes_codd(self):
        inst = from_sql_rows({"R": [(1, None), (None, 2), (None, None)]})
        assert inst.is_codd()
        assert len(inst.nulls()) == 4
        assert inst.fact_count() == 3

    def test_roundtrip_shape(self):
        inst = from_sql_rows({"R": [(1, None)]})
        rows = to_sql_rows(inst)
        assert rows == {"R": [(1, None)]}

    def test_to_sql_rows_rejects_repeating_nulls(self):
        x = Null("x")
        with pytest.raises(ValueError):
            to_sql_rows(Instance({"R": [(x, x)]}))


class TestAsCodd:
    def test_as_codd_breaks_null_links(self):
        x = Null("x")
        naive = Instance({"R": [(x, x)]})
        codd = as_codd(naive)
        assert codd.is_codd()
        assert len(codd.nulls()) == 2

    def test_as_codd_preserves_constants(self):
        naive = Instance({"R": [(1, Null("x"))]})
        codd = as_codd(naive)
        assert codd.constants() == frozenset({1})
        assert codd.fact_count() == 1


class TestCoddInstance:
    def test_accepts_codd(self):
        inst = codd_instance({"R": [(1, Null("a")), (Null("b"), 2)]})
        assert inst.is_codd()

    def test_rejects_naive(self):
        x = Null("x")
        with pytest.raises(ValueError):
            codd_instance({"R": [(x, 1), (x, 2)]})
