"""Pluggable evaluation backends and their registry.

A :class:`Backend` is one strategy for computing (an approximation of)
certain answers.  The engine ships six:

* ``columnar``     — two-step naive evaluation (Section 2.4) executed by
  the compiled operator DAG over dictionary-encoded int columns
  (:mod:`repro.logic.columnar`): array kernels, sort-merge joins,
  stats-driven join ordering.  The default whenever Figure 1 proves
  naive evaluation exact;
* ``compiled``     — the same naive evaluation executed by the
  set-at-a-time relational compiler (:mod:`repro.logic.compile`) over
  decoded rows: hash joins, semi-/anti-joins, per-instance hash
  indexes — retained as the columnar engine's differential baseline;
* ``naive``        — the same naive-evaluation strategy (kept as the
  historical name; execution also goes through the compiled engine);
* ``naive-interp`` — naive evaluation by the tuple-at-a-time tree
  walker, retained as the differential-testing baseline;
* ``enumeration``  — the bounded certain-answer oracle: intersect
  ``Q(E)`` over the members of ``[[D]]`` drawn from a finite pool;
* ``ctable``       — lift the naive database into a conditional table
  (Imielinski & Lipski 1984) and intersect over its worlds; the CWA
  semantics of c-tables, so only valid under ``cwa``.

Backends are looked up by name through a registry so deployments can
plug in their own (sharded, remote, approximate…) strategies without
touching the planner: implement :class:`Backend`, call
:func:`register_backend`, and the name becomes available to
``Database``, the legacy ``evaluate(mode=...)`` wrapper and the CLI.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Hashable, Sequence

from repro.ctables.table import CInstance
from repro.core import certain as _certain
from repro.core import naive as _naive
from repro.core.analyzer import Verdict
from repro.data.instance import Instance
from repro.logic.queries import Query
from repro.semantics.base import Semantics, guard_limit

__all__ = [
    "Backend",
    "NaiveBackend",
    "ColumnarBackend",
    "CompiledBackend",
    "NaiveInterpBackend",
    "EnumerationBackend",
    "CTableBackend",
    "naive_is_certain",
    "NAIVE_AUTO_BACKEND",
    "register_backend",
    "unregister_backend",
    "get_backend",
    "available_backends",
]


def naive_is_certain(verdict: Verdict, instance_is_core: bool | None) -> bool:
    """The Figure-1 predicate, in one place: does naive evaluation provably
    compute the certain answers?  (Sound fragment, plus the core condition
    when the verdict only holds over cores.)"""
    return verdict.sound and (not verdict.over_cores_only or bool(instance_is_core))


class Backend(ABC):
    """One evaluation strategy, selectable by name through the planner."""

    #: registry key; also the ``method`` reported in :class:`EvalResult`
    name: str = ""
    #: one-line description used by ``Plan.render()`` and the CLI
    summary: str = ""
    #: does :meth:`execute` read the constant pool?  The session layer
    #: skips pool construction entirely for backends that don't.
    uses_pool: bool = True
    #: does :meth:`execute` accept ``workers``/``stats_out`` keyword
    #: arguments (parallel world sharding + execution metadata)?  The
    #: engine only forwards them to backends that opt in, so plug-in
    #: backends with the historical signature keep working.
    supports_workers: bool = False
    #: does :meth:`execute` additionally accept a ``worker_pool`` keyword
    #: (a persistent :class:`~repro.core.parallel.OracleWorkerPool` the
    #: session layer keeps alive across requests)?  Separate from
    #: ``supports_workers`` so PR 3-era plug-ins keep working unchanged.
    supports_worker_pool: bool = False

    def validate(self, semantics: Semantics) -> None:
        """Raise :class:`ValueError` when this backend cannot serve ``semantics``."""

    def cache_relations(self, semantics: Semantics, exact: bool, cq) -> frozenset[str] | None:
        """Which relations the result is a pure function of, or ``None``.

        The session layer's result cache may reuse an answer set across
        mutations only when the backend can *prove* the answers depend
        on nothing but the rows of a known relation set — it then keys
        the cache on those relations' generation counters.  ``None``
        (the default) means "never cache me".  ``exact`` is the planned
        run's exactness flag, ``cq`` the
        :class:`~repro.logic.compile.CompiledQuery` of the prepared
        query.  The planner surfaces a positive answer as an EXPLAIN
        note.
        """
        return None

    def needs_core_check(self, verdict: Verdict) -> bool:
        """Does exactness accounting require knowing whether the instance is a core?"""
        return False

    @abstractmethod
    def exactness(
        self,
        semantics: Semantics,
        verdict: Verdict,
        instance_is_core: bool | None,
        extra_facts: int | None,
    ) -> tuple[bool, str]:
        """``(exact, direction)`` for a run of this backend.

        ``direction`` follows :class:`~repro.core.engine.EvalResult`:
        ``""`` when exact, else ``"subset"``/``"superset"``/``"unknown"``.
        """

    @abstractmethod
    def execute(
        self,
        query: Query,
        instance: Instance,
        semantics: Semantics,
        *,
        pool: Sequence[Hashable] | None = None,
        extra_facts: int | None = None,
        limit: int = 500_000,
    ) -> frozenset[tuple[Hashable, ...]]:
        """Compute the answer set (null-free tuples; ``{()}`` = Boolean true)."""

    def __repr__(self) -> str:
        return f"<backend {self.name!r}>"


class NaiveBackend(Backend):
    """Two-step naive evaluation: evaluate with nulls as values, drop null rows.

    Execution goes through the set-at-a-time compiled engine; the name
    is kept because "naive evaluation" is the paper's *strategy* (nulls
    as plain values, then drop null rows), not an implementation.
    """

    name = "naive"
    summary = "naive evaluation (compiled; certain answers exactly when Figure 1 says so)"
    uses_pool = False
    #: which step-one engine :meth:`execute` uses
    engine = "compiled"

    def needs_core_check(self, verdict: Verdict) -> bool:
        return verdict.over_cores_only

    def exactness(self, semantics, verdict, instance_is_core, extra_facts):
        if naive_is_certain(verdict, instance_is_core):
            return True, ""
        return False, ("subset" if verdict.approximation else "unknown")

    def cache_relations(self, semantics, exact, cq):
        # naive evaluation of a domain-independent plan is a pure
        # function of the relations the operator DAG scans, whatever
        # the semantics (the semantics only labels exactness)
        return None if cq.adom_dependent else cq.relations

    def execute(self, query, instance, semantics, *, pool=None, extra_facts=None, limit=500_000):
        return _naive.naive_eval(query, instance, engine=self.engine)


class ColumnarBackend(NaiveBackend):
    """Naive evaluation by the columnar dictionary-encoded executor.

    The same compiled operator DAG (:mod:`repro.logic.compile`), run
    over int-encoded columns instead of decoded rows: constants and
    nulls are interned into a per-database dictionary, joins execute as
    array kernels (sort-merge on single shared columns, encoded hash
    joins elsewhere), join order follows per-instance column stats, and
    null rows are dropped at the code level before decoding
    (:mod:`repro.logic.columnar`).  Identical answers to ``compiled``
    and ``naive-interp`` on every query — they stay registered as its
    differential baselines.
    """

    name = "columnar"
    summary = (
        "columnar naive evaluation (dictionary-encoded int columns, array "
        "kernels, sort-merge joins, stats-driven join order)"
    )
    engine = "columnar"


#: the backend ``mode="auto"`` routes to when Figure 1 proves naive
#: evaluation exact (the fastest registered naive-evaluation engine)
NAIVE_AUTO_BACKEND = "columnar"


class CompiledBackend(NaiveBackend):
    """Naive evaluation by the set-at-a-time relational compiler.

    Hash joins on shared variables, semi-joins for ``∃``, anti-joins for
    negated safe subformulas, active-domain complements only for
    genuinely unsafe subtrees, executed over per-instance hash indexes
    (:mod:`repro.logic.compile`, :mod:`repro.data.indexes`).  Identical
    answers to the interpreter on every query; the planner routes here
    whenever naive evaluation is provably exact.
    """

    name = "compiled"
    summary = "compiled set-at-a-time naive evaluation (hash/semi/anti-joins over cached indexes)"
    engine = "compiled"


class NaiveInterpBackend(NaiveBackend):
    """Naive evaluation by the tuple-at-a-time tree-walking interpreter.

    The original evaluator, retained as the differential-testing
    baseline for the compiled pipeline (and as the reference for the
    paper's definition of naive evaluation).
    """

    name = "naive-interp"
    summary = "tree-walking naive evaluation (tuple-at-a-time; differential baseline)"
    engine = "interp"


class EnumerationBackend(Backend):
    """Bounded enumeration of ``[[D]]`` over a constant pool (the oracle).

    Accepts ``workers`` (world sharding across a process pool for
    substitution-only semantics) and fills ``stats_out`` with the
    oracle's enumeration metadata (worlds evaluated, shards,
    cancellation) for :class:`~repro.core.engine.EvalResult.stats`.
    """

    name = "enumeration"
    summary = "bounded certain-answer oracle (intersect Q(E) over [[D]] on a pool)"
    supports_workers = True
    supports_worker_pool = True

    def exactness(self, semantics, verdict, instance_is_core, extra_facts):
        if semantics.enumeration_exact(extra_facts):
            return True, ""
        return False, "superset"

    def cache_relations(self, semantics, exact, cq):
        # sound only when the computed set is the *exact* certain answers
        # (an exact pool under a substitution-only semantics) of a
        # domain-independent plan: certain(Q, D) is then determined by
        # the read relations alone — Q(v(D)) depends only on v restricted
        # to their nulls, and [[D]] ranges over all such restrictions
        if semantics.substitution_only and exact and not cq.adom_dependent:
            return cq.relations
        return None

    def execute(self, query, instance, semantics, *, pool=None, extra_facts=None,
                limit=500_000, workers=None, stats_out=None, worker_pool=None):
        return _certain.certain_answers(
            query, instance, semantics, pool=pool, extra_facts=extra_facts,
            limit=limit, workers=workers, stats_out=stats_out,
            worker_pool=worker_pool,
        )


class CTableBackend(Backend):
    """Lift the instance into a conditional table and intersect over its worlds.

    Naive databases are the ``⊤``-condition special case of c-tables,
    whose possible-world semantics is CWA — so this backend is exact for
    ``cwa`` and refuses every other semantics.  It exists as the bridge
    to the strong-representation machinery in :mod:`repro.ctables`
    (query results that *stay* conditional instead of collapsing to
    certain answers).
    """

    name = "ctable"
    summary = "conditional-table worlds (Imielinski–Lipski CWA; exact under cwa)"

    def validate(self, semantics: Semantics) -> None:
        if semantics.key != "cwa":
            raise ValueError(
                f"the ctable backend implements the CWA possible-world semantics "
                f"of conditional tables and cannot serve {semantics.key!r}; "
                f"use semantics='cwa' or another backend"
            )

    def exactness(self, semantics, verdict, instance_is_core, extra_facts):
        return True, ""

    def execute(self, query, instance, semantics, *, pool=None, extra_facts=None, limit=500_000):
        if pool is None:
            pool = _certain.default_pool(instance, query)
        lifted = CInstance.from_instance(instance)
        guard_limit(
            len(pool) ** len(lifted.nulls()), limit, "ctable world enumeration"
        )
        return lifted.certain_answers(query, pool=pool)


_REGISTRY: dict[str, Backend] = {}


def register_backend(backend: Backend, *, replace: bool = False) -> Backend:
    """Add ``backend`` to the registry under ``backend.name``."""
    if not backend.name:
        raise ValueError("backend must declare a non-empty name")
    if backend.name in _REGISTRY and not replace:
        raise ValueError(f"backend {backend.name!r} is already registered (pass replace=True)")
    _REGISTRY[backend.name] = backend
    return backend


def unregister_backend(name: str) -> None:
    """Remove a backend (mainly for tests and plug-in teardown)."""
    _REGISTRY.pop(name, None)


def get_backend(name: str) -> Backend:
    """Look up a backend by name; raises :class:`ValueError` when unknown."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; available: {', '.join(sorted(_REGISTRY))}"
        ) from None


def available_backends() -> tuple[str, ...]:
    """The registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


register_backend(NaiveBackend())
register_backend(ColumnarBackend())
register_backend(CompiledBackend())
register_backend(NaiveInterpBackend())
register_backend(EnumerationBackend())
register_backend(CTableBackend())
