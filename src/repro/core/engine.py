"""The evaluation engine: plan, route to a backend, account for exactness.

Historically this module *was* the library's front door — a free
:func:`evaluate` that re-ran the Figure-1 analyzer on every call.  The
session layer (:class:`repro.session.Database`) is now the preferred
entry point: it prepares queries once and reuses the plan.  The free
function remains as a thin, fully-working wrapper over the same
planner/backend machinery for scripts and backwards compatibility.

.. deprecated:: 1.1
   Prefer ``repro.session.Database`` for anything that evaluates more
   than once; ``evaluate`` re-plans (analyzer + core check + pool) on
   every call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Hashable, Mapping, Sequence

from repro.core.analyzer import Verdict
from repro.core.backends import get_backend
from repro.core.plan import Plan, make_plan
from repro.data.instance import Instance
from repro.logic.queries import Query
from repro.semantics import get_semantics
from repro.semantics.base import Semantics

__all__ = ["EvalResult", "evaluate", "execute_plan"]


@dataclass(frozen=True)
class EvalResult:
    """Outcome of an engine evaluation."""

    #: the computed answers (null-free tuples; ``{()}`` = Boolean true)
    answers: frozenset[tuple[Hashable, ...]]
    #: the backend that computed them: "compiled", "enumeration", "ctable", …
    method: str
    #: True when the result provably equals the certain answers
    exact: bool
    #: for inexact results, the guaranteed containment direction:
    #: "subset" (answers ⊆ certain), "superset", or "" when exact
    direction: str
    #: the analyzer's verdict that routed the evaluation
    verdict: Verdict
    #: execution metadata: backend, timings in seconds, pool size, …
    #: (excluded from equality/hashing)
    stats: Mapping[str, object] = field(default_factory=dict, compare=False)

    @property
    def holds(self) -> bool:
        """Boolean reading: is the certain answer 'true'?"""
        return bool(self.answers)

    def __repr__(self) -> str:
        status = "exact" if self.exact else f"approx({self.direction})"
        return f"EvalResult({set(self.answers)!r}, method={self.method}, {status})"


def execute_plan(
    plan: Plan,
    query: Query,
    instance: Instance,
    semantics: Semantics | None = None,
    *,
    pool: Sequence[Hashable] | None = None,
    extra_facts: int | None = None,
    limit: int = 500_000,
    workers: int | None = None,
    worker_pool=None,
    stats: Mapping[str, object] | None = None,
) -> EvalResult:
    """Run a :class:`~repro.core.plan.Plan` and package the result.

    ``stats`` entries (e.g. planning time, cache provenance from the
    session layer) are merged into the result's ``stats`` alongside the
    measured execution time.  ``workers`` (the oracle's sharding cap)
    and the per-shard metadata are forwarded to / collected from
    backends that declare ``supports_workers``; the oracle's metadata
    lands under ``stats["oracle"]``.  ``worker_pool`` (a persistent
    :class:`~repro.core.parallel.OracleWorkerPool` owned by the session
    layer) only reaches backends declaring ``supports_worker_pool``, so
    older plug-in signatures keep working.
    """
    sem = semantics if semantics is not None else get_semantics(plan.semantics)
    if sem.key != plan.semantics:
        raise ValueError(
            f"plan was made for semantics {plan.semantics!r} but is being "
            f"executed under {sem.key!r}; re-plan for the right semantics"
        )
    backend = get_backend(plan.backend)
    extra_kwargs: dict[str, object] = {}
    oracle_stats: dict[str, object] = {}
    if getattr(backend, "supports_workers", False):
        extra_kwargs = {"workers": workers, "stats_out": oracle_stats}
        if getattr(backend, "supports_worker_pool", False):
            extra_kwargs["worker_pool"] = worker_pool
    start = perf_counter()
    answers = backend.execute(
        query, instance, sem, pool=pool, extra_facts=extra_facts, limit=limit,
        **extra_kwargs,
    )
    elapsed = perf_counter() - start
    info: dict[str, object] = {
        "backend": plan.backend,
        "mode": plan.mode,
        "execution_s": elapsed,
    }
    if oracle_stats:
        info["oracle"] = oracle_stats
    if stats:
        info.update(stats)
    return EvalResult(answers, plan.backend, plan.exact, plan.direction, plan.verdict, info)


def evaluate(
    query: Query,
    instance: Instance,
    semantics: Semantics | str = "cwa",
    mode: str = "auto",
    pool: Sequence[Hashable] | None = None,
    extra_facts: int | None = None,
    limit: int = 500_000,
    workers: int | None = None,
) -> EvalResult:
    """Compute certain answers to ``query`` on ``instance`` under ``semantics``.

    Thin legacy wrapper: plans and executes in one shot, re-running the
    analyzer (and core check / pool construction where needed) every
    call.  Prefer :class:`repro.session.Database` for repeated work.

    ``mode``:

    * ``"auto"`` — compiled naive evaluation when the analyzer proves
      it sound (checking the core condition for the minimal semantics),
      otherwise bounded enumeration;
    * any registered backend name (``"compiled"``, ``"naive"``,
      ``"naive-interp"``, ``"enumeration"``, ``"ctable"``, …) — force
      that backend.

    Exactness accounting: naive evaluation under a positive verdict is
    exact; enumeration is exact for all CWA-flavoured semantics and an
    over-approximation (``certain ⊆ answers`` direction ``superset``)
    under OWA, whose extensions are truncated at ``extra_facts``; naive
    evaluation under a *negative-but-approximation* verdict (minimal
    semantics off-core, Prop. 10.13) is a subset of the certain answers.
    """
    sem = get_semantics(semantics) if isinstance(semantics, str) else semantics
    start = perf_counter()
    plan = make_plan(
        query, instance, sem, mode, pool=pool, extra_facts=extra_facts, workers=workers
    )
    planning = perf_counter() - start
    return execute_plan(
        plan,
        query,
        instance,
        sem,
        pool=pool,
        extra_facts=extra_facts,
        limit=limit,
        workers=workers,
        stats={"planning_s": planning},
    )
