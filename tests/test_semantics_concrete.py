"""Unit tests for the six concrete semantics: expand and contains.

Cross-validates the two faces of each semantics: everything expand()
yields must pass contains(), and hand-built members/non-members behave
per the paper's definitions (Sections 2.3, 4.3, 7, 10).
"""

import pytest

from repro.data.instance import Instance
from repro.data.schema import Schema
from repro.data.values import Null
from repro.semantics import (
    ALL_SEMANTICS,
    CWA,
    OWA,
    WCWA,
    MinCWA,
    MinPowersetCWA,
    PowersetCWA,
    get_semantics,
)
from repro.semantics.base import ExpansionLimitError

X, Y = Null("x"), Null("y")
K, K1 = Null(""), Null("'")

D0 = Instance({"D": [(K, K1), (K1, K)]})


class TestRegistry:
    def test_all_six_present(self):
        assert set(ALL_SEMANTICS) == {"owa", "cwa", "wcwa", "pcwa", "mincwa", "minpcwa"}

    def test_get_semantics(self):
        assert get_semantics("cwa").name == "CWA"
        with pytest.raises(ValueError):
            get_semantics("nope")

    def test_metadata_complete(self):
        for sem in ALL_SEMANTICS.values():
            assert sem.key and sem.name and sem.notation
            assert sem.hom_class and sem.sound_fragment

    def test_saturation_flags(self):
        assert get_semantics("owa").saturated
        assert get_semantics("cwa").saturated
        assert not get_semantics("mincwa").saturated
        assert not get_semantics("minpcwa").saturated


@pytest.mark.parametrize("key", sorted(ALL_SEMANTICS))
class TestExpandContainsAgreement:
    def test_expansion_members_pass_contains(self, key):
        sem = get_semantics(key)
        d = Instance({"R": [(1, X), (X, Y)]})
        extra = {"extra_facts": 1} if key in ("owa", "wcwa") else {}
        count = 0
        for complete in sem.expand(d, [1, 2], **extra):
            assert complete.is_complete()
            assert sem.contains(d, complete), f"{complete!r} ∉ [[D]] under {key}"
            count += 1
        assert count > 0

    def test_contains_rejects_incomplete(self, key):
        sem = get_semantics(key)
        with pytest.raises(ValueError):
            sem.contains(Instance.empty(), Instance({"R": [(X, 1)]}))


class TestCWA:
    def test_d0_members(self):
        sem = CWA()
        assert sem.contains(D0, Instance({"D": [(1, 2), (2, 1)]}))
        assert sem.contains(D0, Instance({"D": [(3, 3)]}))  # c = c' collapses
        assert not sem.contains(D0, Instance({"D": [(1, 2)]}))  # lost a fact? no: h(D) has both...
        # {(1,2)} is h(D) for no valuation: h(K)=1,h(K')=2 gives {(1,2),(2,1)}
        assert not sem.contains(D0, Instance({"D": [(1, 2), (2, 1), (5, 5)]}))

    def test_expand_counts(self):
        images = set(CWA().expand(D0, [1, 2]))
        # valuations: (1,1),(1,2),(2,1),(2,2) → images {(1,1)},{(1,2),(2,1)} ×2, {(2,2)}
        assert images == {
            Instance({"D": [(1, 1)]}),
            Instance({"D": [(2, 2)]}),
            Instance({"D": [(1, 2), (2, 1)]}),
        }

    def test_constants_preserved(self):
        d = Instance({"R": [(7, X)]})
        for e in CWA().expand(d, [1]):
            assert (7, 1) in e.tuples("R")

    def test_limit_guard(self):
        d = Instance({"R": [(Null(str(i)), Null(str(i + 100))) for i in range(10)]})
        with pytest.raises(ExpansionLimitError):
            list(CWA().expand(d, [1, 2, 3, 4], limit=10))


class TestOWA:
    def test_supersets_members(self):
        sem = OWA()
        d = Instance({"R": [(1, X)]})
        assert sem.contains(d, Instance({"R": [(1, 2)]}))
        assert sem.contains(d, Instance({"R": [(1, 2), (9, 9)], "S": [(4,)]}))
        assert not sem.contains(d, Instance({"R": [(2, 2)]}))  # no (1,_) fact

    def test_expand_extends_schema(self):
        d = Instance({"R": [(1, X)]})
        wide = Schema({"R": 2, "S": 1})
        results = list(OWA().expand(d, [1], schema=wide, extra_facts=1))
        assert any(e.tuples("S") for e in results)

    def test_never_exact(self):
        assert not OWA().enumeration_exact(None)
        assert not OWA().enumeration_exact(100)


class TestWCWA:
    def test_extension_within_adom(self):
        sem = WCWA()
        d = Instance({"D": [(X, Y)]})
        # {(1,2),(2,1)} extends h(D)={(1,2)} within adom {1,2}: member
        assert sem.contains(d, Instance({"D": [(1, 2), (2, 1)]}))
        # {(1,2),(3,3)} introduces a value outside adom(h(D)): not member
        assert not sem.contains(d, Instance({"D": [(1, 2), (3, 3)]}))

    def test_sandwich_cwa_wcwa_owa(self):
        # [[D]]_CWA ⊆ [[D]]_WCWA ⊆ [[D]]_OWA on concrete members
        d = Instance({"D": [(X, Y)]})
        e = Instance({"D": [(1, 2), (2, 1)]})
        assert not CWA().contains(d, e)
        assert WCWA().contains(d, e)
        assert OWA().contains(d, e)

    def test_exactness_flag(self):
        assert WCWA().enumeration_exact(None)
        assert not WCWA().enumeration_exact(1)

    def test_full_expand_small(self):
        d = Instance({"D": [(X,)]})
        results = set(WCWA().expand(d, [1]))
        assert results == {Instance({"D": [(1,)]})}


class TestPowersetCWA:
    def test_union_of_two_valuations(self):
        sem = PowersetCWA()
        d = Instance({"R": [(X, Y)]})
        # h1 = (1,2), h2 = (2,1): union {(1,2),(2,1)} is a member
        assert sem.contains(d, Instance({"R": [(1, 2), (2, 1)]}))
        # but {(1,2),(3,3)} is also a union (h2 = (3,3)) — member too
        assert sem.contains(d, Instance({"R": [(1, 2), (3, 3)]}))
        # {(1,2)} ∪ junk that is no valuation image: not a member
        assert not sem.contains(d, Instance({"R": [(1, 2)], "S": [(9,)]}))

    def test_paper_vs_cwa_difference(self):
        # D = {(⊥,⊥')}: {(1,2),(2,1)} ∉ CWA but ∈ WCWA/powerset
        d = Instance({"D": [(X, Y)]})
        e = Instance({"D": [(1, 2), (2, 1)]})
        assert not CWA().contains(d, e)
        assert PowersetCWA().contains(d, e)

    def test_expand_respects_union_bound(self):
        d = Instance({"R": [(X,)]})
        singles = set(PowersetCWA().expand(d, [1, 2], extra_facts=1))
        assert singles == {Instance({"R": [(1,)]}), Instance({"R": [(2,)]})}
        pairs = set(PowersetCWA().expand(d, [1, 2], extra_facts=2))
        assert Instance({"R": [(1,), (2,)]}) in pairs


class TestMinimalSemantics:
    def test_min_cwa_excludes_non_minimal_images(self):
        # D = {(⊥,⊥),(⊥,⊥')}: minimal valuations map ⊥' to ⊥'s value
        d = Instance({"T": [(X, X), (X, Y)]})
        sem = MinCWA()
        assert sem.contains(d, Instance({"T": [(1, 1)]}))
        assert not sem.contains(d, Instance({"T": [(1, 1), (1, 2)]}))
        # compare: plain CWA accepts the non-minimal image
        assert CWA().contains(d, Instance({"T": [(1, 1), (1, 2)]}))

    def test_min_cwa_expand(self):
        d = Instance({"T": [(X, X), (X, Y)]})
        images = set(MinCWA().expand(d, [1, 2]))
        assert images == {Instance({"T": [(1, 1)]}), Instance({"T": [(2, 2)]})}

    def test_min_powerset_union(self):
        d = Instance({"T": [(X, X), (X, Y)]})
        sem = MinPowersetCWA()
        both = Instance({"T": [(1, 1), (2, 2)]})
        assert sem.contains(d, both)
        # a union including a non-minimal image is not a member
        assert not sem.contains(d, Instance({"T": [(1, 1), (1, 2)]}))

    def test_graph_example_membership(self):
        """Prop 10.1's end: C3^C + C2^C ∈ [[C6+C4]]_CWA but ∉ [[·]]^min_CWA."""
        from repro.data.generate import cores_graph_example

        g, _, _ = cores_graph_example()
        # complete version of C3 + C2 over constants
        from repro.data.generate import cycle, disjoint_union

        target = disjoint_union(cycle(3, ["a", "b", "c"]), cycle(2, ["d", "e"]))
        assert CWA().contains(g, target)
        assert not MinCWA().contains(g, target)
