"""Stress: parallel reader threads against a mutating writer on one Database.

Every result must correspond to a *consistent* generation — never a torn
mix of two instance states, whether it came from the result cache or a
fresh evaluation.  The writer swaps the whole content of relation ``R``
atomically (one ``apply_delta`` per swap, all rows tagged with the swap
number) while also hammering an unrelated relation to exercise
cache-hits-under-mutation; readers assert that every answer set they
ever observe is exactly one swap's rows, and that the tag matches the
per-relation generation the result reports.
"""

import threading

from repro.server import QueryService
from repro.session import Database

N_ROWS = 6
N_SWAPS = 120


def _rows(tag: int) -> list[tuple]:
    return [(f"t{tag}", i) for i in range(N_ROWS)]


def test_parallel_readers_with_mutating_writer():
    db = Database({"R": _rows(0), "Noise": [(0,)]})
    q = db.query("R(x, y)", vars=("x", "y"))
    errors: list[str] = []
    done = threading.Event()

    def writer():
        try:
            for tag in range(N_SWAPS):
                db.apply_delta(
                    adds={"R": _rows(tag + 1)}, removes={"R": _rows(tag)}
                )
                # unrelated churn: must never invalidate (or tear) R results
                db.insert("Noise", (tag + 1,))
                db.delete("Noise", (tag,))
        except Exception as err:  # noqa: BLE001 - surfaced via the assert
            errors.append(f"writer: {err!r}")
        finally:
            done.set()

    def reader():
        try:
            while not done.is_set():
                result = q.evaluate()
                tags = {row[0] for row in result.answers}
                if len(result.answers) != N_ROWS or len(tags) != 1:
                    errors.append(f"torn read: {sorted(result.answers)}")
                    return
                # the rows must be exactly the state of the generation the
                # result claims: R's per-relation counter g ↔ tag "t{g}"
                gen = result.stats["generations"]["R"]
                if tags != {f"t{gen}"}:
                    errors.append(f"generation mismatch: tags={tags} gen={gen}")
                    return
        except Exception as err:  # noqa: BLE001 - surfaced via the assert
            errors.append(f"reader: {err!r}")

    readers = [threading.Thread(target=reader) for _ in range(4)]
    w = threading.Thread(target=writer)
    for t in readers:
        t.start()
    w.start()
    w.join(60)
    for t in readers:
        t.join(60)
    assert not errors, errors[:5]
    final = q.evaluate()
    assert {row[0] for row in final.answers} == {f"t{N_SWAPS}"}
    assert db.rel_generation("R") == N_SWAPS
    # both Noise writes were effective every round as well
    assert db.rel_generation("Noise") == 2 * N_SWAPS


def test_concurrent_service_clients_with_mutations():
    """The same invariant through the serving layer (batch gate enabled)."""
    db = Database({"R": _rows(0)})
    service = QueryService(db)
    errors: list[str] = []
    done = threading.Event()
    swaps = 60

    def writer():
        try:
            for tag in range(swaps):
                response = service.handle(
                    {
                        "op": "delta",
                        "adds": {"R": [[f"t{tag + 1}", i] for i in range(N_ROWS)]},
                        "removes": {"R": [[f"t{tag}", i] for i in range(N_ROWS)]},
                    }
                )
                if not response["ok"]:
                    errors.append(f"writer: {response}")
                    return
        finally:
            done.set()

    def client():
        while not done.is_set():
            response = service.handle(
                {"op": "query", "query": "R(x, y)", "vars": ["x", "y"]}
            )
            if not response["ok"]:
                errors.append(f"client: {response}")
                return
            tags = {row[0] for row in response["answers"]}
            if len(response["answers"]) != N_ROWS or len(tags) != 1:
                errors.append(f"torn read: {response['answers']}")
                return

    clients = [threading.Thread(target=client) for _ in range(3)]
    w = threading.Thread(target=writer)
    for t in clients:
        t.start()
    w.start()
    w.join(60)
    for t in clients:
        t.join(60)
    assert not errors, errors[:5]


def test_concurrent_mutators_apply_every_effective_write():
    """Two writers hitting disjoint relations never lose each other's facts."""
    db = Database()
    per_writer = 150

    def writer(name: str):
        for i in range(per_writer):
            assert db.insert(name, (i,)) == 1

    threads = [
        threading.Thread(target=writer, args=(name,)) for name in ("A", "B")
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(60)
    assert db.instance.tuples("A") == {(i,) for i in range(per_writer)}
    assert db.instance.tuples("B") == {(i,) for i in range(per_writer)}
    assert db.generation == 2 * per_writer
    assert db.rel_generation("A") == per_writer
