"""Certain answers by bounded enumeration of ``[[D]]``.

``certain(Q, D) = ⋂ { Q(E) | E ∈ [[D]] }`` (Section 2.4).  ``[[D]]`` is
infinite, so the oracle enumerates its members over a finite constant
pool.  For every CWA-flavoured semantics this is *exact* for generic
queries when the pool contains ``Const(D)``, the query's constants, and
``|Null(D)| + 1`` fresh constants: any valuation factors through a pool
valuation composed with an isomorphism fixing those constants, and
generic queries cannot distinguish the two (the saturation argument of
Sections 3.1/8; the ``+1`` spare fresh constant rules fresh values out
of the intersection).

For OWA the extensions are unbounded; ``extra_facts`` truncates them.
The computed set then *over-approximates* the certain answers (we
intersect over fewer instances), so:

* a naive answer **outside** the computed set genuinely refutes
  soundness of naive evaluation, and
* computed ⊆ naive genuinely establishes ``certain ⊆ naive``.

This is exactly the direction needed to validate Figure 1 empirically.

Execution is **incremental** and, for large valuation spaces,
**parallel**.  The query is compiled once per batch
(:func:`repro.logic.compile.compiled_query`, memoised on the query
value) and the same set-at-a-time plan is re-executed across all worlds.
For substitution-only semantics (CWA) the oracle never materialises an
:class:`~repro.data.instance.Instance` per world; instead it

* substitutes pool values into the null positions of pre-split row
  templates over lightweight :class:`~repro.data.indexes.TableContext`
  layers that share the hash indexes of the null-free relations,
* enumerates only one valuation per orbit of the interchangeable
  fresh-constant tail (restricted-growth canonical form),
* restricts enumeration to the *plan-relevant* nulls — those occurring
  in relations the compiled plan actually reads — whenever the plan is
  domain-independent (``CompiledQuery.adom_dependent`` is false), since
  two worlds agreeing on the read relations then yield identical
  answers,
* evaluates a handful of *seed worlds* first (the all-fresh valuation
  and the constant collapses), whose extremes tend to empty the running
  intersection immediately, and stops as soon as it is empty,
* and, when :func:`repro.core.plan.choose_workers` decides the world
  count justifies it, shards the canonical-valuation space across a
  ``multiprocessing`` pool (:mod:`repro.core.parallel`): each worker
  receives the picklable compiled-plan + row-template payload once,
  reuses its static indexes across its shards, stops a shard as soon as
  its running intersection is empty, and an empty shard result cancels
  every other worker.

Orbit skipping is sound because the skipped worlds are permutation
images of enumerated ones: a genuine certain answer contains no fresh
constant (some enumerated world's active domain avoids it), and
fresh-free answers survive a world iff they survive its permutation
images, by genericity.
"""

from __future__ import annotations

from array import array
from functools import lru_cache
from typing import Hashable, Iterable, Iterator, Sequence

from repro.data.dictionary import Dictionary
from repro.data.indexes import TableContext
from repro.data.instance import Instance
from repro.data.schema import Schema
from repro.data.values import Null, sort_key
from repro.logic.ast import RelAtom
from repro.logic.compile import CompiledQuery, _compiled, compiled_query
from repro.logic.queries import Query
from repro.logic.transform import subformulas, substitute
from repro.semantics.base import Semantics, guard_limit

__all__ = [
    "default_pool",
    "query_schema",
    "certain_answers",
    "certain_holds",
    "WorldSpec",
]


def _pool_parts(
    instance: Instance,
    query: Query | None = None,
    n_fresh: int | None = None,
    extra_constants: Iterable[Hashable] = (),
) -> tuple[list[Hashable], list[str]]:
    """``(sorted base constants, fresh tail)`` of the default pool.

    Split out of :func:`default_pool` so the oracle knows which suffix
    of the pool is the interchangeable fresh-constant tail (the orbit
    structure its incremental enumerator exploits).
    """
    base: set[Hashable] = set(instance.constants())
    if query is not None:
        base |= set(query.constants())
    base.update(extra_constants)
    if n_fresh is None:
        n_fresh = len(instance.nulls()) + 1
    fresh: list[str] = []
    index = 1
    while len(fresh) < n_fresh:
        candidate = f"_f{index}"
        if candidate not in base:
            fresh.append(candidate)
        index += 1
    return sorted(base, key=sort_key), fresh


def default_pool(
    instance: Instance,
    query: Query | None = None,
    n_fresh: int | None = None,
    extra_constants: Iterable[Hashable] = (),
) -> list[Hashable]:
    """The constant pool making bounded enumeration exact (see module doc).

    The pool is ordered deterministically and *type-stably* — constants
    are grouped by type name before value (via
    :func:`repro.data.values.sort_key`), never by raw ``repr``, so
    instances mixing ``int`` and ``str`` cells always enumerate in the
    same order regardless of construction order, and limit truncation
    is reproducible.  ``extra_constants`` widens the pool (e.g. with
    the constants of a whole query batch) without changing the scheme.
    """
    base, fresh = _pool_parts(instance, query, n_fresh, extra_constants)
    return base + fresh


@lru_cache(maxsize=1024)
def query_schema(query: Query) -> Schema:
    """The schema mentioned by the query's relational atoms.

    Memoised: queries are immutable values and the oracle consults the
    schema on every call, so repeated evaluation of a prepared query
    walks the formula once, not once per evaluation.
    """
    arities: dict[str, int] = {}
    for sub in subformulas(query.formula):
        if isinstance(sub, RelAtom):
            existing = arities.setdefault(sub.name, len(sub.terms))
            if existing != len(sub.terms):
                raise ValueError(
                    f"relation {sub.name!r} used with arities {existing} and {len(sub.terms)}"
                )
    return Schema(arities)


# ----------------------------------------------------------------------
# incremental world enumeration (substitution-only semantics)
# ----------------------------------------------------------------------

def _canonical_valuations(
    n_nulls: int,
    base_choices: Sequence[Hashable],
    fresh_tail: Sequence[Hashable],
    prefix: tuple[Hashable, ...] = (),
) -> Iterator[tuple[Hashable, ...]]:
    """One valuation per orbit of the fresh-tail permutation group.

    Values are drawn from ``base_choices`` freely; fresh constants enter
    in restricted-growth order (the i-th *distinct* fresh value used is
    ``fresh_tail[i]``), the standard transversal of the action of
    ``Sym(fresh_tail)`` on valuation tuples.  With an empty tail this
    degenerates to the full product — no skipping.

    ``prefix`` fixes the first ``len(prefix)`` positions; it must itself
    be a canonical prefix (i.e. produced by this generator for a shorter
    ``n_nulls``).  The parallel oracle shards the valuation space by
    distributing canonical prefixes across workers.
    """
    vals: list[Hashable] = list(prefix) + [None] * (n_nulls - len(prefix))
    fresh_in_prefix = {v for v in prefix if v in set(fresh_tail)}

    def rec(i: int, n_used: int) -> Iterator[tuple[Hashable, ...]]:
        if i == n_nulls:
            yield tuple(vals)
            return
        for v in base_choices:
            vals[i] = v
            yield from rec(i + 1, n_used)
        for j in range(n_used):
            vals[i] = fresh_tail[j]
            yield from rec(i + 1, n_used)
        if n_used < len(fresh_tail):
            vals[i] = fresh_tail[n_used]
            yield from rec(i + 1, n_used + 1)

    return rec(len(prefix), len(fresh_in_prefix))


#: above this many surviving candidate rows, per-row residual probing
#: costs more than one full set-at-a-time execution per world
_RESIDUAL_MAX = 8


@lru_cache(maxsize=8192)
def _residual_query(formula, answer_vars, row) -> CompiledQuery | None:
    """``φ(ā)`` compiled as a Boolean probe, or ``None`` when unusable.

    Substituting the answer constants turns the output join into an
    index-probing sentence check — the oracle's fast path once the
    running intersection is down to a handful of candidate rows.  Only
    domain-independent residuals qualify: their truth is a pure function
    of the relations read, so it transfers between a restricted world
    context and the full world.
    """
    cq = CompiledQuery(substitute(formula, dict(zip(answer_vars, row))), ())
    return None if cq.adom_dependent else cq


class WorldSpec:
    """The picklable payload of one incremental world enumeration.

    Everything a shard needs to enumerate and evaluate its slice of the
    valuation space: the compiled plan, the pre-split row templates of
    the null-carrying relations the plan reads, the shared null-free
    relations, and the orbit structure (base choices vs fresh tail).
    Workers receive one ``WorldSpec`` at pool initialisation and reuse
    its static hash indexes across all their shards.

    Pickling ships **int arrays, not object graphs**: every cell of the
    heavy slots (row templates, static rows, active domain, pool) is
    interned through a :class:`~repro.data.dictionary.Dictionary` and
    travels as ``array('q')`` codes plus the dictionary's decode tables,
    and the compiled plan travels as its ``(formula, answer_vars)``
    source — each worker rebuilds it once through the memoised compiler.
    Nulls cross the process boundary as dictionary codes (by label), so
    no :class:`~repro.data.values.Null` object graph is ever serialised
    per row.
    """

    __slots__ = (
        "cq",
        "templates",
        "dyn_names",
        "static",
        "base_adom",
        "read_base_cells",
        "n_slots",
        "base_choices",
        "fresh_tail",
        "seed",
        "seed_keys",
    )

    def __init__(self, cq, templates, dyn_names, static, base_adom,
                 read_base_cells, n_slots, base_choices, fresh_tail,
                 seed=None, seed_keys=frozenset()):
        self.cq = cq
        self.templates = templates
        self.dyn_names = dyn_names
        self.static = static
        self.base_adom = base_adom
        #: cells of the plan-read relations that every world shares
        #: (static rows + template constants) — the valuation image is
        #: the only world-varying part of the read cells
        self.read_base_cells = read_base_cells
        self.n_slots = n_slots
        self.base_choices = base_choices
        self.fresh_tail = fresh_tail
        #: running intersection carried over from the seed worlds
        self.seed = seed
        #: content keys of the already-evaluated seed worlds — shards
        #: skip them instead of re-evaluating
        self.seed_keys = seed_keys

    def __getstate__(self):
        d = Dictionary()
        enc = d.encode

        def pack_rows(rows):
            rows = list(rows)
            arity = len(rows[0]) if rows else 0
            return arity, len(rows), array("q", [enc(v) for row in rows for v in row])

        # template cells compose two namespaces: odd ints are valuation
        # slots (payload << 1 | 1), even ints are dictionary codes of
        # constant cells (code << 1)
        templates = {}
        for name, specs in self.templates.items():
            arity = len(specs[0]) if specs else 0
            flat = array(
                "q",
                [
                    (payload << 1) | 1 if is_null else (enc(payload) << 1)
                    for spec in specs
                    for is_null, payload in spec
                ],
            )
            templates[name] = (arity, len(specs), flat)
        return (
            (self.cq.formula, self.cq.answer_vars),
            templates,
            self.dyn_names,
            {name: pack_rows(rows) for name, rows in self.static.items()},
            array("q", [enc(v) for v in self.base_adom]),
            array("q", [enc(v) for v in self.read_base_cells]),
            self.n_slots,
            array("q", [enc(v) for v in self.base_choices]),
            array("q", [enc(v) for v in self.fresh_tail]),
            None if self.seed is None else pack_rows(self.seed),
            self.seed_keys,
            d.export_tables(),
        )

    def __setstate__(self, state):
        (cq_src, templates, dyn_names, static, base_adom, read_cells,
         n_slots, base_choices, fresh_tail, seed, seed_keys, tables) = state
        d = Dictionary.from_tables(*tables)
        dec = d.decode

        def unpack_rows(packed):
            arity, n, flat = packed
            cells = [dec(c) for c in flat]
            return frozenset(
                tuple(cells[i * arity:(i + 1) * arity]) for i in range(n)
            )

        self.cq = _compiled(*cq_src)
        self.templates = {
            name: [
                tuple(
                    (True, cell >> 1) if cell & 1 else (False, dec(cell >> 1))
                    for cell in flat[i * arity:(i + 1) * arity]
                )
                for i in range(n)
            ]
            for name, (arity, n, flat) in templates.items()
        }
        self.dyn_names = dyn_names
        self.static = {name: unpack_rows(packed) for name, packed in static.items()}
        self.base_adom = frozenset(map(dec, base_adom))
        self.read_base_cells = frozenset(map(dec, read_cells))
        self.n_slots = n_slots
        self.base_choices = tuple(map(dec, base_choices))
        self.fresh_tail = tuple(map(dec, fresh_tail))
        self.seed = None if seed is None else unpack_rows(seed)
        self.seed_keys = seed_keys

    def base_context(self) -> TableContext | None:
        return TableContext(self.static) if self.static else None

    def seed_valuations(self) -> Iterator[tuple[Hashable, ...]]:
        """Extreme worlds whose evaluation tends to kill the intersection.

        The all-distinct-fresh valuation (the "most generic" world) and
        the per-constant total collapses are canonical valuations, so
        re-encountering them during the main sweep is caught by the
        content dedup.
        """
        n = self.n_slots
        if n == 0:
            return
        if len(self.fresh_tail) >= n:
            yield tuple(self.fresh_tail[:n])
        for c in self.base_choices:
            yield (c,) * n

    def _residual_candidates(self, running: frozenset):
        """Per-candidate Boolean probes, or ``None`` when ineligible.

        Eligible when the plan is domain-independent, the query is
        non-Boolean, the running intersection is small, and every
        residual compiles domain-independent.  Each entry is
        ``(row, probe, needed)`` where ``needed`` lists the row's values
        that only a valuation image can put among the read cells.
        """
        if self.cq.adom_dependent or not self.cq.answer_vars:
            return None
        if not running or len(running) > _RESIDUAL_MAX:
            return None
        out = []
        for row in running:
            probe = _residual_query(self.cq.formula, self.cq.answer_vars, row)
            if probe is None:
                return None
            needed = tuple(v for v in set(row) if v not in self.read_base_cells)
            out.append((row, probe, needed))
        return out

    def _verify(
        self,
        candidates: list,
        valuations: Iterable[tuple[Hashable, ...]],
        base_ctx: TableContext | None,
        seen: set | None = None,
    ) -> tuple[frozenset, int, bool]:
        """Drop candidates falsified by some world (the residual fast path).

        ``row ∈ Q(world)`` iff the residual ``φ(row)`` holds *and* every
        value of ``row`` is among the world's read cells — which differ
        from :attr:`read_base_cells` only by the valuation's image.
        """
        templates, dyn_names = self.templates, self.dyn_names
        base_adom = self.base_adom
        if seen is None:
            seen = set()
        alive = list(candidates)
        worlds = 0
        for vals in valuations:
            rels = {
                name: frozenset(
                    tuple(vals[payload] if is_null else payload
                          for is_null, payload in spec)
                    for spec in specs
                )
                for name, specs in templates.items()
            }
            key = tuple(rels[name] for name in dyn_names)
            if key in seen:
                continue
            seen.add(key)
            worlds += 1
            ctx = TableContext(rels, adom=base_adom | frozenset(vals), base=base_ctx)
            vset: set | None = None
            survivors = []
            for row, probe, needed in alive:
                if needed:
                    if vset is None:
                        vset = set(vals)
                    if not all(v in vset for v in needed):
                        continue
                if probe.answers(ctx):
                    survivors.append((row, probe, needed))
            alive = survivors
            if not alive:
                return frozenset(), worlds, True
        return frozenset(row for row, _, _ in alive), worlds, False

    def run(
        self,
        valuations: Iterable[tuple[Hashable, ...]],
        running: frozenset | None = None,
        base_ctx: TableContext | None = None,
        seen: set | None = None,
    ) -> tuple[frozenset | None, int, bool]:
        """``running ∩ ⋂ Q(v(D))`` over ``valuations``.

        Returns ``(intersection, worlds_evaluated, stopped_early)``;
        the intersection is ``None`` only when it never started (no
        worlds and ``running is None``).  Stops as soon as the running
        intersection is empty — the caller uses ``stopped_early`` to
        cancel sibling shards.  When the running intersection is already
        down to a few rows, switches to per-candidate residual probing
        (:meth:`_verify`) instead of full set-at-a-time evaluation.

        ``seen`` (world content keys) dedups across calls: passing the
        set mutated by the seed-world run makes the main sweep skip the
        seeds instead of re-evaluating them.
        """
        if base_ctx is None:
            base_ctx = self.base_context()
        if running is not None:
            candidates = self._residual_candidates(running)
            if candidates is not None:
                return self._verify(candidates, valuations, base_ctx, seen)
        templates, dyn_names = self.templates, self.dyn_names
        base_adom, cq = self.base_adom, self.cq
        if seen is None:
            seen = set()
        result = running
        worlds = 0
        for vals in valuations:
            rels = {
                name: frozenset(
                    tuple(vals[payload] if is_null else payload
                          for is_null, payload in spec)
                    for spec in specs
                )
                for name, specs in templates.items()
            }
            key = tuple(rels[name] for name in dyn_names)
            if key in seen:
                continue
            seen.add(key)
            # every relevant null occurs in some template row, so the
            # world's query-visible domain is the static/constant part
            # plus the valuation's image
            ctx = TableContext(rels, adom=base_adom | frozenset(vals), base=base_ctx)
            rows = cq.answers(ctx)
            worlds += 1
            result = rows if result is None else result & rows
            if result is not None and not result:
                return result, worlds, True
        return result, worlds, False


def _build_spec(
    cq: CompiledQuery,
    instance: Instance,
    semantics: Semantics,
    pool: Sequence[Hashable],
    fresh_tail: Sequence[Hashable],
    limit: int,
) -> tuple[WorldSpec, frozenset, dict]:
    """Split the instance into a :class:`WorldSpec` plus oracle metadata.

    Performs the plan-relevance restriction: when the compiled plan is
    domain-independent, only nulls occurring in relations the plan reads
    are enumerated (worlds agreeing on those relations answer alike, so
    the intersection over the full valuation space equals the one over
    the restricted space).
    """
    nulls = sorted(instance.nulls(), key=sort_key)
    read = cq.relations
    restrict = not cq.adom_dependent
    null_rows: dict[str, frozenset] = {}
    static: dict[str, frozenset] = {}
    for name in instance.relations:
        rows = instance.tuples(name)
        if any(isinstance(v, Null) for row in rows for v in row):
            null_rows[name] = rows
        else:
            static[name] = rows

    if restrict:
        relevant_set = {
            v
            for name in null_rows
            if name in read
            for row in null_rows[name]
            for v in row
            if isinstance(v, Null)
        }
        relevant = [n for n in nulls if n in relevant_set]
        template_names = [name for name in null_rows if name in read]
    else:
        relevant = list(nulls)
        template_names = list(null_rows)

    guard_limit(len(pool) ** len(relevant), limit, f"{semantics.name} expansion")

    fresh_set = frozenset(fresh_tail)
    base_choices = [v for v in pool if v not in fresh_set]
    if relevant and not base_choices and len(fresh_set) == 1:
        # a single interchangeable value that every valuation must use is
        # not a skippable tail: no world's active domain avoids it, so
        # rows mentioning it can be genuinely certain — enumerate plainly
        fresh_tail, fresh_set = (), frozenset()
        base_choices = list(pool)

    null_index = {n: i for i, n in enumerate(relevant)}
    # per relation: rows as ((is_null, payload), ...) — payload is the
    # null's valuation slot when is_null, the constant cell otherwise
    base_constants: set[Hashable] = set()
    read_cells: set[Hashable] = set()
    templates: dict[str, list[tuple[tuple[bool, object], ...]]] = {
        name: [
            tuple(
                (True, null_index[v]) if isinstance(v, Null) else (False, v)
                for v in row
            )
            for row in null_rows[name]
        ]
        for name in template_names
    }
    for name in template_names:
        cells = {
            v for row in null_rows[name] for v in row if not isinstance(v, Null)
        }
        base_constants |= cells
        read_cells |= cells
    for name, rows in static.items():
        for row in rows:
            base_constants.update(row)
            if name in read:
                read_cells.update(row)

    spec = WorldSpec(
        cq=cq,
        templates=templates,
        dyn_names=tuple(sorted(templates)),
        static=static,
        base_adom=frozenset(base_constants),
        read_base_cells=frozenset(read_cells),
        n_slots=len(relevant),
        base_choices=tuple(base_choices),
        fresh_tail=tuple(fresh_tail),
    )
    info = {
        "total_nulls": len(nulls),
        "relevant_nulls": len(relevant),
        "restricted": restrict and len(relevant) < len(nulls),
    }
    return spec, fresh_set, info


def _certain_by_valuations(
    cq: CompiledQuery,
    instance: Instance,
    semantics: Semantics,
    pool: Sequence[Hashable],
    fresh_tail: Sequence[Hashable],
    limit: int,
    workers: int = 0,
    stats_out: dict | None = None,
    worker_pool=None,
) -> frozenset[tuple[Hashable, ...]]:
    """``⋂ Q(v(D))`` over valuations, without building an Instance per world.

    The relations are split once: null-free relations live in a shared
    base context (their hash indexes are built at most once for the
    whole enumeration); null-carrying relations are pre-compiled into
    row templates and substituted per valuation.  ``fresh_tail`` lists
    the interchangeable pool values — those mentioned by neither the
    instance nor the query (empty = enumerate the full product).
    ``workers`` > 0 shards the valuation space across a process pool
    (:mod:`repro.core.parallel`); the cost model may still fall back to
    the serial path for small spaces.  ``worker_pool`` reuses a
    persistent :class:`~repro.core.parallel.OracleWorkerPool` instead of
    forking a fresh pool for this call (the serving path).
    """
    spec, fresh_set, info = _build_spec(cq, instance, semantics, pool, fresh_tail, limit)

    if stats_out is not None:
        stats_out.update(info)

    if workers:
        # re-apply the cost model on the *restricted* valuation space:
        # the planner's estimate uses all nulls, but plan-relevance may
        # have shrunk the space below the parallel threshold
        from repro.core import plan as _plan

        workers = _plan.choose_workers(workers, len(pool) ** spec.n_slots)

    base_ctx = spec.base_context()
    seen: set[tuple] = set()
    # seed worlds: evaluated serially even in parallel mode — extreme
    # worlds often empty the intersection before any worker spawns
    seed_result, seed_worlds, stopped = spec.run(
        spec.seed_valuations(), None, base_ctx, seen=seen
    )
    if stats_out is not None:
        stats_out["seed_worlds"] = seed_worlds

    result: frozenset | None
    if stopped:
        result = seed_result
        if stats_out is not None:
            stats_out.update(mode="seed", workers=0, worlds=seed_worlds)
    elif workers and workers > 1 and spec.n_slots > 0:
        from repro.core.parallel import parallel_intersection

        spec.seed = seed_result
        spec.seed_keys = frozenset(seen)
        result = parallel_intersection(
            spec, workers, stats_out=stats_out, worker_pool=worker_pool
        )
    else:
        result, worlds, _ = spec.run(
            _canonical_valuations(spec.n_slots, spec.base_choices, spec.fresh_tail),
            seed_result,
            base_ctx,
            seen=seen,  # seed worlds are not re-evaluated by the sweep
        )
        if stats_out is not None:
            stats_out.update(mode="serial", workers=0, worlds=seed_worlds + worlds)

    if result is None:
        raise RuntimeError(
            f"[[D]] came out empty over the pool — {semantics!r} violated totality"
        )
    if result and fresh_set:
        # a certain answer never mentions a fresh constant (some world's
        # active domain avoids it); dropping such rows here replays what
        # the skipped permutation-image worlds would have done
        result = frozenset(row for row in result if fresh_set.isdisjoint(row))
    return result


def certain_answers(
    query: Query,
    instance: Instance,
    semantics: Semantics,
    pool: Sequence[Hashable] | None = None,
    extra_facts: int | None = None,
    limit: int = 500_000,
    workers: int | None = None,
    stats_out: dict | None = None,
    worker_pool=None,
) -> frozenset[tuple[Hashable, ...]]:
    """``⋂ { Q(E) : E ∈ [[instance]] }`` over the (defaulted) pool.

    Boolean queries yield ``{()}`` for certainly-true and ``frozenset()``
    otherwise, matching :meth:`Query.eval_raw`.  The query is compiled
    once (memoised across calls) and the same set-at-a-time plan runs on
    every world; enumeration stops as soon as the running intersection
    is empty.

    ``workers`` requests parallel world sharding for substitution-only
    semantics (CWA); :func:`repro.core.plan.choose_workers` routes small
    valuation spaces back to the serial path.  ``stats_out``, when given,
    is filled in place with enumeration metadata (worlds evaluated,
    sharding, cancellation).
    """
    if pool is None:
        base, fresh = _pool_parts(instance, query)
        pool = base + fresh
    cq = compiled_query(query)
    if semantics.substitution_only:
        # the interchangeable tail of *any* pool: values mentioned by
        # neither the instance nor the query are anonymous to both, so
        # permuting them fixes D and Q while permuting worlds — exactly
        # the genericity the orbit transversal needs.  (For the default
        # pool this recovers the |Null(D)|+1 fresh constants; for a
        # session's batch pool it also covers the other queries'
        # constants, which are fresh with respect to *this* query.)
        known = instance.constants() | set(query.constants())
        fresh_tail = tuple(v for v in pool if v not in known)
        if workers:
            from repro.core import plan as _plan

            workers = _plan.choose_workers(
                workers, len(pool) ** len(instance.nulls())
            )
        return _certain_by_valuations(
            cq, instance, semantics, list(pool), fresh_tail, limit,
            workers=workers or 0, stats_out=stats_out, worker_pool=worker_pool,
        )
    schema = instance.schema().union(query_schema(query))
    result: frozenset[tuple[Hashable, ...]] | None = None
    worlds = 0
    for complete in semantics.expand(
        instance, list(pool), schema=schema, extra_facts=extra_facts, limit=limit
    ):
        rows = cq.answers(complete)
        worlds += 1
        result = rows if result is None else result & rows
        if not result:
            break
    if stats_out is not None:
        stats_out.update(mode="expand", workers=0, worlds=worlds)
    if result is None:
        raise RuntimeError(
            f"[[D]] came out empty over the pool — {semantics!r} violated totality"
        )
    return result


def certain_holds(
    query: Query,
    instance: Instance,
    semantics: Semantics,
    pool: Sequence[Hashable] | None = None,
    extra_facts: int | None = None,
    limit: int = 500_000,
    workers: int | None = None,
) -> bool:
    """Certain truth of a Boolean query."""
    if not query.is_boolean:
        raise ValueError(f"query {query.name!r} is {query.arity}-ary; use certain_answers()")
    return bool(
        certain_answers(query, instance, semantics, pool, extra_facts, limit, workers)
    )
