"""The common interface of semantics of incompleteness.

A semantics assigns to each incomplete database ``D`` a set ``[[D]]`` of
complete databases (Section 2.3).  ``[[D]]`` is infinite (valuations
range over the countably infinite ``Const``), so the library exposes it
two ways:

* :meth:`Semantics.contains` — an exact membership test
  ``E ∈ [[D]]?`` for a concrete complete instance ``E``;
* :meth:`Semantics.expand` — enumeration of the members of ``[[D]]``
  whose values are drawn from a finite constant *pool*.

For generic queries, certain answers over a pool containing
``Const(D)``, the query's constants and ``|Null(D)| + 1`` fresh
constants coincide with the true certain answers (the saturation
argument of Section 3.1: any valuation factors through a pool valuation
up to an isomorphism fixing the relevant constants); ``repro.core``
builds such pools.  The one semantics where enumeration is inherently
approximate is OWA, whose extensions are unbounded — the
``extra_facts`` knob bounds how many new tuples an extension may add,
and the certain-answer layer documents the direction of the
approximation.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from typing import Hashable, Iterator, Sequence

from repro.data.instance import Instance
from repro.data.schema import Schema
from repro.data.values import sort_key
from repro.homs.search import iter_mappings

__all__ = ["Semantics", "ExpansionLimitError", "iter_valuation_images", "iter_facts_over"]


class ExpansionLimitError(RuntimeError):
    """Raised when a bounded enumeration of ``[[D]]`` would explode."""


def iter_valuation_images(
    instance: Instance, pool: Sequence[Hashable]
) -> Iterator[Instance]:
    """All images ``v(D)`` for valuations ``v : Null(D) → pool`` (deduped)."""
    seen: set[Instance] = set()
    nulls = sorted(instance.nulls(), key=sort_key)
    for valuation in iter_mappings(nulls, list(pool)):
        image = instance.apply(valuation)
        if image not in seen:
            seen.add(image)
            yield image


def iter_facts_over(
    schema: Schema, domain: Sequence[Hashable]
) -> Iterator[tuple[str, tuple]]:
    """Every possible fact over ``schema`` with values from ``domain``."""
    values = sorted(domain, key=sort_key)
    for name in schema.relations:
        for row in itertools.product(values, repeat=schema.arity(name)):
            yield name, row


class Semantics(ABC):
    """Abstract base: one of the paper's semantics of incompleteness."""

    #: short identifier, e.g. ``"cwa"``
    key: str = ""
    #: display name, e.g. ``"CWA"``
    name: str = ""
    #: the paper's notation, e.g. ``"[[·]]_CWA"``
    notation: str = ""
    #: does the induced database domain have the saturation property?
    saturated: bool = True
    #: the class of homomorphisms characterising naive evaluation
    #: (Corollary 4.9 / Proposition 10.7)
    hom_class: str = ""
    #: the syntactic fragment for which naive evaluation is sound
    #: (Figure 1)
    sound_fragment: str = ""
    #: default bound on extension facts for :meth:`expand`:
    #: ``None`` = enumerate all extensions (exact), an int = truncate.
    #: Only meaningful for semantics that add facts (OWA, WCWA).
    default_extra_facts: int | None = None
    #: True when ``expand`` enumerates exactly the valuation images
    #: ``{v(D) | v : Null(D) → pool}`` — nothing added, nothing filtered.
    #: The certain-answer oracle uses this to switch to its incremental
    #: world enumerator (substitute null positions in place, share
    #: indexes of null-free relations, skip fresh-constant orbits)
    #: instead of materialising an :class:`Instance` per world.
    substitution_only: bool = False

    def enumeration_exact(self, extra_facts: int | None) -> bool:
        """Does :meth:`expand` with this bound cover all of ``[[D]]`` over the pool?

        True for all substitution-only semantics.  OWA is never exact
        (its extensions are unbounded); WCWA is exact only with
        ``extra_facts=None`` (full extension enumeration).
        """
        return True

    @abstractmethod
    def expand(
        self,
        instance: Instance,
        pool: Sequence[Hashable],
        schema: Schema | None = None,
        extra_facts: int | None = None,
        limit: int = 500_000,
    ) -> Iterator[Instance]:
        """Enumerate the members of ``[[instance]]`` with values in ``pool``.

        ``schema`` widens the vocabulary for semantics that may add
        facts (OWA, WCWA); ``extra_facts`` bounds how many tuples an
        extension may add (``None`` = the semantics' default, which is
        "all" for WCWA and a small bound for OWA).  ``limit`` guards
        against explosion — if the enumeration provably exceeds it,
        :class:`ExpansionLimitError` is raised rather than silently
        truncating.
        """

    @abstractmethod
    def contains(self, instance: Instance, complete: Instance) -> bool:
        """Exact membership test ``complete ∈ [[instance]]``."""

    def __repr__(self) -> str:
        return f"<semantics {self.notation or self.name}>"

    def _check_complete(self, complete: Instance) -> None:
        if not complete.is_complete():
            raise ValueError(
                f"membership is defined for complete instances; got nulls in {complete!r}"
            )


def guard_limit(count: int, limit: int, what: str) -> None:
    """Raise :class:`ExpansionLimitError` when ``count > limit``."""
    if count > limit:
        raise ExpansionLimitError(
            f"{what} would enumerate {count} instances (limit {limit}); "
            "shrink the instance/pool or raise the limit"
        )
