"""Unit tests for repro.homs.search: the backtracking homomorphism engine."""

from repro.data.generate import cycle
from repro.data.instance import Instance
from repro.data.values import Null
from repro.homs.search import (
    find_homomorphism,
    find_isomorphism,
    has_homomorphism,
    iter_homomorphisms,
    iter_mappings,
)

X, Y, Z = Null("x"), Null("y"), Null("z")


class TestBasicSearch:
    def test_identity_hom_exists(self):
        d = Instance({"R": [(1, 2)]})
        assert has_homomorphism(d, d)

    def test_null_to_constant(self):
        d = Instance({"R": [(1, X)]})
        e = Instance({"R": [(1, 2)]})
        hom = find_homomorphism(d, e)
        assert hom is not None and hom[X] == 2

    def test_constants_block_by_default(self):
        d = Instance({"R": [(1, 2)]})
        e = Instance({"R": [(3, 4)]})
        assert not has_homomorphism(d, e)
        assert has_homomorphism(d, e, fix_constants=False)

    def test_repeated_null_consistency(self):
        d = Instance({"R": [(X, X)]})
        e = Instance({"R": [(1, 2)]})
        assert not has_homomorphism(d, e)
        e2 = Instance({"R": [(1, 1)]})
        assert has_homomorphism(d, e2)

    def test_cross_fact_consistency(self):
        d = Instance({"R": [(1, X)], "S": [(X, 4)]})
        e = Instance({"R": [(1, 7)], "S": [(8, 4)]})
        assert not has_homomorphism(d, e)
        e2 = Instance({"R": [(1, 7)], "S": [(7, 4)]})
        assert has_homomorphism(d, e2)

    def test_no_hom_into_missing_relation(self):
        d = Instance({"R": [(X,)]})
        e = Instance({"S": [(1,)]})
        assert not has_homomorphism(d, e)

    def test_empty_source_maps_anywhere(self):
        assert has_homomorphism(Instance.empty(), Instance({"R": [(1,)]}))
        assert has_homomorphism(Instance.empty(), Instance.empty())

    def test_iter_counts_all_homs(self):
        d = Instance({"R": [(X,)]})
        e = Instance({"R": [(1,), (2,), (3,)]})
        assert len(list(iter_homomorphisms(d, e))) == 3


class TestGraphHoms:
    def test_even_cycle_maps_to_c2(self):
        c4, c2 = cycle(4), cycle(2, values=[Null("u"), Null("v")])
        assert has_homomorphism(c4, c2, fix_constants=False)

    def test_odd_cycle_does_not_map_to_even(self):
        c3, c2 = cycle(3), cycle(2, values=[Null("u"), Null("v")])
        assert not has_homomorphism(c3, c2, fix_constants=False)

    def test_c6_maps_to_c3(self):
        c6 = cycle(6)
        c3 = cycle(3, values=[Null("a"), Null("b"), Null("c")])
        assert has_homomorphism(c6, c3, fix_constants=False)

    def test_c4_does_not_map_to_c3(self):
        c4 = cycle(4)
        c3 = cycle(3, values=[Null("a"), Null("b"), Null("c")])
        assert not has_homomorphism(c4, c3, fix_constants=False)


class TestModes:
    def test_strong_onto(self):
        d = Instance({"R": [(X, Y)]})
        e = Instance({"R": [(1, 2), (3, 4)]})
        assert has_homomorphism(d, e)  # plain: map into one fact
        assert not has_homomorphism(d, e, strong_onto=True)  # can't cover both

    def test_onto_vs_strong_onto(self):
        # paper's example: D = {(1,2)} maps strongly onto {(3,4)} and
        # onto (but not strongly onto) {(3,4),(4,3)}
        d = Instance({"D": [(1, 2)]})
        d1 = Instance({"D": [(3, 4)]})
        d2 = Instance({"D": [(3, 4), (4, 3)]})
        assert has_homomorphism(d, d1, fix_constants=False, strong_onto=True)
        assert has_homomorphism(d, d2, fix_constants=False, onto=True)
        assert not has_homomorphism(d, d2, fix_constants=False, strong_onto=True)

    def test_valuation_mode(self):
        d = Instance({"R": [(X, Y)]})
        e = Instance({"R": [(1, 2)], "S": [(Null("t"),)]})
        hom = find_homomorphism(d, e, require_complete_image=True)
        assert hom is not None
        assert all(not isinstance(v, Null) for v in hom.values())

    def test_injective(self):
        d = Instance({"R": [(X,), (Y,)]})
        e = Instance({"R": [(1,)]})
        assert has_homomorphism(d, e)
        assert not has_homomorphism(d, e, injective=True)

    def test_pinned(self):
        d = Instance({"R": [(X,)]})
        e = Instance({"R": [(1,), (2,)]})
        homs = list(iter_homomorphisms(d, e, pinned={X: 2}))
        assert homs == [{X: 2}]
        assert not list(iter_homomorphisms(d, e, pinned={X: 3}))


class TestIsomorphism:
    def test_renaming_nulls(self):
        a = Instance({"R": [(X, Y)]})
        b = Instance({"R": [(Null("p"), Null("q"))]})
        iso = find_isomorphism(a, b)
        assert iso is not None
        assert a.apply(iso) == b

    def test_size_mismatch_fast_path(self):
        a = Instance({"R": [(X,)]})
        b = Instance({"R": [(Null("p"),), (Null("q"),)]})
        assert find_isomorphism(a, b) is None

    def test_cycles_of_different_length(self):
        assert find_isomorphism(cycle(3), cycle(4), fix_constants=False) is None

    def test_same_cycle_relabelled(self):
        assert (
            find_isomorphism(cycle(5), cycle(5, values=[Null(f"w{i}") for i in range(5)]))
            is not None
        )


class TestIterMappings:
    def test_counts(self):
        maps = list(iter_mappings([X, Y], [1, 2, 3]))
        assert len(maps) == 9
        assert all(set(m) == {X, Y} for m in maps)

    def test_empty_domain(self):
        assert list(iter_mappings([], [1, 2])) == [{}]

    def test_base_extension(self):
        maps = list(iter_mappings([X], [1], base={Y: 5}))
        assert maps == [{Y: 5, X: 1}]
