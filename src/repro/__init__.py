"""repro — naive evaluation and certain answers over incomplete databases.

A faithful, executable reproduction of Gheerbrant, Libkin & Sirangelo,
*"When is Naïve Evaluation Possible?"* (PODS 2013): naive databases with
marked nulls, six semantics of incompleteness, homomorphism machinery
(search, cores, minimal valuations), semantic orderings, FO fragments,
and an evaluation engine that uses naive evaluation exactly when the
paper proves it computes certain answers.

Quickstart::

    from repro import Instance, Null, Query, parse, evaluate

    x = Null("1")
    db = Instance({"R": [(1, x)], "S": [(x, 4)]})
    q = Query(parse("exists z (R(x, z) & S(z, y))"), ("x", "y"))
    print(evaluate(q, db, semantics="owa").answers)   # {(1, 4)}
"""

from repro.core import (
    EvalResult,
    Verdict,
    analyze,
    certain_answers,
    certain_holds,
    evaluate,
    naive_eval,
    naive_holds,
    possible_answers,
    possible_holds,
)
from repro.data import Instance, Null, NullFactory, Schema
from repro.homs import core, find_homomorphism, has_homomorphism, is_core
from repro.logic import Query, Rel, Var, parse
from repro.semantics import (
    ALL_SEMANTICS,
    CWA,
    OWA,
    WCWA,
    MinCWA,
    MinPowersetCWA,
    PowersetCWA,
    get_semantics,
)

__version__ = "1.0.0"

__all__ = [
    "EvalResult",
    "Verdict",
    "analyze",
    "certain_answers",
    "certain_holds",
    "evaluate",
    "naive_eval",
    "naive_holds",
    "possible_answers",
    "possible_holds",
    "Instance",
    "Null",
    "NullFactory",
    "Schema",
    "core",
    "find_homomorphism",
    "has_homomorphism",
    "is_core",
    "Query",
    "Rel",
    "Var",
    "parse",
    "ALL_SEMANTICS",
    "CWA",
    "OWA",
    "WCWA",
    "MinCWA",
    "MinPowersetCWA",
    "PowersetCWA",
    "get_semantics",
    "__version__",
]
