"""Durable serving: kill -9 a live server, restart it, resume warm.

Starts a *real* ``repro serve --data-dir`` subprocess (the exact
production entry point), streams acknowledged writes at it over TCP,
then kills it with SIGKILL — no graceful shutdown, no final snapshot.
The restarted server recovers the write-ahead log and resumes with the
same rows, the same certain answers, and the same generation counters
the clients saw before the crash (so generation-tagged client state
stays meaningful).

Run with::

    python examples/durable_service.py
"""

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

SRC = str(Path(__file__).resolve().parent.parent / "src")


def start_server(data_dir):
    """Launch ``python -m repro serve --data-dir ...``; return (proc, address)."""
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", "serve", "--port", "0",
         "--data-dir", str(data_dir)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env={**os.environ, "PYTHONPATH": SRC},
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise RuntimeError(f"server died during startup (rc={proc.poll()})")
        print(f"  [server] {line.rstrip()}")
        if "listening on" in line:
            host, port = line.strip().rsplit(" ", 1)[-1].rsplit(":", 1)
            return proc, (host, int(port))
    raise RuntimeError("server did not announce its address")


class Client:
    """A minimal JSON-lines client: one request per line, one response back."""

    def __init__(self, address):
        self.sock = socket.create_connection(address, timeout=10)
        self.reader = self.sock.makefile("r", encoding="utf-8")
        self.writer = self.sock.makefile("w", encoding="utf-8")

    def call(self, **request):
        self.writer.write(json.dumps(request) + "\n")
        self.writer.flush()
        response = json.loads(self.reader.readline())
        assert response["ok"], response
        return response


def main() -> None:
    data_dir = Path(tempfile.mkdtemp(prefix="repro-durable-")) / "state"
    join = "exists z (R(x, z) & S(z, y))"

    # 1. first life: seed a durable session over the wire
    print("first life:")
    proc, address = start_server(data_dir)
    client = Client(address)
    client.call(op="insert", relation="R", rows=[[1, "?x"], [2, 3]])
    client.call(op="insert", relation="S", rows=[["?x", 4]])
    first = client.call(op="query", query=join, vars=["x", "y"])
    print(f"  answers={first['answers']} cache={first['cache']} "
          f"generation={first['generation']}")
    assert first["answers"] == [[1, 4]]

    again = client.call(op="query", query=join, vars=["x", "y"])
    assert again["cache"] == "hit"  # warmed up within this life

    # 2. the crash: SIGKILL — no atexit handler runs, no snapshot is
    # written; only the fsync'd write-ahead log survives
    print(f"\nkill -9 {proc.pid} (no graceful shutdown)")
    os.kill(proc.pid, signal.SIGKILL)
    proc.wait(timeout=30)

    # 3. second life: the same data dir recovers the acknowledged state
    print("\nsecond life (same --data-dir):")
    proc2, address2 = start_server(data_dir)
    client2 = Client(address2)
    stats = client2.call(op="stats")
    print(f"  recovered generation={stats['generation']} "
          f"facts={stats['fact_count']} storage={stats['storage']['wal_records']} "
          f"WAL records pending")
    assert stats["durable"] and stats["generation"] == first["generation"]

    revived = client2.call(op="query", query=join, vars=["x", "y"])
    print(f"  answers={revived['answers']} generation={revived['generation']}")
    assert revived["answers"] == first["answers"]
    assert revived["generation"] == first["generation"]

    # ... and the session keeps going: writes, checkpoint, shutdown
    client2.call(op="insert", relation="R", rows=[[5, "?x"]])
    checkpoint = client2.call(op="checkpoint")
    print(f"  checkpoint: snapshot at generation {checkpoint['generation']}, "
          f"WAL truncated to {checkpoint['storage']['wal_records']} records")
    final = client2.call(op="query", query=join, vars=["x", "y"])
    assert final["answers"] == [[1, 4], [5, 4]]
    print(f"  after new write: answers={final['answers']}")

    proc2.terminate()
    proc2.wait(timeout=30)
    print("\nkill-and-restart resumed with identical answers and generations — OK.")


if __name__ == "__main__":
    main()
