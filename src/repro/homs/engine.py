"""CSP-grade homomorphism search over per-fact candidate tables.

The legacy extender (:mod:`repro.homs.search`) matches source facts one
by one against *every* tuple of the target relation, re-sorting the
candidates at each node.  This module treats homomorphism search as the
constraint-satisfaction problem it is:

* **candidate tables** — each source fact gets the list of target
  tuples it can map onto *in isolation*, probed from the target's
  per-relation hash indexes (:mod:`repro.data.indexes`): constant
  positions key the probe under ``fix_constants``, repeated-value
  patterns filter, complete-image mode drops null-carrying candidates.
  Tables are memoised per ``(source, target, flags)`` value — instances
  are immutable, so the session layer's generation bump naturally keys
  the cache;
* **most-constrained-first ordering** — the next fact to assign is
  always one with the fewest *currently consistent* candidates (dynamic
  MRV), so sparse relations and constant-rich facts are decided first;
* **forward checking** — assigning a fact filters the candidate lists
  of every unassigned fact sharing one of the newly bound values; a
  wiped-out list terminates the branch immediately (conflict-driven
  early termination), long before the legacy extender would notice;
* **structural pre-checks** — strong-onto needs matching relation sets
  with ``|target_R| ≤ |source_R|``, onto needs
  ``|adom(target)| ≤ |adom(source)|``, injective the reverse; violations
  fail in O(1) without any search.

The engine yields exactly the homomorphisms the legacy extender yields
(as dicts on the source active domain, constants included) — the
differential property suite in ``tests/test_homs_engine.py`` pins the
sets equal — but possibly in a different order.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Hashable, Iterator, Mapping

from repro.data.indexes import context_for
from repro.data.instance import Instance
from repro.data.values import Null, sort_key

__all__ = ["candidate_tables", "iter_homomorphisms_csp", "clear_candidate_cache"]

Assignment = dict[Hashable, Hashable]

_MISS = object()


@lru_cache(maxsize=512)
def candidate_tables(
    source: Instance,
    target: Instance,
    fix_constants: bool,
    complete_image: bool,
) -> tuple[tuple[tuple[str, tuple], tuple[tuple, ...]], ...]:
    """``((fact, candidates), ...)`` — the unary consistency tables.

    A candidate of fact ``(name, row)`` is a target tuple of ``name``
    that agrees with the row's constants (under ``fix_constants``),
    respects its repeated-value pattern, and is null-free when
    ``complete_image`` demands valuations.  Probed from the target's
    hash indexes so constant-rich facts cost one bucket lookup, not a
    relation scan.  Memoised on the instance values.
    """
    ctx = context_for(target)
    out = []
    for name, row in source.facts():
        first_pos: dict[Hashable, int] = {}
        const_positions: list[int] = []
        const_key: list[Hashable] = []
        eq_checks: list[tuple[int, int]] = []
        for i, value in enumerate(row):
            if fix_constants and not isinstance(value, Null):
                const_positions.append(i)
                const_key.append(value)
            elif value in first_pos:
                eq_checks.append((i, first_pos[value]))
            else:
                first_pos[value] = i
        rows = target.tuples(name)
        if rows and const_positions:
            rows = ctx.index(name, tuple(const_positions)).get(tuple(const_key), ())
        cands = [
            cand
            for cand in rows
            if all(cand[i] == cand[j] for i, j in eq_checks)
            and not (complete_image and any(isinstance(v, Null) for v in cand))
        ]
        cands.sort(key=lambda t: tuple(map(sort_key, t)))
        out.append(((name, row), tuple(cands)))
    return tuple(out)


def clear_candidate_cache() -> None:
    """Drop memoised candidate tables (tests and long-lived deployments)."""
    candidate_tables.cache_clear()


def _consistent(row: tuple, cand: tuple, assignment: Assignment) -> bool:
    for value, image in zip(row, cand):
        bound = assignment.get(value, _MISS)
        if bound is not _MISS and bound != image:
            return False
    return True


def iter_homomorphisms_csp(
    source: Instance,
    target: Instance,
    fix_constants: bool = True,
    onto: bool = False,
    strong_onto: bool = False,
    injective: bool = False,
    require_complete_image: bool = False,
    pinned: Mapping[Hashable, Hashable] | None = None,
) -> Iterator[Assignment]:
    """Yield every homomorphism ``h : source → target`` (as a dict on adom).

    Parameter semantics are identical to
    :func:`repro.homs.search.iter_homomorphisms`; only the search
    strategy differs (candidate tables + MRV + forward checking).
    """
    source_adom = source.adom()
    initial: Assignment = {
        k: v for k, v in (pinned or {}).items() if k in source_adom
    }

    def accept(assignment: Assignment, chosen_ok: bool) -> bool:
        if injective and len(set(assignment.values())) != len(assignment):
            return False
        if require_complete_image and any(
            isinstance(v, Null) for v in assignment.values()
        ):
            return False
        if onto and set(assignment.values()) != set(target.adom()):
            return False
        if strong_onto and not chosen_ok:
            return False
        return True

    if not source_adom:
        # The empty instance maps anywhere via the empty map, except
        # when ontoness demands hitting a non-empty active domain.
        empty: Assignment = {}
        if accept(empty, chosen_ok=target.is_empty()):
            yield empty
        return

    # structural pre-checks: fail whole families of branches in O(1)
    if strong_onto:
        if set(source.relations) != set(target.relations):
            return
        if any(
            len(target.tuples(name)) > len(source.tuples(name))
            for name in source.relations
        ):
            return
    if onto and len(target.adom()) > len(source_adom):
        return
    if injective and len(target.adom()) < len(source_adom):
        return
    if injective and len(set(initial.values())) != len(initial):
        return

    table = candidate_tables(source, target, fix_constants, require_complete_image)
    facts = [fact for fact, _ in table]
    n_facts = len(facts)
    cands: list[tuple[tuple, ...] | list[tuple]] = [list(c) for _, c in table]
    #: initial candidate sets: a row consistent with the (only-growing)
    #: assignment is in the current list iff it is in the initial table,
    #: so index-probed buckets can be filtered against these
    cand_sets = [frozenset(c) for _, c in table]
    ctx = context_for(target)
    if initial:
        for i, (name, row) in enumerate(facts):
            cands[i] = [c for c in cands[i] if _consistent(row, c, initial)]
    if any(not c for c in cands):
        return

    # which facts mention which source value (forward-check fan-out)
    value_facts: dict[Hashable, list[int]] = {}
    for i, (_, row) in enumerate(facts):
        for value in row:
            value_facts.setdefault(value, []).append(i)

    assignment: Assignment = dict(initial)
    used: set[Hashable] = set(assignment.values())
    #: target row each assigned fact maps onto — ``h(D)`` incrementally
    chosen: dict[str, dict[tuple, int]] = {}
    unassigned = set(range(n_facts))

    def strong_onto_holds() -> bool:
        # h(D) = target exactly: the chosen images cover every target
        # tuple (they are target tuples by construction)
        for name in target.relations:
            images = chosen.get(name)
            if images is None or len(images) != len(target.tuples(name)):
                return False
        return True

    def search() -> Iterator[Assignment]:
        if not unassigned:
            if accept(assignment, strong_onto_holds()):
                yield dict(assignment)
            return
        # dynamic MRV: the unassigned fact with the fewest live candidates
        pick = min(unassigned, key=lambda i: (len(cands[i]), i))
        name, row = facts[pick]
        unassigned.discard(pick)
        rel_chosen = chosen.setdefault(name, {})
        for cand in list(cands[pick]):
            extension: Assignment = {}
            ok = True
            for value, image in zip(row, cand):
                bound = assignment.get(value, _MISS)
                if bound is _MISS:
                    bound = extension.get(value, _MISS)
                if bound is _MISS:
                    extension[value] = image
                elif bound != image:
                    ok = False
                    break
            if not ok:
                continue
            if injective and extension:
                images = list(extension.values())
                if len(set(images)) != len(images) or used.intersection(images):
                    continue
                # injectivity makes image removal on undo unambiguous,
                # so ``used`` is maintained only in this mode
                used.update(images)
            assignment.update(extension)
            rel_chosen[cand] = rel_chosen.get(cand, 0) + 1
            saved: dict[int, list[tuple] | tuple[tuple, ...]] = {}
            wipeout = False
            if extension:
                touched: set[int] = set()
                for value in extension:
                    touched.update(value_facts.get(value, ()))
                for g in touched:
                    if g not in unassigned:
                        continue
                    g_name, g_row = facts[g]
                    current = cands[g]
                    # probe the target index on the bound positions when
                    # the bucket is likely smaller than the current list
                    if len(current) > 8:
                        bound_pos = tuple(
                            i for i, v in enumerate(g_row) if v in assignment
                        )
                        if bound_pos:
                            key = tuple(assignment[g_row[i]] for i in bound_pos)
                            bucket = ctx.index(g_name, bound_pos).get(key, ())
                            if len(bucket) < len(current):
                                members = cand_sets[g]
                                filtered = [
                                    c
                                    for c in bucket
                                    if c in members
                                    and _consistent(g_row, c, assignment)
                                ]
                                saved[g] = current
                                cands[g] = filtered
                                if not filtered:
                                    wipeout = True
                                    break
                                continue
                    filtered = [
                        c for c in current if _consistent(g_row, c, assignment)
                    ]
                    saved[g] = current
                    cands[g] = filtered
                    if not filtered:
                        wipeout = True  # conflict: some fact lost every image
                        break
            if not wipeout:
                yield from search()
            for g, old in saved.items():
                cands[g] = old
            if rel_chosen[cand] == 1:
                del rel_chosen[cand]
            else:
                rel_chosen[cand] -= 1
            for key in extension:
                del assignment[key]
            if injective:
                used.difference_update(extension.values())
        unassigned.add(pick)

    yield from search()
