"""Incomplete relational instances (naive databases).

An :class:`Instance` assigns to each relation name a finite set of
tuples over ``Const ∪ Null`` (paper, Section 2.1).  A null may appear
several times — such instances are *naive databases*.  If every null
appears at most once the instance is a *Codd database*, the model of
SQL's single ``NULL``.

Instances are immutable value objects: all "mutating" operations return
new instances, so they can be shared freely, used as dictionary keys and
members of sets (the semantics layer builds sets of complete instances
all the time).
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Iterator, Mapping

from repro.data.schema import Schema, SchemaError
from repro.data.values import Null, sort_key

__all__ = ["Instance", "Fact"]

Fact = tuple[str, tuple[Hashable, ...]]


class Instance:
    """An immutable incomplete relational instance.

    >>> from repro.data.values import Null
    >>> x = Null("1")
    >>> d = Instance({"R": [(1, x)], "S": [(x, 4)]})
    >>> d.arity("R")
    2
    >>> sorted(d.nulls(), key=str)
    [⊥1]
    >>> d.is_complete()
    False
    """

    __slots__ = ("_relations", "_hash", "_adom", "_sorted_adom", "_ctx", "_cols")

    def __init__(self, relations: Mapping[str, Iterable[tuple]] | None = None):
        rels: dict[str, frozenset[tuple]] = {}
        for name, tuples in (relations or {}).items():
            if not isinstance(name, str) or not name:
                raise SchemaError(f"relation name must be a non-empty string, got {name!r}")
            frozen = frozenset(tuple(t) for t in tuples)
            arities = {len(t) for t in frozen}
            if len(arities) > 1:
                raise SchemaError(
                    f"relation {name!r} has tuples of mixed arities {sorted(arities)}"
                )
            if arities == {0}:
                raise SchemaError(f"relation {name!r} has zero-arity tuples")
            if frozen:
                rels[name] = frozen
        self._relations = rels
        self._hash: int | None = None
        # Lazily computed derived views.  Instances are immutable value
        # objects, so caching them on the instance is always sound: a
        # "mutation" builds a new Instance with fresh (empty) caches.
        self._adom: frozenset[Hashable] | None = None
        self._sorted_adom: tuple[Hashable, ...] | None = None
        self._ctx = None  # execution context (repro.data.indexes)
        self._cols = None  # columnar context (repro.data.dictionary)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def empty(cls) -> "Instance":
        """The instance with no facts at all."""
        return cls({})

    @classmethod
    def from_facts(cls, facts: Iterable[Fact]) -> "Instance":
        """Build an instance from ``(relation, tuple)`` pairs."""
        rels: dict[str, set[tuple]] = {}
        for name, values in facts:
            rels.setdefault(name, set()).add(tuple(values))
        return cls(rels)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    @property
    def relations(self) -> tuple[str, ...]:
        """Names of the non-empty relations, sorted."""
        return tuple(sorted(self._relations))

    def tuples(self, name: str) -> frozenset[tuple]:
        """The set of tuples in relation ``name`` (empty set if absent)."""
        return self._relations.get(name, frozenset())

    def arity(self, name: str) -> int:
        """Arity of relation ``name``; raises if the relation is empty/absent."""
        tuples = self._relations.get(name)
        if not tuples:
            raise SchemaError(f"relation {name!r} is empty or absent; arity unknown")
        return len(next(iter(tuples)))

    def facts(self) -> Iterator[Fact]:
        """Iterate over all facts as ``(relation, tuple)`` pairs."""
        for name in sorted(self._relations):
            for row in sorted(self._relations[name], key=lambda t: tuple(map(sort_key, t))):
                yield name, row

    def fact_count(self) -> int:
        """Total number of tuples across all relations."""
        return sum(len(t) for t in self._relations.values())

    def schema(self) -> Schema:
        """The inferred schema (arities of the non-empty relations)."""
        return Schema({name: self.arity(name) for name in self._relations})

    # ------------------------------------------------------------------
    # domains
    # ------------------------------------------------------------------

    def adom(self) -> frozenset[Hashable]:
        """Active domain: all values occurring in some tuple (cached)."""
        if self._adom is None:
            values: set[Hashable] = set()
            for tuples in self._relations.values():
                for row in tuples:
                    values.update(row)
            self._adom = frozenset(values)
        return self._adom

    def sorted_adom(self) -> tuple[Hashable, ...]:
        """The active domain in :func:`~repro.data.values.sort_key` order.

        Cached: the evaluator quantifies over this sequence on every
        (sub)formula, so sorting once per instance instead of once per
        call is a measurable win for quantifier-heavy workloads.
        """
        if self._sorted_adom is None:
            self._sorted_adom = tuple(sorted(self.adom(), key=sort_key))
        return self._sorted_adom

    def nulls(self) -> frozenset[Null]:
        """The nulls occurring in the instance (``Null(D)``)."""
        return frozenset(v for v in self.adom() if isinstance(v, Null))

    def constants(self) -> frozenset[Hashable]:
        """The constants occurring in the instance (``Const(D)``)."""
        return frozenset(v for v in self.adom() if not isinstance(v, Null))

    def is_complete(self) -> bool:
        """True iff no nulls occur (``adom(D) ⊆ Const``)."""
        return not self.nulls()

    def is_codd(self) -> bool:
        """True iff every null occurs at most once across all facts."""
        seen: set[Null] = set()
        for _name, row in self.facts():
            for value in row:
                if isinstance(value, Null):
                    if value in seen:
                        return False
                    seen.add(value)
        return True

    def is_empty(self) -> bool:
        """True iff the instance has no facts."""
        return not self._relations

    # ------------------------------------------------------------------
    # algebraic operations
    # ------------------------------------------------------------------

    def apply(
        self, mapping: Mapping[Hashable, Hashable] | Callable[[Hashable], Hashable]
    ) -> "Instance":
        """The image ``h(D)`` of the instance under a value mapping.

        ``mapping`` may be a dict (values not in it are left unchanged,
        so partial maps extend by identity) or a callable.
        """
        if callable(mapping):
            get = mapping
        else:
            table = dict(mapping)
            get = lambda v: table.get(v, v)  # noqa: E731 - tiny adapter
        rels = {
            name: [tuple(get(v) for v in row) for row in tuples]
            for name, tuples in self._relations.items()
        }
        return Instance(rels)

    def union(self, other: "Instance") -> "Instance":
        """Fact-wise union; arities of shared relations must agree."""
        rels: dict[str, set[tuple]] = {
            name: set(tuples) for name, tuples in self._relations.items()
        }
        for name, tuples in other._relations.items():
            if name in rels:
                mine = len(next(iter(rels[name])))
                theirs = len(next(iter(tuples)))
                if mine != theirs:
                    raise SchemaError(f"cannot union {name!r}: arity {mine} vs {theirs}")
            rels.setdefault(name, set()).update(tuples)
        return Instance(rels)

    def __or__(self, other: "Instance") -> "Instance":
        return self.union(other)

    def issubinstance(self, other: "Instance") -> bool:
        """True iff every fact of ``self`` is a fact of ``other``."""
        return all(tuples <= other.tuples(name) for name, tuples in self._relations.items())

    def __le__(self, other: "Instance") -> bool:
        return self.issubinstance(other)

    def __lt__(self, other: "Instance") -> bool:
        return self != other and self.issubinstance(other)

    def difference(self, other: "Instance") -> "Instance":
        """Facts of ``self`` that are not facts of ``other``."""
        rels = {name: tuples - other.tuples(name) for name, tuples in self._relations.items()}
        return Instance(rels)

    def restrict(self, names: Iterable[str]) -> "Instance":
        """Keep only the relations in ``names``."""
        wanted = set(names)
        return Instance(
            {name: tuples for name, tuples in self._relations.items() if name in wanted}
        )

    def add_fact(self, name: str, row: tuple) -> "Instance":
        """A new instance with one extra fact."""
        return self.with_delta(adds={name: [row]})[0]

    def remove_fact(self, name: str, row: tuple) -> "Instance":
        """A new instance without the given fact (no-op when absent)."""
        return self.with_delta(removes={name: [row]})[0]

    def with_delta(
        self,
        adds: Mapping[str, Iterable[tuple]] | None = None,
        removes: Mapping[str, Iterable[tuple]] | None = None,
    ) -> tuple["Instance", dict[str, tuple[frozenset, frozenset]]]:
        """Apply a batch of fact insertions/deletions *incrementally*.

        Returns ``(new_instance, changes)`` where ``changes`` maps each
        relation that actually changed to its ``(added, removed)`` row
        sets (the *effective* delta: inserting a present row or deleting
        an absent one contributes nothing).  Removals are applied before
        additions, so a row in both ends up present.

        Unlike :meth:`union`/:meth:`difference` — which re-freeze every
        relation — this shares the untouched relations' row sets (and,
        via :func:`repro.data.indexes.derive_context`, their hash
        indexes) with the receiver, making mutation cost proportional to
        the delta, not the instance.  The session layer's mutation API
        (``Database.insert``/``delete``/``apply_delta``) is built on it.
        """
        rels = dict(self._relations)
        changes: dict[str, tuple[frozenset, frozenset]] = {}
        touched: set[str] = set()
        for source in (removes, adds):
            for name in source or ():
                if not isinstance(name, str) or not name:
                    raise SchemaError(
                        f"relation name must be a non-empty string, got {name!r}"
                    )
                touched.add(name)
        for name in sorted(touched):
            old = self._relations.get(name, frozenset())
            new = set(old)
            if removes and name in removes:
                new.difference_update(tuple(r) for r in removes[name])
            if adds and name in adds:
                new.update(tuple(r) for r in adds[name])
            arities = {len(r) for r in new}
            if len(arities) > 1:
                raise SchemaError(
                    f"relation {name!r} would have tuples of mixed arities {sorted(arities)}"
                )
            if arities == {0}:
                raise SchemaError(f"relation {name!r} would have zero-arity tuples")
            frozen = frozenset(new)
            added, removed = frozen - old, old - frozen
            if not added and not removed:
                continue
            changes[name] = (added, removed)
            if frozen:
                rels[name] = frozen
            else:
                del rels[name]
        if not changes:
            return self, changes
        out = Instance.__new__(Instance)
        out._relations = rels
        out._hash = None
        out._sorted_adom = None
        out._ctx = None
        out._cols = None
        if self._adom is not None and not any(rem for _add, rem in changes.values()):
            # insert-only delta: the active domain only grows, so it can
            # be carried over incrementally; deletions force a lazy
            # recount (a removed value may still occur elsewhere)
            grown = set(self._adom)
            for added, _removed in changes.values():
                for row in added:
                    grown.update(row)
            out._adom = frozenset(grown)
        else:
            out._adom = None
        return out, changes

    # ------------------------------------------------------------------
    # equality / hashing / rendering
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Instance) and other._relations == self._relations

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset((name, tuples) for name, tuples in self._relations.items()))
        return self._hash

    def __repr__(self) -> str:
        if not self._relations:
            return "Instance(∅)"
        parts = []
        for name in sorted(self._relations):
            rows = sorted(self._relations[name], key=lambda t: tuple(map(sort_key, t)))
            body = ", ".join("(" + ", ".join(map(repr, row)) + ")" for row in rows)
            parts.append(f"{name}={{{body}}}")
        return "Instance(" + "; ".join(parts) + ")"

    def pretty(self) -> str:
        """A multi-line tabular rendering, one block per relation."""
        if not self._relations:
            return "(empty instance)"
        blocks = []
        for name in sorted(self._relations):
            rows = sorted(self._relations[name], key=lambda t: tuple(map(sort_key, t)))
            cells = [[repr(v) for v in row] for row in rows]
            widths = [max(len(row[i]) for row in cells) for i in range(len(cells[0]))]
            lines = [f"{name}:"]
            for row in cells:
                lines.append(
                    "  " + "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
                )
            blocks.append("\n".join(lines))
        return "\n".join(blocks)

    # ------------------------------------------------------------------
    # isomorphism and null refreshing
    # ------------------------------------------------------------------

    def isomorphic(self, other: "Instance", fix_constants: bool = True) -> bool:
        """Structural equivalence ``D ≈ D'`` (paper, Section 3.1).

        With ``fix_constants=True`` (the database convention) the witness
        bijection must be the identity on constants; otherwise any
        injective renaming of data values is allowed.
        """
        from repro.homs.search import find_isomorphism

        return find_isomorphism(self, other, fix_constants=fix_constants) is not None

    def with_fresh_values(
        self,
        values: Iterable[Hashable],
        factory: Callable[[], Hashable],
    ) -> tuple["Instance", dict[Hashable, Hashable]]:
        """Replace each of ``values`` by a fresh value from ``factory``.

        Returns the renamed instance and the mapping used.  The primary
        uses are the saturation construction (replace nulls by fresh
        constants) and the copying-CWA update (replace nulls by fresh
        nulls).
        """
        mapping = {value: factory() for value in sorted(values, key=sort_key)}
        return self.apply(mapping), mapping
