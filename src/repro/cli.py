"""Command-line interface: analyze and evaluate queries over JSON instances.

Instance files are JSON objects mapping relation names to lists of rows;
a string cell starting with ``"?"`` denotes a marked null (``"?x"`` is
the null ⊥x, repeatable across facts)::

    {"R": [[1, "?x"], ["?y", "?z"]], "S": [["?x", 4]]}

Usage::

    python -m repro analyze  "exists z (R(x,z) & S(z,y))" --semantics owa
    python -m repro evaluate "exists z (R(x,z) & S(z,y))" db.json --semantics cwa
    python -m repro fragments "forall x . exists y . D(x,y)"
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Hashable

from repro.core import analyze, evaluate
from repro.core.analyzer import FIGURE_1
from repro.data.instance import Instance
from repro.data.values import Null
from repro.logic.classes import classify
from repro.logic.parser import parse
from repro.logic.queries import Query
from repro.logic.transform import free_vars

__all__ = ["main", "instance_from_json", "instance_to_json"]


def _decode_cell(cell) -> Hashable:
    if isinstance(cell, str) and cell.startswith("?"):
        return Null(cell[1:])
    if isinstance(cell, list):
        raise ValueError("nested lists are not valid cells")
    return cell


def instance_from_json(text: str) -> Instance:
    """Parse the JSON instance format (see module docstring)."""
    data = json.loads(text)
    if not isinstance(data, dict):
        raise ValueError("instance JSON must be an object of relation → rows")
    rels = {
        name: [tuple(_decode_cell(c) for c in row) for row in rows]
        for name, rows in data.items()
    }
    return Instance(rels)


def instance_to_json(instance: Instance) -> str:
    """Render an instance back into the JSON format."""
    data = {
        name: [
            ["?" + v.label if isinstance(v, Null) else v for v in row]
            for row in sorted(instance.tuples(name), key=repr)
        ]
        for name in instance.relations
    }
    return json.dumps(data, default=str)


def _build_query(text: str) -> Query:
    formula = parse(text)
    head = tuple(sorted(free_vars(formula), key=lambda v: v.name))
    return Query(formula, head, name="cli")


def _cmd_analyze(args) -> int:
    query = _build_query(args.query)
    keys = [args.semantics] if args.semantics else sorted(FIGURE_1)
    for key in keys:
        verdict = analyze(query, key)
        flag = "SOUND" if verdict.sound else "not sound"
        extra = " (over cores)" if verdict.over_cores_only else ""
        print(f"{key:>8}: naive evaluation {flag}{extra}")
        print(f"          {verdict.reason}")
    return 0


def _cmd_fragments(args) -> int:
    query = _build_query(args.query)
    got = classify(query.formula)
    print(f"query: {query.formula!r}")
    print("fragments:", ", ".join(got))
    return 0


def _cmd_evaluate(args) -> int:
    query = _build_query(args.query)
    with open(args.instance, encoding="utf-8") as handle:
        instance = instance_from_json(handle.read())
    result = evaluate(query, instance, semantics=args.semantics, mode=args.mode)
    if query.is_boolean:
        print(f"certain answer: {result.holds}")
    else:
        head = ", ".join(v.name for v in query.answer_vars)
        print(f"certain answers ({head}):")
        for row in sorted(result.answers, key=repr):
            print("  " + ", ".join(map(repr, row)))
        if not result.answers:
            print("  (none)")
    status = "exact" if result.exact else f"approximate ({result.direction})"
    print(f"method: {result.method}  [{status}]")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Naive evaluation and certain answers over incomplete databases",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_analyze = sub.add_parser("analyze", help="is naive evaluation sound for this query?")
    p_analyze.add_argument("query", help="FO query text")
    p_analyze.add_argument("--semantics", choices=sorted(FIGURE_1), default=None)
    p_analyze.set_defaults(func=_cmd_analyze)

    p_frag = sub.add_parser("fragments", help="which syntactic fragments contain the query")
    p_frag.add_argument("query")
    p_frag.set_defaults(func=_cmd_fragments)

    p_eval = sub.add_parser("evaluate", help="compute certain answers over a JSON instance")
    p_eval.add_argument("query")
    p_eval.add_argument("instance", help="path to the JSON instance file")
    p_eval.add_argument("--semantics", choices=sorted(FIGURE_1), default="cwa")
    p_eval.add_argument("--mode", choices=["auto", "naive", "enumeration"], default="auto")
    p_eval.set_defaults(func=_cmd_evaluate)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ValueError, OSError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
