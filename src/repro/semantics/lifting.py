"""The Boolean-to-k-ary lifting construction (Sections 8 and 11).

The paper lifts its Boolean results to k-ary queries by moving to a
domain of *pairs*: objects ``(D, t)`` where ``t`` is a k-tuple of
constants, with ``[[(D, t)]]* = {(D', t) | D' ∈ [[D]]}`` and an
isomorphism relation fixing ``t``.  A k-ary query ``Q`` becomes the
Boolean query ``Q*(D, t) = t ∈ Q(D)``; Claim 5 of the paper then shows
the Boolean notions transfer exactly:

1. fairness transfers,
3. certain answers correspond,
4. naive evaluation corresponds,
5. weak monotonicity corresponds.

This module performs the construction on finite explicit domains so
Claim 5 is *testable*, which is how ``tests/test_lifting.py`` validates
Lemma 8.1 / Lemma 11.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Iterable

from repro.semantics.domain import DatabaseDomain

__all__ = ["LiftedDomain", "lift_domain", "lift_query"]

Obj = Hashable
KQuery = Callable[[Obj], frozenset]  # object → set of k-tuples of constants


@dataclass(frozen=True)
class LiftedDomain:
    """The pair domain ``D*`` plus the tuple universe used to build it."""

    domain: DatabaseDomain
    tuples: tuple[tuple, ...]


def lift_domain(
    base: DatabaseDomain,
    tuples: Iterable[tuple],
) -> LiftedDomain:
    """Build ``D* = ⟨D × T, C × T, [[·]]*, ≈*⟩`` over tuple universe ``T``.

    ``≈*`` keeps the base isomorphism key and requires equal tuples —
    the finite-domain counterpart of "the isomorphism and its inverse
    are the identity on t" (strong saturation, Section 8).
    """
    tuple_universe = tuple(tuples)
    objects = frozenset((x, t) for x in base.objects for t in tuple_universe)
    complete = frozenset((c, t) for c in base.complete for t in tuple_universe)
    sem: dict[tuple, frozenset] = {
        (x, t): frozenset((c, t) for c in base.sem[x])
        for x in base.objects
        for t in tuple_universe
    }
    base_key = base.iso_key
    domain = DatabaseDomain(
        objects, complete, sem, iso_key=lambda pair: (base_key(pair[0]), pair[1])
    )
    return LiftedDomain(domain, tuple_universe)


def lift_query(query: KQuery) -> Callable[[tuple], bool]:
    """``Q*(x, t) = t ∈ Q(x)`` — the Boolean companion of a k-ary query."""

    def starred(pair: tuple) -> bool:
        x, t = pair
        return t in query(x)

    return starred


def kary_certain(base: DatabaseDomain, query: KQuery, x: Obj) -> frozenset:
    """``certain(Q, x) = ⋂ {Q(c) | c ∈ [[x]]}`` for a k-ary query."""
    out: frozenset | None = None
    for c in base.sem[x]:
        rows = frozenset(query(c))
        out = rows if out is None else out & rows
    return out if out is not None else frozenset()


def kary_naive_works(base: DatabaseDomain, query: KQuery) -> bool:
    """Does ``Q(x) = certain(Q, x)`` for every object of the base domain?

    (On finite abstract domains every value is a "constant", so
    ``Q^C = Q``.)
    """
    return all(frozenset(query(x)) == kary_certain(base, query, x) for x in base.objects)


def kary_weakly_monotone(base: DatabaseDomain, query: KQuery) -> bool:
    """``y ∈ [[x]] ⇒ Q(x) ⊆ Q(y)``."""
    return all(
        frozenset(query(x)) <= frozenset(query(y))
        for x in base.objects
        for y in base.sem[x]
    )
