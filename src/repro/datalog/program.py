"""Datalog programs: rules, safety, EDB/IDB classification.

The paper's "Other languages" discussion (Section 12) notes that naive
evaluation works for datalog without negation — datalog queries are
monotone and generic, hence preserved under homomorphisms, so the whole
Figure-1 machinery applies.  This subpackage supplies the substrate: a
safe, negation-free datalog dialect evaluated bottom-up over naive
databases (nulls as ordinary values), with the naive/certain-answer
connection tested against the brute-force oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Union

from repro.logic.ast import Var

__all__ = ["Atom", "Rule", "Program", "DatalogError"]

Term = Union[Var, Hashable]


class DatalogError(ValueError):
    """Raised for malformed programs (unsafe rules, arity clashes...)."""


@dataclass(frozen=True)
class Atom:
    """A datalog atom ``name(t1, …, tk)``; terms are Vars or constants."""

    name: str
    terms: tuple[Term, ...]

    def __post_init__(self):
        object.__setattr__(self, "terms", tuple(self.terms))
        if not self.terms:
            raise DatalogError("atoms need at least one term")

    def variables(self) -> frozenset[Var]:
        return frozenset(t for t in self.terms if isinstance(t, Var))

    def __repr__(self) -> str:
        body = ", ".join(t.name if isinstance(t, Var) else repr(t) for t in self.terms)
        return f"{self.name}({body})"


@dataclass(frozen=True)
class Rule:
    """A definite clause ``head :- body1, …, bodyn`` (no negation)."""

    head: Atom
    body: tuple[Atom, ...]

    def __post_init__(self):
        object.__setattr__(self, "body", tuple(self.body))
        if not self.body:
            raise DatalogError(
                f"rule for {self.head.name!r} has an empty body; facts belong in the EDB"
            )
        body_vars = frozenset().union(*(a.variables() for a in self.body))
        loose = self.head.variables() - body_vars
        if loose:
            names = ", ".join(sorted(v.name for v in loose))
            raise DatalogError(f"unsafe rule: head variables {names} missing from the body")

    def __repr__(self) -> str:
        return f"{self.head!r} :- " + ", ".join(repr(a) for a in self.body)


@dataclass(frozen=True)
class Program:
    """A set of rules with consistent arities.

    IDB predicates are those appearing in some rule head; everything
    else mentioned is EDB.
    """

    rules: tuple[Rule, ...]

    def __post_init__(self):
        object.__setattr__(self, "rules", tuple(self.rules))
        if not self.rules:
            raise DatalogError("a program needs at least one rule")
        arities: dict[str, int] = {}
        for rule in self.rules:
            for atom in (rule.head, *rule.body):
                known = arities.setdefault(atom.name, len(atom.terms))
                if known != len(atom.terms):
                    raise DatalogError(
                        f"predicate {atom.name!r} used with arities {known} and {len(atom.terms)}"
                    )

    @property
    def idb(self) -> frozenset[str]:
        """Predicates defined by rules."""
        return frozenset(rule.head.name for rule in self.rules)

    @property
    def edb(self) -> frozenset[str]:
        """Predicates only read, never defined."""
        mentioned = {atom.name for rule in self.rules for atom in rule.body}
        return frozenset(mentioned - self.idb)

    def rules_for(self, name: str) -> tuple[Rule, ...]:
        return tuple(rule for rule in self.rules if rule.head.name == name)

    def __repr__(self) -> str:
        return "Program[\n  " + "\n  ".join(repr(r) for r in self.rules) + "\n]"
