"""Closed-world auditing with guarded universal queries (Pos+∀G, Thm 5.2).

A compliance audit over a partially-anonymised access log: user ids are
marked nulls, but the *policy questions* are universally quantified
business rules — exactly the ``Pos+∀G`` shape for which the paper proves
naive evaluation correct under CWA.  A plain evaluator answers audit
queries over the anonymised log, provably computing certain answers.

Run with::

    python examples/closed_world_audit.py
"""

from repro import Instance, NullFactory, Query, analyze, evaluate, parse

fresh = NullFactory("user")

# ----------------------------------------------------------------------
# 1. The access log: user ids anonymised to marked nulls
# ----------------------------------------------------------------------
# Access(user, resource), Clearance(user, level), Sensitive(resource)

u1, u2 = fresh.fresh(), fresh.fresh()
log = Instance(
    {
        "Access": [(u1, "db-prod"), (u2, "wiki"), (u1, "wiki")],
        "Clearance": [(u1, "high"), (u2, "low")],
        "Sensitive": [("db-prod",)],
    }
)
print("Anonymised access log:")
print(log.pretty())

# ----------------------------------------------------------------------
# 2. Rule 1 — every access to a sensitive resource is by a cleared user:
#    ∀u,r (Access(u,r) → (Sensitive(r) → ... )) needs implication nesting
#    we express positively: every accessor of db-prod has high clearance
# ----------------------------------------------------------------------

rule1 = Query.boolean(
    parse(
        "forall u, r . Access(u, r) -> "
        "(Sensitive(r) & Clearance(u, 'high') | exists l . Clearance(u, l))"
    ),
    name="accessors_are_known",
)
verdict = analyze(rule1, "cwa")
print(f"\n[{rule1.name}] in fragment {verdict.fragment}? sound={verdict.sound}")
result = evaluate(rule1, log, semantics="cwa")
print(f"  audit verdict (certain under CWA): {result.holds} (method={result.method})")
assert result.method == "columnar" and result.exact

# ----------------------------------------------------------------------
# 3. Rule 2 — a *negative* rule is outside every sound fragment:
#    "no low-clearance user touched a sensitive resource".
#    The analyzer rejects naive evaluation; the engine falls back to
#    enumeration and still returns the certain answer.
# ----------------------------------------------------------------------

rule2 = Query.boolean(
    parse("!(exists u, r . Access(u, r) & Sensitive(r) & Clearance(u, 'low'))"),
    name="no_low_touch_sensitive",
)
verdict2 = analyze(rule2, "cwa")
print(f"\n[{rule2.name}] sound={verdict2.sound}")
print(f"  reason: {verdict2.reason}")
result2 = evaluate(rule2, log, semantics="cwa")
print(f"  audit verdict (certain under CWA): {result2.holds} (method={result2.method})")
# Anonymisation makes this NOT certain: u2 (low) might be the same
# person as u1?  No — marked nulls are distinct unless unified by a
# valuation... they CAN both map to the same real user!  The audit
# correctly refuses to certify the rule.
assert result2.method == "enumeration"

# ----------------------------------------------------------------------
# 4. Where naive evaluation would have lied
# ----------------------------------------------------------------------

naive2 = evaluate(rule2, log, semantics="cwa", mode="naive")
print(
    f"\nnaive evaluation would claim {naive2.holds} for [{rule2.name}] — "
    f"{'the SAME' if naive2.holds == result2.holds else 'a DIFFERENT'} answer "
    "than the certain one"
)

# naive says True (⊥user1 ≠ ⊥user2 syntactically) but a valuation can
# merge them, making the rule false in a possible world:
assert naive2.holds and not result2.holds

print("\nClosed-world audit example OK.")
