"""Fault-injection acceptance: a live server under REPRO_FAILPOINTS.

The chaos counterpart of ``test_recovery.py``: a real ``repro serve``
subprocess with failpoints armed via the environment, driven over a
real socket.  The contracts under test are the ones that matter when
the disk misbehaves mid-write-stream:

* every **acked** write survives a ``kill -9`` and recovery;
* every **lost** write is answered with a typed ``degraded`` error —
  never with success;
* the server keeps serving **reads** while degraded, and an operator
  ``checkpoint`` op heals it without a restart;
* a replication stream that keeps dropping its connection still
  converges (the replica reconnects and resumes);
* injected socket hangs surface as latency, not failure, to a
  :class:`repro.client.Client` with a sane deadline.

Scaled by ``REPRO_FUZZ`` (stream lengths) and re-seeded per nightly
run via ``REPRO_FUZZ_SEED`` — see ``.github/workflows/nightly.yml``.
"""

import json
import os
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.session import Database

SRC = str(Path(__file__).resolve().parent.parent / "src")

FUZZ = max(1, int(os.environ.get("REPRO_FUZZ", "1")))
FUZZ_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "0"))


def start_server(data_dir, *extra, failpoints=None):
    """``repro serve`` subprocess with failpoints armed via the env."""
    env = {**os.environ, "PYTHONPATH": SRC}
    env.pop("REPRO_FAILPOINTS", None)  # never inherit the suite's own env
    if failpoints:
        env["REPRO_FAILPOINTS"] = failpoints
    proc = subprocess.Popen(
        [
            sys.executable,
            "-u",
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--data-dir",
            str(data_dir),
            *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise RuntimeError(f"server died during startup (rc={proc.poll()})")
        if "listening on" in line:
            host, port = line.strip().rsplit(" ", 1)[-1].rsplit(":", 1)
            return proc, (host, int(port))
    proc.kill()
    raise RuntimeError("server did not announce its address in time")


class RawClient:
    """A socket client that returns error frames instead of asserting."""

    def __init__(self, address):
        self.sock = socket.create_connection(address, timeout=30)
        self.reader = self.sock.makefile("r", encoding="utf-8")
        self.writer = self.sock.makefile("w", encoding="utf-8")

    def call(self, **request) -> dict:
        self.writer.write(json.dumps(request) + "\n")
        self.writer.flush()
        line = self.reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def close(self):
        self.sock.close()


def drive_write_stream(tmp_path, failpoints: str, n: int):
    """Insert ``n`` unique rows against a faulty server; classify each.

    Returns ``(acked, refused, recovered_rows)`` where *acked*/*refused*
    are the row keys that were acknowledged / answered with a typed
    ``degraded`` frame, and *recovered_rows* is the set of rows a fresh
    session recovers from the data directory after ``kill -9``.
    """
    proc, address = start_server(tmp_path, failpoints=failpoints)
    acked, refused = set(), set()
    saw_degraded_health = False
    try:
        client = RawClient(address)
        for i in range(n):
            response = client.call(op="insert", relation="R", rows=[[i, i]])
            if response.get("ok"):
                acked.add(i)
                continue
            # a lost write must carry the typed degraded frame — never
            # an untyped error, and never a success
            assert response.get("error_type") == "degraded", response
            assert response["health"]["state"] == "degraded", response
            refused.add(i)
            # the degraded node keeps serving reads ...
            answers = client.call(op="query", query="R(x, y)")
            assert answers.get("ok"), answers
            assert client.call(op="health")["state"] == "degraded"
            saw_degraded_health = True
            # ... and the operator checkpoint heals it without a restart
            healed = client.call(op="checkpoint")
            assert healed.get("ok"), healed
            assert client.call(op="health")["state"] == "ok"
        client.close()
    finally:
        proc.kill()
        proc.wait(timeout=30)
    assert acked and refused, (
        f"failpoint spec {failpoints!r} produced a degenerate run "
        f"({len(acked)} acked, {len(refused)} refused of {n})"
    )
    assert saw_degraded_health
    recovered = Database(path=str(tmp_path))
    rows = set(recovered.instance.tuples("R")) if "R" in recovered.instance.relations else set()
    recovered.close()
    return acked, refused, rows


class TestDegradedServing:
    def test_fsync_failures_acked_writes_survive_kill(self, tmp_path):
        """Failed fsyncs mid-stream: acked ⊆ recovered, lost writes typed."""
        acked, refused, rows = drive_write_stream(
            tmp_path, "wal.fsync=every(7):eio", n=20 + 10 * FUZZ
        )
        missing = {i for i in acked if (i, i) not in rows}
        assert not missing, f"acked writes lost in recovery: {sorted(missing)}"
        # fsync-refused writes are *indeterminate*: they were published
        # before the failed fsync and become durable at the healing
        # checkpoint — the contract is only that they were never acked

    def test_enospc_on_append_refused_writes_are_absent(self, tmp_path):
        """ENOSPC on append: the lost write is definitively absent."""
        acked, refused, rows = drive_write_stream(
            tmp_path, "wal.append=every(7):enospc", n=20 + 10 * FUZZ
        )
        assert all((i, i) in rows for i in acked)
        ghosts = {i for i in refused if (i, i) in rows}
        assert not ghosts, f"refused writes resurfaced after recovery: {sorted(ghosts)}"

    def test_torn_append_refused_writes_are_absent(self, tmp_path):
        """A torn append dirties the WAL tail; checkpoint truncates it."""
        acked, refused, rows = drive_write_stream(
            tmp_path, "wal.append=every(9):torn-write", n=20 + 10 * FUZZ
        )
        assert all((i, i) in rows for i in acked)
        assert not any((i, i) in rows for i in refused)


class TestReplicationChaos:
    def test_stream_converges_through_injected_drops(self, tmp_path):
        """drop-conn on every 13th feed frame: the replica still converges."""
        primary_dir = tmp_path / "primary"
        replica_dir = tmp_path / "replica"
        primary_proc, primary_addr = start_server(
            primary_dir, failpoints="feed.yield=every(13):drop-conn"
        )
        replica_proc = None
        try:
            replica_proc, replica_addr = start_server(
                replica_dir, "--replica-of", f"{primary_addr[0]}:{primary_addr[1]}"
            )
            writer = RawClient(primary_addr)
            n = 30 + 20 * FUZZ
            last = None
            for i in range(n):
                last = writer.call(op="insert", relation="R", rows=[[i, i]])
                assert last.get("ok"), last
            target = last["generation"]
            writer.close()

            reader = RawClient(replica_addr)
            deadline = time.monotonic() + 60
            position = -1
            while time.monotonic() < deadline:
                position = reader.call(op="health")["generation"]
                if position >= target:
                    break
                time.sleep(0.05)
            assert position >= target, (
                f"replica stuck at generation {position} < {target} "
                f"despite reconnects"
            )
            answers = reader.call(op="query", query="R(x, y)")
            assert answers.get("ok") and len(answers["answers"]) == n
            reader.close()
        finally:
            if replica_proc is not None:
                replica_proc.kill()
                replica_proc.wait(timeout=30)
            primary_proc.kill()
            primary_proc.wait(timeout=30)


class TestHangTolerance:
    def test_injected_hangs_are_latency_not_failure(self, tmp_path):
        """A hung socket shows up as slowness; the client's deadline holds."""
        from repro.client import Client

        spec = f"server.recv=prob(0.3,{FUZZ_SEED + 1}):hang(80)"
        proc, address = start_server(tmp_path, failpoints=spec)
        try:
            with Client(address, timeout=30.0) as client:
                for i in range(10 + 2 * FUZZ):
                    assert client.insert("R", [[i, i]])["changed"] == 1
                    assert len(client.query("R(x, y)")["answers"]) == i + 1
        finally:
            proc.kill()
            proc.wait(timeout=30)


@pytest.mark.parametrize("spec", ["server.send=prob(0.2,%d):drop-conn" % (FUZZ_SEED + 2)])
def test_dropped_responses_never_double_apply(tmp_path, spec):
    """Lost responses + caller retries: generation proves single application.

    The client inserts unique rows and, on an indeterminate outcome,
    re-issues the same insert (set semantics make that safe).  At the
    end the server's generation must equal the number of *effective*
    writes — each row applied exactly once no matter how many retries
    its acknowledgement took.
    """
    from repro.client import Client, IndeterminateWriteError

    proc, address = start_server(tmp_path, failpoints=spec)
    n = 15 + 5 * FUZZ
    try:
        with Client(address, timeout=30.0) as client:
            for i in range(n):
                for _attempt in range(10):
                    try:
                        client.insert("R", [[i, i]])
                        break
                    except IndeterminateWriteError:
                        continue  # set semantics: the re-insert is a no-op
                else:
                    raise AssertionError(f"row {i} never acknowledged")
            stats = client.stats()
            assert stats["generation"] == n
            assert len(client.query("R(x, y)")["answers"]) == n
    finally:
        proc.kill()
        proc.wait(timeout=30)
