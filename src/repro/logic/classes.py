"""Recognizers for the paper's syntactic fragments (Sections 5 and 7).

The fragments, in increasing generality of their guard machinery:

* ``∃Pos`` — existential positive formulae = unions of conjunctive
  queries.  Naive evaluation is sound (and for Boolean FO complete)
  under OWA.
* ``Pos`` — positive formulae (adds ``∀``).  Sound under WCWA.
* ``Pos+∀G`` — positive formulae plus universal guards
  ``∀x̄ (R(x̄) → φ)`` and ``∀x,z (x=z → φ)`` with pairwise-distinct
  quantified variables.  Sound under CWA.
* ``∃Pos+∀G_bool`` — existential positive formulae plus *Boolean*
  universal guards (the guarded formula must be a sentence:
  free variables of the body are contained in the guard's variables).
  Sound under the powerset semantics ``⦇·⦈_CWA``.

Each recognizer answers membership, and :func:`why_not_in` produces a
human-readable reason for non-membership — the query analyzer surfaces
these to users.
"""

from __future__ import annotations

from repro.logic.ast import (
    And,
    EqAtom,
    Exists,
    FalseF,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    RelAtom,
    TrueF,
)
from repro.logic.transform import free_vars

__all__ = [
    "FRAGMENTS",
    "in_epos",
    "in_pos",
    "in_pos_forall_g",
    "in_epos_forall_gbool",
    "in_fragment",
    "why_not_in",
    "classify",
]

#: Fragment identifiers, from most to least restrictive guard-wise.
FRAGMENTS = ("EPos", "Pos", "PosForallG", "EPosForallGBool", "FO")


def _guard_shape(formula: Forall) -> tuple[Formula, str] | tuple[None, str]:
    """If ``formula`` is a universal guard, return ``(body, "")``.

    Otherwise ``(None, reason)``.  A universal guard is
    ``∀x1…xn (R(x1,…,xn) → φ)`` where the guard atom's arguments are
    exactly the quantified variables, pairwise distinct (Section 5's
    definition — the distinctness is essential, see the remark after
    Proposition 5.1), or ``∀x,z (x = z → φ)`` with ``x ≠ z``.
    """
    if not isinstance(formula.sub, Implies):
        return None, "not of the guard shape ∀x̄ (atom → φ)"
    guard = formula.sub.left
    body = formula.sub.right
    quantified = formula.vars
    if isinstance(guard, RelAtom):
        if len(guard.terms) != len(quantified):
            return None, "guard atom does not use exactly the quantified variables"
        if tuple(guard.terms) != tuple(quantified):
            return None, "guard atom arguments must be the quantified variables, in order"
        if len(set(quantified)) != len(quantified):
            return None, "guard variables must be pairwise distinct"
        return body, ""
    if isinstance(guard, EqAtom):
        if len(quantified) != 2:
            return None, "equality guards quantify exactly two variables"
        pair = {guard.left, guard.right}
        if pair != set(quantified) or len(pair) != 2:
            return None, "equality guard must relate the two (distinct) quantified variables"
        return body, ""
    return None, "guard antecedent must be a relational or equality atom"


def _check(
    formula: Formula,
    allow_forall: bool,
    allow_guards: bool,
    boolean_guards: bool,
) -> str | None:
    """Return ``None`` if the formula is in the fragment, else a reason."""
    match formula:
        case TrueF() | FalseF() | RelAtom() | EqAtom():
            return None
        case Not():
            return f"negation is not allowed: {formula!r}"
        case And(subs=subs) | Or(subs=subs):
            for sub in subs:
                reason = _check(sub, allow_forall, allow_guards, boolean_guards)
                if reason:
                    return reason
            return None
        case Implies():
            return f"implication outside a universal guard: {formula!r}"
        case Exists(sub=sub):
            return _check(sub, allow_forall, allow_guards, boolean_guards)
        case Forall() as phi:
            if allow_guards:
                body, guard_reason = _guard_shape(phi)
                if body is not None:
                    if boolean_guards and not (free_vars(body) <= set(phi.vars)):
                        extra = ", ".join(
                            sorted(v.name for v in free_vars(body) - set(phi.vars))
                        )
                        return (
                            "Boolean guards require the guarded formula to be a "
                            f"sentence, but {extra} occur(s) free: {phi!r}"
                        )
                    return _check(body, allow_forall, allow_guards, boolean_guards)
                if not allow_forall:
                    return f"universal quantification only via guards ({guard_reason}): {phi!r}"
                # fall through: try as a plain positive ∀
            if allow_forall:
                return _check(phi.sub, allow_forall, allow_guards, boolean_guards)
            return f"universal quantification is not allowed: {phi!r}"
    raise TypeError(f"not a formula: {formula!r}")


_FRAGMENT_FLAGS = {
    # name: (allow_forall, allow_guards, boolean_guards)
    "EPos": (False, False, False),
    "Pos": (True, False, False),
    "PosForallG": (True, True, False),
    "EPosForallGBool": (False, True, True),
}


def in_epos(formula: Formula) -> bool:
    """Membership in ``∃Pos`` (unions of conjunctive queries)."""
    return _check(formula, *_FRAGMENT_FLAGS["EPos"]) is None


def in_pos(formula: Formula) -> bool:
    """Membership in ``Pos`` (positive formulae)."""
    return _check(formula, *_FRAGMENT_FLAGS["Pos"]) is None


def in_pos_forall_g(formula: Formula) -> bool:
    """Membership in ``Pos+∀G`` (positive with universal guards)."""
    return _check(formula, *_FRAGMENT_FLAGS["PosForallG"]) is None


def in_epos_forall_gbool(formula: Formula) -> bool:
    """Membership in ``∃Pos+∀G_bool`` (existential positive with Boolean guards)."""
    return _check(formula, *_FRAGMENT_FLAGS["EPosForallGBool"]) is None


def in_fragment(formula: Formula, fragment: str) -> bool:
    """Membership in a fragment given by name (see :data:`FRAGMENTS`)."""
    if fragment == "FO":
        return True
    if fragment not in _FRAGMENT_FLAGS:
        raise ValueError(f"unknown fragment {fragment!r}; expected one of {FRAGMENTS}")
    return _check(formula, *_FRAGMENT_FLAGS[fragment]) is None


def why_not_in(formula: Formula, fragment: str) -> str | None:
    """A reason the formula falls outside the fragment, or ``None`` if it is in."""
    if fragment == "FO":
        return None
    if fragment not in _FRAGMENT_FLAGS:
        raise ValueError(f"unknown fragment {fragment!r}; expected one of {FRAGMENTS}")
    return _check(formula, *_FRAGMENT_FLAGS[fragment])


def classify(formula: Formula) -> tuple[str, ...]:
    """All fragments (from :data:`FRAGMENTS`) that contain the formula."""
    return tuple(f for f in FRAGMENTS if in_fragment(formula, f))
