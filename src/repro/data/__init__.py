"""Data substrate: values, schemas, instances, Codd databases, generators."""

from repro.data.codd import as_codd, codd_instance, from_sql_rows, to_sql_rows, tuple_leq
from repro.data.instance import Instance
from repro.data.schema import Schema, SchemaError
from repro.data.values import Null, NullFactory, fresh_nulls, is_const, is_null

__all__ = [
    "Instance",
    "Schema",
    "SchemaError",
    "Null",
    "NullFactory",
    "fresh_nulls",
    "is_const",
    "is_null",
    "tuple_leq",
    "from_sql_rows",
    "to_sql_rows",
    "as_codd",
    "codd_instance",
]
