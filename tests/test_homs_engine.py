"""Differential and unit tests for the CSP homomorphism engine.

The contract: :func:`repro.homs.engine.iter_homomorphisms_csp` yields
exactly the same *set* of homomorphisms as the legacy fact-by-fact
extender, for every option combination the paper uses — order may
differ.  The property suite sweeps random instance pairs; the unit
tests pin the structural pre-checks, the candidate tables and the
engine routing.
"""

import random

import pytest

from repro.data.generate import cycle, random_instance
from repro.data.instance import Instance
from repro.data.schema import Schema
from repro.data.values import Null
from repro.homs.engine import (
    candidate_tables,
    clear_candidate_cache,
    iter_homomorphisms_csp,
)
from repro.homs.search import (
    _CSP_MIN_FACTS,
    find_homomorphism,
    find_isomorphism,
    has_homomorphism,
    iter_homomorphisms,
)

SCHEMA = Schema({"R": 2, "S": 1})
X, Y, Z = Null("x"), Null("y"), Null("z")


def homset(it):
    return frozenset(frozenset(h.items()) for h in it)


class TestDifferential:
    """Random instance pairs: the two engines agree on the full hom set."""

    @pytest.mark.parametrize("seed", range(8))
    def test_plain_and_database_homs(self, seed):
        rng = random.Random(0xC5 + seed)
        for _ in range(25):
            src = random_instance(
                SCHEMA, rng, n_facts=rng.randint(0, 4), constants=(1, 2),
                n_nulls=rng.randint(0, 3), null_probability=0.6,
            )
            tgt = random_instance(
                SCHEMA, rng, n_facts=rng.randint(0, 10), constants=(1, 2, 3),
                n_nulls=rng.randint(0, 2), null_probability=0.3,
            )
            for fix in (True, False):
                legacy = homset(
                    iter_homomorphisms(src, tgt, fix_constants=fix, engine="legacy")
                )
                csp = homset(iter_homomorphisms_csp(src, tgt, fix_constants=fix))
                assert legacy == csp, (src, tgt, fix)

    @pytest.mark.parametrize(
        "options",
        [
            {"onto": True},
            {"strong_onto": True},
            {"injective": True},
            {"require_complete_image": True},
            {"onto": True, "injective": True},
            {"strong_onto": True, "injective": True},
            {"fix_constants": False, "strong_onto": True},
            {"fix_constants": False, "require_complete_image": True},
        ],
    )
    def test_option_combinations(self, options):
        rng = random.Random(hash(tuple(sorted(options))) & 0xFFFF)
        for _ in range(30):
            src = random_instance(
                SCHEMA, rng, n_facts=rng.randint(0, 4), constants=(1, 2),
                n_nulls=rng.randint(0, 3), null_probability=0.6,
            )
            tgt = random_instance(
                SCHEMA, rng, n_facts=rng.randint(0, 6), constants=(1, 2, 3),
                n_nulls=rng.randint(0, 2), null_probability=0.3,
            )
            legacy = homset(iter_homomorphisms(src, tgt, engine="legacy", **options))
            csp = homset(iter_homomorphisms_csp(src, tgt, **options))
            assert legacy == csp, (src, tgt, options)

    def test_pinned(self):
        rng = random.Random(0xF00)
        for _ in range(40):
            src = random_instance(
                SCHEMA, rng, n_facts=rng.randint(1, 4), constants=(1, 2),
                n_nulls=rng.randint(1, 3), null_probability=0.7,
            )
            tgt = random_instance(
                SCHEMA, rng, n_facts=rng.randint(1, 6), constants=(1, 2, 3),
                n_nulls=0,
            )
            adom = sorted(src.adom(), key=repr)
            pinned = {adom[rng.randrange(len(adom))]: rng.choice((1, 2, 3, 9))}
            legacy = homset(iter_homomorphisms(src, tgt, engine="legacy", pinned=pinned))
            csp = homset(iter_homomorphisms_csp(src, tgt, pinned=pinned))
            assert legacy == csp, (src, tgt, pinned)


class TestCSPBehaviour:
    def test_graph_homs(self):
        c6 = cycle(6)
        c3 = cycle(3, values=[Null("a"), Null("b"), Null("c")])
        assert homset(iter_homomorphisms_csp(c6, c3, fix_constants=False))
        c4 = cycle(4)
        assert not homset(iter_homomorphisms_csp(c4, c3, fix_constants=False))

    def test_empty_source_maps_anywhere(self):
        assert list(iter_homomorphisms_csp(Instance.empty(), Instance({"R": [(1,)]}))) == [{}]
        assert list(iter_homomorphisms_csp(Instance.empty(), Instance.empty())) == [{}]
        # but not onto a non-empty active domain
        assert not list(
            iter_homomorphisms_csp(Instance.empty(), Instance({"R": [(1,)]}), onto=True)
        )

    def test_strong_onto_prechecks(self):
        # relation mismatch and target-larger-than-source fail without search
        d = Instance({"R": [(X, Y)]})
        assert not list(iter_homomorphisms_csp(d, Instance({"S": [(1,)]}), strong_onto=True))
        assert not list(
            iter_homomorphisms_csp(
                d, Instance({"R": [(1, 2), (3, 4)]}), strong_onto=True
            )
        )

    def test_onto_precheck(self):
        d = Instance({"R": [(X, X)]})
        big = Instance({"R": [(1, 2), (2, 3)]})
        assert not list(iter_homomorphisms_csp(d, big, onto=True))

    def test_injective_precheck_and_pinned_conflict(self):
        d = Instance({"R": [(X,), (Y,)]})
        small = Instance({"R": [(1,)]})
        assert not list(iter_homomorphisms_csp(d, small, injective=True))
        e = Instance({"R": [(1,), (2,)]})
        assert not list(
            iter_homomorphisms_csp(
                Instance({"R": [(X, Y)]}),
                Instance({"R": [(1, 1)]}),
                injective=True,
            )
        )
        del e

    def test_candidate_tables_probe_constants(self):
        src = Instance({"R": [(1, X)]})
        tgt = Instance({"R": [(1, 5), (1, 6), (2, 7)]})
        table = dict(candidate_tables(src, tgt, True, False))
        assert set(table[("R", (1, X))]) == {(1, 5), (1, 6)}

    def test_candidate_tables_repeated_values(self):
        src = Instance({"R": [(X, X)]})
        tgt = Instance({"R": [(1, 1), (1, 2)]})
        table = dict(candidate_tables(src, tgt, True, False))
        assert set(table[("R", (X, X))]) == {(1, 1)}

    def test_candidate_tables_complete_image(self):
        src = Instance({"R": [(X, Y)]})
        tgt = Instance({"R": [(1, 2), (1, Null("t"))]})
        table = dict(candidate_tables(src, tgt, True, True))
        assert set(table[("R", (X, Y))]) == {(1, 2)}

    def test_candidate_tables_memoised(self):
        clear_candidate_cache()
        src = Instance({"R": [(X, Y)]})
        tgt = Instance({"R": [(1, 2)]})
        first = candidate_tables(src, tgt, True, False)
        assert candidate_tables(src, tgt, True, False) is first
        info = candidate_tables.cache_info()
        assert info.hits >= 1


class TestRouting:
    def test_facade_engines_agree(self):
        src = Instance({"R": [(X, Y), (Y, Z)], "S": [(X,)]})
        tgt = Instance(
            {"R": [(1, 2), (2, 3), (3, 1), (2, 2)], "S": [(1,), (2,)]}
        )
        auto = homset(iter_homomorphisms(src, tgt))
        legacy = homset(iter_homomorphisms(src, tgt, engine="legacy"))
        csp = homset(iter_homomorphisms(src, tgt, engine="csp"))
        assert auto == legacy == csp

    def test_auto_threshold_routes_by_size(self):
        # below the threshold the facade must not pay candidate-table setup
        small_src = Instance({"R": [(X, Y)]})
        small_tgt = Instance({"R": [(1, 2)]})
        assert small_src.fact_count() + small_tgt.fact_count() < _CSP_MIN_FACTS
        assert has_homomorphism(small_src, small_tgt)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown homomorphism engine"):
            list(iter_homomorphisms(Instance({"R": [(X,)]}), Instance({"R": [(1,)]}),
                                    engine="quantum"))

    def test_find_and_iso_route_through_facade(self):
        a = Instance({"R": [(X, Y)]})
        b = Instance({"R": [(Null("p"), Null("q"))]})
        iso = find_isomorphism(a, b)
        assert iso is not None and a.apply(iso) == b
        hom = find_homomorphism(a, b, engine="csp")
        assert hom is not None
