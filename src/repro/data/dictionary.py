"""Dictionary encoding: cells interned to ints, relations as columns.

The compiled evaluator pushes Python tuples of *cell objects* through
its hash joins.  That is correct but slow for exactly the data this
repo cares about: :class:`~repro.data.values.Null` hashes through a
Python-level ``__hash__`` that builds a tuple per call, and mixed
constant/null tuples hash cell-by-cell through the generic protocol.

A :class:`Dictionary` interns every cell — constants and nulls alike —
into a small integer *code*.  Codes are append-only and stable: once a
value is interned its code never changes, across ``with_delta``
mutations, ``replace``, and snapshot restore (the session layer carries
one dictionary along its whole instance chain).  Encoded rows are plain
``tuple[int, ...]`` and encoded relations store their rows as *columns*
of ints (``array('q')``), which makes hashing, equality, pickling and —
when numpy is available — vectorised kernels cheap.

The code space is split by parity so "is this cell a null?" needs no
table lookup:

* **even** codes are constants (``code >> 1`` indexes the constant table);
* **odd** codes are nulls (``code >> 1`` indexes the null table).

>>> from repro.data.values import Null
>>> d = Dictionary()
>>> d.encode("a"), d.encode(Null("x")), d.encode("a")
(0, 1, 0)
>>> d.decode(0), d.decode(1)
('a', ⊥x)
>>> Dictionary.is_null_code(1), Dictionary.is_null_code(0)
(True, False)

Equality of codes is equality of cells under ``==`` — the same relation
row sets use.  In particular ``1 == True`` interns to one code, exactly
as ``{(1,), (True,)}`` is a one-element frozenset.
"""

from __future__ import annotations

import threading
from array import array
from typing import Hashable, Iterable, Mapping, Sequence

from repro.data.instance import Instance
from repro.data.values import Null

__all__ = [
    "Dictionary",
    "EncodedRelation",
    "ColumnarContext",
    "columnar_context",
    "derive_columnar",
]

try:  # optional acceleration; every caller has a pure-Python path
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the pure kernels
    _np = None

_SENTINEL = object()


class Dictionary:
    """Append-only interning of cells (constants and nulls) to ints.

    Thread-safe for concurrent interning: lookups are lock-free (CPython
    dict reads are atomic), insertions take a lock and re-check.  Decode
    tables are append-only lists, so a code obtained from any thread can
    always be decoded.
    """

    __slots__ = ("_codes", "_consts", "_nulls", "_lock")

    def __init__(self) -> None:
        self._codes: dict[Hashable, int] = {}
        self._consts: list[Hashable] = []
        self._nulls: list[Null] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # interning
    # ------------------------------------------------------------------

    def encode(self, value: Hashable) -> int:
        """The code of ``value``, interning it on first sight."""
        code = self._codes.get(value)
        if code is None:
            with self._lock:
                code = self._codes.get(value)
                if code is None:
                    if isinstance(value, Null):
                        code = len(self._nulls) * 2 + 1
                        self._nulls.append(value)
                    else:
                        code = len(self._consts) * 2
                        self._consts.append(value)
                    self._codes[value] = code
        return code

    def try_encode(self, value: Hashable) -> int | None:
        """The code of ``value`` **without** interning; ``None`` if unseen.

        Query-time probes use this: a constant the dictionary has never
        seen cannot occur in any encoded relation, so the probe misses.
        """
        return self._codes.get(value)

    def encode_row(self, row: Sequence[Hashable]) -> tuple[int, ...]:
        """Encode one tuple of cells."""
        return tuple(map(self.encode, row))

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------

    def decode(self, code: int) -> Hashable:
        """The cell a code stands for (first-interned representative)."""
        if code & 1:
            return self._nulls[code >> 1]
        return self._consts[code >> 1]

    def decode_row(self, codes: Sequence[int]) -> tuple[Hashable, ...]:
        """Decode one encoded row back to a tuple of cells."""
        return tuple(map(self.decode, codes))

    @staticmethod
    def is_null_code(code: int) -> bool:
        """True iff ``code`` stands for a null (odd codes are nulls)."""
        return bool(code & 1)

    # ------------------------------------------------------------------
    # introspection / transport
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._consts) + len(self._nulls)

    def const_count(self) -> int:
        return len(self._consts)

    def null_count(self) -> int:
        return len(self._nulls)

    def export_tables(self) -> tuple[list[Hashable], list[str]]:
        """``(constants, null_labels)`` decode tables for cheap shipping.

        Nulls travel as their labels (equality is by label), so the
        receiving side rebuilds an equivalent dictionary without
        pickling any :class:`Null` object graph.
        """
        return list(self._consts), [n.label for n in self._nulls]

    @classmethod
    def from_tables(cls, consts: Iterable[Hashable], null_labels: Iterable[str]) -> "Dictionary":
        """Rebuild a dictionary from :meth:`export_tables` output."""
        out = cls()
        for value in consts:
            out.encode(value)
        for label in null_labels:
            out.encode(Null(label))
        return out

    def __repr__(self) -> str:
        return f"Dictionary({len(self._consts)} consts, {len(self._nulls)} nulls)"


class EncodedRelation:
    """One relation stored as columns of int codes.

    Immutable after construction (relations are frozen row sets), so an
    encoded relation — with every lazily built index, row set, numpy
    view and sort order it accumulates — can be shared wholesale across
    the instances of a mutation chain that did not touch it.
    """

    __slots__ = (
        "arity",
        "n_rows",
        "columns",
        "_rows",
        "_row_set",
        "_indexes",
        "_key_sets",
        "_np_cols",
        "_np_orders",
        "_sorted_rows",
        "_distinct",
    )

    def __init__(self, arity: int, columns: tuple[array, ...]):
        self.arity = arity
        self.n_rows = len(columns[0]) if columns else 0
        self.columns = columns
        self._rows: list[tuple[int, ...]] | None = None
        self._row_set: frozenset[tuple[int, ...]] | None = None
        self._indexes: dict[tuple[int, ...], dict] = {}
        self._key_sets: dict[int, frozenset[int]] = {}
        self._np_cols: dict[int, object] = {}
        self._np_orders: dict[int, tuple[object, object]] = {}
        self._sorted_rows: dict[int, list[tuple[int, ...]]] = {}
        self._distinct: dict[int, int] = {}

    @classmethod
    def from_rows(cls, rows: Iterable[tuple], dictionary: Dictionary) -> "EncodedRelation":
        """Encode a frozen row set column-wise through ``dictionary``."""
        rows = list(rows)
        if not rows:
            return cls(0, ())
        arity = len(rows[0])
        encode = dictionary.encode
        cols = tuple(
            array("q", [encode(row[j]) for row in rows]) for j in range(arity)
        )
        return cls(arity, cols)

    # ------------------------------------------------------------------
    # row views
    # ------------------------------------------------------------------

    def row_tuples(self) -> list[tuple[int, ...]]:
        """The rows as int tuples (cached; C-speed ``zip`` over columns)."""
        if self._rows is None:
            self._rows = list(zip(*self.columns)) if self.columns else []
        return self._rows

    def row_set(self) -> frozenset[tuple[int, ...]]:
        """The rows as a frozenset of int tuples (cached)."""
        if self._row_set is None:
            self._row_set = frozenset(self.row_tuples())
        return self._row_set

    # ------------------------------------------------------------------
    # access paths (all lazy, all memoised)
    # ------------------------------------------------------------------

    def index(self, positions: tuple[int, ...]) -> dict[tuple[int, ...], list[tuple[int, ...]]]:
        """Hash index ``{key: [rows]}`` keyed on ``positions`` (int keys)."""
        idx = self._indexes.get(positions)
        if idx is None:
            idx = {}
            for row in self.row_tuples():
                key = tuple(row[i] for i in positions)
                bucket = idx.get(key)
                if bucket is None:
                    idx[key] = [row]
                else:
                    bucket.append(row)
            self._indexes[positions] = idx
        return idx

    def key_set(self, position: int) -> frozenset[int]:
        """The distinct codes of one column (semi-join probe set)."""
        keys = self._key_sets.get(position)
        if keys is None:
            keys = frozenset(self.columns[position])
            self._key_sets[position] = keys
        return keys

    def distinct(self, position: int) -> int:
        """Number of distinct codes in one column (join-order stats)."""
        return len(self.key_set(position))

    def sorted_rows(self, position: int) -> list[tuple[int, ...]]:
        """Rows sorted by one column's code (pure sort-merge runs)."""
        rows = self._sorted_rows.get(position)
        if rows is None:
            col = self.columns[position]
            order = sorted(range(self.n_rows), key=col.__getitem__)
            all_rows = self.row_tuples()
            rows = [all_rows[i] for i in order]
            self._sorted_rows[position] = rows
        return rows

    def np_column(self, position: int):
        """One column as an int64 numpy array (requires numpy)."""
        col = self._np_cols.get(position)
        if col is None:
            col = _np.frombuffer(self.columns[position], dtype=_np.int64)
            self._np_cols[position] = col
        return col

    def np_order(self, position: int):
        """``(argsort, sorted_codes)`` of one column (vector sort runs)."""
        cached = self._np_orders.get(position)
        if cached is None:
            col = self.np_column(position)
            order = _np.argsort(col, kind="stable")
            cached = (order, col[order])
            self._np_orders[position] = cached
        return cached

    def __repr__(self) -> str:
        return f"EncodedRelation(arity={self.arity}, rows={self.n_rows})"


class ColumnarContext:
    """The columnar execution substrate of one :class:`Instance`.

    Mirrors :class:`~repro.data.indexes.TableContext` for the encoded
    world: relations are encoded **lazily, one relation at a time** on
    first access, so binding a context to an instance is O(1) and a
    query only pays for the relations it scans.  Cached on the instance
    (``instance._cols``), which is sound for the same reason the row
    context is: instances are immutable, mutation swaps the instance.
    """

    __slots__ = ("dictionary", "_instance", "_encoded", "_adom_codes")

    def __init__(self, instance: Instance, dictionary: Dictionary):
        self.dictionary = dictionary
        self._instance = instance
        self._encoded: dict[str, EncodedRelation] = {}
        self._adom_codes: frozenset[int] | None = None

    def encoded(self, name: str) -> EncodedRelation | None:
        """The encoded relation, built on first access (``None`` if absent)."""
        rel = self._encoded.get(name)
        if rel is None:
            rows = self._instance._relations.get(name)
            if rows is None:
                return None
            rel = EncodedRelation.from_rows(rows, self.dictionary)
            self._encoded[name] = rel
        return rel

    def adom_codes(self) -> frozenset[int]:
        """The active domain as a set of codes (lazily encoded)."""
        if self._adom_codes is None:
            encode = self.dictionary.encode
            self._adom_codes = frozenset(map(encode, self._instance.adom()))
        return self._adom_codes

    def try_encode_key(self, values: Sequence[Hashable]) -> tuple[int, ...] | None:
        """Encode a probe key without interning; ``None`` on any miss."""
        out = []
        get = self.dictionary.try_encode
        for value in values:
            code = get(value)
            if code is None:
                return None
            out.append(code)
        return tuple(out)

    def stats_key(self) -> tuple[tuple[str, int], ...]:
        """Bucketed per-relation row counts for stats-driven join ordering.

        Counts are rounded up to powers of two so the (memoised)
        stats-specialised compilation is stable under small mutations;
        the pseudo-relation ``"%adom"`` carries the domain size.  No
        encoding is forced — counts come straight off the row sets.
        """
        rels = self._instance._relations
        parts = [(name, 1 << max(len(rows) - 1, 0).bit_length()) for name, rows in rels.items()]
        parts.append(("%adom", 1 << max(len(self._instance.adom()) - 1, 0).bit_length()))
        return tuple(sorted(parts))

    def __repr__(self) -> str:
        return (
            f"ColumnarContext({len(self._encoded)}/{len(self._instance._relations)} "
            f"relations encoded; {self.dictionary!r})"
        )


def columnar_context(instance: Instance, dictionary: Dictionary | None = None) -> ColumnarContext:
    """The columnar context of an instance, cached on the instance.

    ``dictionary`` seeds a fresh context (the session layer passes its
    per-``Database`` dictionary so codes stay stable across the whole
    instance chain); a context already cached on the instance wins.
    """
    ctx = instance._cols
    if ctx is None:
        ctx = ColumnarContext(instance, dictionary if dictionary is not None else Dictionary())
        instance._cols = ctx
    return ctx


def derive_columnar(
    old_instance: Instance,
    new_instance: Instance,
    changes: Mapping[str, tuple],
) -> ColumnarContext | None:
    """Seed ``new_instance``'s columnar context from its ancestor.

    The analogue of :func:`repro.data.indexes.derive_context` for the
    encoded world: the ancestor's dictionary is carried forward (codes
    stay stable — the interning invariant the differential tests pin),
    and the encoded relations of **untouched** relations are shared
    outright, bringing their indexes, numpy views and sort runs along
    for free.  Touched relations re-encode lazily on next access.

    No-op (returns ``None``) when the ancestor was never encoded — a
    database that never ran the columnar engine pays nothing here.
    """
    if new_instance._cols is not None:
        return new_instance._cols
    old_ctx = old_instance._cols
    if old_ctx is None:
        return None
    ctx = ColumnarContext(new_instance, old_ctx.dictionary)
    new_rels = new_instance._relations
    for name, rel in old_ctx._encoded.items():
        if name not in changes and name in new_rels:
            ctx._encoded[name] = rel
    new_instance._cols = ctx
    return ctx
