"""Recursive queries over incomplete data: datalog + naive evaluation.

A network inventory with partially-known links (marked nulls from an
incomplete scan).  Reachability is recursive — outside FO — but datalog
without negation is monotone and generic, so naive evaluation computes
certain answers (the paper's Section 12 observation).  We also contrast
with what SQL's three-valued logic would say.

Run with::

    python examples/recursive_reachability.py
"""

from repro import Instance, Query, parse
from repro.data.values import NullFactory
from repro.datalog import (
    Atom,
    Program,
    Rule,
    datalog_certain_answers,
    datalog_naive_answers,
    evaluate_program,
)
from repro.logic.ast import Var
from repro.semantics import get_semantics
from repro.sql3 import compare_sql_to_certain

x, y, z = Var("x"), Var("y"), Var("z")

# ----------------------------------------------------------------------
# 1. The incomplete network: one scanner saw a link from "gw" to some
#    unknown device ⊥d, another saw a link from that same device (the
#    scans correlated it) to "db".  Marked nulls record the correlation.
# ----------------------------------------------------------------------

unknown = NullFactory("dev")
d = unknown.fresh()
network = Instance(
    {
        "Link": [
            ("gw", "app"),
            ("app", "cache"),
            ("gw", d),  # link to the unknown device
            (d, "db"),  # ... and onward from it
        ]
    }
)
print("Incomplete network:")
print(network.pretty())

# ----------------------------------------------------------------------
# 2. Transitive closure in datalog
# ----------------------------------------------------------------------

reach = Program(
    (
        Rule(Atom("Reach", (x, y)), (Atom("Link", (x, y)),)),
        Rule(Atom("Reach", (x, z)), (Atom("Link", (x, y)), Atom("Reach", (y, z)))),
    )
)

fixpoint = evaluate_program(reach, network)
print(f"\nfixpoint has {len(fixpoint.tuples('Reach'))} Reach facts (incl. null paths)")

naive = datalog_naive_answers(reach, network, "Reach")
print(f"naive (certain) reachability: {sorted(naive)}")

# the marked null joins the two scan fragments: gw → ⊥d → db is certain!
assert ("gw", "db") in naive

# validate against the brute-force oracle under CWA
certain = datalog_certain_answers(reach, network, "Reach", get_semantics("cwa"))
assert naive == certain
print("naive = certain under CWA ✓  (datalog is monotone + generic)")

# ----------------------------------------------------------------------
# 3. Had the scans NOT correlated the device, no certain path exists
# ----------------------------------------------------------------------

d1, d2 = unknown.fresh(), unknown.fresh()
uncorrelated = Instance(
    {"Link": [("gw", "app"), ("app", "cache"), ("gw", d1), (d2, "db")]}
)
naive2 = datalog_naive_answers(reach, uncorrelated, "Reach")
assert ("gw", "db") not in naive2
print(f"\nwithout correlation: gw→db certain? {('gw', 'db') in naive2} (two distinct nulls)")

# ----------------------------------------------------------------------
# 4. What SQL would say about a 2-hop FO approximation
# ----------------------------------------------------------------------

two_hop = Query(
    parse("exists m (Link(s, m) & Link(m, t))"), ("s", "t"), name="two_hop"
)
cmp = compare_sql_to_certain(two_hop, network, get_semantics("cwa"))
print(f"\nSQL 3VL two-hop answers:  {sorted(cmp.sql)}")
print(f"certain two-hop answers:  {sorted(cmp.certain)}")
print(f"SQL missed (incomplete):  {sorted(cmp.incomplete) or 'nothing'}")
assert cmp.agrees or cmp.incomplete  # SQL never invents two-hop paths here

print("\nRecursive-reachability example OK.")
