"""Tests for repro.sql3: Kleene logic, 3VL evaluation, SQL-vs-certain."""

import pytest

from repro.data.codd import from_sql_rows
from repro.data.instance import Instance
from repro.data.values import Null
from repro.logic.ast import Var
from repro.logic.parser import parse
from repro.logic.queries import Query
from repro.semantics import get_semantics
from repro.sql3 import (
    Truth,
    answers3,
    compare_sql_to_certain,
    evaluate3,
    holds3,
    t_and,
    t_implies,
    t_not,
    t_or,
)

X, Y = Null("x"), Null("y")


class TestTruthTables:
    def test_not(self):
        assert t_not(Truth.TRUE) is Truth.FALSE
        assert t_not(Truth.FALSE) is Truth.TRUE
        assert t_not(Truth.UNKNOWN) is Truth.UNKNOWN

    def test_and(self):
        assert t_and(Truth.TRUE, Truth.UNKNOWN) is Truth.UNKNOWN
        assert t_and(Truth.FALSE, Truth.UNKNOWN) is Truth.FALSE
        assert t_and() is Truth.TRUE

    def test_or(self):
        assert t_or(Truth.TRUE, Truth.UNKNOWN) is Truth.TRUE
        assert t_or(Truth.FALSE, Truth.UNKNOWN) is Truth.UNKNOWN
        assert t_or() is Truth.FALSE

    def test_implies(self):
        assert t_implies(Truth.UNKNOWN, Truth.FALSE) is Truth.UNKNOWN
        assert t_implies(Truth.FALSE, Truth.UNKNOWN) is Truth.TRUE

    def test_bool_protocol_only_true(self):
        assert bool(Truth.TRUE)
        assert not bool(Truth.UNKNOWN)
        assert not bool(Truth.FALSE)

    def test_of(self):
        assert Truth.of(True) is Truth.TRUE
        assert Truth.of(False) is Truth.FALSE


class TestEvaluate3:
    def test_equality_with_null_is_unknown(self):
        d = Instance({"R": [(X, 1)]})
        assert evaluate3(parse("exists v, w . v = w"), d) is Truth.TRUE  # 1 = 1
        # comparing the null against the constant is unknown, not false:
        q = parse("forall v, w . v = w")
        assert evaluate3(q, d) is Truth.UNKNOWN

    def test_atom_true_on_exact_match(self):
        d = Instance({"R": [(1, 2)]})
        assert evaluate3(parse("R(1, 2)"), d) is Truth.TRUE
        assert evaluate3(parse("R(2, 1)"), d) is Truth.FALSE

    def test_atom_unknown_via_null(self):
        d = Instance({"R": [(1, X)]})
        assert evaluate3(parse("R(1, 2)"), d) is Truth.UNKNOWN
        assert evaluate3(parse("R(2, 2)"), d) is Truth.FALSE

    def test_negation_of_unknown(self):
        d = Instance({"R": [(1, X)]})
        assert evaluate3(parse("!R(1, 2)"), d) is Truth.UNKNOWN

    def test_quantifiers_kleene(self):
        d = Instance({"R": [(1, X)]})
        # ∃v R(1,v): the row (1,⊥) matches (1,⊥) exactly → true
        assert evaluate3(parse("exists v . R(1, v)"), d) is Truth.TRUE
        # ∀v R(v,v): R(1,1) unknown (null), R(⊥,⊥)... best is unknown
        assert evaluate3(parse("forall v . R(v, v)"), d) in (Truth.UNKNOWN, Truth.FALSE)

    def test_holds3_rejects_free_vars(self):
        with pytest.raises(ValueError):
            holds3(parse("R(v, v)"), Instance({"R": [(1, 1)]}))

    def test_unbound_variable_raises(self):
        with pytest.raises(ValueError):
            evaluate3(parse("R(v, 1)"), Instance({"R": [(1, 1)]}))


class TestNotInParadox:
    def test_paradox_reproduced(self):
        """|X| > |Y| yet SQL's X NOT IN Y is empty (paper, Section 1)."""
        db = from_sql_rows({"X": [(1,), (2,), (3,)], "Y": [(1,), (None,)]})
        q = parse("X(v) & !Y(v)")
        sql = answers3(q, db, (Var("v"),))
        assert sql == frozenset()  # the paradox: nothing survives

    def test_without_null_no_paradox(self):
        db = from_sql_rows({"X": [(1,), (2,), (3,)], "Y": [(1,)]})
        q = parse("X(v) & !Y(v)")
        sql = answers3(q, db, (Var("v"),))
        assert sql == frozenset({(2,), (3,)})


class TestCompare:
    def test_sql_agrees_on_ucq_over_constants(self):
        d = Instance({"R": [(1, 2)]})
        q = Query(parse("R(a, b)"), ("a", "b"))
        cmp = compare_sql_to_certain(q, d, get_semantics("cwa"))
        assert cmp.agrees

    def test_sql_incomplete_on_tautology(self):
        """SQL misses certain answers (false negatives): the classic
        excluded-middle failure.  ∀v (R(v) → v=1 ∨ ¬(v=1)) is a
        tautology — certainly true — but SQL's 3VL leaves ⊥=1 unknown
        and refuses to certify it."""
        d = Instance({"R": [(X,)]})
        q = Query.boolean(parse("forall v . R(v) -> (v = 1 | !(v = 1))"))
        assert holds3(q.formula, d) is Truth.UNKNOWN
        cmp = compare_sql_to_certain(q, d, get_semantics("cwa"))
        assert cmp.incomplete == frozenset({()})
        assert not cmp.unsound

    def test_sql_unsound_on_negation(self):
        """SQL returns non-certain rows (false positives)."""
        # X NOT IN Y with Y = {⊥}: SQL't 3VL... actually SQL is empty
        # here.  A cleaner case: Q(v) = X(v) ∧ ¬Z(v) where Z has a null
        # SQL treats as never equal — SQL keeps v although a valuation
        # can put v into Z.
        d = Instance({"X": [(5,)], "Z": [(X,)]})
        q = Query(parse("X(v) & !Z(v)"), ("v",))
        # SQL: Z(5) is unknown → ¬Z(5) unknown → row dropped.  Hmm: SQL
        # *drops* it, certain answer is also empty: agree.  Use a *naive*
        # repeated null where syntactic reasoning says false but SQL says
        # unknown — for unsoundness we need SQL TRUE and certain false:
        # Boolean: ¬∃v Z(v) with Z = ∅ but relation W links the null...
        # Simplest genuine case: ∀-query over a null SQL can't see:
        d2 = Instance({"X": [(5,), (X,)]})
        q2 = Query.boolean(parse("exists v, w . X(v) & X(w) & !(v = w)"))
        cmp = compare_sql_to_certain(q2, d2, get_semantics("cwa"))
        # SQL: v=5, w=⊥: 5=⊥ unknown → ¬ unknown → unknown; v,w=5: false.
        # Certain: valuation ⊥→5 collapses X to {5}: query false. Agree ∅.
        assert not cmp.unsound
        # A real unsound case uses Codd-null joins: SELECT counts a row
        # as distinct-from-null never matching; certain answers under
        # *WCWA/OWA* with extensions show SQL unsound for universal
        # queries instead:
        d3 = Instance({"R": [(1, 1)]})
        q3 = Query.boolean(parse("forall v . R(v, v)"))
        cmp3 = compare_sql_to_certain(q3, d3, get_semantics("owa"), extra_facts=1)
        assert cmp3.unsound == frozenset({()})  # SQL: true; certain: false

    def test_comparison_repr(self):
        d = Instance({"R": [(1, 2)]})
        q = Query(parse("R(a, b)"), ("a", "b"))
        cmp = compare_sql_to_certain(q, d, get_semantics("cwa"))
        assert "sql=" in repr(cmp) and "certain=" in repr(cmp)
