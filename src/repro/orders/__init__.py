"""Information orderings: semantic, Codd (Hoare/Plotkin), and update closures."""

from repro.orders.codd import (
    cwa_codd_leq,
    has_refinement_matching,
    hoare_leq,
    plotkin_leq,
)
from repro.orders.codd_updates import (
    codd_add_copy,
    codd_reachable,
    codd_replace,
    iter_codd_cwa_updates,
)
from repro.orders.semantic import ORDERINGS, leq_cwa, leq_owa, leq_pcwa, leq_wcwa
from repro.orders.updates import (
    copying_update,
    cwa_update,
    iter_copying_updates,
    iter_cwa_updates,
    iter_owa_updates,
    owa_update,
    reachable,
)

__all__ = [
    "cwa_codd_leq",
    "codd_add_copy",
    "codd_reachable",
    "codd_replace",
    "iter_codd_cwa_updates",
    "has_refinement_matching",
    "hoare_leq",
    "plotkin_leq",
    "ORDERINGS",
    "leq_cwa",
    "leq_owa",
    "leq_pcwa",
    "leq_wcwa",
    "copying_update",
    "cwa_update",
    "iter_copying_updates",
    "iter_cwa_updates",
    "iter_owa_updates",
    "owa_update",
    "reachable",
]
