"""First-order logic layer: AST, builders, parser, evaluation, fragments."""

from repro.logic.ast import (
    FALSE,
    TRUE,
    And,
    EqAtom,
    Exists,
    FalseF,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    RelAtom,
    TrueF,
    Var,
)
from repro.logic.builders import (
    Rel,
    and_,
    atom,
    const,
    eq,
    eq_guard,
    exists,
    forall,
    guard,
    implies,
    not_,
    or_,
    var,
)
from repro.logic.classes import (
    FRAGMENTS,
    classify,
    in_epos,
    in_epos_forall_gbool,
    in_fragment,
    in_pos,
    in_pos_forall_g,
    why_not_in,
)
from repro.logic.eval import answers, evaluate, holds, iter_answers
from repro.logic.parser import ParseError, parse
from repro.logic.queries import Query
from repro.logic.transform import (
    all_vars,
    constants_used,
    free_vars,
    is_sentence,
    nnf,
    quantifier_depth,
    relations_used,
    subformulas,
    substitute,
)

__all__ = [
    # ast
    "FALSE", "TRUE", "And", "EqAtom", "Exists", "FalseF", "Forall", "Formula",
    "Implies", "Not", "Or", "RelAtom", "TrueF", "Var",
    # builders
    "Rel", "and_", "atom", "const", "eq", "eq_guard", "exists", "forall",
    "guard", "implies", "not_", "or_", "var",
    # classes
    "FRAGMENTS", "classify", "in_epos", "in_epos_forall_gbool", "in_fragment",
    "in_pos", "in_pos_forall_g", "why_not_in",
    # eval
    "answers", "evaluate", "holds", "iter_answers",
    # parser
    "ParseError", "parse",
    # queries
    "Query",
    # transform
    "all_vars", "constants_used", "free_vars", "is_sentence", "nnf",
    "quantifier_depth", "relations_used", "subformulas", "substitute",
]
