"""Tests for the stratified random formula generators."""

import random

import pytest

from repro.data.schema import Schema
from repro.logic.classes import in_fragment
from repro.logic.generate import random_kary_query, random_sentence
from repro.logic.transform import free_vars, is_sentence

SCHEMA = Schema({"R": 2, "S": 1})
FRAGMENTS = ("EPos", "Pos", "PosForallG", "EPosForallGBool")


@pytest.mark.parametrize("fragment", FRAGMENTS)
class TestRandomSentence:
    def test_membership_guaranteed(self, fragment):
        rng = random.Random(1)
        for _ in range(30):
            phi = random_sentence(SCHEMA, rng, fragment, max_depth=3)
            assert in_fragment(phi, fragment)

    def test_sentences_are_closed(self, fragment):
        rng = random.Random(2)
        for _ in range(20):
            assert is_sentence(random_sentence(SCHEMA, rng, fragment))

    def test_deterministic_under_seed(self, fragment):
        a = random_sentence(SCHEMA, random.Random(99), fragment)
        b = random_sentence(SCHEMA, random.Random(99), fragment)
        assert a == b


class TestRandomKaryQuery:
    def test_arity_and_safety(self):
        rng = random.Random(3)
        for arity in (1, 2):
            q = random_kary_query(SCHEMA, rng, "EPos", arity=arity)
            assert q.arity == arity
            assert free_vars(q.formula) == set(q.answer_vars)

    def test_fragment_guaranteed(self):
        rng = random.Random(4)
        for fragment in FRAGMENTS:
            q = random_kary_query(SCHEMA, rng, fragment, arity=1)
            assert in_fragment(q.formula, fragment)

    def test_queries_evaluate(self):
        from repro.data.generate import random_instance

        rng = random.Random(5)
        instance = random_instance(SCHEMA, rng, n_facts=4)
        q = random_kary_query(SCHEMA, rng, "EPos", arity=1, max_depth=1)
        q.eval_raw(instance)  # must not raise

    def test_depth_zero_is_atomic_anchor(self):
        rng = random.Random(6)
        q = random_kary_query(SCHEMA, rng, "EPos", arity=1, max_depth=0)
        assert q.arity == 1
