"""The relation-based scheme for generating semantics (Sections 4 and 7).

Every semantics in the paper arises in two steps: a *valuation relation*
``R_val ⊆ D × C`` (substitute constants for nulls) composed with a
*semantic relation* ``R_sem ⊆ C × C`` (how the result may be modified:
nothing for CWA, supersets for OWA, …).  The powerset variant routes
through sets: ``R_val ⊆ D × 2^C`` and ``R_sem ⊆ 2^C × C``.

This module realises both schemes over finite explicit domains so the
structural results are executable:

* Proposition 4.1 — the induced domain is fair iff ``R_sem`` is
  transitive;
* Proposition 7.2 / Lemma 7.3 — the powerset analogue;
* construction of the induced :class:`~repro.semantics.domain.DatabaseDomain`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Mapping

from repro.semantics.domain import DatabaseDomain

__all__ = ["RelationPair", "PowersetRelationPair"]

Obj = Hashable


@dataclass(frozen=True)
class RelationPair:
    """A pair ``(R_val, R_sem)`` over a finite domain.

    ``rval`` maps each object to the set of complete objects reachable
    by "substituting values"; ``rsem`` is a binary relation on the
    complete objects, given as a set of pairs.
    """

    objects: frozenset
    complete: frozenset
    rval: Mapping[Obj, frozenset]
    rsem: frozenset  # of pairs (c, c')

    def validate(self) -> None:
        """Check the scheme's side conditions (Section 4.1).

        ``R_val`` is total, restricted to ``C`` it is the identity;
        ``R_sem`` is reflexive on ``C``.
        """
        for x in self.objects:
            if not self.rval.get(x):
                raise ValueError(f"R_val must be total; no image for {x!r}")
        for c in self.complete:
            if frozenset(self.rval.get(c, frozenset())) != frozenset({c}):
                raise ValueError(f"R_val restricted to C must be the identity; violated at {c!r}")
        for c in self.complete:
            if (c, c) not in self.rsem:
                raise ValueError(f"R_sem must be reflexive; missing ({c!r}, {c!r})")

    def is_rsem_transitive(self) -> bool:
        """Is ``R_sem`` transitive?  (Fairness criterion, Prop. 4.1.)"""
        pairs = self.rsem
        return all(
            (a, d) in pairs
            for (a, b) in pairs
            for (c, d) in pairs
            if b == c
        )

    def semantics(self, x: Obj) -> frozenset:
        """``[[x]] = R_val ∘ R_sem`` applied to ``x``."""
        out = set()
        for mid in self.rval.get(x, frozenset()):
            for (a, b) in self.rsem:
                if a == mid:
                    out.add(b)
        return frozenset(out)

    def induced_domain(self, iso_key: Callable[[Obj], Hashable] = lambda x: x) -> DatabaseDomain:
        """The database domain whose semantics this pair generates."""
        sem = {x: self.semantics(x) for x in self.objects}
        return DatabaseDomain(self.objects, self.complete, sem, iso_key)


@dataclass(frozen=True)
class PowersetRelationPair:
    """A powerset pair ``(𝓡_val, 𝓡_sem)`` over a finite domain (Section 7).

    ``rval`` maps each object to a set of *sets* of complete objects
    (each a possible outcome of applying several valuations);
    ``rsem`` is a set of pairs ``(X, c)`` with ``X ⊆ C`` frozen.
    """

    objects: frozenset
    complete: frozenset
    rval: Mapping[Obj, frozenset]  # of frozensets of complete objects
    rsem: frozenset  # of pairs (frozenset, c)

    def validate(self) -> None:
        """Side conditions: totality, ``id_ℓ`` on ``C``, ``id_r ⊆ 𝓡_sem``."""
        for x in self.objects:
            if not self.rval.get(x):
                raise ValueError(f"𝓡_val must be total; no image for {x!r}")
        for c in self.complete:
            if frozenset(self.rval.get(c, frozenset())) != frozenset({frozenset({c})}):
                raise ValueError(f"𝓡_val restricted to C must be id_ℓ; violated at {c!r}")
        for c in self.complete:
            if (frozenset({c}), c) not in self.rsem:
                raise ValueError(f"𝓡_sem must contain id_r; missing ({{{c!r}}}, {c!r})")

    def is_rsem_transitive(self) -> bool:
        """``𝓡_sem ∘ id_ℓ ∘ 𝓡_sem ⊆ 𝓡_sem`` (the powerset transitivity)."""
        return all(
            (x, c2) in self.rsem
            for (x, c1) in self.rsem
            for (y, c2) in self.rsem
            if y == frozenset({c1})
        )

    def semantics(self, x: Obj) -> frozenset:
        """``[[x]]_𝓡 = 𝓡_val ∘ 𝓡_sem`` applied to ``x``."""
        out = set()
        for mid in self.rval.get(x, frozenset()):
            for (y, c) in self.rsem:
                if y == frozenset(mid):
                    out.add(c)
        return frozenset(out)

    def induced_domain(self, iso_key: Callable[[Obj], Hashable] = lambda x: x) -> DatabaseDomain:
        """The database domain whose semantics this powerset pair generates."""
        sem = {x: self.semantics(x) for x in self.objects}
        return DatabaseDomain(self.objects, self.complete, sem, iso_key)
