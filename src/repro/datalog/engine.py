"""Bottom-up datalog evaluation over naive databases.

Semi-naive fixpoint computation with nulls treated as ordinary values —
i.e., *naive evaluation* in the paper's sense, for datalog.  Because
datalog programs are monotone and generic, naive evaluation computes
certain answers under both OWA and CWA (the observation of Section 12,
validated in the tests against the brute-force oracle).
"""

from __future__ import annotations

from typing import Hashable, Iterator

from repro.data.instance import Instance
from repro.data.values import Null
from repro.datalog.program import Atom, Program, Rule
from repro.logic.ast import Var

__all__ = ["evaluate_program", "datalog_naive_answers", "datalog_certain_answers"]


def _match_atom(
    atom: Atom, facts: frozenset[tuple], binding: dict[Var, Hashable]
) -> Iterator[dict[Var, Hashable]]:
    """Extensions of ``binding`` matching ``atom`` against ``facts``."""
    for row in facts:
        extension: dict[Var, Hashable] = {}
        ok = True
        for term, value in zip(atom.terms, row):
            if isinstance(term, Var):
                bound = binding.get(term, extension.get(term))
                if bound is None:
                    extension[term] = value
                elif bound != value:
                    ok = False
                    break
            elif term != value:
                ok = False
                break
        if ok:
            yield {**binding, **extension}


def _apply_rule(
    rule: Rule,
    total: Instance,
    delta: Instance | None,
) -> set[tuple[str, tuple]]:
    """Join the rule body against ``total``.

    Semi-naive mode: when ``delta`` is given, at least one body atom
    must match a delta fact (classic differential evaluation); joins
    still read the full ``total`` for the remaining atoms.
    """
    derived: set[tuple[str, tuple]] = set()
    positions = range(len(rule.body)) if delta is not None else [None]
    for delta_position in positions:
        bindings: list[dict[Var, Hashable]] = [{}]
        dead = False
        for index, atom in enumerate(rule.body):
            source = (
                delta.tuples(atom.name)
                if delta is not None and index == delta_position
                else total.tuples(atom.name)
            )
            next_bindings: list[dict[Var, Hashable]] = []
            for binding in bindings:
                next_bindings.extend(_match_atom(atom, source, binding))
            bindings = next_bindings
            if not bindings:
                dead = True
                break
        if dead:
            continue
        for binding in bindings:
            row = tuple(
                binding[t] if isinstance(t, Var) else t for t in rule.head.terms
            )
            derived.add((rule.head.name, row))
    return derived


def evaluate_program(program: Program, edb: Instance, semi_naive: bool = True) -> Instance:
    """The least fixpoint: EDB plus all derivable IDB facts.

    Nulls participate exactly like constants (naive equality), so this
    is stage one of naive evaluation for datalog queries.

    ``semi_naive=False`` switches to full re-derivation per round (the
    textbook naive fixpoint) — same result, used as an ablation baseline
    in ``benchmarks/bench_ablation.py``.
    """
    total = edb
    delta = edb
    while True:
        new_facts: set[tuple[str, tuple]] = set()
        for rule in program.rules:
            derived = _apply_rule(rule, total, delta if semi_naive else None)
            for name, row in derived:
                if row not in total.tuples(name):
                    new_facts.add((name, row))
        if not new_facts:
            return total
        delta = Instance.from_facts(new_facts)
        total = total.union(delta)


def datalog_naive_answers(
    program: Program, edb: Instance, predicate: str
) -> frozenset[tuple[Hashable, ...]]:
    """Naive evaluation of a datalog query: fixpoint, project, drop nulls."""
    fixpoint = evaluate_program(program, edb)
    return frozenset(
        row
        for row in fixpoint.tuples(predicate)
        if not any(isinstance(v, Null) for v in row)
    )


def datalog_certain_answers(
    program: Program,
    edb: Instance,
    predicate: str,
    semantics,
    pool=None,
    extra_facts: int | None = None,
    limit: int = 500_000,
) -> frozenset[tuple[Hashable, ...]]:
    """Brute-force certain answers: intersect over ``[[edb]]``.

    The oracle for validating that naive datalog evaluation computes
    certain answers (it must, by monotonicity + genericity).
    """
    from repro.core.certain import default_pool

    if pool is None:
        pool = default_pool(edb)
    result: frozenset[tuple[Hashable, ...]] | None = None
    schema = edb.schema()
    for complete in semantics.expand(
        edb, list(pool), schema=schema, extra_facts=extra_facts, limit=limit
    ):
        rows = frozenset(evaluate_program(program, complete).tuples(predicate))
        result = rows if result is None else result & rows
        if not result:
            break
    if result is None:
        raise RuntimeError("[[edb]] came out empty over the pool")
    return result
