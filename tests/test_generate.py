"""Unit tests for repro.data.generate: generators and paper fixtures."""

import random

import pytest

from repro.data.generate import (
    clique,
    cores_graph_example,
    cycle,
    d0_example,
    disjoint_union,
    intro_example,
    minimal_4ary_example,
    path,
    random_codd_instance,
    random_complete_instance,
    random_instance,
    sql_paradox_example,
)
from repro.data.schema import Schema


@pytest.fixture
def rng():
    return random.Random(7)


class TestRandomGenerators:
    def test_random_instance_respects_schema(self, rng):
        schema = Schema({"R": 2, "S": 3})
        inst = random_instance(schema, rng, n_facts=10)
        for name in inst.relations:
            assert inst.arity(name) == schema.arity(name)

    def test_random_instance_null_pool_repeats(self, rng):
        schema = Schema({"R": 2})
        inst = random_instance(schema, rng, n_facts=30, n_nulls=1, null_probability=0.9)
        # a single shared null must repeat across 30 facts
        assert len(inst.nulls()) <= 1
        assert not inst.is_codd() or inst.fact_count() < 2

    def test_random_codd_is_codd(self, rng):
        schema = Schema({"R": 2})
        for _ in range(10):
            assert random_codd_instance(schema, rng, n_facts=8).is_codd()

    def test_random_complete_is_complete(self, rng):
        schema = Schema({"R": 2})
        assert random_complete_instance(schema, rng).is_complete()

    def test_determinism_under_seed(self):
        schema = Schema({"R": 2})
        a = random_instance(schema, random.Random(42))
        b = random_instance(schema, random.Random(42))
        assert a == b


class TestGraphs:
    def test_cycle_shape(self):
        c3 = cycle(3, values=[0, 1, 2])
        assert c3.tuples("E") == frozenset({(0, 1), (1, 2), (2, 0)})

    def test_cycle_default_nodes_are_nulls(self):
        assert cycle(4).nulls() and len(cycle(4).nulls()) == 4

    def test_cycle_validation(self):
        with pytest.raises(ValueError):
            cycle(0)
        with pytest.raises(ValueError):
            cycle(3, values=[1, 2])

    def test_path_shape(self):
        p = path(2, values=["a", "b", "c"])
        assert p.tuples("E") == frozenset({("a", "b"), ("b", "c")})

    def test_clique_shape(self):
        k3 = clique(3, values=[1, 2, 3])
        assert len(k3.tuples("E")) == 6
        assert (1, 1) not in k3.tuples("E")

    def test_disjoint_union(self):
        g = disjoint_union(cycle(2, [1, 2]), cycle(3, [3, 4, 5]))
        assert g.fact_count() == 5

    def test_disjoint_union_rejects_overlap(self):
        with pytest.raises(ValueError):
            disjoint_union(cycle(2, [1, 2]), cycle(2, [2, 3]))


class TestPaperFixtures:
    def test_intro_example_shape(self):
        d = intro_example()
        assert d.relations == ("R", "S")
        assert d.fact_count() == 4
        assert len(d.nulls()) == 3
        assert not d.is_codd()  # ⊥1 and ⊥3 repeat across R and S

    def test_d0_shape(self):
        d0 = d0_example()
        assert d0.fact_count() == 2
        assert len(d0.nulls()) == 2

    def test_sql_paradox_shapes(self):
        x, y = sql_paradox_example()
        assert x.fact_count() > y.fact_count()
        assert y.nulls()

    def test_minimal_4ary_is_the_paper_instance(self):
        d, h = minimal_4ary_example()
        assert d.arity("T") == 4
        assert d.fact_count() == 2
        image = d.apply(h)
        assert image.fact_count() == 2

    def test_cores_graph_example_is_strong_onto(self):
        from repro.homs.properties import is_strong_onto

        g, h_graph, hom = cores_graph_example()
        assert g.fact_count() == 10  # C4 + C6
        assert h_graph.fact_count() == 5  # C3 + C2
        assert is_strong_onto(hom, g, h_graph)
