"""The powerset closed-world semantics ``⦇D⦈_CWA`` (Section 7).

``⦇D⦈_CWA = { h1(D) ∪ … ∪ hn(D) | h1,…,hn valuations, n ≥ 1 }``: several
valuations are applied and their images combined.  Its homomorphism
class is *unions of strong onto homomorphisms*, and naive evaluation is
sound for ``∃Pos+∀G_bool`` (Corollary 7.9).  Restricted to Codd
databases, the induced ordering is exactly Plotkin's ``⊑^P``
(Theorem 7.1).
"""

from __future__ import annotations

import itertools
import math
from typing import Hashable, Iterator, Sequence

from repro.data.instance import Instance
from repro.data.schema import Schema
from repro.homs.search import iter_homomorphisms
from repro.semantics.base import Semantics, guard_limit, iter_valuation_images

__all__ = ["PowersetCWA", "iter_nonempty_unions"]


def iter_nonempty_unions(
    images: list[Instance], max_size: int | None = None
) -> Iterator[Instance]:
    """Unions of nonempty subsets of ``images`` up to ``max_size`` (deduplicated).

    ``max_size=None`` enumerates all ``2^n - 1`` subsets.
    """
    top = len(images) if max_size is None else min(max_size, len(images))
    seen: set[Instance] = set()
    for size in range(1, top + 1):
        for subset in itertools.combinations(images, size):
            union = subset[0]
            for inst in subset[1:]:
                union = union.union(inst)
            if union not in seen:
                seen.add(union)
                yield union


class PowersetCWA(Semantics):
    """Powerset closed-world assumption ``⦇·⦈_CWA``."""

    key = "pcwa"
    name = "powerset CWA"
    notation = "⦇·⦈_CWA"
    saturated = True
    hom_class = "unions of strong onto homomorphisms"
    sound_fragment = "EPosForallGBool"
    #: default bound on the number of valuations combined in one union.
    #: For powerset semantics the ``extra_facts`` knob of :meth:`expand`
    #: is reinterpreted as this bound (``None`` = the class default);
    #: pass a large value for full subset enumeration on small inputs.
    default_union_bound = 2

    def enumeration_exact(self, extra_facts: int | None) -> bool:
        return False  # unions may combine unboundedly many valuations

    def expand(
        self,
        instance: Instance,
        pool: Sequence[Hashable],
        schema: Schema | None = None,
        extra_facts: int | None = None,
        limit: int = 500_000,
    ) -> Iterator[Instance]:
        bound = self.default_union_bound if extra_facts is None else extra_facts
        images = list(iter_valuation_images(instance, pool))
        top = min(bound, len(images))
        guard_limit(
            sum(math.comb(len(images), k) for k in range(1, top + 1)),
            limit,
            "powerset-CWA expansion",
        )
        yield from iter_nonempty_unions(images, max_size=bound)

    def contains(self, instance: Instance, complete: Instance) -> bool:
        self._check_complete(complete)
        # E ∈ ⦇D⦈_CWA iff E is a union of valuation images v(D) ⊆ E.
        # The union of *all* such images is the largest candidate, so it
        # suffices to check that it covers E and is nonempty.
        covered = Instance.empty()
        any_valuation = False
        for hom in iter_homomorphisms(
            instance, complete, fix_constants=True, require_complete_image=True
        ):
            any_valuation = True
            covered = covered.union(instance.apply(hom))
            if complete.issubinstance(covered):
                break
        return any_valuation and covered == complete
