"""Unit tests for repro.core.naive: the two-step procedure."""

import pytest

from repro.core.naive import drop_null_tuples, naive_eval, naive_holds
from repro.data.instance import Instance
from repro.data.values import Null
from repro.logic.parser import parse
from repro.logic.queries import Query

X = Null("x")


def test_drop_null_tuples():
    rows = frozenset({(1, 2), (1, X), (X, X), ()})
    assert drop_null_tuples(rows) == frozenset({(1, 2), ()})


def test_naive_eval_intro_example(join_query, intro_db):
    assert naive_eval(join_query, intro_db) == frozenset({(1, 4)})


def test_naive_eval_keeps_constant_rows():
    q = Query(parse("R(a, b)"), ("a", "b"))
    d = Instance({"R": [(1, 2), (1, X)]})
    assert naive_eval(q, d) == frozenset({(1, 2)})


def test_naive_holds_boolean(d0):
    q = Query.boolean(parse("exists x, y . D(x,y) & D(y,x)"))
    assert naive_holds(q, d0)


def test_naive_holds_nulls_count_as_witnesses(d0):
    # ∀x∃y D(x,y) holds naively on D0 (nulls are values)
    q = Query.boolean(parse("forall x . exists y . D(x, y)"))
    assert naive_holds(q, d0)


def test_naive_holds_rejects_kary():
    q = Query(parse("R(a, b)"), ("a", "b"))
    with pytest.raises(ValueError):
        naive_holds(q, Instance.empty())


def test_naive_eval_boolean_encoding():
    q = Query.boolean(parse("exists v . R(v, v)"))
    assert naive_eval(q, Instance({"R": [(X, X)]})) == frozenset({()})
    assert naive_eval(q, Instance.empty()) == frozenset()
