"""Experiment T3 — Theorem 3.1 / Proposition 3.3 on enumerable domains.

Exhaustively checks, over a fair saturated micro-domain and over random
relational corpora, that naive evaluation ⇔ weak monotonicity (⇔
monotonicity when the domain is fair), timing the exhaustive sweep.
"""

import itertools
import random

import pytest

from repro.core.monotone import weak_monotonicity_counterexample
from repro.logic.generate import random_sentence
from repro.logic.queries import Query
from repro.semantics import get_semantics
from repro.semantics.domain import DatabaseDomain

from conftest import SCHEMA, corpus


def build_micro_domain() -> DatabaseDomain:
    sem = {"a": frozenset({"a"}), "b": frozenset({"b"}), "x": frozenset({"a", "b"})}
    iso = lambda o: "ax" if o in ("a", "x") else o
    return DatabaseDomain(frozenset(sem), frozenset({"a", "b"}), sem, iso)


def sweep_theorem_3_1() -> int:
    """All generic Boolean queries on the micro-domain: check Thm 3.1 & Prop 3.3."""
    dom = build_micro_domain()
    assert dom.is_fair() and dom.is_saturated()
    checked = 0
    for bits in itertools.product([False, True], repeat=3):
        table = dict(zip(("a", "b", "x"), bits))
        query = table.__getitem__
        if not dom.is_generic(query):
            continue
        naive = dom.naive_works(query)
        assert naive == dom.weakly_monotone(query) == dom.monotone(query)
        checked += 1
    return checked


def test_theorem_3_1_micro_domain(benchmark):
    checked = benchmark(sweep_theorem_3_1)
    benchmark.extra_info["generic_queries_checked"] = checked
    assert checked >= 4


@pytest.mark.parametrize("key", ["cwa", "pcwa", "mincwa"])
def test_weak_monotonicity_on_relational_corpus(benchmark, key):
    """Sound-fragment queries have no weak-monotonicity counterexample."""
    sem = get_semantics(key)
    rng = random.Random(0x31 + hash(key) % 97)
    instances = corpus(seed=31, n=4)
    fragment = sem.sound_fragment

    def run():
        misses = 0
        for _ in range(4):
            query = Query.boolean(random_sentence(SCHEMA, rng, fragment, max_depth=2))
            if key.startswith("min"):
                # minimal semantics: weak monotonicity holds for the
                # fragment by Prop 10.13 (preservation), test it
                pass
            ce = weak_monotonicity_counterexample(query, instances, sem, extra_facts=1)
            misses += ce is not None
        return misses

    misses = benchmark(run)
    benchmark.extra_info["fragment"] = fragment
    benchmark.extra_info["counterexamples"] = misses
    assert misses == 0
