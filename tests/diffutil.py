"""Shared scaffolding for the cross-engine differential test suites.

One generator, many suites: ``tests/test_compile.py`` (compiled ≡
interpreter), ``tests/test_columnar.py`` (columnar ≡ compiled ≡
interpreter) and the nightly fuzz matrix all drive the helpers here, so
a new engine gets the full random formula × random instance × all-
semantics matrix by listing itself in ``engines=`` — not by growing a
parallel copy of the generator.

The fuzz knobs are honoured exactly as before the extraction:
``REPRO_FUZZ`` multiplies every trial budget, ``REPRO_FUZZ_SEED``
shifts every RNG seed (the nightly workflow passes the run id), and the
defaults keep ordinary CI fast and fully deterministic.
"""

import os
import random
import zlib

from repro.data.schema import Schema
from repro.logic.ast import (
    And,
    EqAtom,
    Exists,
    FalseF,
    Forall,
    Implies,
    Not,
    Or,
    RelAtom,
    TrueF,
    Var,
)
from repro.logic.columnar import ColumnarQuery, as_columnar_context
from repro.logic.compile import CompiledQuery, _compiled_with_stats
from repro.logic.eval import answers, evaluate
from repro.logic.transform import free_vars

#: the small schema the fragment/k-ary generators draw from
SCHEMA = Schema({"R": 2, "S": 1})

# Nightly fuzz knobs (.github/workflows/nightly.yml): REPRO_FUZZ multiplies
# every random-trial budget and REPRO_FUZZ_SEED shifts the RNG seeds, so the
# scheduled sweep covers fresh formula/instance space on every run.  The
# defaults (1, 0) keep ordinary CI fast and fully deterministic.
FUZZ = max(1, int(os.environ.get("REPRO_FUZZ", "1")))
FUZZ_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "0"))


def fuzz_trials(base: int) -> int:
    return base * FUZZ


def fuzz_rng(seed: "int | str") -> random.Random:
    # strings are seeded via crc32, NOT hash(): str hashing is randomized
    # per process (PYTHONHASHSEED), which would make a nightly failure
    # unreplayable even with the same REPRO_FUZZ_SEED
    if isinstance(seed, str):
        seed = zlib.crc32(seed.encode())
    return random.Random(seed + 0x9E3779B1 * FUZZ_SEED)


def interp_answers(formula, instance, head):
    """The tree-walking interpreter — the differential ground truth."""
    if head:
        return answers(formula, instance, head)
    return frozenset([()]) if evaluate(formula, instance) else frozenset()


def engine_answers(engine: str, formula, instance, head):
    """Raw (pre-null-drop) answers of one engine on a bare formula.

    ``columnar`` runs the shared stats-free plan *and* the instance's
    stats-specialised plan and asserts they agree — join order must
    never change answers.
    """
    head = tuple(Var(v) if isinstance(v, str) else v for v in head)
    if engine == "compiled":
        return CompiledQuery(formula, head).answers(instance)
    if engine == "interp":
        return interp_answers(formula, instance, head)
    if engine == "columnar":
        shared = ColumnarQuery(CompiledQuery(formula, head)).answers(instance)
        cctx = as_columnar_context(instance)
        specialised = ColumnarQuery(
            _compiled_with_stats(formula, head, cctx.stats_key())
        ).answers(instance)
        assert shared == specialised, (
            f"stats-driven join order changed answers on {formula!r}"
        )
        return shared
    raise ValueError(f"unknown differential engine {engine!r}")


def assert_equivalent(formula, instance, head=(), engines=("compiled",)):
    """Each listed engine ≡ the interpreter on ``(formula, head, instance)``."""
    want = interp_answers(formula, instance, tuple(head))
    for engine in engines:
        got = engine_answers(engine, formula, instance, head)
        assert got == want, f"{engine} ≠ interp on {formula!r} over {instance!r}"


# ----------------------------------------------------------------------
# the arbitrary-formula generator (negation, →, =, constants: the
# unsafe zone) — extracted verbatim from test_compile.py
# ----------------------------------------------------------------------

#: defaults of the arbitrary generator
ARBITRARY_RELS = {"R": 2, "S": 1, "T": 3}
ARBITRARY_CONSTS = [1, 2, 3, "a"]
ARBITRARY_VARS = [Var(n) for n in "xyzuv"]


def random_formula(rng, depth, pool, rels=None, consts=None, vars_=None):
    """A random unrestricted formula over ``rels`` with ``pool`` in scope."""
    rels = ARBITRARY_RELS if rels is None else rels
    consts = ARBITRARY_CONSTS if consts is None else consts
    vars_ = ARBITRARY_VARS if vars_ is None else vars_
    if depth <= 0 or rng.random() < 0.25:
        k = rng.random()
        if k < 0.55:
            name = rng.choice(list(rels))
            opts = pool + consts if rng.random() < 0.4 else pool
            return RelAtom(name, tuple(rng.choice(opts) for _ in range(rels[name])))
        if k < 0.8:
            return EqAtom(rng.choice(pool + consts), rng.choice(pool + consts))
        return TrueF() if rng.random() < 0.5 else FalseF()
    op = rng.choice(["and", "or", "not", "implies", "exists", "forall"])
    if op == "not":
        return Not(random_formula(rng, depth - 1, pool, rels, consts, vars_))
    if op in ("and", "or"):
        subs = tuple(
            random_formula(rng, depth - 1, pool, rels, consts, vars_)
            for _ in range(rng.choice([2, 3]))
        )
        return And(subs) if op == "and" else Or(subs)
    if op == "implies":
        return Implies(
            random_formula(rng, depth - 1, pool, rels, consts, vars_),
            random_formula(rng, depth - 1, pool, rels, consts, vars_),
        )
    vs = tuple(rng.sample(vars_, rng.choice([1, 1, 2])))
    body = random_formula(
        rng, depth - 1, list(set(pool + list(vs))), rels, consts, vars_
    )
    return Exists(vs, body) if op == "exists" else Forall(vs, body)


def arbitrary_case(rng):
    """One random ``(formula, head, instance)`` from the unsafe zone."""
    from repro.data.generate import random_instance

    schema = Schema(ARBITRARY_RELS)
    inst = random_instance(
        schema, rng, n_facts=rng.randint(0, 6), constants=(1, 2, "a"), n_nulls=2
    )
    phi = random_formula(rng, rng.choice([1, 2, 3]), rng.sample(ARBITRARY_VARS, 2))
    head = tuple(sorted(free_vars(phi), key=lambda v: v.name))
    return phi, head, inst


# ----------------------------------------------------------------------
# the all-semantics certain-answer reference
# ----------------------------------------------------------------------

SEMANTICS_KEYS = ("owa", "cwa", "wcwa", "pcwa", "mincwa", "minpcwa")

#: extra fresh facts the open-world semantics need to be interesting
SEMANTICS_EXTRA = {"owa": 1, "wcwa": 1}


def interp_certain_reference(query, instance, semantics, extra_facts=None):
    """World-by-world interpreted intersection — the oracle ground truth."""
    from repro.core.certain import default_pool, query_schema

    pool = default_pool(instance, query)
    schema = instance.schema().union(query_schema(query))
    result = None
    for world in semantics.expand(
        instance, pool, schema=schema, extra_facts=extra_facts
    ):
        rows = interp_answers(query.formula, world, query.answer_vars)
        result = rows if result is None else result & rows
        if not result:
            break
    assert result is not None
    return result
