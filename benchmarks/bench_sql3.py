"""Experiment SQL3 — quantifying SQL's gap against certain answers.

The introduction's criticism of SQL made measurable: over random
incomplete instances and queries, count how often SQL's three-valued
answers are unsound (return non-certain rows) or incomplete (miss
certain rows), per query class.  UCQs agree (SQL's 3VL is certain-sound
for positive queries on Codd databases); negation splits them.
"""

import random

from repro.data.codd import from_sql_rows
from repro.data.generate import random_codd_instance
from repro.data.schema import Schema
from repro.logic.ast import Var
from repro.logic.generate import random_sentence
from repro.logic.parser import parse
from repro.logic.queries import Query
from repro.semantics import get_semantics
from repro.sql3 import answers3, compare_sql_to_certain

SCHEMA = Schema({"R": 2, "S": 1})


def test_not_in_paradox(benchmark):
    db = from_sql_rows({"X": [(1,), (2,), (3,)], "Y": [(1,), (None,)]})
    q = parse("X(v) & !Y(v)")

    def run():
        return answers3(q, db, (Var("v"),))

    sql = benchmark(run)
    benchmark.extra_info["paradox"] = f"|X|=3 > |Y|=2 yet X−Y = {set(sql)}"
    assert sql == frozenset()


def test_sql_sound_and_complete_on_ucq_corpus(benchmark):
    """SQL's TRUE rows agree with certain answers for random UCQs."""
    rng = random.Random(0x53)
    instances = [
        random_codd_instance(SCHEMA, rng, n_facts=3, constants=(1, 2))
        for _ in range(4)
    ]

    def run():
        disagreements = 0
        for instance in instances:
            for _ in range(4):
                query = Query.boolean(random_sentence(SCHEMA, rng, "EPos", max_depth=2))
                cmp = compare_sql_to_certain(query, instance, get_semantics("cwa"))
                disagreements += not cmp.agrees
        return disagreements

    disagreements = benchmark(run)
    benchmark.extra_info["disagreements"] = disagreements
    assert disagreements == 0


def test_sql_incomplete_on_tautologies(benchmark):
    """Excluded middle: certainly-true sentences SQL cannot certify."""
    db = from_sql_rows({"R": [(None,)]})
    q = Query.boolean(parse("forall v . R(v) -> (v = 1 | !(v = 1))"))

    def run():
        return compare_sql_to_certain(q, db, get_semantics("cwa"))

    cmp = benchmark(run)
    benchmark.extra_info["incomplete"] = str(set(cmp.incomplete))
    assert cmp.incomplete and not cmp.unsound


def test_sql_unsound_under_owa(benchmark):
    """SQL certifies universal claims OWA extensions can break."""
    db = from_sql_rows({"R": [(1, 1)]})
    q = Query.boolean(parse("forall v . R(v, v)"))

    def run():
        return compare_sql_to_certain(q, db, get_semantics("owa"), extra_facts=1)

    cmp = benchmark(run)
    benchmark.extra_info["unsound"] = str(set(cmp.unsound))
    assert cmp.unsound == frozenset({()})
