"""Relational algebra on conditional tables: the strong representation system.

The theorem of [Imielinski & Lipski 1984] that frames the whole paper:
c-tables can represent the result of *any* relational-algebra query,
i.e. ``rep(Q(T)) = {Q(E) | E ∈ rep(T)}``.  This module implements the
construction for selection, projection, natural-like join, union,
renaming and difference; the tests validate the strong-representation
equation against brute-force world enumeration.

Operations act on the facts of a single relation inside a
:class:`~repro.ctables.table.CInstance` and return a new conditional
relation under a chosen name.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.ctables.conditions import cand, ceq, cneq, cor
from repro.ctables.table import CFact, CInstance

__all__ = [
    "select_eq",
    "project",
    "join",
    "union",
    "rename",
    "difference",
]


def _facts_of(table: CInstance, relation: str) -> list[CFact]:
    return [f for f in table.facts if f.relation == relation]


def _with_relation(table: CInstance, facts: list[CFact]) -> CInstance:
    return CInstance(tuple(facts), table.global_condition)


def select_eq(
    table: CInstance, relation: str, position: int, value: Hashable, out: str
) -> CInstance:
    """``σ_{#position = value}``: the condition absorbs the comparison.

    A row whose cell is a null is *kept conditionally*: its condition
    gains the equality ``cell = value``.
    """
    facts = []
    for fact in _facts_of(table, relation):
        condition = cand(fact.condition, ceq(fact.row[position], value))
        facts.append(CFact(out, fact.row, condition))
    return _with_relation(table, facts)


def project(table: CInstance, relation: str, positions: Sequence[int], out: str) -> CInstance:
    """``π``: keep the chosen positions; conditions ride along, merged by ∨."""
    by_row: dict[tuple, list] = {}
    for fact in _facts_of(table, relation):
        row = tuple(fact.row[i] for i in positions)
        by_row.setdefault(row, []).append(fact.condition)
    facts = [
        CFact(out, row, cor(*conds))
        for row, conds in sorted(by_row.items(), key=lambda kv: repr(kv[0]))
    ]
    return _with_relation(table, facts)


def join(
    table: CInstance,
    left: str,
    right: str,
    on: Sequence[tuple[int, int]],
    out: str,
) -> CInstance:
    """Equi-join: output rows pair left/right rows; the join predicate
    becomes equalities in the condition (so null joins stay symbolic)."""
    facts = []
    for lf in _facts_of(table, left):
        for rf in _facts_of(table, right):
            condition = cand(
                lf.condition,
                rf.condition,
                *(ceq(lf.row[i], rf.row[j]) for i, j in on),
            )
            facts.append(CFact(out, lf.row + rf.row, condition))
    return _with_relation(table, facts)


def union(table: CInstance, left: str, right: str, out: str) -> CInstance:
    """``∪``: all facts of both relations under the output name."""
    facts = [CFact(out, f.row, f.condition) for f in _facts_of(table, left)]
    facts += [CFact(out, f.row, f.condition) for f in _facts_of(table, right)]
    return _with_relation(table, facts)


def rename(table: CInstance, relation: str, out: str) -> CInstance:
    """``ρ``: change the relation name."""
    facts = [CFact(out, f.row, f.condition) for f in _facts_of(table, relation)]
    return _with_relation(table, facts)


def difference(table: CInstance, left: str, right: str, out: str) -> CInstance:
    """``−``: the classic c-table construction.

    A left row survives iff its own condition holds and, for every right
    row, either that row's condition fails or the tuples differ in some
    position — expressed symbolically with negated equalities.
    """
    left_facts = _facts_of(table, left)
    right_facts = _facts_of(table, right)
    facts = []
    for lf in left_facts:
        blockers = []
        for rf in right_facts:
            if len(rf.row) != len(lf.row):
                raise ValueError("difference requires equal arities")
            tuples_differ = cor(
                *(cneq(a, b) for a, b in zip(lf.row, rf.row))
            )
            blockers.append(cor(~rf.condition, tuples_differ))
        condition = cand(lf.condition, *blockers)
        facts.append(CFact(out, lf.row, condition))
    return _with_relation(table, facts)
