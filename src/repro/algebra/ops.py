"""Named-column relational algebra over instances.

The introduction's motivating query is algebraic — ``π_AC(R ⋈ S)`` — so
the library ships a small algebra layer.  Its equality is *syntactic*
(nulls equal iff the same null), which is exactly the naive-evaluation
convention: running an algebra plan over an incomplete instance performs
stage one of naive evaluation for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Iterable

from repro.data.instance import Instance
from repro.data.values import Null

__all__ = ["Relation", "from_instance", "to_instance"]


@dataclass(frozen=True)
class Relation:
    """A named-column relation: schema ``columns``, body ``rows``.

    Immutable; all operators return new relations.
    """

    columns: tuple[str, ...]
    rows: frozenset[tuple[Hashable, ...]]

    def __post_init__(self):
        if len(set(self.columns)) != len(self.columns):
            raise ValueError(f"duplicate column names in {self.columns}")
        for row in self.rows:
            if len(row) != len(self.columns):
                raise ValueError(f"row {row!r} does not match columns {self.columns}")

    # ------------------------------------------------------------------
    # core operators
    # ------------------------------------------------------------------

    def select(self, predicate: Callable[[dict[str, Hashable]], bool]) -> "Relation":
        """σ: keep rows whose column dict satisfies the predicate."""
        kept = frozenset(
            row for row in self.rows if predicate(dict(zip(self.columns, row)))
        )
        return Relation(self.columns, kept)

    def select_eq(self, column: str, value: Hashable) -> "Relation":
        """σ_{column = value} with naive (syntactic) equality."""
        index = self._index(column)
        return Relation(
            self.columns, frozenset(row for row in self.rows if row[index] == value)
        )

    def project(self, columns: Iterable[str]) -> "Relation":
        """π: restrict (and reorder) to the given columns."""
        columns = tuple(columns)
        indexes = [self._index(c) for c in columns]
        return Relation(
            columns, frozenset(tuple(row[i] for i in indexes) for row in self.rows)
        )

    def rename(self, mapping: dict[str, str]) -> "Relation":
        """ρ: rename columns."""
        renamed = tuple(mapping.get(c, c) for c in self.columns)
        return Relation(renamed, self.rows)

    def join(self, other: "Relation") -> "Relation":
        """⋈: natural join on the shared column names (naive equality)."""
        shared = [c for c in self.columns if c in other.columns]
        extra = [c for c in other.columns if c not in self.columns]
        out_columns = self.columns + tuple(extra)
        other_shared_idx = [other._index(c) for c in shared]
        other_extra_idx = [other._index(c) for c in extra]
        self_shared_idx = [self._index(c) for c in shared]

        by_key: dict[tuple, list[tuple]] = {}
        for row in other.rows:
            key = tuple(row[i] for i in other_shared_idx)
            by_key.setdefault(key, []).append(row)

        rows = set()
        for row in self.rows:
            key = tuple(row[i] for i in self_shared_idx)
            for match in by_key.get(key, ()):
                rows.add(row + tuple(match[i] for i in other_extra_idx))
        return Relation(out_columns, frozenset(rows))

    def union(self, other: "Relation") -> "Relation":
        """∪: same columns required."""
        if other.columns != self.columns:
            raise ValueError(f"union needs identical schemas: {self.columns} vs {other.columns}")
        return Relation(self.columns, self.rows | other.rows)

    def difference(self, other: "Relation") -> "Relation":
        """−: same columns required; naive (syntactic) equality."""
        if other.columns != self.columns:
            raise ValueError(
                f"difference needs identical schemas: {self.columns} vs {other.columns}"
            )
        return Relation(self.columns, self.rows - other.rows)

    def product(self, other: "Relation") -> "Relation":
        """×: columns must be disjoint."""
        overlap = set(self.columns) & set(other.columns)
        if overlap:
            raise ValueError(f"product needs disjoint columns; shared: {sorted(overlap)}")
        rows = frozenset(a + b for a in self.rows for b in other.rows)
        return Relation(self.columns + other.columns, rows)

    def drop_null_rows(self) -> "Relation":
        """Stage two of naive evaluation: discard rows containing nulls."""
        return Relation(
            self.columns,
            frozenset(row for row in self.rows if not any(isinstance(v, Null) for v in row)),
        )

    # ------------------------------------------------------------------

    def _index(self, column: str) -> int:
        try:
            return self.columns.index(column)
        except ValueError:
            raise KeyError(f"no column {column!r} in {self.columns}") from None

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(sorted(self.rows, key=repr))


def from_instance(instance: Instance, name: str, columns: Iterable[str]) -> Relation:
    """View one relation of an instance as a named-column relation."""
    columns = tuple(columns)
    tuples = instance.tuples(name)
    if tuples and len(columns) != instance.arity(name):
        raise ValueError(f"{name!r} has arity {instance.arity(name)}, got {len(columns)} columns")
    return Relation(columns, frozenset(tuples))


def to_instance(relation: Relation, name: str) -> Instance:
    """Materialise a named-column relation as a one-relation instance."""
    return Instance({name: relation.rows}) if relation.rows else Instance.empty()
