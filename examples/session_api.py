"""Tour of the session API: prepared queries, plans, backends, batches.

Shows what the :class:`repro.session.Database` facade adds on top of the
free functions: preparation caches the Figure-1 analysis and the
enumeration pool, ``explain`` exposes the routing decision, backends are
selectable and pluggable, ``evaluate_many`` amortises planning over a
batch, and mutations invalidate the caches transparently.  Run with::

    python examples/session_api.py
"""

from repro import Database, Null, available_backends

x, y = Null("x"), Null("y")

# ----------------------------------------------------------------------
# 1. A session over one incomplete instance
# ----------------------------------------------------------------------

db = Database({"D": [(x, y), (y, x)]}, semantics="cwa")
print(f"session: {db!r}")

# ----------------------------------------------------------------------
# 2. Prepared queries: parse + analyze + pool paid once
# ----------------------------------------------------------------------

total = db.query("forall u . exists v . D(u, v)", name="total")
print(f"\nverdict (cached): sound={total.verdict.sound} [{total.verdict.fragment}]")
print(f"pool (cached):    {total.pool}")

first = total.evaluate()
second = total.evaluate()  # reuses the cached plan — no re-analysis
print(f"evaluate twice:   {first.holds}, {second.holds}")
assert first.holds and second.holds

# ----------------------------------------------------------------------
# 3. EXPLAIN: the routing decision as an inspectable value
# ----------------------------------------------------------------------

print("\n" + total.explain().render())
plan = db.explain(total, mode="enumeration")
assert plan.backend == "enumeration" and plan.exact

# ----------------------------------------------------------------------
# 4. Backends: naive / enumeration / ctable agree where the theory says so
# ----------------------------------------------------------------------

print(f"\nregistered backends: {', '.join(available_backends())}")
cycle = db.query("exists u, v . D(u, v) & D(v, u)", name="cycle")
by_backend = {mode: cycle.evaluate(mode).answers for mode in available_backends()}
print(f"answers per backend: { {k: bool(v) for k, v in by_backend.items()} }")
assert by_backend["naive"] == by_backend["enumeration"] == by_backend["ctable"]

# ----------------------------------------------------------------------
# 5. Batches: one pool + one core check for many queries
# ----------------------------------------------------------------------

batch = db.evaluate_many(
    [
        "exists u . D(u, u)",
        "exists u, v . D(u, v)",
        "forall u . exists v . D(u, v)",
    ]
)
for result in batch:
    print(
        f"  batch query → {result.holds}  "
        f"(backend={result.method}, pool={result.stats['pool_size']}, "
        f"{result.stats['execution_s']*1000:.2f} ms)"
    )

# ----------------------------------------------------------------------
# 6. Mutation invalidates the caches — same prepared query, new answers
# ----------------------------------------------------------------------

has_seven = db.query("exists u . D(u, 7)", name="has7")
print(f"\nbefore insert: {has_seven.evaluate().holds} (generation {db.generation})")
db.add_fact("D", (7, 7))
print(f"after insert:  {has_seven.evaluate().holds} (generation {db.generation})")
assert has_seven.evaluate().holds

print("\nSession API tour OK.")
