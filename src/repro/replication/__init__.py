"""Log-shipping replication: the WAL as a stream.

PR 4/5 made every write an *effective delta* journaled to a
checksummed write-ahead log with dense generation counters — which
means the log already **is** a replication stream and staleness is
exactly measurable.  This package adds the two halves that turn one
durable session into a read-scaling cluster:

* :class:`~repro.replication.feed.ReplicationFeed` — the primary side.
  Observes the session (``Database.add_listener``), keeps a bounded
  in-memory ring of recent wire-format records, and serves the
  ``replicate`` wire op: delta frames from any still-buffered position,
  or a full snapshot bootstrap when the requested position has been
  compacted away.

* :class:`~repro.replication.replica.ReplicaTailer` — the replica side.
  Connects to a primary, applies delta frames through
  ``Database.apply_delta`` (journaling to the replica's *own* WAL, so
  replicas are themselves recoverable), verifies the resulting counters
  against each frame, and reconnects with capped exponential backoff +
  jitter — resuming from its durable position with no gaps and no
  double-applies.

Staleness-bounded reads sit on top in :mod:`repro.server`: a query
carrying ``min_generation`` waits on ``Database.wait_for_generation``
until the tailer catches up, or becomes a typed ``stale`` error.
"""

from repro.replication.feed import ReplicaLink, ReplicationFeed
from repro.replication.replica import ReplicaTailer, apply_frame

__all__ = ["ReplicaLink", "ReplicationFeed", "ReplicaTailer", "apply_frame"]
