"""Command-line interface: analyze, evaluate and explain queries over JSON instances.

Instance files are JSON objects mapping relation names to lists of rows;
a string cell starting with ``"?"`` denotes a marked null (``"?x"`` is
the null ⊥x, repeatable across facts); a doubled marker escapes a
literal leading question mark (``"??x"`` is the constant ``"?x"``)::

    {"R": [[1, "?x"], ["?y", "?z"]], "S": [["?x", 4]]}

Usage::

    python -m repro analyze  "exists z (R(x,z) & S(z,y))" --semantics owa
    python -m repro evaluate "exists z (R(x,z) & S(z,y))" db.json --semantics cwa
    python -m repro explain  "forall x . exists y . D(x,y)" db.json --semantics owa
    python -m repro fragments "forall x . exists y . D(x,y)"
    python -m repro serve db.json --data-dir ./state
    python -m repro serve --replica-of 127.0.0.1:7453 --data-dir ./replica
    python -m repro cluster status 127.0.0.1:7453
    python -m repro cluster add-replica 127.0.0.1:7453 --data-dir ./replica2
    python -m repro cluster promote 127.0.0.1:7462
    python -m repro snapshot ./state
    python -m repro recover  ./state --dump out.json

``explain`` prints the evaluation plan (chosen backend, Figure-1
verdict, exactness, cost hints) without running the query; ``--json``
renders it as machine-readable JSON.  ``serve`` runs the JSON-lines
query server (``--data-dir`` makes it durable: recover on start,
journal every acknowledged write, checkpoint on graceful shutdown —
on ``SIGINT`` *or* ``SIGTERM``, so process managers get the same
guarantee; ``--replica-of`` makes the node a read replica streaming a
primary's WAL); ``cluster`` inspects and drives a replicated cluster
(``status`` with per-replica lag, ``add-replica``, ``promote``);
``snapshot`` compacts a data directory; ``recover`` reports what
recovery would restore and can export the instance.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.client import (
    Client,
    ClientError,
    DegradedServerError,
    ReadOnlyServerError,
    ServerError,
    StaleReadError,
    TransportError,
)
from repro.core import analyze, evaluate
from repro.core.analyzer import FIGURE_1
from repro.core.backends import available_backends
from repro.data.instance import Instance

# the JSON wire format lives in repro.data.jsonio (shared with the
# server); the CLI re-exports the instance codec under its historical
# public names
from repro.data.jsonio import instance_from_json, instance_to_json
from repro.logic.classes import classify
from repro.logic.queries import Query
from repro.semantics.base import ExpansionLimitError
from repro.session import Database, as_query

__all__ = ["main", "instance_from_json", "instance_to_json"]


def _build_query(text: str) -> Query:
    # one source of truth for the "answer columns = free variables in
    # name order" convention: the session layer's normaliser
    return as_query(text, name="cli")


def _load_instance(path: str | None) -> Instance:
    if path is None:
        return Instance.empty()
    with open(path, encoding="utf-8") as handle:
        return instance_from_json(handle.read())


def _cmd_analyze(args) -> int:
    query = _build_query(args.query)
    keys = [args.semantics] if args.semantics else sorted(FIGURE_1)
    for key in keys:
        verdict = analyze(query, key)
        flag = "SOUND" if verdict.sound else "not sound"
        extra = " (over cores)" if verdict.over_cores_only else ""
        print(f"{key:>8}: naive evaluation {flag}{extra}")
        print(f"          {verdict.reason}")
    return 0


def _cmd_fragments(args) -> int:
    query = _build_query(args.query)
    got = classify(query.formula)
    print(f"query: {query.formula!r}")
    print("fragments:", ", ".join(got))
    return 0


def _print_result(query: Query, result) -> None:
    if query.is_boolean:
        print(f"certain answer: {result.holds}")
    else:
        head = ", ".join(v.name for v in query.answer_vars)
        print(f"certain answers ({head}):")
        for row in sorted(result.answers, key=repr):
            print("  " + ", ".join(map(repr, row)))
        if not result.answers:
            print("  (none)")
    status = "exact" if result.exact else f"approximate ({result.direction})"
    print(f"method: {result.method}  [{status}]")


def _cmd_evaluate(args) -> int:
    query = _build_query(args.query)
    instance = _load_instance(args.instance)
    result = evaluate(
        query, instance, semantics=args.semantics, mode=args.mode,
        workers=args.workers,
    )
    _print_result(query, result)
    return 0


def _cmd_certain(args) -> int:
    """The oracle, explicitly: bounded enumeration with optional sharding."""
    query = _build_query(args.query)
    instance = _load_instance(args.instance)
    result = evaluate(
        query, instance, semantics=args.semantics, mode="enumeration",
        workers=args.workers,
    )
    _print_result(query, result)
    oracle = result.stats.get("oracle")
    if oracle:
        worlds = oracle.get("worlds", "?")
        mode = oracle.get("mode", "?")
        line = f"oracle: {worlds} worlds ({mode}"
        if oracle.get("workers"):
            line += f", {oracle['workers']} workers, {oracle.get('shards', 0)} shards"
        if oracle.get("cancelled"):
            line += ", cancelled early"
        print(line + ")")
    return 0


def _cmd_explain(args) -> int:
    query = _build_query(args.query)
    instance = _load_instance(args.instance)
    db = Database(instance, semantics=args.semantics, workers=args.workers)
    plan = db.explain(query, mode=args.mode)
    operators: str | None = None
    if args.operators:
        from repro.core.backends import get_backend
        from repro.logic.compile import compiled_query

        engine = getattr(get_backend(plan.backend), "engine", None)
        if engine == "columnar":
            from repro.logic.columnar import columnar_query

            colq = columnar_query(query, instance)
            order = colq.join_order()
            operators = colq.describe()
            if order:
                operators += "\njoin order: " + " ⋈ ".join(order)
        elif engine == "compiled":
            operators = compiled_query(query).describe()
        else:
            operators = f"(backend {plan.backend!r} does not run the compiled engine)"
    if args.as_json:
        data = plan.to_dict()
        if operators is not None:
            data["operators"] = operators.splitlines()
        print(json.dumps(data, indent=2, default=str))
    else:
        print(plan.render())
        if operators is not None:
            print("  operators   :")
            for line in operators.splitlines():
                print("    " + line)
    return 0


def _cmd_serve(args) -> int:
    """Run the JSON-lines query server over one shared Database."""
    import signal

    from repro.replication.feed import ReplicationFeed
    from repro.replication.replica import ReplicaTailer
    from repro.server import FEATURES, AsyncServer, QueryService, Server

    # an instance file seeds a *fresh* data dir only; with neither, the
    # session starts empty (or recovers whatever --data-dir holds)
    instance = _load_instance(args.instance) if args.instance else None
    db = Database(
        instance, semantics=args.semantics, workers=args.workers, path=args.data_dir
    )
    if args.data_dir:
        info = db.recovery_info
        print(
            f"repro serve: data dir {args.data_dir} — recovered generation "
            f"{db.generation} ({info.wal_records} WAL records on top of "
            f"snapshot generation {info.snapshot_generation})"
        )
    if args.workers and args.workers > 1:
        # fork the oracle's worker processes before any client thread
        # exists (forking a multithreaded parent is a footgun)
        db.ensure_worker_pool()
    # every node serves the `replicate` op, so replicas can be chained
    feed = ReplicationFeed(db)
    tailer = ReplicaTailer(db, args.replica_of) if args.replica_of else None
    if args.threaded:
        # the original thread-per-connection shim: in-order pipelining
        # only, no admission control, no server-side deadlines
        service = QueryService(db, batch=not args.no_batch, feed=feed, tailer=tailer)
        server = Server(
            service, host=args.host, port=args.port, max_threads=args.threads
        )
    else:
        service = QueryService(
            db, batch=not args.no_batch, feed=feed, tailer=tailer, features=FEATURES
        )
        server = AsyncServer(
            service,
            host=args.host,
            port=args.port,
            max_inflight=args.max_inflight,
            max_conns=args.max_conns,
            idle_timeout_s=max(0.0, args.idle_timeout_s),
            executor_threads=args.threads,
        ).start()
    address = f"{server.address[0]}:{server.address[1]}"
    print(f"repro serve: listening on {address}", flush=True)
    print("protocol: one JSON request per line, one JSON response per line", flush=True)
    if tailer is not None:
        tailer.announce = address
        tailer.start()
        print(
            f"replica of {tailer.primary_address}: streaming its WAL; "
            f"writes are rejected until 'promote'",
            flush=True,
        )

    # SIGTERM must take the same graceful path as Ctrl-C: process
    # managers speak SIGTERM, and a durable node (a replica especially)
    # must checkpoint its position on the way out
    def _on_sigterm(signum, frame):
        raise SystemExit(0)

    previous = None
    try:
        previous = signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:
        pass  # not the main thread (tests drive main() in-process)
    try:
        server.serve_forever()
    except (KeyboardInterrupt, SystemExit):
        print("\nshutting down")
    finally:
        if previous is not None:
            signal.signal(signal.SIGTERM, previous)
        # graceful drain: in-flight requests get --drain-timeout-s to
        # finish (and have their responses written) before connections
        # are torn down; only then does the shutdown checkpoint run
        server.shutdown(drain_timeout_s=max(0.0, args.drain_timeout_s))
        if db.checkpoint():
            # graceful-shutdown snapshot: the next start reads one
            # snapshot instead of replaying the whole log
            print(f"checkpointed {args.data_dir} at generation {db.generation}")
        db.close()
    return 0


def _rpc(address: str, request: dict, timeout: float = 10.0) -> dict:
    """One resilient JSON-lines exchange with a serving node.

    Routed through :class:`repro.client.Client`: idempotent reads get
    capped-exponential retry with jitter, mutations are sent at most
    once, and typed error frames (``degraded``, ``read_only``,
    ``stale``) surface as typed exceptions that :func:`main` maps to
    distinct exit codes — no raw tracebacks, no prose parsing.
    """
    with Client(address, timeout=timeout) as client:
        return client.request(request)


def _print_table(headers: list[str], rows: list[list]) -> None:
    cells = [[str(value) for value in row] for row in rows]
    widths = [
        max(len(header), *(len(row[i]) for row in cells)) if cells else len(header)
        for i, header in enumerate(headers)
    ]
    print("  ".join(header.ljust(width) for header, width in zip(headers, widths)))
    for row in cells:
        print("  ".join(value.ljust(width) for value, width in zip(row, widths)))


def _cluster_peer_row(address: str | None, reported: dict) -> dict:
    """One replica's row, preferring its own stats over the feed's view."""
    row = {
        "node": address or "(anonymous)",
        "role": "replica",
        "generation": reported.get("sent_generation"),
        "facts": "?",
        "lag_generations": reported.get("lag_generations"),
        "lag_bytes": reported.get("lag_bytes"),
        "state": "streaming",
    }
    if address:
        try:
            stats = _rpc(address, {"op": "stats"}, timeout=5.0)
            replication = stats.get("replication", {})
            row["role"] = replication.get("role", "replica")
            row["generation"] = replication.get("position", {}).get("generation")
            row["facts"] = stats.get("fact_count")
            tailer = replication.get("tailer") or {}
            row["state"] = "streaming" if tailer.get("connected") else "disconnected"
        except (OSError, ValueError, ClientError):
            row["state"] = "unreachable"
    return row


def _cmd_cluster_status(args) -> int:
    """Roles, applied positions and per-replica lag for a whole cluster."""
    stats = _rpc(args.node, {"op": "stats"})
    if not stats.get("ok"):
        print(f"error: {stats.get('error', 'stats failed')}", file=sys.stderr)
        return 2
    replication = stats.get("replication", {})
    position = replication.get("position", {})
    rows = [
        {
            "node": args.node,
            "role": replication.get("role", "?"),
            "generation": position.get("generation", stats.get("generation")),
            "facts": stats.get("fact_count"),
            "lag_generations": "-",
            "lag_bytes": "-",
            "state": "serving",
        }
    ]
    tailer = replication.get("tailer") or {}
    if tailer.get("primary"):
        # the queried node is a replica: put its primary above it
        try:
            upstream = _rpc(tailer["primary"], {"op": "stats"}, timeout=5.0)
            up_repl = upstream.get("replication", {})
            rows.insert(0, {
                "node": tailer["primary"],
                "role": up_repl.get("role", "primary"),
                "generation": up_repl.get("position", {}).get("generation"),
                "facts": upstream.get("fact_count"),
                "lag_generations": "-",
                "lag_bytes": "-",
                "state": "serving",
            })
        except (OSError, ValueError, ClientError):
            rows.insert(0, {
                "node": tailer["primary"], "role": "primary", "generation": "?",
                "facts": "?", "lag_generations": "-", "lag_bytes": "-",
                "state": "unreachable",
            })
        rows[-1]["state"] = "streaming" if tailer.get("connected") else "disconnected"
    for peer in replication.get("feed", {}).get("replicas", []):
        rows.append(_cluster_peer_row(peer.get("address"), peer))
    if args.as_json:
        print(json.dumps({"node": args.node, "rows": rows}, indent=2))
        return 0
    headers = ["node", "role", "generation", "facts", "lag(gen)", "lag(bytes)", "state"]
    _print_table(headers, [
        [r["node"], r["role"], r["generation"], r["facts"],
         r["lag_generations"], r["lag_bytes"], r["state"]]
        for r in rows
    ])
    return 0


def _cmd_cluster_add_replica(args) -> int:
    """Spawn a detached ``repro serve --replica-of`` process and report it."""
    import os
    import subprocess
    import tempfile
    import time
    from pathlib import Path

    command = [
        sys.executable, "-u", "-m", "repro", "serve",
        "--replica-of", args.primary, "--host", args.host, "--port", str(args.port),
    ]
    if args.data_dir:
        command += ["--data-dir", args.data_dir]
    if args.log:
        log_path = Path(args.log)
    elif args.data_dir:
        log_path = Path(args.data_dir) / "serve.log"
    else:
        fd, name = tempfile.mkstemp(prefix="repro-replica-", suffix=".log")
        os.close(fd)
        log_path = Path(name)
    log_path.parent.mkdir(parents=True, exist_ok=True)
    env = dict(os.environ)
    package_root = str(Path(__file__).resolve().parent.parent)
    env["PYTHONPATH"] = package_root + os.pathsep + env.get("PYTHONPATH", "")
    with open(log_path, "ab") as log_handle:
        proc = subprocess.Popen(
            command, stdout=log_handle, stderr=subprocess.STDOUT,
            start_new_session=True, env=env,
        )
    deadline = time.monotonic() + 30
    address = None
    while time.monotonic() < deadline and address is None:
        for line in log_path.read_text(errors="replace").splitlines():
            if "listening on" in line:
                address = line.strip().rsplit(" ", 1)[-1]
                break
        if address is None:
            if proc.poll() is not None:
                print(
                    f"error: replica exited with rc={proc.returncode}; see {log_path}",
                    file=sys.stderr,
                )
                return 2
            time.sleep(0.05)
    if address is None:
        proc.kill()
        print(f"error: replica did not announce its address; see {log_path}", file=sys.stderr)
        return 2
    print(f"replica started: {address} (pid {proc.pid}), replicating from {args.primary}")
    print(f"log: {log_path}")
    return 0


def _cmd_cluster_promote(args) -> int:
    """Checkpoint a replica and flip it writable (failover)."""
    response = _rpc(args.replica, {"op": "promote"})
    if not response.get("ok"):
        print(f"error: {response.get('error', 'promote failed')}", file=sys.stderr)
        return 2
    generation = response.get("generation")
    if response.get("promoted"):
        note = " (position checkpointed)" if response.get("checkpointed") else ""
        print(f"{args.replica} promoted to primary at generation {generation}{note}")
    else:
        print(f"{args.replica} is already a primary (generation {generation})")
    return 0


def _cmd_snapshot(args) -> int:
    """Compact a data directory: write a fresh snapshot, truncate the WAL."""
    db = Database(path=args.data_dir)
    try:
        info = db.recovery_info
        written = db.checkpoint()
        stats = db.storage_stats
        print(
            f"recovered generation {db.generation} "
            f"({info.wal_records} WAL records replayed, "
            f"{info.torn_bytes} torn bytes ignored)"
        )
        if written:
            print(
                f"snapshot written: {db.instance.fact_count()} facts, "
                f"{stats['snapshot_bytes']} bytes; WAL truncated"
            )
        else:
            print("already fully snapshotted; nothing to do")
    finally:
        db.close()
    return 0


def _cmd_recover(args) -> int:
    """Open a data directory, report what recovery found, optionally dump it."""
    db = Database(path=args.data_dir)
    try:
        info = db.recovery_info
        snapshot_note = "" if info.had_snapshot else " (no snapshot file)"
        skipped_note = (
            f" ({info.wal_skipped} already in the snapshot)" if info.wal_skipped else ""
        )
        print(f"data dir      : {args.data_dir}")
        print(f"snapshot      : generation {info.snapshot_generation}{snapshot_note}")
        print(f"WAL replayed  : {info.wal_records} records{skipped_note}")
        if info.torn_bytes:
            print(f"torn tail     : {info.torn_bytes} bytes ignored (crash mid-append)")
        print(f"generation    : {db.generation}")
        print(f"facts         : {db.instance.fact_count()} across "
              f"{len(db.instance.relations)} relations")
        for name in db.instance.relations:
            print(f"  {name}/{db.instance.arity(name)}: {len(db.instance.tuples(name))} rows, "
                  f"generation {db.rel_generation(name)}")
        if args.dump:
            with open(args.dump, "w", encoding="utf-8") as handle:
                handle.write(instance_to_json(db.instance) + "\n")
            print(f"instance dumped to {args.dump}")
    finally:
        db.close()
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Naive evaluation and certain answers over incomplete databases",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    modes = ["auto", *available_backends()]

    p_analyze = sub.add_parser("analyze", help="is naive evaluation sound for this query?")
    p_analyze.add_argument("query", help="FO query text")
    p_analyze.add_argument("--semantics", choices=sorted(FIGURE_1), default=None)
    p_analyze.set_defaults(func=_cmd_analyze)

    p_frag = sub.add_parser("fragments", help="which syntactic fragments contain the query")
    p_frag.add_argument("query")
    p_frag.set_defaults(func=_cmd_fragments)

    workers_help = (
        "max worker processes for the oracle's parallel world sharding "
        "(default: serial; small valuation spaces run serially regardless)"
    )

    p_eval = sub.add_parser("evaluate", help="compute certain answers over a JSON instance")
    p_eval.add_argument("query")
    p_eval.add_argument("instance", help="path to the JSON instance file")
    p_eval.add_argument("--semantics", choices=sorted(FIGURE_1), default="cwa")
    p_eval.add_argument("--mode", choices=modes, default="auto")
    p_eval.add_argument("--workers", type=int, default=None, help=workers_help)
    p_eval.set_defaults(func=_cmd_evaluate)

    p_certain = sub.add_parser(
        "certain",
        help="force the certain-answer oracle (bounded [[D]] enumeration), "
        "with per-shard stats",
    )
    p_certain.add_argument("query")
    p_certain.add_argument("instance", help="path to the JSON instance file")
    p_certain.add_argument("--semantics", choices=sorted(FIGURE_1), default="cwa")
    p_certain.add_argument("--workers", type=int, default=None, help=workers_help)
    p_certain.set_defaults(func=_cmd_certain)

    p_explain = sub.add_parser(
        "explain", help="show the evaluation plan (backend, verdict, cost) without running"
    )
    p_explain.add_argument("query")
    p_explain.add_argument(
        "instance",
        nargs="?",
        default=None,
        help="optional JSON instance file (default: the empty instance)",
    )
    p_explain.add_argument("--semantics", choices=sorted(FIGURE_1), default="cwa")
    p_explain.add_argument("--mode", choices=modes, default="auto")
    p_explain.add_argument("--workers", type=int, default=None, help=workers_help)
    p_explain.add_argument(
        "--json", dest="as_json", action="store_true", help="emit the plan as JSON"
    )
    p_explain.add_argument(
        "--operators",
        action="store_true",
        help="also show the operator tree (chosen kernels, joins, join order, …)",
    )
    p_explain.set_defaults(func=_cmd_explain)

    p_serve = sub.add_parser(
        "serve",
        help="run the JSON-lines query server over one shared session "
        "(concurrent clients, incremental mutation, result caching)",
    )
    p_serve.add_argument(
        "instance",
        nargs="?",
        default=None,
        help="optional JSON instance file to seed the session (default: empty)",
    )
    p_serve.add_argument("--semantics", choices=sorted(FIGURE_1), default="cwa")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=7453, help="TCP port (0 = pick a free one)"
    )
    p_serve.add_argument(
        "--threads",
        type=int,
        default=8,
        help="executor threads evaluating requests (async core), or max "
        "concurrent client connections (--threaded)",
    )
    p_serve.add_argument(
        "--max-inflight",
        dest="max_inflight",
        type=int,
        default=64,
        help="admission control: requests allowed in flight at once before the "
        "async server sheds load with a typed 'overloaded' frame",
    )
    p_serve.add_argument(
        "--max-conns",
        dest="max_conns",
        type=int,
        default=1024,
        help="connections accepted at once; the next one is refused with a typed "
        "'overloaded' frame instead of being queued silently",
    )
    p_serve.add_argument(
        "--idle-timeout-s",
        dest="idle_timeout_s",
        type=float,
        default=0.0,
        help="reap a connection idle (or stalled mid-frame) this long "
        "(0 = never; slowloris defence)",
    )
    p_serve.add_argument(
        "--threaded",
        action="store_true",
        help="serve on the original thread-per-connection core instead of the "
        "asyncio core (no admission control, no deadline_ms)",
    )
    p_serve.add_argument("--workers", type=int, default=None, help=workers_help)
    p_serve.add_argument(
        "--no-batch",
        action="store_true",
        help="disable coalescing of concurrent query requests into evaluate_many batches",
    )
    p_serve.add_argument(
        "--data-dir",
        default=None,
        help="data directory for durable serving: recover on start, journal every "
        "acknowledged write, checkpoint on graceful shutdown (an instance file "
        "may seed a fresh directory only)",
    )
    p_serve.add_argument(
        "--replica-of",
        dest="replica_of",
        metavar="HOST:PORT",
        default=None,
        help="run as a read replica of the given primary: stream its WAL, reject "
        "writes with a typed read_only error until 'cluster promote'; combine "
        "with --data-dir so the replica's position survives restarts",
    )
    p_serve.add_argument(
        "--drain-timeout-s",
        dest="drain_timeout_s",
        type=float,
        default=5.0,
        help="graceful-shutdown drain window: in-flight requests get this many "
        "seconds to finish before connections close (0 = immediate hard close)",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_cluster = sub.add_parser(
        "cluster", help="inspect and drive a replicated cluster (status, add-replica, promote)"
    )
    cluster_sub = p_cluster.add_subparsers(dest="cluster_command", required=True)

    c_status = cluster_sub.add_parser(
        "status", help="roles, applied positions and per-replica lag (generations and bytes)"
    )
    c_status.add_argument("node", help="HOST:PORT of any cluster node")
    c_status.add_argument(
        "--json", dest="as_json", action="store_true", help="emit machine-readable JSON"
    )
    c_status.set_defaults(func=_cmd_cluster_status)

    c_add = cluster_sub.add_parser(
        "add-replica", help="spawn a detached 'repro serve --replica-of' process"
    )
    c_add.add_argument("primary", help="HOST:PORT of the primary to replicate")
    c_add.add_argument(
        "--data-dir",
        default=None,
        help="data directory for the replica (its position then survives restarts)",
    )
    c_add.add_argument("--host", default="127.0.0.1")
    c_add.add_argument("--port", type=int, default=0, help="TCP port (0 = pick a free one)")
    c_add.add_argument(
        "--log", default=None,
        help="log file for the spawned process (default: <data-dir>/serve.log or a temp file)",
    )
    c_add.set_defaults(func=_cmd_cluster_add_replica)

    c_promote = cluster_sub.add_parser(
        "promote", help="checkpoint a replica and flip it writable (failover)"
    )
    c_promote.add_argument("replica", help="HOST:PORT of the replica to promote")
    c_promote.set_defaults(func=_cmd_cluster_promote)

    p_snapshot = sub.add_parser(
        "snapshot",
        help="compact a data directory: write a fresh snapshot and truncate the WAL",
    )
    p_snapshot.add_argument("data_dir", help="data directory of a durable session")
    p_snapshot.set_defaults(func=_cmd_snapshot)

    p_recover = sub.add_parser(
        "recover",
        help="recover a data directory (snapshot + WAL replay) and report what was found",
    )
    p_recover.add_argument("data_dir", help="data directory of a durable session")
    p_recover.add_argument(
        "--dump",
        metavar="PATH",
        default=None,
        help="also write the recovered instance as a JSON instance file",
    )
    p_recover.set_defaults(func=_cmd_recover)

    args = parser.parse_args(argv)
    # exit codes: 0 ok · 2 bad input / untyped error · 3 node degraded ·
    # 4 node read-only (writes go to the reported primary) · 5 stale read
    # (staleness bound unmet) · 6 node unreachable — scripts can branch on
    # the class of failure without parsing stderr
    try:
        return args.func(args)
    except DegradedServerError as err:
        print(f"error (degraded): {err}", file=sys.stderr)
        return 3
    except ReadOnlyServerError as err:
        primary = err.primary
        hint = f"; writes go to {primary}" if primary else ""
        print(f"error (read_only): {err}{hint}", file=sys.stderr)
        return 4
    except StaleReadError as err:
        print(f"error (stale): {err}", file=sys.stderr)
        return 5
    except TransportError as err:
        print(f"error (unreachable): {err}", file=sys.stderr)
        return 6
    except ServerError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    except (ValueError, OSError, ExpansionLimitError, ClientError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
