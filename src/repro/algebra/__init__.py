"""Relational algebra and conjunctive-query machinery."""

from repro.algebra.cq import CQ, UCQ
from repro.algebra.ops import Relation, from_instance, to_instance

__all__ = ["CQ", "UCQ", "Relation", "from_instance", "to_instance"]
