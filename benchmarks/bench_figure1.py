"""Experiment F1 — regenerate Figure 1, the paper's summary table.

For each semantics row, validate on a random corpus that naive
evaluation agrees with certain answers for the row's fragment; the
benchmark measures the cost of one full row validation, and the
``extra_info`` of each run records the agreement rate (expected 1.0 —
the paper's claim).  See EXPERIMENTS.md for the assembled table.
"""

import random

import pytest

from repro.core import certain_holds, naive_holds
from repro.core.analyzer import FIGURE_1
from repro.homs.core import core
from repro.logic.generate import random_sentence
from repro.logic.queries import Query
from repro.semantics import get_semantics

from conftest import SCHEMA, corpus

N_QUERIES = 6
N_INSTANCES = 5


def _certain_kwargs(key: str) -> dict:
    if key == "owa":
        return {"extra_facts": 1}
    if key == "wcwa":
        return {"extra_facts": 2}
    return {}


def validate_row(key: str) -> tuple[int, int]:
    """One Figure-1 row: (agreements, trials) over the random corpus."""
    fragment, restriction, _ = FIGURE_1[key]
    sem = get_semantics(key)
    rng = random.Random(0xF1 + hash(key) % 1000)
    instances = corpus(seed=hash(key) & 0xFFFF, n=N_INSTANCES)
    if restriction == "cores":
        instances = [core(d) for d in instances]
    agreements = trials = 0
    for instance in instances:
        for _ in range(N_QUERIES):
            query = Query.boolean(random_sentence(SCHEMA, rng, fragment, max_depth=2))
            naive = naive_holds(query, instance)
            certain = certain_holds(query, instance, sem, **_certain_kwargs(key))
            trials += 1
            agreements += naive == certain
    return agreements, trials


@pytest.mark.parametrize("key", sorted(FIGURE_1))
def test_figure1_row(benchmark, key):
    fragment, restriction, citation = FIGURE_1[key]
    agreements, trials = benchmark(validate_row, key)
    benchmark.extra_info["semantics"] = get_semantics(key).notation
    benchmark.extra_info["fragment"] = fragment
    benchmark.extra_info["agreement"] = f"{agreements}/{trials}"
    benchmark.extra_info["restriction"] = restriction or "none"
    assert agreements == trials, f"Figure 1 row {key} violated: {agreements}/{trials}"
