"""The primary side of log shipping: a bounded ring over the WAL stream.

A :class:`ReplicationFeed` observes one :class:`~repro.session.Database`
through its listener hook and keeps the most recent wire-format delta
records in an in-memory deque, **pre-encoded** as the exact JSON lines
the wire will carry (encode once, ship to every replica).  The ring
maintains one invariant: it holds a *dense* run of generations
``(floor, top]`` — every record in it has generation exactly one above
its predecessor.  Three things can break density upstream, and each
resets the ring instead of lying about it:

* the buffer cap evicting old records (``floor`` rises);
* a session transition no WAL record describes (``replace()``, knob
  assignments, ``restore()``) — surfaced as a ``reset`` event;
* compaction is *not* one of them: a checkpoint truncates the log but
  the ring keeps its history, so replicas slightly behind the snapshot
  can still catch up by deltas.

:meth:`stream` serves one replica: delta frames whenever the requested
position is inside the ring, a full **snapshot bootstrap** whenever it
is not (before the floor — compacted away — or past the top — a
diverged timeline), and ``heartbeat`` frames on idle so replicas can
distinguish "caught up" from "dead primary".  Frames are yielded with
no feed lock held — a replica blocked on a slow socket can never stall
the primary's writers.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from itertools import islice
from time import monotonic
from typing import TYPE_CHECKING, Iterator

from repro import faults as _faults
from repro.data.jsonio import encode_row

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints only
    from repro.session import Database

__all__ = ["ReplicaLink", "ReplicationFeed"]

#: delta frames handed out per lock acquisition while a replica catches up
CHUNK = 64


class ReplicaLink:
    """One connected replica's progress, as the feed sees it."""

    __slots__ = ("id", "address", "sent_generation", "sent_bytes", "snapshots", "connected_at")

    def __init__(self, link_id: int, address: str | None):
        self.id = link_id
        #: the serve address the replica announced (``None`` for anonymous tailers)
        self.address = address
        self.sent_generation = 0
        self.sent_bytes = 0
        self.snapshots = 0
        self.connected_at = monotonic()


class ReplicationFeed:
    """Serve the ``replicate`` op for one primary session.

    Construction seeds the ring from the session's current WAL (under
    the session lock, so the listener tail continues densely) and
    registers the feed as a listener; :meth:`close` unhooks it and ends
    every live stream.
    """

    def __init__(self, db: Database, *, max_records: int = 8192, heartbeat_s: float = 2.0):
        self._db = db
        self.heartbeat_s = heartbeat_s
        self._max_records = max(1, max_records)
        self._cond = threading.Condition()
        #: ring of (generation, pre-encoded frame line, frame bytes)
        self._records: deque[tuple[int, str, int]] = deque()
        self._bytes = 0
        self._floor = 0  # generation *before* the first buffered record
        self._top = 0  # generation of the last buffered record
        self._resets = 0
        self._closed = False
        self._links: dict[int, ReplicaLink] = {}
        self._link_seq = 0
        with db._lock:
            for record in db.raw_wal_records():
                self._ingest(record)
            if not self._records:
                self._floor = self._top = db.generation
            db.add_listener(self._on_event)

    # ------------------------------------------------------------------
    # the session side (events arrive under the session lock)
    # ------------------------------------------------------------------

    def _on_event(self, event: dict) -> None:
        if event.get("type") == "delta":
            self._ingest(event["record"])
        elif event.get("type") == "reset":
            self._reset(event["generation"])

    def _ingest(self, record: dict) -> None:
        g = int(record["g"])
        frame: dict = {"frame": "delta", "generation": g, "rel_generations": record.get("rg", {})}
        for side in ("adds", "removes"):
            if record.get(side):
                frame[side] = record[side]
        line = json.dumps(frame, separators=(",", ":"))
        size = len(line) + 1  # the newline ships too
        with self._cond:
            if self._closed:
                return
            if self._records and g != self._top + 1:
                # a non-dense record should be impossible (resets arrive as
                # reset events) — treat it as one rather than ship a gap
                self._records.clear()
                self._bytes = 0
                self._resets += 1
            if not self._records:
                self._floor = g - 1
            self._records.append((g, line, size))
            self._bytes += size
            self._top = g
            while len(self._records) > self._max_records:
                _, _, dropped = self._records.popleft()
                self._bytes -= dropped
                self._floor += 1
            self._cond.notify_all()

    def _reset(self, generation: int) -> None:
        with self._cond:
            if self._closed:
                return
            self._records.clear()
            self._bytes = 0
            self._floor = self._top = int(generation)
            self._resets += 1
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # the wire side
    # ------------------------------------------------------------------

    def register(self, address: str | None) -> ReplicaLink:
        """Track one connected replica; pair with :meth:`unregister`."""
        with self._cond:
            self._link_seq += 1
            link = ReplicaLink(self._link_seq, address)
            self._links[link.id] = link
            return link

    def unregister(self, link: ReplicaLink) -> None:
        with self._cond:
            self._links.pop(link.id, None)

    def stream(
        self, from_generation: int, link: ReplicaLink, *, resync: bool = False
    ) -> Iterator[dict | str]:
        """Frames for one replica, starting after ``from_generation``.

        Yields pre-encoded JSON lines (``str``) for delta frames and
        plain dicts for snapshot/heartbeat frames; the server encodes
        the latter.  Never yields while holding the feed lock.  Ends
        when the feed is closed (server shutdown); socket errors on the
        consumer side simply abandon the generator.

        The ``feed.yield`` failpoint fires before every frame ships —
        an injected ``drop-conn`` kills this one stream (the replica
        reconnects from its durable position), a ``hang`` stalls it.
        """
        for frame in self._stream(int(from_generation), link, resync=resync):
            _faults.fire("feed.yield")
            yield frame

    def _stream(
        self, from_generation: int, link: ReplicaLink, *, resync: bool = False
    ) -> Iterator[dict | str]:
        sent = int(from_generation)
        # position 0 is "never synced": generation 0 on the primary may be a
        # *seeded* instance, so the empty state cannot be assumed equivalent
        need_snapshot = bool(resync) or sent == 0
        while True:
            batch: list[tuple[int, str, int]] | None = None
            with self._cond:
                if self._closed:
                    return
                if not need_snapshot and (sent < self._floor or sent > self._top):
                    need_snapshot = True
                if not need_snapshot:
                    if sent < self._top:
                        skip = sent - self._floor
                        batch = list(islice(self._records, skip, skip + CHUNK))
                    elif not self._cond.wait(self.heartbeat_s):
                        if self._closed:
                            return
                        batch = []  # idle: fall through to a heartbeat
                    else:
                        continue  # something changed; re-evaluate
            if need_snapshot:
                frame, generation = self._snapshot_frame()
                sent = generation
                need_snapshot = False
                with self._cond:
                    link.sent_generation = sent
                    link.snapshots += 1
                yield frame
            elif batch:
                for generation, line, size in batch:
                    sent = generation
                    with self._cond:
                        link.sent_generation = sent
                        link.sent_bytes += size
                    yield line
            else:
                yield {"frame": "heartbeat", "generation": self._db.generation}

    def _snapshot_frame(self) -> tuple[dict, int]:
        """A full-state bootstrap frame (state captured atomically)."""
        db = self._db
        with db._lock:
            instance = db.instance
            position = db.position
        encoded = {
            name: [encode_row(name, row) for row in sorted(instance.tuples(name), key=repr)]
            for name in instance.relations
        }
        frame = {
            "frame": "snapshot",
            "generation": position["generation"],
            "rel_generations": position["rel_generations"],
            "instance": encoded,
        }
        return frame, position["generation"]

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------

    @property
    def stats(self) -> dict:
        """Ring state and per-replica lag, for the ``stats`` wire op."""
        with self._cond:
            top = self._top
            replicas = []
            for link in sorted(self._links.values(), key=lambda peer: peer.id):
                if link.sent_generation >= self._floor:
                    lag_bytes = sum(
                        size for g, _line, size in self._records if g > link.sent_generation
                    )
                else:  # pre-floor: at least the whole ring is missing
                    lag_bytes = self._bytes
                replicas.append(
                    {
                        "address": link.address,
                        "sent_generation": link.sent_generation,
                        "lag_generations": max(0, top - link.sent_generation),
                        "lag_bytes": lag_bytes,
                        "snapshots_sent": link.snapshots,
                        "connected_s": round(monotonic() - link.connected_at, 3),
                    }
                )
            return {
                "buffered_records": len(self._records),
                "buffered_bytes": self._bytes,
                "floor_generation": self._floor,
                "top_generation": top,
                "resets": self._resets,
                "replicas": replicas,
            }

    def close(self) -> None:
        """Unhook from the session and terminate every live stream."""
        self._db.remove_listener(self._on_event)
        with self._cond:
            self._closed = True
            self._records.clear()
            self._bytes = 0
            self._cond.notify_all()
