"""Experiments P10.1, C10.11 and P10.13 — minimal semantics and cores.

Reproduces Section 10's counterexamples and guarantees:

* Prop 10.1: minimal images are cores and factor through the core; the
  4-ary and the C4+C6 graph counterexamples where minimality and cores
  come apart; [[D]]^min_CWA ≠ [[core(D)]]_CWA on graphs;
* Cor 10.11 remark: naive evaluation fails off-core;
* Prop 10.13: naive truth still implies certain truth (approximation).
"""

from repro.core import certain_holds, naive_holds
from repro.data.generate import cores_graph_example, cycle, disjoint_union, minimal_4ary_example
from repro.data.instance import Instance
from repro.data.values import Null
from repro.homs.core import core, is_core
from repro.homs.minimal import is_d_minimal, iter_minimal_valuations
from repro.logic.parser import parse
from repro.logic.queries import Query
from repro.semantics import get_semantics

X, Y = Null("x"), Null("y")
SOLUTION = Instance({"T": [(X, X), (X, Y)]})


def test_p10_1_minimal_images_are_cores(benchmark):
    def run():
        checked = 0
        for valuation in iter_minimal_valuations(SOLUTION, [1, 2, 3]):
            image = SOLUTION.apply(valuation)
            assert is_core(image)
            assert image == core(SOLUTION).apply(valuation)
            checked += 1
        return checked

    checked = benchmark(run)
    benchmark.extra_info["minimal_valuations_checked"] = checked
    assert checked >= 3


def test_p10_1_4ary_counterexample(benchmark):
    d, h = minimal_4ary_example()

    def run():
        return is_core(d), is_core(d.apply(h)), is_d_minimal(d, h, mode="database")

    d_core, image_core, h_minimal = benchmark(run)
    benchmark.extra_info["D core / h(D) core / h minimal"] = f"{d_core}/{image_core}/{h_minimal}"
    assert d_core and image_core and not h_minimal


def test_p10_1_graph_counterexample(benchmark):
    g, h_graph, hom = cores_graph_example()

    def run():
        return (
            is_core(g, fix_constants=False),
            is_core(h_graph, fix_constants=False),
            is_d_minimal(g, hom, mode="mapping"),
        )

    g_core, h_core, minimal = benchmark(run)
    benchmark.extra_info["G core / H core / h minimal"] = f"{g_core}/{h_core}/{minimal}"
    assert g_core and h_core and not minimal


def test_p10_1_min_semantics_differ_from_core_cwa(benchmark):
    g, _, _ = cores_graph_example()
    target = disjoint_union(cycle(3, ["a", "b", "c"]), cycle(2, ["d", "e"]))

    def run():
        return (
            get_semantics("cwa").contains(g, target),
            get_semantics("mincwa").contains(g, target),
        )

    in_cwa, in_min = benchmark(run)
    benchmark.extra_info["∈ CWA / ∈ minCWA"] = f"{in_cwa}/{in_min}"
    assert in_cwa and not in_min


def test_c10_11_naive_fails_off_core(benchmark):
    q = Query.boolean(parse("forall v . T(v, v)"))

    def run():
        naive = naive_holds(q, SOLUTION)
        certain = certain_holds(q, SOLUTION, get_semantics("mincwa"))
        on_core = naive_holds(q, core(SOLUTION))
        return naive, certain, on_core

    naive, certain, on_core = benchmark(run)
    benchmark.extra_info["naive/certain/naive-on-core"] = f"{naive}/{certain}/{on_core}"
    assert not naive and certain and on_core


def test_p10_13_approximation(benchmark):
    q = Query.boolean(parse("forall v, w . T(v, w) -> exists u . T(v, u)"))

    def run():
        naive = naive_holds(q, SOLUTION)
        certain = certain_holds(q, SOLUTION, get_semantics("mincwa"))
        return naive, certain

    naive, certain = benchmark(run)
    benchmark.extra_info["naive ⇒ certain"] = f"{naive} ⇒ {certain}"
    assert naive and certain


def test_core_computation_cost(benchmark):
    """Core computation on the C4+C6 graph (the hardest fixture here)."""
    g, _, _ = cores_graph_example()
    result = benchmark(core, g, False)
    assert result == g  # it is its own core
