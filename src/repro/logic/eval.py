"""Active-domain evaluation of FO formulae over instances.

This is the first stage of naive evaluation (Section 2.4): the formula
is evaluated directly on the (possibly incomplete) instance, with nulls
treated as ordinary values — equal iff syntactically the same null.
On complete instances it is just standard FO model checking with the
active-domain semantics the paper assumes throughout.
"""

from __future__ import annotations

from typing import Hashable, Iterator, Mapping

from repro.data.instance import Instance
from repro.logic.ast import (
    And,
    EqAtom,
    Exists,
    FalseF,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    RelAtom,
    Term,
    TrueF,
    Var,
)
from repro.logic.transform import free_vars

__all__ = ["evaluate", "holds", "answers", "iter_answers"]

Binding = Mapping[Var, Hashable]


def _resolve(term: Term, binding: Binding) -> Hashable:
    if isinstance(term, Var):
        try:
            return binding[term]
        except KeyError:
            raise ValueError(f"unbound variable {term!r} during evaluation") from None
    return term


def evaluate(formula: Formula, instance: Instance, binding: Binding | None = None) -> bool:
    """Does ``instance ⊨ formula`` under ``binding``?

    Quantifiers range over the *active domain* of the instance.  Nulls
    participate exactly like constants (naive equality), so on
    incomplete instances this computes the naive truth value.
    """
    binding = dict(binding or {})

    def rec(phi: Formula, env: dict[Var, Hashable]) -> bool:
        match phi:
            case TrueF():
                return True
            case FalseF():
                return False
            case RelAtom(name=name, terms=terms):
                row = tuple(_resolve(t, env) for t in terms)
                return row in instance.tuples(name)
            case EqAtom(left=left, right=right):
                return _resolve(left, env) == _resolve(right, env)
            case Not(sub=sub):
                return not rec(sub, env)
            case And(subs=subs):
                return all(rec(s, env) for s in subs)
            case Or(subs=subs):
                return any(rec(s, env) for s in subs)
            case Implies(left=left, right=right):
                return (not rec(left, env)) or rec(right, env)
            case Exists(vars=vs, sub=sub):
                return _quantify(vs, sub, env, any_mode=True)
            case Forall(vars=vs, sub=sub):
                return _quantify(vs, sub, env, any_mode=False)
        raise TypeError(f"not a formula: {phi!r}")

    def _quantify(
        vs: tuple[Var, ...], sub: Formula, env: dict[Var, Hashable], any_mode: bool
    ) -> bool:
        # cached on the instance, and only touched when a quantifier is
        # actually reached — quantifier-free formulas never sort the domain
        domain = instance.sorted_adom()

        def assign(index: int) -> bool:
            if index == len(vs):
                return rec(sub, env)
            var = vs[index]
            saved = env.get(var, _MISSING)
            for value in domain:
                env[var] = value
                result = assign(index + 1)
                if result is any_mode:
                    _restore(env, var, saved)
                    return any_mode
            _restore(env, var, saved)
            return not any_mode

        return assign(0)

    return rec(formula, binding)


_MISSING = object()


def _restore(env: dict, var: Var, saved) -> None:
    if saved is _MISSING:
        env.pop(var, None)
    else:
        env[var] = saved


def holds(formula: Formula, instance: Instance) -> bool:
    """Evaluate a sentence (no free variables allowed)."""
    unbound = free_vars(formula)
    if unbound:
        names = ", ".join(sorted(v.name for v in unbound))
        raise ValueError(f"formula has free variables ({names}); use answers()")
    return evaluate(formula, instance)


def iter_answers(
    formula: Formula,
    instance: Instance,
    answer_vars: tuple[Var, ...],
) -> Iterator[tuple[Hashable, ...]]:
    """Yield tuples ``ā`` over the active domain with ``instance ⊨ φ(ā)``.

    ``answer_vars`` fixes the order of the answer columns and must cover
    all free variables of the formula.
    """
    missing = free_vars(formula) - set(answer_vars)
    if missing:
        names = ", ".join(sorted(v.name for v in missing))
        raise ValueError(f"answer variables do not cover free variables: {names}")
    domain = instance.sorted_adom()

    def assign(index: int, env: dict[Var, Hashable]) -> Iterator[tuple[Hashable, ...]]:
        if index == len(answer_vars):
            if evaluate(formula, instance, env):
                yield tuple(env[v] for v in answer_vars)
            return
        for value in domain:
            env[answer_vars[index]] = value
            yield from assign(index + 1, env)
        env.pop(answer_vars[index], None)

    yield from assign(0, {})


def answers(
    formula: Formula,
    instance: Instance,
    answer_vars: tuple[Var, ...],
) -> frozenset[tuple[Hashable, ...]]:
    """All answers ``{ā ∈ adom^k : instance ⊨ φ(ā)}`` as a frozen set."""
    return frozenset(iter_answers(formula, instance, answer_vars))
