"""Differential tests: the compiled set-at-a-time evaluator ≡ the interpreter.

The compiled pipeline (:mod:`repro.logic.compile` executing over
:mod:`repro.data.indexes`) must be *bit-for-bit* equivalent to the
tree-walking evaluator (:mod:`repro.logic.eval`) on every formula — the
safe join-shaped fragment and the unsafe subtrees that fall back to
active-domain complements alike.  These tests assert that over random
instances and queries from the project's own generators, then pin the
specific operator behaviours (index probing, layering, orbit
enumeration) the certain-answer oracle builds on.
"""

import random

import pytest
from diffutil import (
    SCHEMA,
    assert_equivalent,
    fuzz_rng,
    fuzz_trials,
    interp_answers,
    interp_certain_reference,
    random_formula,
)

from repro.core.backends import available_backends, get_backend
from repro.core.certain import (
    _canonical_valuations,
    certain_answers,
    default_pool,
    query_schema,
)
from repro.core.naive import naive_eval
from repro.data.generate import random_instance
from repro.data.indexes import TableContext, as_context, context_for
from repro.data.instance import Instance
from repro.data.schema import Schema
from repro.data.values import Null
from repro.logic.ast import (
    And,
    EqAtom,
    Exists,
    FalseF,
    Forall,
    Implies,
    Not,
    Or,
    RelAtom,
    TrueF,
    Var,
)
from repro.logic.compile import CompiledQuery, compile_formula, compiled_query
from repro.logic.eval import answers
from repro.logic.generate import random_kary_query, random_sentence
from repro.logic.parser import parse
from repro.logic.queries import Query
from repro.logic.transform import free_vars
from repro.semantics import get_semantics

# SCHEMA, the fuzz knobs (REPRO_FUZZ / REPRO_FUZZ_SEED) and the random
# generators live in tests/diffutil.py, shared with test_columnar.py and
# the nightly fuzz matrix — one generator drives every engine pairing.
X, Y = Null("x"), Null("y")
x, y, z = Var("x"), Var("y"), Var("z")


# ----------------------------------------------------------------------
# differential property tests over the project's generators
# ----------------------------------------------------------------------

class TestDifferentialRandom:
    @pytest.mark.parametrize(
        "fragment", ["EPos", "Pos", "PosForallG", "EPosForallGBool"]
    )
    def test_fragment_sentences(self, fragment):
        rng = fuzz_rng(fragment)
        for _ in range(fuzz_trials(25)):
            inst = random_instance(
                SCHEMA, rng, n_facts=rng.randint(0, 5), constants=(1, 2, 3), n_nulls=2
            )
            phi = random_sentence(SCHEMA, rng, fragment, max_depth=3)
            assert_equivalent(phi, inst)

    @pytest.mark.parametrize("arity", [1, 2])
    def test_fragment_kary_queries(self, arity):
        rng = fuzz_rng(7000 + arity)
        for _ in range(fuzz_trials(25)):
            inst = random_instance(
                SCHEMA, rng, n_facts=rng.randint(0, 5), constants=(1, 2), n_nulls=2
            )
            q = random_kary_query(SCHEMA, rng, "EPos", arity=arity, max_depth=2)
            assert_equivalent(q.formula, inst, q.answer_vars)

    def test_arbitrary_formulas_with_negation(self):
        """Unrestricted ASTs: negation, →, =, constants — the unsafe zone."""
        from diffutil import ARBITRARY_RELS, ARBITRARY_VARS

        rng = fuzz_rng(20130623)
        schema = Schema(ARBITRARY_RELS)
        for _ in range(fuzz_trials(150)):
            inst = random_instance(
                schema, rng, n_facts=rng.randint(0, 6), constants=(1, 2, "a"), n_nulls=2
            )
            phi = random_formula(rng, rng.choice([1, 2, 3]), rng.sample(ARBITRARY_VARS, 2))
            head = tuple(sorted(free_vars(phi), key=lambda v: v.name))
            assert_equivalent(phi, inst, head)


class TestUnsafeFallbacks:
    """The documented active-domain fallbacks, pinned explicitly."""

    DB = Instance({"R": [(1, 2), (2, 3), (3, X)], "S": [(2,), (4,)]})

    def test_bare_negated_atom(self):
        phi = Not(RelAtom("R", (x, y)))
        assert_equivalent(phi, self.DB, (x, y))

    def test_disjunct_not_binding_a_variable(self):
        # y is unsafe in the S-disjunct: it ranges over the active domain
        phi = Or((RelAtom("R", (x, y)), RelAtom("S", (x,))))
        assert_equivalent(phi, self.DB, (x, y))

    def test_diagonal_and_singleton_equalities(self):
        assert_equivalent(EqAtom(x, y), self.DB, (x, y))
        assert_equivalent(EqAtom(x, x), self.DB, (x,))
        assert_equivalent(EqAtom(x, 2), self.DB, (x,))
        assert_equivalent(EqAtom(x, 99), self.DB, (x,))  # inactive constant → ∅
        assert_equivalent(EqAtom(1, 1), self.DB)
        assert_equivalent(EqAtom(1, 2), self.DB)

    def test_negated_conjunct_becomes_anti_join(self):
        phi = And((RelAtom("R", (x, y)), Not(RelAtom("S", (y,)))))
        cq = CompiledQuery(phi, (x, y))
        assert "anti-join" in cq.describe()
        assert_equivalent(phi, self.DB, (x, y))

    def test_guarded_forall_is_join_shaped(self):
        phi = Forall((x, y), Implies(RelAtom("R", (x, y)), RelAtom("S", (y,))))
        assert_equivalent(phi, self.DB)
        assert_equivalent(phi, Instance.empty())

    def test_quantified_variable_absent_from_body(self):
        # ∃v ⊤ is false on the empty active domain, true otherwise
        phi = Exists((z,), TrueF())
        assert_equivalent(phi, self.DB)
        assert_equivalent(phi, Instance.empty())
        assert_equivalent(Forall((z,), FalseF()), Instance.empty())

    def test_empty_instance_everywhere(self):
        for phi, head in [
            (RelAtom("R", (x, y)), (x, y)),
            (Not(RelAtom("R", (x, y))), (x, y)),
            (Exists((y,), RelAtom("R", (x, y))), (x,)),
            (Forall((x,), Exists((y,), RelAtom("R", (x, y)))), ()),
        ]:
            assert_equivalent(phi, Instance.empty(), head)

    def test_repeated_variables_and_constants_in_atoms(self):
        db = Instance({"T": [(1, 1, 2), (1, 2, 2), (3, 3, 3), (X, X, 1)]})
        assert_equivalent(RelAtom("T", (x, x, y)), db, (x, y))
        assert_equivalent(RelAtom("T", (x, x, x)), db, (x,))
        assert_equivalent(RelAtom("T", (1, x, 2)), db, (x,))
        assert_equivalent(RelAtom("T", (1, 1, 2)), db)


# ----------------------------------------------------------------------
# the compiled pipeline inside the engine
# ----------------------------------------------------------------------

class TestBackendsAgree:
    def test_registry_has_both_engines(self):
        assert {"compiled", "naive-interp", "naive"} <= set(available_backends())
        assert get_backend("compiled").engine == "compiled"
        assert get_backend("naive-interp").engine == "interp"

    def test_naive_eval_engines_agree_randomly(self):
        rng = fuzz_rng(31337)
        for _ in range(fuzz_trials(20)):
            inst = random_instance(
                SCHEMA, rng, n_facts=rng.randint(1, 6), constants=(1, 2, 3), n_nulls=2
            )
            q = random_kary_query(SCHEMA, rng, "EPos", arity=1, max_depth=2)
            assert naive_eval(q, inst, engine="compiled") == naive_eval(
                q, inst, engine="interp"
            )

    def test_unknown_engine_rejected(self):
        q = Query(parse("R(a, b)"), ("a", "b"))
        with pytest.raises(ValueError, match="unknown naive engine"):
            naive_eval(q, Instance.empty(), engine="vectorised")

    @pytest.mark.parametrize("key", ["owa", "cwa", "wcwa", "pcwa", "mincwa", "minpcwa"])
    def test_certain_answers_differential_per_semantics(self, key):
        """The oracle rebuilt on the compiled engine ≡ the interpreted
        world-by-world intersection, for every semantics."""
        sem = get_semantics(key)
        extra = {"owa": 1, "wcwa": 1}.get(key)
        rng = fuzz_rng(key)
        for _ in range(fuzz_trials(6)):
            inst = random_instance(
                SCHEMA, rng, n_facts=rng.randint(1, 3), constants=(1, 2), n_nulls=2
            )
            q = Query.boolean(random_sentence(SCHEMA, rng, "PosForallG", max_depth=2))
            got = certain_answers(q, inst, sem, extra_facts=extra)
            want = interp_certain_reference(q, inst, sem, extra_facts=extra)
            assert got == want, (key, q.formula, inst)

    def test_cwa_explicit_pool_matches_default_pool_route(self):
        d = Instance({"R": [(1, X), (X, Y)], "S": [(2,)]})
        q = Query(parse("exists z (R(a, z) & R(z, b))"), ("a", "b"))
        sem = get_semantics("cwa")
        assert certain_answers(q, d, sem) == certain_answers(
            q, d, sem, pool=default_pool(d, q)
        )

    def test_session_pool_still_gets_orbit_skipping(self):
        """The session layer hands the oracle a materialised pool; the
        interchangeable tail must be rediscovered from it, not lost."""
        from repro.session import Database

        d = Instance({"R": [(X, Y), (Y, Null("z"))]})
        db = Database(d, semantics="cwa")
        direct = certain_answers(
            Query(parse("R(a, b)"), ("a", "b")), d, get_semantics("cwa")
        )
        via_session = db.evaluate("R(a, b)", vars=("a", "b"), mode="enumeration")
        assert via_session.answers == direct == frozenset()

    def test_singleton_pool_fresh_value_can_be_certain(self):
        # pool of one anonymous value: every world must use it, so it is
        # NOT an interchangeable tail — pruning it would be unsound
        d = Instance({"R": [(X,)]})
        q = Query(parse("R(a)"), ("a",))
        got = certain_answers(q, d, get_semantics("cwa"), pool=[5])
        assert got == frozenset({(5,)})


# ----------------------------------------------------------------------
# execution contexts and indexes
# ----------------------------------------------------------------------

class TestTableContext:
    def test_context_cached_on_instance(self):
        d = Instance({"R": [(1, 2)]})
        assert context_for(d) is context_for(d)
        assert as_context(d) is context_for(d)

    def test_as_context_rejects_junk(self):
        with pytest.raises(TypeError):
            as_context({"R": [(1, 2)]})

    def test_index_built_lazily_and_memoised(self):
        ctx = TableContext({"R": frozenset({(1, 2), (1, 3), (2, 3)})})
        assert ctx.index_stats()["indexes_built"] == 0
        idx = ctx.index("R", (0,))
        assert sorted(idx[(1,)]) == [(1, 2), (1, 3)]
        assert ctx.index("R", (0,)) is idx
        assert ctx.index_stats()["indexes_built"] == 1

    def test_index_requires_positions(self):
        with pytest.raises(ValueError):
            TableContext({}).index("R", ())

    def test_layered_context_delegates_and_shares_indexes(self):
        base = TableContext({"S": frozenset({(1,), (2,)})})
        w1 = TableContext({"R": frozenset({(1, 1)})}, base=base)
        w2 = TableContext({"R": frozenset({(2, 2)})}, base=base)
        assert w1.rows("S") == base.rows("S")
        assert w1.index("S", (0,)) is w2.index("S", (0,))  # shared build
        assert w1.rows("R") != w2.rows("R")
        assert base.index_stats()["indexes_built"] == 1

    def test_layered_adom_includes_base(self):
        base = TableContext({"S": frozenset({(7,)})})
        world = TableContext({"R": frozenset({(1, 2)})}, base=base)
        assert world.adom() == frozenset({1, 2, 7})

    def test_compiled_query_runs_on_raw_context(self):
        cq = compile_formula(
            Exists((z,), And((RelAtom("R", (x, z)), RelAtom("S", (z, y))))), (x, y)
        )
        ctx = TableContext({"R": frozenset({(1, 2)}), "S": frozenset({(2, 4)})})
        assert cq.answers(ctx) == frozenset({(1, 4)})


class TestCompiledQueryApi:
    def test_memoised_per_query_value(self):
        q1 = Query(parse("exists z (R(a, z) & S(z, b))"), ("a", "b"))
        q2 = Query(parse("exists z (R(a, z) & S(z, b))"), ("a", "b"))
        assert compiled_query(q1) is compiled_query(q2)

    def test_answer_vars_must_cover_free_vars(self):
        with pytest.raises(ValueError, match="answer variables"):
            CompiledQuery(RelAtom("R", (x, y)), (x,))

    def test_extra_answer_vars_range_over_adom(self):
        db = Instance({"R": [(1, 2)], "S": [(3,)]})
        cq = CompiledQuery(RelAtom("S", (x,)), (x, y))
        assert cq.answers(db) == answers(RelAtom("S", (x,)), db, (x, y))

    def test_holds_rejects_kary(self):
        cq = CompiledQuery(RelAtom("R", (x, y)), (x, y))
        with pytest.raises(ValueError, match="arity"):
            cq.holds(Instance.empty())

    def test_describe_names_the_join_strategy(self):
        q = Query(parse("exists z (R(a, z) & S(z, b))"), ("a", "b"))
        text = compiled_query(q).describe()
        assert "join" in text and "scan R/2" in text


# ----------------------------------------------------------------------
# incremental world enumeration
# ----------------------------------------------------------------------

class TestOrbitEnumeration:
    def test_canonical_count_restricted_growth(self):
        # 2 nulls, no base constants, tail of 3: orbits are the set
        # partitions of 2 slots = 2 (Bell number), not 3² = 9 valuations
        got = list(_canonical_valuations(2, [], ("f1", "f2", "f3")))
        assert got == [("f1", "f1"), ("f1", "f2")]

    def test_canonical_with_base_constants(self):
        got = set(_canonical_valuations(1, [1, 2], ("f1", "f2")))
        assert got == {(1,), (2,), ("f1",)}

    def test_empty_tail_is_full_product(self):
        got = list(_canonical_valuations(2, [1, 2], ()))
        assert len(got) == 4

    def test_no_nulls_yields_one_world(self):
        assert list(_canonical_valuations(0, [1], ("f1",))) == [()]

    def test_fresh_constants_never_certain(self):
        # all-null instance: every world is isomorphic, nothing survives
        d = Instance({"R": [(X, Y)]})
        q = Query(parse("R(a, b)"), ("a", "b"))
        assert certain_answers(q, d, get_semantics("cwa")) == frozenset()

    def test_cwa_oracle_orbit_skipping_visits_fewer_worlds(self):
        # 3 nulls over an all-null instance: full CWA enumeration visits
        # |pool|³ valuations, the canonical enumerator only the orbits
        d = Instance({"R": [(X, Y), (Y, Null("z"))]})
        pool = default_pool(d)  # 4 fresh constants, no base
        full = len(pool) ** 3
        canonical = len(list(_canonical_valuations(3, [], tuple(pool))))
        assert canonical < full  # 5 set partitions of 3 slots vs 64

    def test_cwa_oracle_matches_expand_on_corpus(self):
        # head-to-head against [[D]]_CWA via semantics.expand + eval_raw
        sem = get_semantics("cwa")
        rng = random.Random(4242)
        for _ in range(10):
            inst = random_instance(
                SCHEMA, rng, n_facts=rng.randint(1, 4), constants=(1, 2), n_nulls=3
            )
            q = random_kary_query(SCHEMA, rng, "PosForallG", arity=1, max_depth=1)
            pool = default_pool(inst, q)
            worlds = list(sem.expand(inst, pool, schema=inst.schema().union(query_schema(q))))
            want = frozenset.intersection(
                *(interp_answers(q.formula, w, q.answer_vars) for w in worlds)
            )
            assert certain_answers(q, inst, sem) == want


# ----------------------------------------------------------------------
# datalog body matching through the join compiler
# ----------------------------------------------------------------------

class TestDatalogJoinCompiler:
    def _program(self):
        from repro.datalog.program import Atom, Program, Rule

        return Program(
            (
                Rule(Atom("T", (x, y)), (Atom("E", (x, y)),)),
                Rule(Atom("T", (x, z)), (Atom("T", (x, y)), Atom("E", (y, z)))),
                Rule(Atom("Loop", (x, x)), (Atom("T", (x, x)),)),
                Rule(Atom("One", (1, y)), (Atom("E", (1, y)),)),
            )
        )

    def test_compiled_apply_rule_matches_interp_fallback(self):
        from repro.datalog.engine import _apply_rule, _apply_rule_interp, _round_context

        rng = random.Random(55)
        schema = Schema({"E": 2})
        prog = self._program()
        for _ in range(10):
            edb = random_instance(
                schema, rng, n_facts=rng.randint(1, 8), constants=(1, 2, 3), n_nulls=2
            )
            for delta in (None, edb):
                ctx = _round_context(edb, delta)
                for rule in prog.rules:
                    if rule.head.name == "T" and rule.body[0].name == "T":
                        continue  # needs the fixpoint's T relation
                    assert _apply_rule(rule, edb, delta, ctx) == _apply_rule_interp(
                        rule, edb, delta, ctx
                    )

    def test_semi_naive_and_naive_fixpoints_agree(self):
        from repro.datalog.engine import evaluate_program

        rng = random.Random(56)
        schema = Schema({"E": 2})
        prog = self._program()
        for _ in range(5):
            edb = random_instance(
                schema, rng, n_facts=rng.randint(1, 8), constants=(1, 2, 3), n_nulls=2
            )
            assert evaluate_program(prog, edb, semi_naive=True) == evaluate_program(
                prog, edb, semi_naive=False
            )

    def test_match_atom_probes_bound_positions(self):
        from repro.datalog.engine import _match_atom
        from repro.datalog.program import Atom

        facts = frozenset({(1, 2), (1, 3), (2, 3)})
        ctx = TableContext({"E": facts})
        atom = Atom("E", (x, y))
        # binding x=1 should probe the (0,)-index, not scan all rows
        got = sorted(
            tuple(b[v] for v in (x, y))
            for b in _match_atom(atom, facts, {x: 1}, ctx, "E")
        )
        assert got == [(1, 2), (1, 3)]
        assert ("E", (0,)) in ctx._indexes
        # unbound: falls back to the full scan, same matches as before
        assert len(list(_match_atom(atom, facts, {}, ctx, "E"))) == 3

    def test_arity_mismatch_matches_nothing_not_crashes(self):
        from repro.datalog.engine import _apply_rule, _apply_rule_interp
        from repro.datalog.program import Atom, Program, Rule
        from repro.datalog.engine import evaluate_program

        rule = Rule(Atom("P", (x,)), (Atom("E", (x, y)),))
        edb = Instance({"E": [(1, 2, 3)]})  # EDB arity 3 vs program arity 2
        assert _apply_rule(rule, edb, None) == set()
        assert _apply_rule_interp(rule, edb, None) == set()
        # constant beyond the stored arity: the index probe must not
        # build row[2] over 2-tuples (regression: IndexError)
        deep = Rule(Atom("T", (x,)), (Atom("E", (x, x, 5)),))
        edb2 = Instance({"E": [(1, 1), (2, 3)]})
        assert evaluate_program(Program((deep,)), edb2) == edb2
        assert _apply_rule_interp(deep, edb2, edb2) == set()

    def test_compiled_fo_scan_arity_mismatch_matches_interp(self):
        # a unary atom over a binary relation: the interpreter's
        # membership test never succeeds; the compiled scan must agree
        db = Instance({"R": [(1, 2), (2, 3)]})
        assert_equivalent(RelAtom("R", (x,)), db, (x,))
        assert_equivalent(Not(RelAtom("R", (x,))), db, (x,))
        assert_equivalent(RelAtom("R", (1,)), db)
        joined = Exists((y,), And((RelAtom("S", (y,)), RelAtom("R", (y,)))))
        assert_equivalent(joined, Instance({"R": [(1, 2)], "S": [(1,)]}))
