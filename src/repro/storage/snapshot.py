"""Versioned binary-framed snapshots of a session's durable state.

A snapshot captures everything recovery needs to rebuild a
:class:`~repro.session.Database` exactly: the instance's rows, the
total mutation counter (``generation``) and the per-relation generation
counters — so the result-cache keys a client computed before a restart
stay meaningful after it.

File layout (all integers little-endian)::

    8s  magic  b"REPROSNP"
    u16 format version
    u32 header length | header JSON | u32 crc32(header JSON)
    one frame per relation, in header order:
        u32 length | JSON row list | u32 crc32(payload)

The header JSON carries ``{"generation", "rel_gens", "relations":
[[name, n_rows], ...]}``; each relation frame is the JSON list of its
rows in the :mod:`repro.data.jsonio` cell encoding (``"?x"`` = null ⊥x,
``"??x"`` = the constant ``"?x"``), sorted for deterministic bytes.

Snapshots are written to a temporary sibling and published with
``os.replace`` + directory fsync, so a crash mid-write leaves the old
snapshot intact; every frame is checksummed, and a bad magic, a future
format version or a failed checksum raises :class:`SnapshotError`
instead of loading garbage.
"""

from __future__ import annotations

import errno
import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro import faults as _faults
from repro.data.instance import Instance
from repro.data.jsonio import decode_row, encode_row

__all__ = ["SnapshotError", "SnapshotState", "read_snapshot", "write_snapshot"]

MAGIC = b"REPROSNP"
FORMAT_VERSION = 1

_HEADER = struct.Struct("<8sH")
_U32 = struct.Struct("<I")


class SnapshotError(Exception):
    """The snapshot cannot be loaded: foreign file, future version, rot."""


@dataclass(frozen=True)
class SnapshotState:
    """What a snapshot stores: the instance plus its generation counters."""

    instance: Instance
    generation: int = 0
    rel_gens: dict[str, int] = field(default_factory=dict)


def _frame(payload: bytes) -> bytes:
    return _U32.pack(len(payload)) + payload + _U32.pack(zlib.crc32(payload))


def _fsync_dir(path: Path) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def write_snapshot(
    path: str | os.PathLike,
    state: SnapshotState,
    *,
    fsync: bool = True,
    faults: "_faults.FaultRegistry | None" = None,
) -> int:
    """Atomically write ``state`` to ``path``; returns the byte size.

    The write goes to ``<path>.tmp`` first and is published with
    ``os.replace``, so readers (and a crash) only ever see either the
    previous complete snapshot or the new one.  A failed write leaves
    the previous snapshot untouched and removes the temporary file
    (best-effort), so a full disk does not accumulate half-snapshots.

    Failpoints: ``snapshot.write`` (errno, or ``torn-write`` — half the
    blob reaches the temporary file, which is then discarded),
    ``snapshot.replace`` (the publish itself), ``snapshot.dir_fsync``.
    """
    registry = _faults.coerce(faults)
    instance = state.instance
    names = list(instance.relations)  # sorted by Instance
    frames: list[bytes] = []
    header_relations: list[list] = []
    for name in names:
        rows = [encode_row(name, row) for row in sorted(instance.tuples(name), key=repr)]
        payload = json.dumps(rows, separators=(",", ":")).encode("utf-8")
        frames.append(_frame(payload))
        header_relations.append([name, len(rows)])
    header = json.dumps(
        {
            "generation": state.generation,
            "rel_gens": dict(state.rel_gens),
            "relations": header_relations,
        },
        separators=(",", ":"),
    ).encode("utf-8")
    blob = _HEADER.pack(MAGIC, FORMAT_VERSION) + _frame(header) + b"".join(frames)

    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    try:
        action = registry.fire("snapshot.write", tearable=True)
        with open(tmp, "wb") as handle:
            if action is not None:  # torn-write: half the blob lands
                handle.write(blob[: len(blob) // 2])
                handle.flush()
                raise OSError(
                    errno.EIO,
                    f"failpoint snapshot.write: injected torn write "
                    f"({len(blob) // 2} of {len(blob)} bytes flushed)",
                )
            handle.write(blob)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        registry.fire("snapshot.replace")
        os.replace(tmp, path)
    except OSError:
        try:
            tmp.unlink()
        except OSError:
            pass  # best-effort cleanup; the torn tmp is never published
        raise
    if fsync:
        registry.fire("snapshot.dir_fsync")
        _fsync_dir(path.parent)
    return len(blob)


def _read_frame(blob: bytes, pos: int, path: Path, what: str) -> tuple[bytes, int]:
    if pos + _U32.size > len(blob):
        raise SnapshotError(f"{path}: truncated {what} frame at byte {pos}")
    (length,) = _U32.unpack_from(blob, pos)
    end = pos + _U32.size + length + _U32.size
    if end > len(blob):
        raise SnapshotError(f"{path}: truncated {what} frame at byte {pos}")
    payload = blob[pos + _U32.size : pos + _U32.size + length]
    (crc,) = _U32.unpack_from(blob, end - _U32.size)
    if zlib.crc32(payload) != crc:
        raise SnapshotError(f"{path}: checksum mismatch in {what} frame at byte {pos}")
    return payload, end


def read_snapshot(path: str | os.PathLike) -> SnapshotState:
    """Load and verify a snapshot; raises :class:`SnapshotError` on any rot.

    A missing file is *not* an error here — callers treat it as "no
    snapshot yet" — so only an existing-but-unreadable file raises.
    """
    path = Path(path)
    blob = path.read_bytes()
    if len(blob) < _HEADER.size:
        raise SnapshotError(f"{path}: file too short to be a snapshot")
    magic, version = _HEADER.unpack_from(blob)
    if magic != MAGIC:
        raise SnapshotError(f"{path}: not a repro snapshot (bad magic {magic!r})")
    if version != FORMAT_VERSION:
        raise SnapshotError(
            f"{path}: snapshot format version {version} is not supported "
            f"(this build reads version {FORMAT_VERSION}); refusing to guess"
        )
    header_bytes, pos = _read_frame(blob, _HEADER.size, path, "header")
    try:
        header = json.loads(header_bytes)
    except ValueError as err:
        raise SnapshotError(f"{path}: undecodable header: {err}") from None
    relations: dict[str, list[tuple]] = {}
    for entry in header.get("relations", []):
        name, n_rows = entry
        payload, pos = _read_frame(blob, pos, path, f"relation {name!r}")
        try:
            rows = json.loads(payload)
        except ValueError as err:
            raise SnapshotError(f"{path}: undecodable rows for {name!r}: {err}") from None
        if len(rows) != n_rows:
            raise SnapshotError(
                f"{path}: relation {name!r} has {len(rows)} rows, header says {n_rows}"
            )
        relations[name] = [decode_row(name, row) for row in rows]
    if pos != len(blob):
        raise SnapshotError(f"{path}: {len(blob) - pos} trailing bytes after the last frame")
    return SnapshotState(
        instance=Instance(relations),
        generation=int(header.get("generation", 0)),
        rel_gens={str(k): int(v) for k, v in header.get("rel_gens", {}).items()},
    )
