"""Property-based tests (hypothesis) for the core data structures and invariants."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import naive_eval
from repro.core.certain import certain_answers
from repro.data.codd import as_codd, tuple_leq
from repro.data.instance import Instance
from repro.data.schema import Schema
from repro.data.values import Null
from repro.homs.core import core, is_core
from repro.homs.properties import is_homomorphism
from repro.homs.search import find_homomorphism, find_isomorphism, iter_homomorphisms
from repro.logic.classes import classify, in_fragment
from repro.logic.generate import random_sentence
from repro.logic.queries import Query
from repro.orders.codd import hoare_leq, plotkin_leq
from repro.orders.semantic import leq_cwa, leq_owa, leq_pcwa, leq_wcwa
from repro.semantics import get_semantics

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

values = st.one_of(
    st.integers(min_value=1, max_value=3),
    st.builds(Null, st.sampled_from(["a", "b", "c"])),
)

pairs = st.tuples(values, values)


@st.composite
def instances(draw, max_facts=4):
    n = draw(st.integers(min_value=0, max_value=max_facts))
    rows = [draw(pairs) for _ in range(n)]
    singles = draw(st.lists(values, max_size=2))
    rels = {}
    if rows:
        rels["R"] = rows
    if singles:
        rels["S"] = [(v,) for v in singles]
    return Instance(rels)


@st.composite
def complete_instances(draw, max_facts=4):
    inst = draw(instances(max_facts))
    return inst.apply({n: 9 for n in inst.nulls()})


# ----------------------------------------------------------------------
# instance algebra
# ----------------------------------------------------------------------


@given(instances(), instances())
def test_union_is_upper_bound(a, b):
    u = a.union(b)
    assert a <= u and b <= u


@given(instances(), instances())
def test_union_commutative(a, b):
    assert a.union(b) == b.union(a)


@given(instances())
def test_union_idempotent(a):
    assert a.union(a) == a


@given(instances(), instances())
def test_difference_disjoint_from_subtrahend(a, b):
    diff = a.difference(b)
    for name in diff.relations:
        assert not (diff.tuples(name) & b.tuples(name))


@given(instances())
def test_apply_identity_is_identity(a):
    assert a.apply({}) == a


@given(instances())
def test_as_codd_forgets_but_preserves_shape(a):
    codd = as_codd(a)
    assert codd.is_codd()
    assert codd.fact_count() == a.fact_count()
    assert codd.constants() == a.constants()


@given(instances())
def test_facts_roundtrip(a):
    assert Instance.from_facts(a.facts()) == a


# ----------------------------------------------------------------------
# homomorphisms and cores
# ----------------------------------------------------------------------


@given(instances())
def test_hom_reflexivity(a):
    assert find_homomorphism(a, a) is not None


@given(instances(max_facts=3), instances(max_facts=3))
def test_found_homs_are_homs(a, b):
    for hom in iter_homomorphisms(a, b):
        assert is_homomorphism(hom, a, b)
        break  # one witness suffices per pair


@given(instances(max_facts=3))
def test_core_idempotent_and_smaller(a):
    c = core(a)
    assert c <= a
    assert is_core(c)
    assert core(c) == c


@given(instances(max_facts=3))
def test_core_homomorphically_equivalent(a):
    c = core(a)
    assert find_homomorphism(a, c) is not None
    assert find_homomorphism(c, a) is not None


@given(instances(max_facts=3))
def test_isomorphism_with_renamed_nulls(a):
    renamed, _ = a.with_fresh_values(a.nulls(), iter(Null(f"zz{i}") for i in range(99)).__next__)
    assert find_isomorphism(a, renamed) is not None


# ----------------------------------------------------------------------
# orderings
# ----------------------------------------------------------------------


@given(instances(max_facts=3))
def test_orderings_reflexive(a):
    assert leq_owa(a, a) and leq_cwa(a, a) and leq_wcwa(a, a) and leq_pcwa(a, a)


@given(instances(max_facts=2), instances(max_facts=2), instances(max_facts=2))
@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_owa_ordering_transitive(a, b, c):
    if leq_owa(a, b) and leq_owa(b, c):
        assert leq_owa(a, c)


@given(instances(max_facts=3))
def test_cwa_implies_wcwa_implies_owa(a):
    # on valuation images: stronger orderings imply weaker ones
    image = a.apply({n: 7 for n in a.nulls()})
    assert leq_cwa(a, image)
    assert leq_wcwa(a, image)
    assert leq_owa(a, image)
    assert leq_pcwa(a, image)


@given(instances(max_facts=3), instances(max_facts=3))
def test_hierarchy_between_orderings(a, b):
    if leq_cwa(a, b):
        assert leq_wcwa(a, b) and leq_pcwa(a, b)
    if leq_wcwa(a, b):
        assert leq_owa(a, b)
    if leq_pcwa(a, b):
        assert leq_owa(a, b)


@given(instances(max_facts=3).filter(lambda d: d.is_codd()),
       instances(max_facts=3).filter(lambda d: d.is_codd()))
@settings(suppress_health_check=[HealthCheck.filter_too_much, HealthCheck.too_slow], deadline=None)
def test_plotkin_implies_hoare(a, b):
    if plotkin_leq(a, b):
        assert hoare_leq(a, b)


@given(st.lists(pairs, min_size=1, max_size=3), st.lists(pairs, min_size=1, max_size=3))
def test_tuple_leq_antisymmetry_on_constants(rows_a, rows_b):
    for t in rows_a:
        for s in rows_b:
            if tuple_leq(t, s) and tuple_leq(s, t):
                assert t == s or any(isinstance(v, Null) for v in t + s)


# ----------------------------------------------------------------------
# fragments and naive evaluation
# ----------------------------------------------------------------------

SCHEMA = Schema({"R": 2, "S": 1})


@given(
    st.integers(min_value=0, max_value=10_000),
    st.sampled_from(["EPos", "Pos", "PosForallG", "EPosForallGBool"]),
)
def test_random_sentences_in_their_fragment(seed, fragment):
    rng = random.Random(seed)
    phi = random_sentence(SCHEMA, rng, fragment, max_depth=2)
    assert in_fragment(phi, fragment)


@given(st.integers(min_value=0, max_value=10_000))
def test_classify_is_downward_consistent(seed):
    # membership respects the known inclusions EPos ⊆ Pos ⊆ Pos+∀G ⊆ FO
    rng = random.Random(seed)
    phi = random_sentence(SCHEMA, rng, "EPos", max_depth=2)
    got = classify(phi)
    assert "EPos" in got and "Pos" in got and "PosForallG" in got and "FO" in got


@given(instances(max_facts=3), st.integers(min_value=0, max_value=500))
@settings(deadline=None, max_examples=25, suppress_health_check=[HealthCheck.too_slow])
def test_ucq_naive_equals_certain_cwa(instance, seed):
    """Fact 1 as a property: naive = certain for random UCQs under CWA."""
    rng = random.Random(seed)
    query = Query.boolean(random_sentence(SCHEMA, rng, "EPos", max_depth=2))
    naive = naive_eval(query, instance)
    certain = certain_answers(query, instance, get_semantics("cwa"))
    assert naive == certain


@given(instances(max_facts=3), st.integers(min_value=0, max_value=500))
@settings(deadline=None, max_examples=15, suppress_health_check=[HealthCheck.too_slow])
def test_epos_weakly_monotone_under_valuations(instance, seed):
    """∃Pos queries never lose answers when nulls are instantiated."""
    rng = random.Random(seed)
    query = Query.boolean(random_sentence(SCHEMA, rng, "EPos", max_depth=2))
    before = naive_eval(query, instance)
    image = instance.apply({n: 8 for n in instance.nulls()})
    after = naive_eval(query, image)
    assert before <= after
