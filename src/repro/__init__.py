"""repro — naive evaluation and certain answers over incomplete databases.

A faithful, executable reproduction of Gheerbrant, Libkin & Sirangelo,
*"When is Naïve Evaluation Possible?"* (PODS 2013): naive databases with
marked nulls, six semantics of incompleteness, homomorphism machinery
(search, cores, minimal valuations), semantic orderings, FO fragments,
and an evaluation engine that uses naive evaluation exactly when the
paper proves it computes certain answers.

Quickstart (the session API)::

    from repro import Database, Null

    x = Null("1")
    db = Database({"R": [(1, x)], "S": [(x, 4)]}, semantics="owa")
    q = db.query("exists z (R(x, z) & S(z, y))", vars=("x", "y"))
    print(q.evaluate().answers)        # frozenset({(1, 4)})
    print(db.explain(q).render())      # why: backend, verdict, exactness

Preparing a query caches the Figure-1 analysis, the parse and the
constant pool, so repeated evaluation pays only for execution; plans
route through pluggable backends (``compiled``, ``naive``, ``enumeration``,
``ctable``).  The free functions (``evaluate``, ``certain_answers``,
``naive_eval``) remain as one-shot legacy wrappers.

Sessions are mutable (``db.insert``/``delete``/``apply_delta``,
incremental and thread-safe) and optionally **durable**:
``Database(path="dir")`` journals every acknowledged write to a
write-ahead log and recovers snapshot + log tail on reopen
(:mod:`repro.storage`).  ``repro serve`` exposes a session over a
JSON-lines TCP protocol.  The prose documentation lives in ``docs/``:
``architecture.md``, ``semantics.md``, ``wire-protocol.md``,
``persistence.md`` — every ``>>>`` example there is executed by CI.
"""

from repro.core import (
    Backend,
    EvalResult,
    Plan,
    Verdict,
    analyze,
    available_backends,
    certain_answers,
    certain_holds,
    evaluate,
    get_backend,
    make_plan,
    naive_eval,
    naive_holds,
    possible_answers,
    possible_holds,
    register_backend,
)
from repro.data import Instance, Null, NullFactory, Schema
from repro.homs import core, find_homomorphism, has_homomorphism, is_core
from repro.logic import Query, Rel, Var, parse
from repro.semantics import (
    ALL_SEMANTICS,
    CWA,
    OWA,
    WCWA,
    MinCWA,
    MinPowersetCWA,
    PowersetCWA,
    get_semantics,
)
from repro.session import Database, DegradedError, PreparedQuery

# the wire clients and their unified exception hierarchy: everything a
# caller can catch is a ClientError, shared by Client and AsyncClient
from repro.client import (  # noqa: E402 - needs repro.session above
    AsyncClient,
    Client,
    ClientError,
    DeadlineExceeded,
    DegradedServerError,
    IndeterminateWriteError,
    OverloadedServerError,
    ReadOnlyServerError,
    ServerError,
    StaleReadError,
    TransportError,
)

__version__ = "1.4.0"

__all__ = [
    "Backend",
    "EvalResult",
    "Plan",
    "Verdict",
    "analyze",
    "available_backends",
    "certain_answers",
    "certain_holds",
    "evaluate",
    "get_backend",
    "make_plan",
    "naive_eval",
    "naive_holds",
    "possible_answers",
    "possible_holds",
    "register_backend",
    "Database",
    "DegradedError",
    "PreparedQuery",
    "Instance",
    "Null",
    "NullFactory",
    "Schema",
    "core",
    "find_homomorphism",
    "has_homomorphism",
    "is_core",
    "Query",
    "Rel",
    "Var",
    "parse",
    "ALL_SEMANTICS",
    "CWA",
    "OWA",
    "WCWA",
    "MinCWA",
    "MinPowersetCWA",
    "PowersetCWA",
    "get_semantics",
    "AsyncClient",
    "Client",
    "ClientError",
    "DeadlineExceeded",
    "DegradedServerError",
    "IndeterminateWriteError",
    "OverloadedServerError",
    "ReadOnlyServerError",
    "ServerError",
    "StaleReadError",
    "TransportError",
    "__version__",
]
