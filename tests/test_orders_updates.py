"""Tests for update systems and their closures (Theorems 6.2 and 7.1)."""

import pytest

from repro.data.instance import Instance
from repro.data.values import Null, NullFactory
from repro.orders.semantic import leq_cwa, leq_owa, leq_pcwa
from repro.orders.updates import (
    canonical_nulls,
    copying_update,
    cwa_update,
    iter_cwa_updates,
    iter_owa_updates,
    owa_update,
    reachable,
)

X, Y = Null("x"), Null("y")


class TestSingleSteps:
    def test_cwa_update_replaces_everywhere(self):
        d = Instance({"R": [(X, X), (X, 1)]})
        assert cwa_update(d, X, 5) == Instance({"R": [(5, 5), (5, 1)]})

    def test_cwa_update_null_to_null(self):
        d = Instance({"R": [(X, Y)]})
        assert cwa_update(d, X, Y) == Instance({"R": [(Y, Y)]})

    def test_owa_update_adds(self):
        d = Instance({"R": [(1, 2)]})
        assert owa_update(d, "R", (3, 4)).fact_count() == 2

    def test_copying_update_keeps_fresh_copy(self):
        d = Instance({"R": [(X, 1)]})
        factory = NullFactory("fresh")
        updated = copying_update(d, X, 5, factory)
        assert Instance({"R": [(5, 1)]}) <= updated
        assert updated.fact_count() == 2
        assert updated.nulls()  # the fresh copy's null

    def test_iter_cwa_updates_enumerates(self):
        d = Instance({"R": [(X, Y)]})
        results = set(iter_cwa_updates(d, [1]))
        assert results == {Instance({"R": [(1, Y)]}), Instance({"R": [(X, 1)]})}

    def test_iter_owa_updates_skips_existing(self):
        d = Instance({"R": [(1, 1)]})
        added = list(iter_owa_updates(d, [1]))
        assert added == []


class TestCanonicalNulls:
    def test_isomorphic_states_identified(self):
        a = Instance({"R": [(Null("p"), 1)]})
        b = Instance({"R": [(Null("q"), 1)]})
        assert canonical_nulls(a) == canonical_nulls(b)

    def test_distinct_structure_kept(self):
        a = Instance({"R": [(Null("p"), Null("p"))]})
        b = Instance({"R": [(Null("p"), Null("q"))]})
        assert canonical_nulls(a) != canonical_nulls(b)


class TestTheorem62:
    """Closure of CWA updates = ≼_CWA; CWA+OWA updates = ≼_OWA."""

    SAMPLES = [
        (Instance({"R": [(X, Y)]}), Instance({"R": [(1, 2)]})),
        (Instance({"R": [(X, Y)]}), Instance({"R": [(1, 1)]})),
        (Instance({"R": [(X, Y)]}), Instance({"R": [(1, 2), (2, 1)]})),
        (Instance({"R": [(X, X)]}), Instance({"R": [(1, 2)]})),
        (Instance({"R": [(1, X)]}), Instance({"R": [(2, 2)]})),
        (
            Instance({"D": [(X, Y), (Y, X)]}),
            Instance({"D": [(1, 2), (2, 1)]}),
        ),
    ]

    def test_cwa_updates_match_cwa_ordering(self):
        for source, target in self.SAMPLES:
            assert reachable(source, target, ("cwa",)) == leq_cwa(source, target), (
                source,
                target,
            )

    def test_cwa_owa_updates_match_owa_ordering(self):
        for source, target in self.SAMPLES:
            assert reachable(source, target, ("cwa", "owa")) == leq_owa(source, target), (
                source,
                target,
            )

    def test_repeated_null_semantics(self):
        # SQL motivation: {(null, 2)} must reach {(1,2),(2,2)} with OWA help
        d = Instance({"R": [(X, 2)]})
        e = Instance({"R": [(1, 2), (2, 2)]})
        assert not reachable(d, e, ("cwa",))
        assert reachable(d, e, ("cwa", "owa"))


class TestTheorem71:
    """Closure of CWA + copying updates = ⋐_CWA."""

    SAMPLES = [
        (Instance({"R": [(X, Y)]}), Instance({"R": [(1, 2)]}), True),
        (Instance({"R": [(X, Y)]}), Instance({"R": [(1, 2), (2, 1)]}), True),
        (Instance({"R": [(X, X)]}), Instance({"R": [(1, 2)]}), False),
        (Instance({"R": [(X, X)]}), Instance({"R": [(1, 1), (2, 2)]}), True),
        (Instance({"R": [(1, X)]}), Instance({"R": [(2, 2)]}), False),
    ]

    def test_copying_closure_matches_pcwa(self):
        for source, target, expected in self.SAMPLES:
            assert leq_pcwa(source, target) == expected, (source, target)
            assert reachable(source, target, ("cwa", "copying")) == expected, (
                source,
                target,
            )

    def test_copying_strictly_weaker_than_owa(self):
        # {(1,2),(1,3)} is OWA-above {(⊥,2)} but adding (1,3) is not a
        # union of images of the original (3 never appears).
        d = Instance({"R": [(X, 2)]})
        e = Instance({"R": [(1, 2), (1, 3)]})
        assert reachable(d, e, ("cwa", "owa"))
        assert not leq_pcwa(d, e)
        assert not reachable(d, e, ("cwa", "copying"))


class TestGuards:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            reachable(Instance.empty(), Instance.empty(), ("bogus",))

    def test_identity_reachable_in_zero_steps(self):
        d = Instance({"R": [(1, 1)]})
        assert reachable(d, d, ("cwa",))
