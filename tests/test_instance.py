"""Unit tests for repro.data.instance: the naive-database value object."""

import pytest

from repro.data.instance import Instance
from repro.data.schema import SchemaError
from repro.data.values import Null, NullFactory


def test_empty_instance():
    d = Instance.empty()
    assert d.is_empty()
    assert d.is_complete()
    assert d.adom() == frozenset()
    assert d.fact_count() == 0


def test_construction_and_accessors():
    x = Null("1")
    d = Instance({"R": [(1, x)], "S": [(x, 4)]})
    assert d.relations == ("R", "S")
    assert d.arity("R") == 2
    assert d.tuples("R") == frozenset({(1, x)})
    assert d.tuples("missing") == frozenset()
    assert d.fact_count() == 2


def test_mixed_arity_rejected():
    with pytest.raises(SchemaError):
        Instance({"R": [(1,), (1, 2)]})


def test_zero_arity_rejected():
    with pytest.raises(SchemaError):
        Instance({"R": [()]})


def test_empty_relations_are_dropped():
    d = Instance({"R": [], "S": [(1,)]})
    assert d.relations == ("S",)
    assert d.arity("S") == 1
    with pytest.raises(SchemaError):
        d.arity("R")


def test_adom_nulls_constants():
    x, y = Null("x"), Null("y")
    d = Instance({"R": [(1, x), (x, y)]})
    assert d.adom() == frozenset({1, x, y})
    assert d.nulls() == frozenset({x, y})
    assert d.constants() == frozenset({1})


def test_completeness_and_codd():
    x = Null("x")
    assert Instance({"R": [(1, 2)]}).is_complete()
    assert not Instance({"R": [(1, x)]}).is_complete()
    assert Instance({"R": [(1, x)]}).is_codd()
    assert not Instance({"R": [(x, x)]}).is_codd()
    assert not Instance({"R": [(1, x)], "S": [(x,)]}).is_codd()


def test_facts_deterministic_order():
    x = Null("x")
    d = Instance({"S": [(x,)], "R": [(2, 1), (1, 2)]})
    facts = list(d.facts())
    assert facts == [("R", (1, 2)), ("R", (2, 1)), ("S", (x,))]


def test_apply_mapping_dict_and_callable():
    x, y = Null("x"), Null("y")
    d = Instance({"R": [(x, y)]})
    assert d.apply({x: 1, y: 2}) == Instance({"R": [(1, 2)]})
    assert d.apply(lambda v: 9) == Instance({"R": [(9, 9)]})


def test_apply_merges_facts():
    x, y = Null("x"), Null("y")
    d = Instance({"R": [(x, 1), (y, 1)]})
    assert d.apply({x: 5, y: 5}).fact_count() == 1


def test_union_and_subinstance():
    a = Instance({"R": [(1, 2)]})
    b = Instance({"R": [(2, 3)], "S": [(1,)]})
    u = a.union(b)
    assert a <= u and b <= u
    assert a < u
    assert not u <= a
    assert (a | b) == u


def test_union_arity_conflict():
    with pytest.raises(SchemaError):
        Instance({"R": [(1,)]}).union(Instance({"R": [(1, 2)]}))


def test_difference_restrict_add_remove():
    d = Instance({"R": [(1, 2), (2, 3)], "S": [(1,)]})
    assert d.difference(Instance({"R": [(1, 2)]})) == Instance({"R": [(2, 3)], "S": [(1,)]})
    assert d.restrict(["S"]) == Instance({"S": [(1,)]})
    assert d.add_fact("R", (9, 9)).fact_count() == 4
    assert d.remove_fact("S", (1,)) == Instance({"R": [(1, 2), (2, 3)]})
    assert d.remove_fact("S", (42,)) == d


def test_equality_hash_as_value_object():
    x = Null("x")
    a = Instance({"R": [(1, x)]})
    b = Instance({"R": {(1, x)}})
    assert a == b
    assert hash(a) == hash(b)
    assert len({a, b}) == 1


def test_schema_inference():
    d = Instance({"R": [(1, 2)], "S": [(1,)]})
    s = d.schema()
    assert s.arity("R") == 2 and s.arity("S") == 1


def test_repr_and_pretty():
    x = Null("x")
    d = Instance({"R": [(1, x)]})
    assert "R" in repr(d)
    assert "⊥x" in d.pretty()
    assert Instance.empty().pretty() == "(empty instance)"


def test_from_facts_roundtrip():
    d = Instance({"R": [(1, 2)], "S": [(3,)]})
    assert Instance.from_facts(d.facts()) == d


class TestIsomorphism:
    def test_null_renaming_is_isomorphism(self):
        a = Instance({"R": [(1, Null("x"))]})
        b = Instance({"R": [(1, Null("y"))]})
        assert a.isomorphic(b)

    def test_constants_fixed_by_default(self):
        a = Instance({"R": [(1, 2)]})
        b = Instance({"R": [(3, 4)]})
        assert not a.isomorphic(b)
        assert a.isomorphic(b, fix_constants=False)

    def test_collapsing_is_not_isomorphism(self):
        a = Instance({"R": [(Null("x"), Null("y"))]})
        b = Instance({"R": [(Null("z"), Null("z"))]})
        assert not a.isomorphic(b)
        assert not b.isomorphic(a)

    def test_different_fact_counts(self):
        a = Instance({"R": [(1, 2), (2, 3)]})
        b = Instance({"R": [(1, 2)]})
        assert not a.isomorphic(b)


def test_with_fresh_values():
    x, y = Null("x"), Null("y")
    d = Instance({"R": [(x, y), (y, 1)]})
    factory = NullFactory("f")
    renamed, mapping = d.with_fresh_values(d.nulls(), factory.fresh)
    assert set(mapping) == {x, y}
    assert renamed.isomorphic(d)
    assert renamed.nulls().isdisjoint(d.nulls())
