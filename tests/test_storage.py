"""The persistence layer: snapshot format, WAL framing, recovery, compaction.

The durability contract under test: a delta acknowledged by a durable
``Database`` survives a crash and recovers **bit-identically** — same
rows *and* same generation counters, so result-cache keys computed
before the crash stay meaningful after it.  The kill -9 acceptance test
over the real TCP server lives in ``tests/test_recovery.py``; this file
covers the formats and the edge cases in-process.
"""

import os
import struct
import threading

import pytest

from repro.data.instance import Instance
from repro.data.values import Null
from repro.session import Database
from repro.storage.snapshot import (
    SnapshotError,
    SnapshotState,
    read_snapshot,
    write_snapshot,
)
from repro.storage.store import Storage
from repro.storage.wal import WalError, WriteAheadLog

X, Y = Null("x"), Null("y")


def session_state(db: Database) -> tuple:
    """Everything the durability contract promises to reproduce."""
    return (
        db.instance,
        db.generation,
        {name: db.rel_generation(name) for name in db.instance.relations},
    )


# ----------------------------------------------------------------------
# snapshots
# ----------------------------------------------------------------------


class TestSnapshot:
    def test_round_trip_rows_and_generations(self, tmp_path):
        state = SnapshotState(
            Instance({"R": [(1, X), (2, 3)], "S": [(X, 4), ("??lit", Y)]}),
            generation=17,
            rel_gens={"R": 9, "S": 8},
        )
        path = tmp_path / "snap"
        write_snapshot(path, state)
        got = read_snapshot(path)
        assert got.instance == state.instance
        assert got.generation == 17 and got.rel_gens == {"R": 9, "S": 8}

    def test_empty_instance_round_trip(self, tmp_path):
        path = tmp_path / "snap"
        write_snapshot(path, SnapshotState(Instance.empty()))
        got = read_snapshot(path)
        assert got.instance.is_empty() and got.generation == 0

    def test_version_mismatch_refused_cleanly(self, tmp_path):
        path = tmp_path / "snap"
        write_snapshot(path, SnapshotState(Instance({"R": [(1, 2)]})))
        blob = bytearray(path.read_bytes())
        # bump the u16 version field right after the 8-byte magic
        struct.pack_into("<H", blob, 8, 99)
        path.write_bytes(bytes(blob))
        with pytest.raises(SnapshotError, match="version 99"):
            read_snapshot(path)

    def test_bad_magic_refused(self, tmp_path):
        path = tmp_path / "snap"
        path.write_bytes(b"NOTASNAP" + b"\x00" * 32)
        with pytest.raises(SnapshotError, match="magic"):
            read_snapshot(path)

    def test_corrupt_payload_fails_checksum(self, tmp_path):
        path = tmp_path / "snap"
        write_snapshot(path, SnapshotState(Instance({"R": [(1, 2), (3, 4)]})))
        blob = bytearray(path.read_bytes())
        blob[-6] ^= 0xFF  # flip a byte inside the last relation frame
        path.write_bytes(bytes(blob))
        with pytest.raises(SnapshotError, match="checksum"):
            read_snapshot(path)

    def test_truncated_file_refused(self, tmp_path):
        path = tmp_path / "snap"
        write_snapshot(path, SnapshotState(Instance({"R": [(1, 2)]})))
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) - 3])
        with pytest.raises(SnapshotError, match="truncated|checksum"):
            read_snapshot(path)

    def test_atomic_publish_leaves_no_tmp(self, tmp_path):
        path = tmp_path / "snap"
        write_snapshot(path, SnapshotState(Instance({"R": [(1, 2)]})))
        assert not (tmp_path / "snap.tmp").exists()


# ----------------------------------------------------------------------
# the write-ahead log
# ----------------------------------------------------------------------


class TestWal:
    def test_append_replay_round_trip(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        wal.open_for_append()
        for g in (1, 2, 3):
            wal.sync(wal.append({"g": g, "rg": {"R": g}, "adds": {"R": [[g, g]]}}))
        wal.close()
        records, torn = WriteAheadLog(tmp_path / "wal").replay()
        assert [r["g"] for r in records] == [1, 2, 3] and torn == 0

    @pytest.mark.parametrize("tail", [b"\x07", b"\xff\xff\xff\xff", b"\x30\x00\x00\x00gar"])
    def test_torn_final_record_ignored(self, tmp_path, tail):
        wal = WriteAheadLog(tmp_path / "wal")
        wal.open_for_append()
        wal.sync(wal.append({"g": 1}))
        wal.close()
        with open(tmp_path / "wal", "ab") as handle:
            handle.write(tail)  # a crash mid-append: torn length/payload
        fresh = WriteAheadLog(tmp_path / "wal")
        records, torn = fresh.replay()
        assert [r["g"] for r in records] == [1] and torn == len(tail)
        # appending after recovery truncates the torn bytes first
        fresh.open_for_append()
        fresh.sync(fresh.append({"g": 2}))
        fresh.close()
        records, torn = WriteAheadLog(tmp_path / "wal").replay()
        assert [r["g"] for r in records] == [1, 2] and torn == 0

    def test_torn_checksum_on_final_record_ignored(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        wal.open_for_append()
        wal.sync(wal.append({"g": 1}))
        end = wal.size_bytes
        wal.sync(wal.append({"g": 2}))
        wal.close()
        blob = bytearray((tmp_path / "wal").read_bytes())
        blob[-1] ^= 0xFF  # corrupt the final record's checksum
        (tmp_path / "wal").write_bytes(bytes(blob))
        records, torn = WriteAheadLog(tmp_path / "wal").replay()
        assert [r["g"] for r in records] == [1]
        assert torn == len(blob) - end

    def test_mid_log_corruption_raises(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        wal.open_for_append()
        wal.sync(wal.append({"g": 1, "pad": "x" * 50}))
        first_end = wal.size_bytes
        wal.sync(wal.append({"g": 2}))
        wal.close()
        blob = bytearray((tmp_path / "wal").read_bytes())
        blob[first_end - 1] ^= 0xFF  # rot *inside* the log, not at the tail
        (tmp_path / "wal").write_bytes(bytes(blob))
        with pytest.raises(WalError, match="corrupt"):
            WriteAheadLog(tmp_path / "wal").replay()

    def test_foreign_file_refused(self, tmp_path):
        (tmp_path / "wal").write_bytes(b"NOTAWAL!\x01\x00rest")
        with pytest.raises(WalError, match="magic"):
            WriteAheadLog(tmp_path / "wal").replay()

    def test_version_mismatch_refused(self, tmp_path):
        (tmp_path / "wal").write_bytes(b"REPROWAL" + struct.pack("<H", 42))
        with pytest.raises(WalError, match="version 42"):
            WriteAheadLog(tmp_path / "wal").replay()

    def test_group_commit_one_fsync_covers_waiters(self, tmp_path, monkeypatch):
        wal = WriteAheadLog(tmp_path / "wal")
        wal.open_for_append()
        fsyncs = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync", lambda fd: (fsyncs.append(fd), real_fsync(fd)))
        offsets = [wal.append({"g": g}) for g in range(1, 6)]
        wal.sync(offsets[-1])  # one sync call covers every earlier offset
        n = len(fsyncs)
        assert n == 1
        for offset in offsets[:-1]:
            wal.sync(offset)  # already durable: no further fsync
        assert len(fsyncs) == n
        wal.close()

    def test_truncate_during_leader_fsync_does_not_poison_future_syncs(
        self, tmp_path, monkeypatch
    ):
        """A checkpoint landing while a sync leader is inside fsync must not
        restore a pre-truncate offset as the durability high-water mark —
        otherwise later (smaller-offset) records would skip their fsync
        while acknowledged."""
        wal = WriteAheadLog(tmp_path / "wal")
        wal.open_for_append()
        real_fsync = os.fsync
        armed = [True]

        def truncating_fsync(fd):
            if armed[0]:
                armed[0] = False
                wal.truncate()  # the checkpoint racing the leader
            real_fsync(fd)

        monkeypatch.setattr(os, "fsync", truncating_fsync)
        wal.sync(wal.append({"g": 1, "pad": "x" * 100}))
        # a fresh record now ends below the stale pre-truncate offset
        offset = wal.append({"g": 2})
        assert offset < 100
        calls = []
        monkeypatch.setattr(os, "fsync", lambda fd: (calls.append(fd), real_fsync(fd)))
        wal.sync(offset)
        assert calls, "acknowledged record skipped its fsync after a truncate race"
        wal.close()
        records, torn = WriteAheadLog(tmp_path / "wal").replay()
        assert [r["g"] for r in records] == [2] and torn == 0

    def test_failed_fsync_does_not_advance_the_durable_mark(self, tmp_path, monkeypatch):
        """ENOSPC/EIO during the group-commit fsync must raise to the caller
        AND leave the record un-acknowledged-as-durable, so a retry (or a
        later leader) really fsyncs it — never 'fail once, skip forever'."""
        wal = WriteAheadLog(tmp_path / "wal")
        wal.open_for_append()
        real_fsync = os.fsync
        broken = [True]

        def flaky_fsync(fd):
            if broken[0]:
                raise OSError(28, "No space left on device")
            real_fsync(fd)

        monkeypatch.setattr(os, "fsync", flaky_fsync)
        offset = wal.append({"g": 1})
        with pytest.raises(OSError):
            wal.sync(offset)
        broken[0] = False  # the disk recovers; the same offset must now fsync
        calls = []
        monkeypatch.setattr(os, "fsync", lambda fd: (calls.append(fd), real_fsync(fd)))
        wal.sync(offset)
        assert calls, "sync treated the failed fsync as durable and skipped the retry"
        wal.close()

    def test_corrupt_length_word_mid_log_raises_not_truncates(self, tmp_path):
        """A rotted length word that swallows later acknowledged records must
        refuse to open, not silently truncate them as a 'torn tail'."""
        wal = WriteAheadLog(tmp_path / "wal")
        wal.open_for_append()
        start = wal.size_bytes
        wal.sync(wal.append({"g": 1}))
        wal.sync(wal.append({"g": 2}))
        wal.sync(wal.append({"g": 3}))
        blob = bytearray((tmp_path / "wal").read_bytes())
        struct.pack_into("<I", blob, start, 0xFFFF)  # record 1 now claims 64K
        (tmp_path / "wal").write_bytes(bytes(blob))
        with pytest.raises(WalError, match="corrupt"):
            WriteAheadLog(tmp_path / "wal").replay()

    def test_sync_after_close_is_a_noop(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        wal.open_for_append()
        offset = wal.append({"g": 1})
        wal.close()
        wal.sync(offset + 1000)  # must not raise: the session is shutting down

    def test_truncate_resets(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        wal.open_for_append()
        wal.sync(wal.append({"g": 1}))
        assert wal.record_count == 1 and wal.record_bytes > 0
        wal.truncate()
        assert wal.record_count == 0 and wal.record_bytes == 0
        wal.close()
        assert WriteAheadLog(tmp_path / "wal").replay() == ([], 0)


# ----------------------------------------------------------------------
# the durable session
# ----------------------------------------------------------------------


class TestDurableDatabase:
    def test_fresh_empty_data_dir(self, tmp_path):
        db = Database(path=tmp_path / "data")
        info = db.recovery_info
        assert not info.had_snapshot and info.wal_records == 0 and info.torn_bytes == 0
        assert db.instance.is_empty() and db.generation == 0
        db.close()

    def test_mutations_replay_bit_identically(self, tmp_path):
        db = Database(path=tmp_path / "data")
        db.insert("R", (1, 2), (2, X))
        db.insert("S", (X, 4))
        db.delete("R", (1, 2))
        db.apply_delta(adds={"R": [(5, Y)]}, removes={"S": [(9, 9)]})
        want = session_state(db)
        db.close()
        again = Database(path=tmp_path / "data")
        assert session_state(again) == want
        assert again.recovery_info.wal_records == 4  # one record per effective write
        again.close()

    def test_result_cache_generations_survive_restart(self, tmp_path):
        db = Database({"R": [(1, X)], "S": [(X, 4)]}, path=tmp_path / "data")
        db.insert("R", (2, 3))
        before = db.query("exists z (R(x, z) & S(z, y))", vars=("x", "y")).evaluate()
        db.close()
        again = Database(path=tmp_path / "data")
        after = again.query("exists z (R(x, z) & S(z, y))", vars=("x", "y")).evaluate()
        assert after.answers == before.answers
        # the cache key ingredients — the per-relation generations the
        # compiled plan reads — recover exactly, not merely equivalently
        assert after.stats["generations"] == before.stats["generations"]
        again.close()

    def test_seed_instance_persists_without_writes(self, tmp_path):
        db = Database({"R": [(1, X)]}, path=tmp_path / "data")
        db.close()
        again = Database(path=tmp_path / "data")
        assert again.instance.tuples("R") == {(1, X)}
        again.close()

    def test_seeding_a_nonfresh_dir_is_refused(self, tmp_path):
        db = Database(path=tmp_path / "data")
        db.insert("R", (1, 2))
        db.close()
        with pytest.raises(ValueError, match="already holds"):
            Database({"S": [(7,)]}, path=tmp_path / "data")

    def test_torn_final_record_dropped_on_recovery(self, tmp_path):
        db = Database(path=tmp_path / "data")
        db.insert("R", (1, 2))
        db.insert("R", (3, 4))
        want = session_state(db)
        db.close()
        with open(tmp_path / "data" / "wal.repro", "ab") as handle:
            handle.write(b"\x99\x00\x00\x00partial")  # crash mid-append
        again = Database(path=tmp_path / "data")
        assert session_state(again) == want
        assert again.recovery_info.torn_bytes == 11
        again.close()

    def test_snapshot_published_but_wal_not_truncated(self, tmp_path):
        """A crash between checkpoint's two steps must not double-apply."""
        db = Database(path=tmp_path / "data")
        db.insert("R", (1, 2))
        db.insert("R", (3, 4))
        want = session_state(db)
        # simulate the torn checkpoint: snapshot lands, truncate never runs
        write_snapshot(tmp_path / "data" / "snapshot.repro", db._snapshot_state())
        db.close()
        again = Database(path=tmp_path / "data")
        assert session_state(again) == want
        info = again.recovery_info
        assert info.wal_skipped == 2 and info.wal_records == 0
        again.close()

    def test_checkpoint_compacts_and_preserves_state(self, tmp_path):
        db = Database(path=tmp_path / "data")
        db.insert("R", (1, 2), (2, X))
        db.insert("S", (X, 4))
        assert db.checkpoint() is True
        assert db.storage_stats["wal_records"] == 0
        db.insert("R", (9, 9))  # post-checkpoint tail
        want = session_state(db)
        db.close()
        again = Database(path=tmp_path / "data")
        assert session_state(again) == want
        info = again.recovery_info
        assert info.snapshot_generation == 2 and info.wal_records == 1
        again.close()

    def test_size_triggered_compaction(self, tmp_path):
        db = Database(path=tmp_path / "data", wal_max_bytes=1)
        db.insert("R", (1, 2))
        # the write itself crossed the budget: log truncated, snapshot current
        stats = db.storage_stats
        assert stats["wal_records"] == 0
        assert stats["snapshot_generation"] == db.generation == 1
        db.close()

    def test_age_triggered_compaction(self, tmp_path):
        db = Database(path=tmp_path / "data", wal_max_age_s=0.0)
        db.insert("R", (1, 2))
        assert db.storage_stats["wal_records"] == 0
        assert db.storage_stats["snapshot_generation"] == 1
        db.close()

    def test_replace_persists_as_snapshot(self, tmp_path):
        db = Database(path=tmp_path / "data")
        db.insert("R", (1, 2))
        db.replace({"T": [(7, 8)]})
        want = session_state(db)
        db.close()
        again = Database(path=tmp_path / "data")
        assert session_state(again) == want
        assert again.instance.tuples("T") == {(7, 8)}
        again.close()

    def test_unrepresentable_cell_rejected_before_publish(self, tmp_path):
        db = Database(path=tmp_path / "data")
        db.insert("R", (1, 2))
        with pytest.raises(ValueError):
            db.insert("R", ((1, 2), 3))  # tuple cell: not a JSON scalar
        assert db.generation == 1 and db.instance.tuples("R") == {(1, 2)}
        db.close()
        again = Database(path=tmp_path / "data")
        assert again.generation == 1
        again.close()

    def test_fsync_off_still_journals(self, tmp_path):
        db = Database(path=tmp_path / "data", fsync=False)
        db.insert("R", (1, X))
        want = session_state(db)
        db.close()
        again = Database(path=tmp_path / "data")
        assert session_state(again) == want
        again.close()

    def test_concurrent_writers_recover_consistently(self, tmp_path):
        db = Database(path=tmp_path / "data")
        n_threads, n_each = 4, 25

        def writer(t):
            for i in range(n_each):
                db.insert(f"T{t}", (i,))

        threads = [threading.Thread(target=writer, args=(t,)) for t in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        want = session_state(db)
        assert db.generation == n_threads * n_each
        db.close()
        again = Database(path=tmp_path / "data")
        assert session_state(again) == want
        again.close()

    def test_memory_only_session_has_no_storage_surface(self):
        db = Database({"R": [(1, 2)]})
        assert db.path is None and db.recovery_info is None
        assert db.storage_stats is None and db.checkpoint() is False

    def test_wal_doubles_as_workload_trace(self, tmp_path):
        db = Database(path=tmp_path / "data")
        db.insert("R", (1, 2))
        db.apply_delta(adds={"S": [(X,)]}, removes={"R": [(1, 2)]})
        db.close()
        storage = Storage(tmp_path / "data")
        trace = list(storage.trace())
        storage.close()
        assert [t["generation"] for t in trace] == [1, 2]
        assert trace[0]["adds"] == {"R": [(1, 2)]}
        assert trace[1]["removes"] == {"R": [(1, 2)]} and trace[1]["adds"] == {"S": [(X,)]}
        # replaying the trace against a fresh session reproduces the state
        replayed = Database()
        for step in trace:
            replayed.apply_delta(step["adds"], step["removes"])
        assert replayed.instance == Database(path=tmp_path / "data").instance
