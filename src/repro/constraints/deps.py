"""Functional dependencies and keys over instances.

The paper's "impact of constraints" discussion (Section 12) notes that
keys and foreign keys change which answers are certain — constraints
shrink ``[[D]]`` to the worlds satisfying them, which can only *grow*
the certain answers.  This module provides the constraint vocabulary;
:mod:`repro.constraints.semantics` wires it into any base semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.data.instance import Instance

__all__ = ["FunctionalDependency", "Key", "satisfies", "violations"]


@dataclass(frozen=True)
class FunctionalDependency:
    """``relation: lhs → rhs`` over attribute *positions* (0-based)."""

    relation: str
    lhs: tuple[int, ...]
    rhs: tuple[int, ...]

    def __post_init__(self):
        object.__setattr__(self, "lhs", tuple(self.lhs))
        object.__setattr__(self, "rhs", tuple(self.rhs))
        if not self.rhs:
            raise ValueError("an FD needs at least one right-hand position")
        if set(self.lhs) & set(self.rhs):
            raise ValueError("lhs and rhs positions must be disjoint")

    def holds_in(self, instance: Instance) -> bool:
        return next(self.violations_in(instance), None) is None

    def violations_in(self, instance: Instance) -> Iterator[tuple[tuple, tuple]]:
        """Pairs of tuples agreeing on lhs but not rhs (syntactic equality)."""
        by_key: dict[tuple, list[tuple]] = {}
        for row in instance.tuples(self.relation):
            key = tuple(row[i] for i in self.lhs)
            by_key.setdefault(key, []).append(row)
        for rows in by_key.values():
            for i, a in enumerate(rows):
                for b in rows[i + 1 :]:
                    if any(a[j] != b[j] for j in self.rhs):
                        yield a, b

    def __repr__(self) -> str:
        lhs = ",".join(map(str, self.lhs)) or "∅"
        rhs = ",".join(map(str, self.rhs))
        return f"FD[{self.relation}: {lhs} → {rhs}]"


def Key(relation: str, positions: Iterable[int], arity: int) -> FunctionalDependency:
    """A key: the positions determine all the others."""
    positions = tuple(positions)
    rest = tuple(i for i in range(arity) if i not in positions)
    if not rest:
        raise ValueError("a key over all positions constrains nothing")
    return FunctionalDependency(relation, positions, rest)


def satisfies(instance: Instance, constraints: Iterable[FunctionalDependency]) -> bool:
    """Does the instance satisfy every constraint (syntactic equality)?"""
    return all(fd.holds_in(instance) for fd in constraints)


def violations(
    instance: Instance, constraints: Iterable[FunctionalDependency]
) -> list[tuple[FunctionalDependency, tuple, tuple]]:
    """All constraint violations, for diagnostics."""
    out = []
    for fd in constraints:
        for a, b in fd.violations_in(instance):
            out.append((fd, a, b))
    return out
